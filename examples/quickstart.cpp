/// \file quickstart.cpp
/// \brief Five-minute tour of the paygo public API.
///
/// Builds a pay-as-you-go data integration system over a handful of web
/// schemas, clusters them into domains, asks a keyword query (the thesis's
/// running example "departure Toronto destination Cairo"), and retrieves
/// probability-ranked tuples through the winning domain's mediated schema.
///
/// Run: ./build/examples/quickstart

#include <iostream>

#include "core/integration_system.h"
#include "util/string_util.h"

int main() {
  using namespace paygo;

  // 1. Collect schemas. Only attribute names are required — no types, no
  //    data, exactly the information a deep-web form exposes (Section 3.1).
  SchemaCorpus corpus("quickstart");
  corpus.Add(Schema("expedia.com", {"departure airport",
                                    "destination airport", "departing",
                                    "returning", "airline", "class"}));
  corpus.Add(Schema("orbitz.com", {"departure airport", "destination",
                                   "airline", "passengers"}));
  corpus.Add(Schema("kayak.com", {"departure", "destination airport",
                                  "airline", "travel class"}));
  corpus.Add(Schema("dblp.org", {"title", "authors", "year of publish",
                                 "conference name"}));
  corpus.Add(Schema("citeseer", {"title", "author", "year", "journal"}));
  corpus.Add(Schema("books.com", {"title", "authors", "publisher", "isbn"}));
  corpus.Add(Schema("autotrader", {"make", "model", "year", "price",
                                   "mileage"}));
  corpus.Add(Schema("cars.com", {"make", "model", "price", "body style"}));

  // 2. Build the system: feature vectors (Algorithm 1), clustering
  //    (Algorithm 2), probabilistic domain assignment (Algorithm 3),
  //    per-domain mediation (Section 4.4), classifier (Chapter 5).
  SystemOptions options;
  options.hac.tau_c_sim = 0.25;        // thesis recommends 0.2-0.3
  options.assignment.tau_c_sim = 0.25;
  options.assignment.theta = 0.02;
  auto built = IntegrationSystem::Build(std::move(corpus), options);
  if (!built.ok()) {
    std::cerr << "build failed: " << built.status() << "\n";
    return 1;
  }
  IntegrationSystem& sys = **built;

  std::cout << "Discovered " << sys.domains().num_domains()
            << " domains from " << sys.corpus().size() << " schemas:\n\n";
  for (std::uint32_t r = 0; r < sys.domains().num_domains(); ++r) {
    std::cout << sys.DescribeDomain(r) << "\n";
  }

  // 3. Keyword search: the classifier ranks domains for the query.
  const std::string query = "departure Toronto destination Cairo";
  std::cout << "Keyword query: \"" << query << "\"\n";
  auto suggestions = sys.SuggestDomains(query, 3);
  if (!suggestions.ok()) {
    std::cerr << "classification failed: " << suggestions.status() << "\n";
    return 1;
  }
  for (const DomainSuggestion& s : *suggestions) {
    std::cout << "  domain " << s.domain
              << " (log posterior " << FormatDouble(s.log_posterior, 2)
              << ") mediated interface:";
    for (const std::string& a : s.mediated_attributes) {
      std::cout << " [" << a << "]";
    }
    std::cout << "\n";
  }
  const std::uint32_t travel = (*suggestions)[0].domain;

  // 4. Attach data and pose a structured query over the winning domain's
  //    mediated schema. Tuple probabilities combine mapping confidence and
  //    domain membership (Section 4.4).
  (void)sys.AttachTuples(
      0, {Tuple({"YYZ", "CAI", "2010-05-01", "2010-05-15", "EgyptAir",
                 "economy"})});
  (void)sys.AttachTuples(1, {Tuple({"YYZ", "CAI", "EgyptAir", "2"})});
  (void)sys.AttachTuples(2, {Tuple({"YYZ", "CAI", "Lufthansa", "business"})});

  const DomainMediation& med = sys.mediation(travel);
  const int airline_attr = med.mediated.FindByMember("airline");
  if (airline_attr < 0) {
    std::cout << "\n(no 'airline' mediated attribute; try other data)\n";
    return 0;
  }
  StructuredQuery sq;
  sq.predicates.push_back(
      {static_cast<std::size_t>(airline_attr), "EgyptAir"});
  auto answers = sys.AnswerStructuredQuery(travel, sq);
  if (!answers.ok()) {
    std::cerr << "query failed: " << answers.status() << "\n";
    return 1;
  }
  std::cout << "\nStructured query airline = 'EgyptAir' over domain "
            << travel << ":\n";
  for (const RankedTuple& t : *answers) {
    std::cout << "  p=" << FormatDouble(t.probability, 3) << " (from "
              << Join(t.sources, ", ") << "):";
    for (std::size_t a = 0; a < t.tuple.values.size(); ++a) {
      if (!t.tuple.values[a].empty()) {
        std::cout << " " << med.mediated.attributes[a].name << "="
                  << t.tuple.values[a];
      }
    }
    std::cout << "\n";
  }

  // 5. Or skip the structured step entirely: end-to-end keyword search
  //    blends the classifier's domain posterior, the Section 4.4 tuple
  //    probabilities, and value matches ("YYZ", "CAI") in one ranking.
  auto search = sys.AnswerKeywordQuery("departure YYZ destination CAI");
  if (!search.ok()) {
    std::cerr << "keyword search failed: " << search.status() << "\n";
    return 1;
  }
  std::cout << "\nEnd-to-end keyword search \"departure YYZ destination "
               "CAI\":\n";
  for (const KeywordHit& h : search->hits) {
    std::cout << "  score=" << FormatDouble(h.score, 3) << " (domain "
              << h.domain << ", " << h.value_matches
              << " value matches, from " << Join(h.sources, "+") << ")\n";
  }
  return 0;
}
