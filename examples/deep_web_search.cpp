/// \file deep_web_search.cpp
/// \brief The thesis's motivating scenario (Section 1.1): a search engine
/// over deep-web sources.
///
/// Builds the system over the synthetic DW corpus (63 deep-web form
/// schemas spanning 24 domains), then simulates the Figure 3.1 use case:
/// the user types a keyword query; the classifier retrieves the relevant
/// domains; their mediated schemas are presented as structured query
/// interfaces ranked by relevance; the user poses a structured query and
/// gets back probability-ranked tuples merged from every source in the
/// domain.
///
/// Run: ./build/examples/deep_web_search [keyword query...]

#include <iostream>
#include <string>

#include "core/integration_system.h"
#include "synth/tuple_generator.h"
#include "synth/web_generator.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace paygo;

  std::string query = "departure airline destination";
  if (argc > 1) {
    query.clear();
    for (int i = 1; i < argc; ++i) {
      if (i > 1) query += " ";
      query += argv[i];
    }
  }

  std::cout << "Building a pay-as-you-go integration system over the DW "
               "corpus...\n";
  SystemOptions options;
  options.hac.tau_c_sim = 0.25;
  options.assignment.tau_c_sim = 0.25;
  auto built = IntegrationSystem::Build(MakeDwCorpus(), options);
  if (!built.ok()) {
    std::cerr << "build failed: " << built.status() << "\n";
    return 1;
  }
  IntegrationSystem& sys = **built;
  std::cout << "  " << sys.corpus().size() << " deep-web schemas -> "
            << sys.domains().num_domains() << " domains (dim L = "
            << sys.lexicon().dim() << ")\n\n";

  // Simulate the deep web: every source gets synthetic tuples (real
  // sources sit behind web forms; Section 6.1.1 / Figure 6.1).
  for (std::uint32_t i = 0; i < sys.corpus().size(); ++i) {
    DataSource staging(i, sys.corpus().schema(i));
    FillWithSyntheticTuples(&staging);
    if (Status s = sys.AttachTuples(i, staging.tuples()); !s.ok()) {
      std::cerr << "attach failed: " << s << "\n";
      return 1;
    }
  }

  // --- search results page ---
  std::cout << "Keyword query: \"" << query << "\"\n\n";
  auto suggestions = sys.SuggestDomains(query, 3);
  if (!suggestions.ok()) {
    std::cerr << "classification failed: " << suggestions.status() << "\n";
    return 1;
  }
  std::cout << "Relevant domains (ranked structured-query interfaces):\n";
  for (std::size_t k = 0; k < suggestions->size(); ++k) {
    const DomainSuggestion& s = (*suggestions)[k];
    std::cout << k + 1 << ". domain " << s.domain << " (score "
              << FormatDouble(s.log_posterior, 2) << ")\n";
    std::cout << "   interface:";
    std::size_t shown = 0;
    for (const std::string& a : s.mediated_attributes) {
      if (shown++ >= 8) {
        std::cout << " ...";
        break;
      }
      std::cout << " [" << a << "]";
    }
    std::cout << "\n";
  }
  if (suggestions->empty()) return 0;

  // --- user picks the top domain and queries its first attribute ---
  const std::uint32_t domain = (*suggestions)[0].domain;
  const DomainMediation& med = sys.mediation(domain);
  if (med.mediated.size() == 0) {
    std::cout << "\n(top domain has an empty mediated schema)\n";
    return 0;
  }
  const MediatedAttribute& probe = med.mediated.attributes[0];
  const std::string value = SyntheticValue(probe.members.front(), 1);
  StructuredQuery sq;
  sq.predicates.push_back({0, value});

  std::cout << "\nStructured query over domain " << domain << ": "
            << probe.name << " = '" << value << "'\n";
  auto answers = sys.AnswerStructuredQuery(domain, sq);
  if (!answers.ok()) {
    std::cerr << "query failed: " << answers.status() << "\n";
    return 1;
  }
  std::cout << "Merged result set (" << answers->size()
            << " tuples, ranked by probability):\n";
  std::size_t shown = 0;
  for (const RankedTuple& t : *answers) {
    if (shown++ >= 8) {
      std::cout << "  ... (" << answers->size() - 8 << " more)\n";
      break;
    }
    std::cout << "  p=" << FormatDouble(t.probability, 3) << " ["
              << Join(t.sources, "+") << "]";
    std::size_t cols = 0;
    for (std::size_t a = 0; a < t.tuple.values.size(); ++a) {
      if (t.tuple.values[a].empty()) continue;
      if (cols++ >= 4) {
        std::cout << " ...";
        break;
      }
      std::cout << " " << med.mediated.attributes[a].name << "="
                << t.tuple.values[a];
    }
    std::cout << "\n";
  }
  return 0;
}
