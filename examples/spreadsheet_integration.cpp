/// \file spreadsheet_integration.cpp
/// \brief Integrating noisy spreadsheet schemas (the SS scenario of
/// Section 6.1.1), including loading user-provided schemas from a corpus
/// file.
///
/// Spreadsheets are the hard case: generic column headers ({Name, Grade,
/// School, District, Project}), blurred domain boundaries, and schemas a
/// human would label with up to four domains. This example clusters the
/// synthetic SS corpus, reports the uncertainty structure the thesis's
/// probabilistic model captures (schemas belonging to several domains with
/// probabilities), and shows the corpus-file workflow for custom data.
///
/// Run: ./build/examples/spreadsheet_integration [corpus-file]

#include <algorithm>
#include <iostream>

#include "core/integration_system.h"
#include "eval/clustering_metrics.h"
#include "schema/corpus_io.h"
#include "synth/web_generator.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace paygo;

  SchemaCorpus corpus;
  if (argc > 1) {
    auto loaded = LoadCorpusFile(argv[1]);
    if (!loaded.ok()) {
      std::cerr << "failed to load " << argv[1] << ": " << loaded.status()
                << "\n";
      return 1;
    }
    corpus = std::move(*loaded);
    std::cout << "Loaded " << corpus.size() << " schemas from " << argv[1]
              << "\n";
  } else {
    corpus = MakeSsCorpus();
    std::cout << "Using the synthetic SS corpus (" << corpus.size()
              << " spreadsheet schemas). Pass a corpus file to integrate "
                 "your own;\nformat: schema <source> :: <labels> :: "
                 "<attr> ; <attr> ; ...\n";
  }

  SystemOptions options;
  options.hac.tau_c_sim = 0.25;
  options.assignment.tau_c_sim = 0.25;
  options.assignment.theta = 0.35;  // looser than the thesis's 0.02 so the
                                    // probabilistic memberships are visible
  options.build_classifier = false;
  auto built = IntegrationSystem::Build(std::move(corpus), options);
  if (!built.ok()) {
    std::cerr << "build failed: " << built.status() << "\n";
    return 1;
  }
  const IntegrationSystem& sys = **built;
  const DomainModel& domains = sys.domains();

  std::size_t singletons = 0;
  for (std::uint32_t r = 0; r < domains.num_domains(); ++r) {
    if (domains.IsSingletonDomain(r)) ++singletons;
  }
  std::cout << "\nClustering: " << domains.num_domains() - singletons
            << " multi-schema domains + " << singletons
            << " unclustered schemas\n";

  // The probabilistic model: schemas on domain boundaries.
  std::cout << "\nSchemas assigned to multiple domains (the uncertainty "
               "Algorithm 3 models):\n";
  std::size_t shown = 0;
  for (std::uint32_t i = 0; i < domains.num_schemas(); ++i) {
    const auto& memberships = domains.DomainsOf(i);
    if (memberships.size() < 2) continue;
    if (shown++ >= 6) {
      std::cout << "  ...\n";
      break;
    }
    std::cout << "  " << sys.corpus().schema(i).source_name << ":";
    for (const auto& [domain, prob] : memberships) {
      std::cout << " D" << domain << "(p=" << FormatDouble(prob, 2) << ")";
    }
    std::cout << "\n";
  }
  if (shown == 0) {
    std::cout << "  (none — no boundary schemas in this run)\n";
  }

  // Largest domains with their mediated interfaces.
  std::cout << "\nLargest domains:\n";
  std::vector<std::pair<std::size_t, std::uint32_t>> by_size;
  for (std::uint32_t r = 0; r < domains.num_domains(); ++r) {
    by_size.emplace_back(domains.SchemasOf(r).size(), r);
  }
  std::sort(by_size.rbegin(), by_size.rend());
  for (std::size_t k = 0; k < 4 && k < by_size.size(); ++k) {
    std::cout << sys.DescribeDomain(by_size[k].second, 4) << "\n";
  }

  // If the corpus carries ground-truth labels, score the clustering.
  if (!sys.corpus().AllLabels().empty()) {
    const ClusteringEvaluation eval =
        EvaluateClustering(domains, sys.corpus());
    std::cout << "Clustering quality against the corpus labels "
                 "(Section 6.1.2 metrics):\n"
              << "  precision " << FormatDouble(eval.avg_precision, 3)
              << ", recall " << FormatDouble(eval.avg_recall, 3)
              << ", unclustered " << FormatDouble(eval.frac_unclustered, 3)
              << ", non-homogeneous "
              << FormatDouble(eval.frac_non_homogeneous, 3)
              << ", fragmentation " << FormatDouble(eval.fragmentation, 2)
              << "\n";
  }
  return 0;
}
