/// \file serving_demo.cpp
/// \brief Tour of the concurrent serving runtime (src/serve).
///
/// Builds an integration system, hands it to a PaygoServer, and then:
///   1. classifies keyword queries through the admission-controlled worker
///      pool (twice, to show the result cache taking the second hit);
///   2. adds a schema while readers keep going — the copy-on-write writer
///      publishes a new snapshot, readers never block;
///   3. shows that a snapshot pinned before the swap is still fully
///      servable afterwards (shared ownership, no torn state);
///   4. spins up the embedded admin HTTP endpoint on an ephemeral loopback
///      port and scrapes its own /statusz and /readyz pages;
///   5. prints the server metrics (latency histograms, cache hit rate,
///      admission rejections, snapshot generation).
///
/// Run: ./build/examples/serving_demo

#include <iostream>
#include <string>
#include <vector>

#include "core/integration_system.h"
#include "obs/admin_server.h"
#include "serve/paygo_server.h"

int main() {
  using namespace paygo;

  // 1. Build the system exactly as in quickstart.cpp.
  SchemaCorpus corpus("serving-demo");
  corpus.Add(Schema("expedia.com", {"departure airport",
                                    "destination airport", "departing",
                                    "returning", "airline", "class"}));
  corpus.Add(Schema("orbitz.com", {"departure airport", "destination",
                                   "airline", "passengers"}));
  corpus.Add(Schema("kayak.com", {"departure", "destination airport",
                                  "airline", "travel class"}));
  corpus.Add(Schema("dblp.org", {"title", "authors", "year of publish",
                                 "conference name"}));
  corpus.Add(Schema("citeseer", {"title", "author", "year", "journal"}));
  corpus.Add(Schema("autotrader", {"make", "model", "year", "price",
                                   "mileage"}));
  auto built = IntegrationSystem::Build(std::move(corpus));
  if (!built.ok()) {
    std::cerr << "build failed: " << built.status() << "\n";
    return 1;
  }

  // 2. Wrap it in a server: 2 workers, a 64-deep request queue, a result
  //    cache. The server owns the system from here on; all access goes
  //    through snapshots.
  ServeOptions options;
  options.num_workers = 2;
  options.queue_depth = 64;
  options.cache_capacity = 256;
  options.admin_port = 0;  // embedded admin endpoint on an ephemeral port
  PaygoServer server(std::move(*built), options);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << "start failed: " << s << "\n";
    return 1;
  }

  // 3. Serve a query twice. The first classify computes; the repeat (same
  //    query after normalization — case and spacing differ) is a cache hit.
  const std::string query = "departure Toronto destination Cairo";
  const std::vector<std::string> repeats = {
      query, "  Departure  TORONTO destination cairo "};
  for (const std::string& q : repeats) {
    auto scores = server.Classify(q);
    if (!scores.ok()) {
      std::cerr << "classify failed: " << scores.status() << "\n";
      return 1;
    }
    std::cout << "classify(\"" << q << "\") -> top domain "
              << (*scores)[0].domain << "\n";
  }
  std::cout << "cache hits so far: " << server.metrics().cache_hits.load()
            << " (second call hit)\n\n";

  // 4. Pin the current snapshot, then mutate. The writer thread clones the
  //    system, adds the schema, re-clusters, and atomically publishes the
  //    result; generation 0 -> 1, cache invalidated.
  const PaygoServer::Snapshot before = server.snapshot();
  Schema newcomer("travelocity", {"departure airport", "destination",
                                  "departing", "airline"});
  if (Status s = server.AddSchemaAsync(newcomer, {}).get(); !s.ok()) {
    std::cerr << "add schema failed: " << s << "\n";
    return 1;
  }
  std::cout << "after AddSchema: generation " << server.generation()
            << ", corpus " << before->corpus().size() << " -> "
            << server.snapshot()->corpus().size() << " schemas\n";
  std::cout << "pinned pre-swap snapshot still has "
            << before->corpus().size()
            << " schemas and still answers queries\n\n";

  // 5. Full keyword search through the new snapshot.
  auto answer = server.KeywordSearch(query);
  if (answer.ok()) {
    std::cout << "keyword search consulted " << answer->consulted.size()
              << " domains, returned " << answer->hits.size()
              << " tuple hits\n\n";
  }

  // 6. The admin endpoint is live the whole time — any HTTP client can
  //    scrape it (curl http://127.0.0.1:PORT/metrics). Here we scrape our
  //    own /readyz and /statusz with the built-in loopback client.
  std::cout << "admin endpoint on 127.0.0.1:" << server.admin()->port()
            << " (/metrics /varz /healthz /readyz /statusz /slowz /tracez)\n";
  for (const char* page : {"/readyz", "/statusz"}) {
    auto scraped = AdminHttpGet(server.admin()->port(), page);
    if (scraped.ok()) {
      const std::size_t body = scraped->find("\r\n\r\n");
      std::cout << "GET " << page << " -> "
                << scraped->substr(0, scraped->find("\r\n")) << "\n  "
                << (body == std::string::npos ? ""
                                              : scraped->substr(body + 4));
    }
  }
  std::cout << "\n" << server.DebugString() << "\n";
  server.Stop();
  return 0;
}
