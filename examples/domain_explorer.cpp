/// \file domain_explorer.cpp
/// \brief Interactive keyword-query console over DW+SS — the closest CLI
/// analog of the thesis's GUI (Figures 4.1, 4.2, 5.1).
///
/// Builds the full system over the combined DW+SS corpus and then reads
/// keyword queries from stdin, printing the ranked domains with their
/// mediated interfaces and member sources. Feed it the thesis's examples:
///
///   departure Toronto destination Cairo
///   books authored by Stephen King
///   class hours bldg location
///
/// Run: ./build/examples/domain_explorer   (or pipe queries in)

#include <iostream>
#include <string>

#include "core/integration_system.h"
#include "eval/clustering_metrics.h"
#include "synth/web_generator.h"
#include "util/string_util.h"
#include "util/timer.h"

int main() {
  using namespace paygo;

  std::cout << "Building the system over DW+SS (315 schemas)...\n";
  WallTimer timer;
  SystemOptions options;
  options.hac.tau_c_sim = 0.25;
  options.assignment.tau_c_sim = 0.25;
  auto built = IntegrationSystem::Build(MakeDwSsCorpus(), options);
  if (!built.ok()) {
    std::cerr << "build failed: " << built.status() << "\n";
    return 1;
  }
  const IntegrationSystem& sys = **built;
  std::cout << "Ready in " << FormatDouble(timer.ElapsedSeconds(), 2)
            << "s: " << sys.domains().num_domains() << " domains, dim L = "
            << sys.lexicon().dim() << ".\n";

  // Pre-compute dominant labels for friendlier output.
  std::vector<std::vector<std::string>> labels;
  for (std::uint32_t r = 0; r < sys.domains().num_domains(); ++r) {
    labels.push_back(DominantLabels(sys.domains(), r, sys.corpus()));
  }

  std::cout << "\nType a keyword query (empty line or EOF quits):\n";
  std::string line;
  while (std::cout << "> " << std::flush, std::getline(std::cin, line)) {
    line = Trim(line);
    if (line.empty()) break;
    WallTimer qt;
    auto suggestions = sys.SuggestDomains(line, 5);
    if (!suggestions.ok()) {
      std::cout << "error: " << suggestions.status() << "\n";
      continue;
    }
    const double ms = qt.ElapsedMillis();
    if (suggestions->empty()) {
      std::cout << "no domains.\n";
      continue;
    }
    for (std::size_t k = 0; k < suggestions->size(); ++k) {
      const DomainSuggestion& s = (*suggestions)[k];
      std::cout << k + 1 << ". domain " << s.domain;
      if (s.domain < labels.size() && !labels[s.domain].empty()) {
        std::cout << " (" << Join(labels[s.domain], "/") << ")";
      }
      std::cout << "  score " << FormatDouble(s.log_posterior, 2) << "\n";
      std::cout << "   interface:";
      std::size_t shown = 0;
      for (const std::string& a : s.mediated_attributes) {
        if (shown++ >= 7) {
          std::cout << " ...";
          break;
        }
        std::cout << " [" << a << "]";
      }
      std::cout << "\n";
    }
    std::cout << "(" << FormatDouble(ms, 2) << " ms)\n";
  }
  std::cout << "bye.\n";
  return 0;
}
