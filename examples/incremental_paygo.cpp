/// \file incremental_paygo.cpp
/// \brief The pay-as-you-go lifecycle end-to-end: build small, snapshot,
/// restore, stream in new sources, take corrections, refine.
///
/// Walks the lifecycle the thesis's Chapter 7 sketches:
///   day 0 — build a system over a first batch of sources and persist it;
///   day 1 — restore the snapshot (no reclustering, no classifier setup),
///           stream newly discovered sources into the live model;
///   day 2 — a user corrects a mis-clustered schema; reclustering honors
///           the constraint.
///
/// Run: ./build/examples/incremental_paygo

#include <cstdio>
#include <iostream>

#include "cluster/incremental.h"
#include "core/integration_system.h"
#include "feedback/feedback.h"
#include "persist/model_io.h"
#include "util/string_util.h"
#include "util/timer.h"

int main() {
  using namespace paygo;
  const std::string snapshot_path = "/tmp/paygo_incremental_example.snapshot";

  // ---- day 0: first batch of sources ----
  SchemaCorpus corpus("day0");
  corpus.Add(Schema("expedia", {"departure airport", "destination airport",
                                "departing", "returning", "airline"}));
  corpus.Add(Schema("orbitz", {"departure airport", "destination",
                               "airline", "passengers"}));
  corpus.Add(Schema("dblp", {"title", "authors", "year of publish",
                             "conference name"}));
  corpus.Add(Schema("citeseer", {"title", "author", "year", "journal"}));
  SystemOptions options;
  options.hac.tau_c_sim = 0.25;
  options.assignment.tau_c_sim = 0.25;

  WallTimer build_timer;
  auto built = IntegrationSystem::Build(corpus, options);
  if (!built.ok()) {
    std::cerr << "build failed: " << built.status() << "\n";
    return 1;
  }
  std::cout << "day 0: built " << (*built)->domains().num_domains()
            << " domains from " << corpus.size() << " sources in "
            << FormatDouble(build_timer.ElapsedMillis(), 1) << " ms\n";
  if (Status s = SaveSnapshot(**built, snapshot_path); !s.ok()) {
    std::cerr << "snapshot failed: " << s << "\n";
    return 1;
  }
  std::cout << "        snapshot saved to " << snapshot_path << "\n";

  // ---- day 1: restore + stream in new sources ----
  WallTimer restore_timer;
  auto restored = LoadSnapshot(snapshot_path, options);
  if (!restored.ok()) {
    std::cerr << "restore failed: " << restored.status() << "\n";
    return 1;
  }
  IntegrationSystem& sys = **restored;
  std::cout << "day 1: restored in "
            << FormatDouble(restore_timer.ElapsedMillis(), 1)
            << " ms (model and classifier reused verbatim)\n";

  IncrementalOptions inc_opts;
  inc_opts.tau_c_sim = 0.25;
  IncrementalClusterer inc(sys.tokenizer(), sys.vectorizer(), sys.features(),
                           sys.domains(), inc_opts);
  const std::vector<Schema> arrivals = {
      Schema("kayak", {"departure airport", "airline", "travel class"}),
      Schema("pubmed", {"title", "authors", "journal", "abstract"}),
      Schema("weatherdb", {"temperature reading", "barometric pressure",
                           "wind gust"}),
  };
  for (const Schema& s : arrivals) {
    const auto r = inc.AddSchema(s);
    if (!r.ok()) {
      std::cerr << "  add failed: " << r.status() << "\n";
      continue;
    }
    std::cout << "  + " << s.source_name << " -> "
              << (r->created_new_domain
                      ? "opened new domain " +
                            std::to_string(r->memberships[0].first)
                      : "joined domain " +
                            std::to_string(r->memberships[0].first))
              << " (unseen terms "
              << FormatDouble(r->unseen_term_fraction, 2) << ")\n";
  }
  std::cout << "  drift " << FormatDouble(inc.AverageDrift(), 2)
            << (inc.RebuildRecommended() ? " -> rebuild recommended"
                                         : " -> model still healthy")
            << "\n";

  // ---- day 2: an explicit correction ----
  // Pretend the user decides 'kayak' (schema 4) belongs with the
  // bibliography sources — a deliberately wrong correction to show the
  // constraint machinery obeys the user, not the similarity.
  const DomainModel& model = inc.model();
  SimilarityMatrix sims(inc.features());
  FeedbackStore store;
  if (Status s = store.RecordCorrection(/*schema=*/4, /*wrong=*/0,
                                        /*right=*/2);
      !s.ok()) {
    std::cerr << "correction rejected: " << s << "\n";
    return 1;
  }
  HacOptions hac;
  hac.tau_c_sim = 0.25;
  AssignmentOptions assign;
  assign.tau_c_sim = 0.25;
  auto refined =
      ReclusterWithFeedback(inc.features(), sims, hac, assign, store);
  if (!refined.ok()) {
    std::cerr << "recluster failed: " << refined.status() << "\n";
    return 1;
  }
  std::cout << "day 2: applied 1 correction; schema 4 now shares a domain "
               "with schema 2: "
            << (refined->DomainsOf(4)[0].first ==
                        refined->DomainsOf(2)[0].first
                    ? "yes"
                    : "no")
            << ", and is separated from schema 0: "
            << (refined->DomainsOf(4)[0].first !=
                        refined->DomainsOf(0)[0].first
                    ? "yes"
                    : "no")
            << "\n";
  (void)model;

  std::remove(snapshot_path.c_str());
  std::cout << "\nThe pay-as-you-go contract: start imprecise, serve "
               "immediately, refine forever.\n";
  return 0;
}
