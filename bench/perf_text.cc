/// \file perf_text.cc
/// \brief google-benchmark microbenchmarks for the text substrate:
/// LCS (DP vs suffix automaton), tokenization, and the similarity index's
/// bigram prefilter.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "schema/lexicon.h"
#include "synth/ddh_generator.h"
#include "text/lcs.h"
#include "text/porter_stemmer.h"
#include "text/similarity_index.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace paygo {
namespace {

std::string RandomWord(Rng& rng, std::size_t len) {
  std::string s;
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.NextBelow(26)));
  }
  return s;
}

void BM_LcsDp(benchmark::State& state) {
  Rng rng(3);
  const std::string a = RandomWord(rng, state.range(0));
  const std::string b = RandomWord(rng, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LcsLengthDp(a, b));
  }
}
BENCHMARK(BM_LcsDp)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_LcsAutomatonBuildAndQuery(benchmark::State& state) {
  Rng rng(3);
  const std::string a = RandomWord(rng, state.range(0));
  const std::string b = RandomWord(rng, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LcsLengthAutomaton(a, b));
  }
}
BENCHMARK(BM_LcsAutomatonBuildAndQuery)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_LcsAutomatonAmortized(benchmark::State& state) {
  // Build once, query many times — the pattern the similarity index uses.
  Rng rng(3);
  const std::string a = RandomWord(rng, state.range(0));
  SuffixAutomaton sam(a);
  const std::string b = RandomWord(rng, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sam.LcsLengthWith(b));
  }
}
BENCHMARK(BM_LcsAutomatonAmortized)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tok;
  const std::vector<std::string> attrs = {
      "departure airport", "MaxNumberOfStudents", "Day/Time",
      "year of publish",   "artist/composer",     "departing (mm/dd/yy)"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.TokenizeAll(attrs));
  }
  state.SetItemsProcessed(state.iterations() * attrs.size());
}
BENCHMARK(BM_Tokenize);

void BM_PorterStem(benchmark::State& state) {
  const std::vector<std::string> words = {
      "departures", "relational", "generalization", "hopping", "publications"};
  for (auto _ : state) {
    for (const std::string& w : words) {
      benchmark::DoNotOptimize(PorterStem(w));
    }
  }
  state.SetItemsProcessed(state.iterations() * words.size());
}
BENCHMARK(BM_PorterStem);

void BM_SimilarityIndexBuild(benchmark::State& state) {
  DdhGeneratorOptions opts;
  opts.num_schemas = static_cast<std::size_t>(state.range(0));
  const SchemaCorpus corpus = MakeDdhCorpus(opts);
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityIndex(
        lexicon.terms(), TermSimilarity(TermSimilarityKind::kLcs), 0.8));
  }
  state.SetLabel("dim L = " + std::to_string(lexicon.dim()));
}
BENCHMARK(BM_SimilarityIndexBuild)->Arg(200)->Arg(1000)->Arg(2323);

void BM_SimilarityIndexMatch(benchmark::State& state) {
  const SchemaCorpus corpus = MakeDdhCorpus();
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  const SimilarityIndex index(lexicon.terms(),
                              TermSimilarity(TermSimilarityKind::kLcs), 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Match("departures"));
    benchmark::DoNotOptimize(index.Match("professors"));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SimilarityIndexMatch);

}  // namespace
}  // namespace paygo

BENCHMARK_MAIN();
