/// \file fig_6_3_recall.cc
/// \brief Reproduces Figure 6.3: average recall vs tau_c_sim for the four
/// cluster-similarity measures on DW+SS.

#include "fig_sweep.h"

int main(int argc, char** argv) {
  return paygo::bench::RunFigureSweep(
      "Figure 6.3: Average recall",
      [](const paygo::ClusteringEvaluation& e) { return e.avg_recall; },
      "recall rises with tau (thesis: ~0.78 at tau 0.2, ~0.86 at 0.3); "
      "Max. Jaccard lags until high tau.",
      paygo::bench::WantsCsv(argc, argv));
}
