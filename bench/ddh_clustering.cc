/// \file ddh_clustering.cc
/// \brief Reproduces the Section 6.2 DDH result: "the clustering algorithm
/// works perfectly on DDH, giving precision and recall values above 0.99
/// for all tau_c_sim >= 0.2 and for all similarity measures, except
/// Max. Jaccard which gives low recall for tau_c_sim < 0.5."

#include <iostream>

#include "bench_util.h"
#include "synth/ddh_generator.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace paygo;
  using bench::PreparedCorpus;
  using bench::RunClusteringPoint;

  WallTimer prep_timer;
  const PreparedCorpus prep(MakeDdhCorpus());
  std::cout << "DDH corpus: " << prep.corpus.size() << " schemas, dim L = "
            << prep.lexicon.dim() << " (feature prep "
            << FormatDouble(prep_timer.ElapsedSeconds(), 2) << "s)\n\n";

  const std::vector<double> taus = {0.2, 0.3, 0.4, 0.5};
  TablePrinter table(
      {"Linkage", "tau", "Precision", "Recall", "Unclustered", "Domains",
       "Time(s)"});
  for (LinkageKind linkage : AllLinkageKinds()) {
    for (double tau : taus) {
      WallTimer t;
      const bench::SweepPoint point = RunClusteringPoint(prep, linkage, tau);
      table.AddRow({LinkageKindName(linkage), FormatDouble(tau, 1),
                    FormatDouble(point.eval.avg_precision, 3),
                    FormatDouble(point.eval.avg_recall, 3),
                    FormatDouble(point.eval.frac_unclustered, 3),
                    std::to_string(point.eval.num_domains -
                                   point.eval.num_singleton_domains),
                    FormatDouble(t.ElapsedSeconds(), 2)});
    }
  }
  std::cout << "=== Section 6.2: Schema clustering on DDH (2323 schemas, "
               "5 domains) ===\n";
  table.Print(std::cout);
  std::cout << "\nExpected shape: precision and recall > 0.99 for all "
               "measures and all tau >= 0.2,\nexcept Max. Jaccard (single-"
               "link analog), whose recall degrades at low tau because\n"
               "chaining merges distinct domains.\n";
  return 0;
}
