/// \file feedback_loop.cc
/// \brief The full pay-as-you-go refinement loop (Chapter 7 future work,
/// implemented): automatic consistency feedback finds clustering suspects,
/// explicit corrections recluster under constraints, implicit clicks tune
/// the classifier, and incrementally arriving schemas join live domains.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "classify/naive_bayes.h"
#include "classify/query_featurizer.h"
#include "cluster/incremental.h"
#include "eval/classification_metrics.h"
#include "feedback/consistency.h"
#include "feedback/feedback.h"
#include "integrate/data_source.h"
#include "mediate/mediator.h"
#include "synth/query_generator.h"
#include "synth/tuple_generator.h"
#include "synth/web_generator.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace paygo;

/// (1) Plant a mislabeled schema, let consistency feedback find it, apply
/// the correction, and verify the recluster fixes the assignment.
void ExplicitFeedbackRound(const bench::PreparedCorpus& prep) {
  std::cout << "--- (1) Explicit corrections: constrained reclustering ---\n";
  const bench::SweepPoint before =
      bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);

  // Simulate 12 user corrections: take multi-schema domains whose
  // dominant label disagrees with some member's labels and pin those
  // members to a domain matching their label.
  FeedbackStore store;
  std::size_t corrections = 0;
  for (std::uint32_t r = 0;
       r < before.model.num_domains() && corrections < 12; ++r) {
    const auto dominant = DominantLabels(before.model, r, prep.corpus);
    if (dominant.empty()) continue;
    for (const auto& [schema, prob] : before.model.SchemasOf(r)) {
      const auto& labels = prep.corpus.labels(schema);
      bool agrees = false;
      for (const std::string& l : labels) {
        if (std::find(dominant.begin(), dominant.end(), l) !=
            dominant.end()) {
          agrees = true;
          break;
        }
      }
      if (agrees || labels.empty()) continue;
      // Find an exemplar schema in a domain dominated by this schema's
      // first label.
      for (std::uint32_t r2 = 0; r2 < before.model.num_domains(); ++r2) {
        if (r2 == r || before.model.SchemasOf(r2).empty()) continue;
        const auto dom2 = DominantLabels(before.model, r2, prep.corpus);
        if (std::find(dom2.begin(), dom2.end(), labels[0]) == dom2.end()) {
          continue;
        }
        const std::uint32_t wrong_exemplar =
            before.model.SchemasOf(r)[0].first == schema
                ? before.model.SchemasOf(r).back().first
                : before.model.SchemasOf(r)[0].first;
        if (wrong_exemplar == schema) break;
        if (store
                .RecordCorrection(schema, wrong_exemplar,
                                  before.model.SchemasOf(r2)[0].first)
                .ok()) {
          ++corrections;
        }
        break;
      }
      if (corrections >= 12) break;
    }
  }

  HacOptions hac;
  hac.tau_c_sim = 0.25;
  AssignmentOptions assign;
  assign.tau_c_sim = 0.25;
  const auto after =
      ReclusterWithFeedback(prep.features, prep.sims, hac, assign, store);
  if (!after.ok()) {
    std::cerr << "recluster failed: " << after.status() << "\n";
    return;
  }
  const ClusteringEvaluation eval_before =
      EvaluateClustering(before.model, prep.corpus);
  const ClusteringEvaluation eval_after =
      EvaluateClustering(*after, prep.corpus);
  TablePrinter table({"", "Precision", "Recall"});
  table.AddRow({"before feedback", FormatDouble(eval_before.avg_precision, 3),
                FormatDouble(eval_before.avg_recall, 3)});
  table.AddRow({"after " + std::to_string(corrections) + " corrections",
                FormatDouble(eval_after.avg_precision, 3),
                FormatDouble(eval_after.avg_recall, 3)});
  table.Print(std::cout);
  std::cout << "\n";
}

/// (2) Automatic consistency feedback over synthetic tuples.
void ConsistencyRound(const bench::PreparedCorpus& prep) {
  std::cout << "--- (2) Automatic consistency feedback from retrieved "
               "tuples ---\n";
  const bench::SweepPoint point =
      bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);
  Tokenizer tok;
  // Attach synthetic tuples to every schema.
  std::vector<std::unique_ptr<DataSource>> sources;
  std::vector<const DataSource*> ptrs(prep.corpus.size(), nullptr);
  for (std::uint32_t i = 0; i < prep.corpus.size(); ++i) {
    sources.push_back(std::make_unique<DataSource>(i, prep.corpus.schema(i)));
    FillWithSyntheticTuples(sources.back().get());
    ptrs[i] = sources.back().get();
  }
  std::size_t assessed = 0, suspects = 0;
  double total_consistency = 0.0;
  for (std::uint32_t r = 0; r < point.model.num_domains(); ++r) {
    const auto& members = point.model.SchemasOf(r);
    if (members.size() < 2) continue;
    const auto med = Mediator::BuildForDomain(prep.corpus, tok, members, {});
    if (!med.ok()) continue;
    const auto report = AssessDomainConsistency(*med, ptrs);
    if (!report.ok()) continue;
    ++assessed;
    total_consistency += report->domain_consistency;
    suspects += report->num_suspects;
  }
  std::cout << "assessed " << assessed << " multi-schema domains; mean "
            << "consistency "
            << FormatDouble(assessed ? total_consistency / assessed : 0.0, 3)
            << "; flagged " << suspects
            << " member sources as clustering suspects\n\n";
}

/// (3) Implicit click feedback sharpens classification of an ambiguous
/// query stream.
void ImplicitFeedbackRound(const bench::PreparedCorpus& prep) {
  std::cout << "--- (3) Implicit click feedback on the classifier ---\n";
  const bench::SweepPoint point =
      bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);
  std::vector<std::vector<std::string>> domain_labels;
  for (std::uint32_t r = 0; r < point.model.num_domains(); ++r) {
    domain_labels.push_back(DominantLabels(point.model, r, prep.corpus));
  }
  auto clf = NaiveBayesClassifier::Build(point.model, prep.features,
                                         prep.corpus.size(), {});
  if (!clf.ok()) return;
  FeatureVectorizer vectorizer(prep.lexicon);
  QueryFeaturizer featurizer(prep.tokenizer, vectorizer);
  const auto gen = QueryGenerator::Build(prep.corpus, prep.lexicon, {});
  if (!gen.ok()) return;

  // Simulate a usage period: users click the domain whose labels match
  // the query's target; impressions go to the top-3.
  FeedbackStore store;
  Rng rng(5);
  for (int q = 0; q < 400; ++q) {
    const GeneratedQuery query = gen->Generate(2, rng);
    const auto ranking =
        clf->Classify(featurizer.FeaturizeTerms(query.keywords));
    for (std::size_t k = 0; k < 3 && k < ranking.size(); ++k) {
      store.RecordImpression(ranking[k].domain);
      const auto& labels = domain_labels[ranking[k].domain];
      if (std::find(labels.begin(), labels.end(), query.target_label) !=
          labels.end()) {
        store.RecordClick(ranking[k].domain);
      }
    }
  }
  const NaiveBayesClassifier adjusted =
      AdjustClassifierWithClicks(*clf, store);

  // Fresh evaluation queries.
  TablePrinter table({"Classifier", "Top-1", "Top-3"});
  const std::vector<std::pair<std::string, const NaiveBayesClassifier*>>
      variants = {{"before clicks", &*clf}, {"after clicks", &adjusted}};
  for (const auto& pair : variants) {
    Rng eval_rng(77);
    TopKAccumulator acc;
    for (int q = 0; q < 300; ++q) {
      const GeneratedQuery query = gen->Generate(2, eval_rng);
      acc.Record(pair.second->Classify(
                     featurizer.FeaturizeTerms(query.keywords)),
                 domain_labels, query.target_label);
    }
    table.AddRow({pair.first, FormatDouble(acc.Top1Fraction(), 3),
                  FormatDouble(acc.Top3Fraction(), 3)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

/// (4) Incremental arrival of new sources.
void IncrementalRound() {
  std::cout << "--- (4) Incremental schema arrival ---\n";
  // Build on DW only, then stream SS schemas in.
  SchemaCorpus dw = MakeDwCorpus();
  const SchemaCorpus ss = MakeSsCorpus();
  const bench::PreparedCorpus prep(dw);
  const bench::SweepPoint point =
      bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);

  FeatureVectorizer vectorizer(prep.lexicon);
  IncrementalOptions opts;
  opts.tau_c_sim = 0.25;
  IncrementalClusterer inc(prep.tokenizer, vectorizer, prep.features,
                           point.model, opts);
  std::size_t joined = 0, opened = 0;
  for (std::size_t i = 0; i < ss.size(); ++i) {
    const auto r = inc.AddSchema(ss.schema(i));
    if (!r.ok()) continue;
    (r->created_new_domain ? opened : joined) += 1;
  }
  std::cout << "streamed " << ss.size() << " SS schemas into the DW system: "
            << joined << " joined existing domains, " << opened
            << " opened new domains; average lexicon drift "
            << FormatDouble(inc.AverageDrift(), 3)
            << (inc.RebuildRecommended() ? " -> full rebuild recommended"
                                         : " -> no rebuild needed")
            << "\n";
}

}  // namespace

int main() {
  std::cout << "=== The pay-as-you-go refinement loop (Chapter 7, "
               "implemented) ===\n\n";
  const bench::PreparedCorpus prep(MakeDwSsCorpus());
  ExplicitFeedbackRound(prep);
  ConsistencyRound(prep);
  ImplicitFeedbackRound(prep);
  IncrementalRound();
  return 0;
}
