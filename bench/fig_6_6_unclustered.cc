/// \file fig_6_6_unclustered.cc
/// \brief Reproduces Figure 6.6: fraction of unclustered schemas vs
/// tau_c_sim on DW+SS.

#include "fig_sweep.h"

int main(int argc, char** argv) {
  return paygo::bench::RunFigureSweep(
      "Figure 6.6: Fraction of unclustered schemas",
      [](const paygo::ClusteringEvaluation& e) { return e.frac_unclustered; },
      "rises monotonically with tau — ~0.29 at tau 0.2 and ~0.50 at 0.3 in "
      "the thesis (25% of schemas are unique and should stay unclustered), "
      "approaching 1 at tau 0.9.",
      paygo::bench::WantsCsv(argc, argv));
}
