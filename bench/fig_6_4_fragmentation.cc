/// \file fig_6_4_fragmentation.cc
/// \brief Reproduces Figure 6.4: average fragmentation (domains per
/// dominant label) vs tau_c_sim on DW+SS.

#include "fig_sweep.h"

int main(int argc, char** argv) {
  return paygo::bench::RunFigureSweep(
      "Figure 6.4: Average fragmentation",
      [](const paygo::ClusteringEvaluation& e) { return e.fragmentation; },
      "fragmentation generally rises from tau 0.1 to ~0.5 (higher tau "
      "prevents similar clusters from merging), then falls as domains "
      "shatter into unclustered singletons.",
      paygo::bench::WantsCsv(argc, argv));
}
