/// \file ddh_classification.cc
/// \brief Reproduces the Section 6.4 DDH result: "almost perfect results,
/// with the top-1 fraction being 1 for all query sizes, except for
/// single-keyword queries where the top-1 fraction drops slightly to about
/// 0.95", plus the classifier construction time ("about 5 minutes" on the
/// authors' 2010 hardware; expect orders of magnitude less here).

#include <iostream>

#include "bench_util.h"
#include "classify/naive_bayes.h"
#include "classify/query_featurizer.h"
#include "eval/classification_metrics.h"
#include "synth/ddh_generator.h"
#include "synth/query_generator.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace paygo;
  using bench::PreparedCorpus;
  using bench::RunClusteringPoint;

  const PreparedCorpus prep(MakeDdhCorpus());
  const bench::SweepPoint point =
      RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);

  std::vector<std::vector<std::string>> domain_labels;
  for (std::uint32_t r = 0; r < point.model.num_domains(); ++r) {
    domain_labels.push_back(DominantLabels(point.model, r, prep.corpus));
  }

  WallTimer setup_timer;
  auto clf = NaiveBayesClassifier::Build(point.model, prep.features,
                                         prep.corpus.size(), {});
  if (!clf.ok()) {
    std::cerr << "classifier build failed: " << clf.status() << "\n";
    return 1;
  }
  const double setup_seconds = setup_timer.ElapsedSeconds();

  FeatureVectorizer vectorizer(prep.lexicon);
  QueryFeaturizer featurizer(prep.tokenizer, vectorizer);
  QueryGeneratorOptions gen_opts;
  gen_opts.min_label_fraction = 0.1;  // the thesis's DDH setting
  auto gen = QueryGenerator::Build(prep.corpus, prep.lexicon, gen_opts);
  if (!gen.ok()) {
    std::cerr << "query generator build failed: " << gen.status() << "\n";
    return 1;
  }

  Rng rng(62);
  TablePrinter table({"Keywords", "Top-1 fraction"});
  // Average per-query classification time, measured over all sizes.
  WallTimer classify_timer;
  std::size_t classified = 0;
  for (std::size_t size = 1; size <= 10; ++size) {
    TopKAccumulator acc;
    for (int q = 0; q < 100; ++q) {
      const GeneratedQuery query = gen->Generate(size, rng);
      const auto ranking =
          clf->Classify(featurizer.FeaturizeTerms(query.keywords));
      ++classified;
      acc.Record(ranking, domain_labels, query.target_label);
    }
    table.AddRow({std::to_string(size), FormatDouble(acc.Top1Fraction(), 2)});
  }
  const double per_query_ms =
      classify_timer.ElapsedMillis() / static_cast<double>(classified);

  std::cout << "=== Section 6.4: Query classification on DDH (2323 schemas, "
               "5 domains) ===\n";
  table.Print(std::cout);
  std::cout << "\nClassifier setup time: " << FormatDouble(setup_seconds, 3)
            << "s (thesis: ~5 minutes on 2010 hardware)\n";
  std::cout << "Avg classification time (incl. featurization): "
            << FormatDouble(per_query_ms, 3) << " ms/query — O(|D| dim L) "
            << "worst case, O(|D| |set features|) as implemented\n";
  std::cout << "\nExpected shape: top-1 = 1 for all sizes except ~0.95 at "
               "size 1.\n";
  return 0;
}
