#ifndef PAYGO_BENCH_FIG_SWEEP_H_
#define PAYGO_BENCH_FIG_SWEEP_H_

/// \file fig_sweep.h
/// \brief The shared tau x linkage sweep behind Figures 6.2-6.6.
///
/// All five figures plot one clustering metric on the union of DW and SS
/// as tau_c_sim varies from 0.1 to 0.9, with one series per
/// cluster-similarity measure (Avg/Min/Max/Total Jaccard).

#include <functional>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "synth/web_generator.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace paygo {
namespace bench {

/// Runs the sweep and prints one series per linkage of metric(eval).
/// Pass csv = true (the binaries' --csv flag) to emit plot-ready CSV
/// instead of the aligned table.
inline int RunFigureSweep(
    const std::string& figure_title,
    const std::function<double(const ClusteringEvaluation&)>& metric,
    const std::string& expected_shape, bool csv = false) {
  const PreparedCorpus prep(MakeDwSsCorpus());
  const std::vector<double> taus = FigureTauGrid();

  std::vector<std::string> headers = {"Linkage"};
  for (double tau : taus) headers.push_back("tau=" + FormatDouble(tau, 1));
  TablePrinter table(std::move(headers));

  for (LinkageKind linkage : AllLinkageKinds()) {
    std::vector<std::string> cells = {LinkageKindName(linkage)};
    for (double tau : taus) {
      const SweepPoint point = RunClusteringPoint(prep, linkage, tau);
      cells.push_back(FormatDouble(metric(point.eval), 3));
    }
    table.AddRow(std::move(cells));
  }

  if (csv) {
    table.PrintCsv(std::cout);
    return 0;
  }
  std::cout << "=== " << figure_title << " (DW+SS, theta = 0.02) ===\n";
  table.Print(std::cout);
  std::cout << "\nExpected shape: " << expected_shape << "\n";
  return 0;
}

/// True when the binary was invoked with --csv.
inline bool WantsCsv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return true;
  }
  return false;
}

}  // namespace bench
}  // namespace paygo

#endif  // PAYGO_BENCH_FIG_SWEEP_H_
