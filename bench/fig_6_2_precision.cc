/// \file fig_6_2_precision.cc
/// \brief Reproduces Figure 6.2: average precision vs tau_c_sim for the
/// four cluster-similarity measures on DW+SS.

#include "fig_sweep.h"

int main(int argc, char** argv) {
  return paygo::bench::RunFigureSweep(
      "Figure 6.2: Average precision",
      [](const paygo::ClusteringEvaluation& e) { return e.avg_precision; },
      "precision rises with tau; Max. Jaccard is the weakest measure; the "
      "other three track closely (thesis: ~0.8 around tau 0.2-0.3).",
      paygo::bench::WantsCsv(argc, argv));
}
