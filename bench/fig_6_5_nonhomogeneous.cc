/// \file fig_6_5_nonhomogeneous.cc
/// \brief Reproduces Figure 6.5: fraction of schemas in non-homogeneous
/// domains vs tau_c_sim on DW+SS.

#include "fig_sweep.h"

int main(int argc, char** argv) {
  return paygo::bench::RunFigureSweep(
      "Figure 6.5: Fraction of schemas in non-homogeneous domains",
      [](const paygo::ClusteringEvaluation& e) {
        return e.frac_non_homogeneous;
      },
      "the fraction falls as tau rises (thesis: ~0.13 at tau 0.2, ~0.04 at "
      "0.3, ~0 beyond).",
      paygo::bench::WantsCsv(argc, argv));
}
