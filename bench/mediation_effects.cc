/// \file mediation_effects.cc
/// \brief Reproduces Section 6.3: the effect of schema clustering on
/// mediation and mapping.
///
/// Three observations from the thesis:
///  (1) Semantic coherence — without prior clustering, same-named
///      attributes from different domains ("family name" as a person's
///      surname vs a biological taxonomic rank) collapse into one mediated
///      attribute; with clustering they stay in separate domains.
///  (2) The attribute-frequency threshold — without clustering, a
///      threshold of 0.1 erases small domains from the mediated schema
///      (the thesis loses 2 of DDH's 5 domains), 0.01 leaves the smallest
///      domain ('people') under-represented, and 0 yields a meaningless
///      union of everything (12060 mediated attributes in the thesis).
///  (3) Running time — mediating everything as one pseudo-domain is far
///      slower than clustering first and mediating per domain.

#include <iostream>
#include <map>
#include <set>

#include "bench_util.h"
#include "mediate/mediator.h"
#include "synth/ddh_generator.h"
#include "synth/web_generator.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace paygo;

/// Members vector treating the whole corpus as one certain pseudo-domain.
std::vector<std::pair<std::uint32_t, double>> AllSchemas(
    const SchemaCorpus& corpus) {
  std::vector<std::pair<std::uint32_t, double>> members;
  for (std::uint32_t i = 0; i < corpus.size(); ++i) members.emplace_back(i, 1.0);
  return members;
}

/// Counts, per ground-truth label, how many mediated attributes contain at
/// least one attribute name used by that label's schemas.
std::map<std::string, std::size_t> RepresentationByLabel(
    const SchemaCorpus& corpus, const MediatedSchema& mediated) {
  std::map<std::string, std::set<std::string>> label_attrs;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (const std::string& label : corpus.labels(i)) {
      for (const std::string& attr : corpus.schema(i).attributes) {
        label_attrs[label].insert(CanonicalAttributeName(attr));
      }
    }
  }
  std::map<std::string, std::size_t> out;
  for (const auto& [label, attrs] : label_attrs) {
    std::size_t count = 0;
    for (const MediatedAttribute& ma : mediated.attributes) {
      for (const std::string& member : ma.members) {
        if (attrs.count(member)) {
          ++count;
          break;
        }
      }
    }
    out[label] = count;
  }
  return out;
}

void CoherenceExperiment() {
  std::cout << "--- (1) Semantic coherence: 'family name' in people vs "
               "biology (DW) ---\n";
  // The thesis's example: 'family name' is a person's surname in a people
  // source and a taxonomic rank in a biology source. Append the two
  // exemplar sources to DW so both senses are guaranteed present.
  SchemaCorpus dw = MakeDwCorpus();
  dw.Add(Schema("faculty_directory",
                {"family name", "office phone", "email", "fax"}),
         {"people"});
  dw.Add(Schema("species_catalog",
                {"family name", "genus", "species", "habitat",
                 "conservation status"}),
         {"animals"});
  Tokenizer tok;
  MediatorOptions opts;
  opts.attr_freq_threshold = 0.0;

  // Which labels use the attribute at all?
  std::set<std::string> using_labels;
  for (std::size_t i = 0; i < dw.size(); ++i) {
    for (const std::string& attr : dw.schema(i).attributes) {
      if (CanonicalAttributeName(attr) == "family name") {
        for (const std::string& l : dw.labels(i)) using_labels.insert(l);
      }
    }
  }
  std::cout << "labels whose schemas use 'family name': ";
  for (const std::string& l : using_labels) std::cout << l << " ";
  std::cout << "\n";

  // Without clustering: one pseudo-domain over all of DW.
  const auto flat = Mediator::BuildForDomain(dw, tok, AllSchemas(dw), opts);
  if (!flat.ok()) {
    std::cerr << "mediation failed: " << flat.status() << "\n";
    return;
  }
  const int idx = flat->mediated.FindByMember("family name");
  if (idx >= 0) {
    std::cout << "WITHOUT clustering: one mediated attribute '"
              << flat->mediated.attributes[idx].name << "' merges "
              << using_labels.size()
              << " semantically different uses -> incoherent answers when "
                 "queried.\n";
  }

  // With clustering: mediate each domain separately.
  const bench::PreparedCorpus prep(dw);
  const bench::SweepPoint point =
      bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);
  std::size_t domains_with_attr = 0;
  for (std::uint32_t r = 0; r < point.model.num_domains(); ++r) {
    const auto& members = point.model.SchemasOf(r);
    if (members.empty()) continue;
    const auto med = Mediator::BuildForDomain(prep.corpus, tok, members, opts);
    if (med.ok() && med->mediated.FindByMember("family name") >= 0) {
      ++domains_with_attr;
    }
  }
  std::cout << "WITH clustering: 'family name' appears in "
            << domains_with_attr
            << " separate domain-level mediated schemas (one per sense).\n\n";
}

void ThresholdExperiment() {
  std::cout << "--- (2) Attribute-frequency threshold without clustering "
               "(DDH) ---\n";
  const SchemaCorpus ddh = MakeDdhCorpus();
  Tokenizer tok;

  // Domain sizes for context.
  std::map<std::string, std::size_t> sizes;
  for (std::size_t i = 0; i < ddh.size(); ++i) ++sizes[ddh.labels(i)[0]];
  std::cout << "domain sizes: ";
  for (const auto& [label, n] : sizes) std::cout << label << "=" << n << " ";
  std::cout << "\n";

  TablePrinter table({"Threshold", "Mediated attrs", "bibliography", "cars",
                      "courses", "movies", "people", "Absent domains"});
  for (double threshold : {0.1, 0.05, 0.01, 0.0}) {
    MediatorOptions opts;
    opts.attr_freq_threshold = threshold;
    const auto med =
        Mediator::BuildForDomain(ddh, tok, AllSchemas(ddh), opts);
    if (!med.ok()) {
      std::cerr << "mediation failed: " << med.status() << "\n";
      return;
    }
    const auto rep = RepresentationByLabel(ddh, med->mediated);
    std::size_t absent = 0;
    std::vector<std::string> cells = {FormatDouble(threshold, 2),
                                      std::to_string(med->mediated.size())};
    for (const char* label :
         {"bibliography", "cars", "courses", "movies", "people"}) {
      const std::size_t c = rep.count(label) ? rep.at(label) : 0;
      cells.push_back(std::to_string(c));
      if (c == 0) ++absent;
    }
    cells.push_back(std::to_string(absent));
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);
  std::cout << "Expected shape (thesis): at 0.1 small domains vanish from "
               "the mediated schema; at 0.01\nthe smallest domain (people) "
               "is under-represented; at 0 the mediated schema is a\n"
               "meaningless union of every attribute (12060 in the "
               "thesis's corpus).\n\n";
}

void TimingExperiment() {
  std::cout << "--- (3) End-to-end mediation time: clustered vs "
               "unclustered (DDH, decorated attribute names) ---\n";
  // Attribute-name decorations ("title (required)", "make 2") inflate the
  // distinct-name count the way real web extraction does — the thesis's
  // unclustered run handled 12060 distinct names.
  DdhGeneratorOptions gen;
  gen.decoration_prob = 0.35;
  const SchemaCorpus ddh = MakeDdhCorpus(gen);
  Tokenizer tok;
  MediatorOptions opts;
  opts.attr_freq_threshold = 0.0;  // the thesis's worst case

  WallTimer flat_timer;
  const auto flat = Mediator::BuildForDomain(ddh, tok, AllSchemas(ddh), opts);
  const double flat_seconds = flat_timer.ElapsedSeconds();
  if (!flat.ok()) {
    std::cerr << "mediation failed: " << flat.status() << "\n";
    return;
  }

  WallTimer clustered_timer;
  const bench::PreparedCorpus prep(ddh);
  const bench::SweepPoint point =
      bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);
  std::size_t total_attrs = 0;
  for (std::uint32_t r = 0; r < point.model.num_domains(); ++r) {
    const auto& members = point.model.SchemasOf(r);
    if (members.empty()) continue;
    const auto med = Mediator::BuildForDomain(prep.corpus, tok, members, opts);
    if (med.ok()) total_attrs += med->mediated.size();
  }
  const double clustered_seconds = clustered_timer.ElapsedSeconds();

  std::cout << "WITHOUT clustering: " << FormatDouble(flat_seconds, 2)
            << "s, one mediated schema with " << flat->mediated.size()
            << " attributes\n";
  std::cout << "WITH clustering (incl. feature vectors + HAC + assignment): "
            << FormatDouble(clustered_seconds, 2) << "s, "
            << point.model.num_domains() << " domains, " << total_attrs
            << " mediated attributes total\n";
  std::cout << "Expected shape (thesis): 5 hours unclustered vs < 25 "
               "minutes end-to-end with clustering\n";
}

}  // namespace

int main() {
  std::cout << "=== Section 6.3: Effect of clustering on mediation and "
               "mapping ===\n\n";
  CoherenceExperiment();
  ThresholdExperiment();
  TimingExperiment();
  return 0;
}
