/// \file perf_classifier.cc
/// \brief Classifier performance: google-benchmark microbenchmarks plus a
/// gated batch-throughput harness.
///
/// Two personalities in one binary:
///
///  * **google-benchmark mode** (no harness flags, the default): the
///    Section 5.3 microbenchmarks — exhaustive vs factored setup cost and
///    single-query classification time.
///  * **harness mode** (any of --check/--smoke/--json-out/--human/
///    --domains/--dim/--bits/--queries/--seconds/--batches): measures
///    single-thread classify throughput and per-query p50/p99 latency at
///    each batch size via the zero-alloc ClassifyInto/ClassifyBatchInto
///    paths, writes BENCH_classifier.json (schema in bench/README.md),
///    and with --check exits 1 unless batch-64 throughput is >= 2x batch-1
///    AND per-query p99 stays under budget — the CI regression gate for
///    the struct-of-arrays batch sweep (tools/ci.sh).
///
/// The headline microbenchmark contrast: the thesis's exhaustive setup is
/// exponential in the number of uncertain schemas per domain (2^u
/// subsets), while the factored engine is polynomial — the exact removal
/// of the exponential factor that Chapter 7 lists as future work.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "classify/approx_classifier.h"
#include "classify/naive_bayes.h"
#include "util/bitset.h"
#include "util/random.h"

namespace paygo {
namespace {

/// One domain with `u` uncertain and `c` certain members over `dim`
/// features.
struct DomainFixture {
  std::vector<DynamicBitset> features;
  DomainModel model;
  std::size_t total;

  DomainFixture(std::size_t certain, std::size_t uncertain, std::size_t dim) {
    Rng rng(17);
    total = certain + uncertain;
    features.assign(total, DynamicBitset(dim));
    std::vector<std::vector<std::uint32_t>> clusters(1);
    std::vector<std::vector<std::pair<std::uint32_t, double>>> sd(total);
    for (std::uint32_t i = 0; i < total; ++i) {
      for (std::size_t b = 0; b < dim; ++b) {
        if (rng.NextBernoulli(0.2)) features[i].Set(b);
      }
      clusters[0].push_back(i);
      const double p =
          i < certain ? 1.0 : 0.1 + 0.8 * rng.NextDouble();
      sd[i] = {{0, p}};
    }
    model = DomainModel::Build(std::move(clusters), std::move(sd));
  }
};

void BM_SetupExhaustive(benchmark::State& state) {
  const DomainFixture fx(8, state.range(0), 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeDomainConditionals(
        fx.model, 0, fx.features, fx.total, ClassifierEngine::kExhaustive,
        64));
  }
  state.SetLabel("u=" + std::to_string(state.range(0)) + " (2^u subsets)");
}
BENCHMARK(BM_SetupExhaustive)->DenseRange(2, 20, 3);

void BM_SetupFactored(benchmark::State& state) {
  const DomainFixture fx(8, state.range(0), 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeDomainConditionals(
        fx.model, 0, fx.features, fx.total, ClassifierEngine::kFactored, 64));
  }
  state.SetLabel("u=" + std::to_string(state.range(0)) + " (poly)");
}
// The factored engine keeps going long after the exhaustive one has
// exploded.
BENCHMARK(BM_SetupFactored)->DenseRange(2, 20, 3)->Arg(50)->Arg(200);

void BM_SetupExpectedWorld(benchmark::State& state) {
  const DomainFixture fx(8, state.range(0), 500);
  ApproxClassifierOptions opts;
  opts.kind = ApproxKind::kExpectedWorld;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeApproxDomainConditionals(
        fx.model, 0, fx.features, fx.total, opts));
  }
}
BENCHMARK(BM_SetupExpectedWorld)->Arg(8)->Arg(50)->Arg(200);

void BM_SetupMonteCarlo(benchmark::State& state) {
  const DomainFixture fx(8, 50, 500);
  ApproxClassifierOptions opts;
  opts.kind = ApproxKind::kMonteCarlo;
  opts.num_samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeApproxDomainConditionals(
        fx.model, 0, fx.features, fx.total, opts));
  }
}
BENCHMARK(BM_SetupMonteCarlo)->Arg(128)->Arg(1024)->Arg(8192);

void BM_QueryClassification(benchmark::State& state) {
  // |D| domains over dim features; measure per-query ranking cost.
  const std::size_t num_domains = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 2000;
  Rng rng(23);
  std::vector<DomainConditionals> conds(num_domains);
  for (auto& c : conds) {
    c.prior = 0.01 + rng.NextDouble();
    c.q1.resize(dim);
    for (double& q : c.q1) q = 0.001 + 0.9 * rng.NextDouble();
  }
  const auto clf = NaiveBayesClassifier::FromConditionals(
      std::move(conds), std::vector<bool>(num_domains, false), {});
  DynamicBitset query(dim);
  for (int k = 0; k < 6; ++k) query.Set(rng.NextBelow(dim));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.Classify(query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryClassification)->Arg(10)->Arg(50)->Arg(200);

// ---------------------------------------------------------------------------
// Harness mode: the gated batch-throughput measurement.
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

struct HarnessOptions {
  // The default shape makes the sweep memory-bound (the regime batching is
  // for): num_domains * dim * 8 bytes of log-odds far exceeds L2, and
  // dense-ish queries make each domain row earn its cache residency.
  std::size_t num_domains = 600;
  std::size_t dim = 4000;
  std::size_t bits = 48;      ///< set features per query
  std::size_t queries = 512;  ///< pool size (multiple of every batch size)
  double seconds = 1.0;       ///< time box per batch size
  std::vector<std::size_t> batches = {1, 8, 64};
  bool check = false;
  double min_speedup = 2.0;      ///< batch-64-vs-1 throughput gate
  double p99_budget_us = 20000;  ///< per-query p99 budget, every batch size
  std::string json_out = "BENCH_classifier.json";  // "" disables the file
  bool human = false;
};

struct BatchPoint {
  std::size_t batch = 0;
  double qps = 0.0;
  double p50_us = 0.0;   // per-query
  double p99_us = 0.0;
  double mean_us = 0.0;
  std::uint64_t total_queries = 0;
};

double MicrosSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

/// Single-thread throughput at one batch size, through the zero-alloc
/// paths (batch 1 = ClassifyInto, the single-query hot path; batch B > 1 =
/// one ClassifyBatchInto sweep per chunk). Per-query latency for a sweep
/// is sweep_time / B.
BatchPoint MeasureBatchSize(const NaiveBayesClassifier& clf,
                            const std::vector<DynamicBitset>& pool,
                            std::size_t batch, double seconds) {
  ClassifyScratch scratch;
  std::vector<DomainScore> single_out;
  std::vector<std::vector<DomainScore>> batch_out;

  auto run_chunk = [&](std::size_t start) {
    if (batch == 1) {
      clf.ClassifyInto(pool[start], &scratch, &single_out);
    } else {
      clf.ClassifyBatchInto(
          std::span<const DynamicBitset>(pool.data() + start, batch),
          &scratch, &batch_out);
    }
  };
  for (std::size_t s = 0; s < pool.size(); s += batch) run_chunk(s);  // warm

  std::vector<double> per_query_us;
  std::uint64_t total = 0;
  const Clock::time_point t0 = Clock::now();
  const double budget_us = seconds * 1e6;
  while (MicrosSince(t0) < budget_us) {
    for (std::size_t s = 0; s < pool.size(); s += batch) {
      const Clock::time_point c0 = Clock::now();
      run_chunk(s);
      per_query_us.push_back(MicrosSince(c0) / static_cast<double>(batch));
      total += batch;
    }
  }
  const double elapsed_us = MicrosSince(t0);

  BatchPoint point;
  point.batch = batch;
  point.total_queries = total;
  point.qps = total / (elapsed_us / 1e6);
  std::sort(per_query_us.begin(), per_query_us.end());
  if (!per_query_us.empty()) {
    point.p50_us = per_query_us[per_query_us.size() / 2];
    point.p99_us = per_query_us[std::min(
        per_query_us.size() - 1,
        static_cast<std::size_t>(per_query_us.size() * 0.99))];
    for (double v : per_query_us) point.mean_us += v;
    point.mean_us /= static_cast<double>(per_query_us.size());
  }
  return point;
}

int RunHarness(const HarnessOptions& opts) {
  Rng rng(41);
  std::vector<DomainConditionals> conds(opts.num_domains);
  for (auto& c : conds) {
    c.prior = 0.01 + rng.NextDouble();
    c.q1.resize(opts.dim);
    for (double& q : c.q1) q = 0.001 + 0.9 * rng.NextDouble();
  }
  const auto clf = NaiveBayesClassifier::FromConditionals(
      std::move(conds), std::vector<bool>(opts.num_domains, false), {});

  std::vector<DynamicBitset> pool;
  pool.reserve(opts.queries);
  for (std::size_t i = 0; i < opts.queries; ++i) {
    DynamicBitset q(opts.dim);
    for (std::size_t k = 0; k < opts.bits; ++k) q.Set(rng.NextBelow(opts.dim));
    pool.push_back(std::move(q));
  }

  std::vector<BatchPoint> points;
  for (std::size_t batch : opts.batches) {
    if (batch == 0 || opts.queries % batch != 0) {
      std::cerr << "batch size " << batch << " must divide --queries "
                << opts.queries << "\n";
      return 2;
    }
    points.push_back(MeasureBatchSize(clf, pool, batch, opts.seconds));
  }

  double qps_b1 = 0.0, qps_bmax = 0.0;
  std::size_t bmax = 0;
  for (const BatchPoint& p : points) {
    if (p.batch == 1) qps_b1 = p.qps;
    if (p.batch > bmax) {
      bmax = p.batch;
      qps_bmax = p.qps;
    }
  }
  const double speedup = qps_b1 > 0.0 ? qps_bmax / qps_b1 : 0.0;

  bool check_failed = false;
  std::string check_detail;
  if (bmax > 1 && speedup < opts.min_speedup) {
    check_failed = true;
    check_detail += "batch-" + std::to_string(bmax) + " speedup " +
                    std::to_string(speedup) + "x < required " +
                    std::to_string(opts.min_speedup) + "x; ";
  }
  for (const BatchPoint& p : points) {
    if (p.p99_us > opts.p99_budget_us) {
      check_failed = true;
      check_detail += "batch-" + std::to_string(p.batch) + " p99 " +
                      std::to_string(p.p99_us) + "us over budget " +
                      std::to_string(opts.p99_budget_us) + "us; ";
    }
  }

  std::ostringstream results;
  results << "{\"kernel\": \"" << DynamicBitset::KernelName()
          << "\", \"batches\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const BatchPoint& p = points[i];
    if (i > 0) results << ", ";
    results << "{\"batch\": " << p.batch << ", \"qps\": " << p.qps
            << ", \"p50_us\": " << p.p50_us << ", \"p99_us\": " << p.p99_us
            << ", \"mean_us\": " << p.mean_us
            << ", \"total_queries\": " << p.total_queries << "}";
  }
  results << "], \"speedup_batch" << bmax << "_vs_1\": " << speedup
          << ", \"min_speedup\": " << opts.min_speedup
          << ", \"p99_budget_us\": " << opts.p99_budget_us
          << ", \"check\": \"" << (check_failed ? "FAIL" : "PASS") << "\"}";

  if (!opts.json_out.empty()) {
    const auto ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
    std::ofstream out(opts.json_out, std::ios::trunc);
    out << "{\"bench\": \"classifier_batch\", \"ts_ms\": " << ts_ms
        << ", \"config\": {\"domains\": " << opts.num_domains
        << ", \"dim\": " << opts.dim << ", \"bits\": " << opts.bits
        << ", \"queries\": " << opts.queries
        << ", \"seconds\": " << opts.seconds << "}, \"results\": "
        << results.str() << "}\n";
    if (!out) {
      std::cerr << "failed writing " << opts.json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << opts.json_out << "\n";
  }

  if (opts.human) {
    std::cout << "kernel " << DynamicBitset::KernelName() << ", "
              << opts.num_domains << " domains x " << opts.dim
              << " features, " << opts.bits << " set bits/query\n";
    for (const BatchPoint& p : points) {
      std::cout << "  batch " << p.batch << ": " << p.qps << " qps, p50 "
                << p.p50_us << "us, p99 " << p.p99_us << "us\n";
    }
    std::cout << "  batch-" << bmax << " vs batch-1 speedup: " << speedup
              << "x\n";
  } else {
    std::cout << results.str() << "\n";
  }

  if (opts.check && check_failed) {
    std::cerr << "FAIL: " << check_detail << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace paygo

int main(int argc, char** argv) {
  paygo::HarnessOptions opts;
  bool harness = false;
  std::vector<char*> bench_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--check") {
      opts.check = true;
      harness = true;
    } else if (arg == "--smoke") {
      // Shorter time box, same memory-bound shape (the speedup gate needs
      // the working set to stay bigger than cache).
      opts.seconds = 0.25;
      opts.queries = 256;
      harness = true;
    } else if (arg == "--domains" && next()) {
      opts.num_domains = static_cast<std::size_t>(std::atoll(argv[i]));
      harness = true;
    } else if (arg == "--dim" && next()) {
      opts.dim = static_cast<std::size_t>(std::atoll(argv[i]));
      harness = true;
    } else if (arg == "--bits" && next()) {
      opts.bits = static_cast<std::size_t>(std::atoll(argv[i]));
      harness = true;
    } else if (arg == "--queries" && next()) {
      opts.queries = static_cast<std::size_t>(std::atoll(argv[i]));
      harness = true;
    } else if (arg == "--seconds" && next()) {
      opts.seconds = std::atof(argv[i]);
      harness = true;
    } else if (arg == "--batches" && next()) {
      opts.batches.clear();
      std::stringstream ss(argv[i]);
      std::string piece;
      while (std::getline(ss, piece, ',')) {
        opts.batches.push_back(
            static_cast<std::size_t>(std::atoll(piece.c_str())));
      }
      harness = true;
    } else if (arg == "--min-speedup" && next()) {
      opts.min_speedup = std::atof(argv[i]);
      harness = true;
    } else if (arg == "--p99-budget-us" && next()) {
      opts.p99_budget_us = std::atof(argv[i]);
      harness = true;
    } else if (arg == "--json-out" && next()) {
      opts.json_out = argv[i];
      harness = true;
    } else if (arg == "--human") {
      opts.human = true;
      harness = true;
    } else {
      bench_args.push_back(argv[i]);  // google-benchmark flag
    }
  }
  if (harness) return paygo::RunHarness(opts);

  int bench_argc = static_cast<int>(bench_args.size());
  ::benchmark::Initialize(&bench_argc, bench_args.data());
  if (::benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
