/// \file perf_classifier.cc
/// \brief google-benchmark microbenchmarks for classifier construction and
/// query time (Section 5.3).
///
/// The headline contrast: the thesis's exhaustive setup is exponential in
/// the number of uncertain schemas per domain (2^u subsets), while the
/// factored engine is polynomial — the exact removal of the exponential
/// factor that Chapter 7 lists as future work.

#include <benchmark/benchmark.h>

#include "classify/approx_classifier.h"
#include "classify/naive_bayes.h"
#include "util/bitset.h"
#include "util/random.h"

namespace paygo {
namespace {

/// One domain with `u` uncertain and `c` certain members over `dim`
/// features.
struct DomainFixture {
  std::vector<DynamicBitset> features;
  DomainModel model;
  std::size_t total;

  DomainFixture(std::size_t certain, std::size_t uncertain, std::size_t dim) {
    Rng rng(17);
    total = certain + uncertain;
    features.assign(total, DynamicBitset(dim));
    std::vector<std::vector<std::uint32_t>> clusters(1);
    std::vector<std::vector<std::pair<std::uint32_t, double>>> sd(total);
    for (std::uint32_t i = 0; i < total; ++i) {
      for (std::size_t b = 0; b < dim; ++b) {
        if (rng.NextBernoulli(0.2)) features[i].Set(b);
      }
      clusters[0].push_back(i);
      const double p =
          i < certain ? 1.0 : 0.1 + 0.8 * rng.NextDouble();
      sd[i] = {{0, p}};
    }
    model = DomainModel::Build(std::move(clusters), std::move(sd));
  }
};

void BM_SetupExhaustive(benchmark::State& state) {
  const DomainFixture fx(8, state.range(0), 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeDomainConditionals(
        fx.model, 0, fx.features, fx.total, ClassifierEngine::kExhaustive,
        64));
  }
  state.SetLabel("u=" + std::to_string(state.range(0)) + " (2^u subsets)");
}
BENCHMARK(BM_SetupExhaustive)->DenseRange(2, 20, 3);

void BM_SetupFactored(benchmark::State& state) {
  const DomainFixture fx(8, state.range(0), 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeDomainConditionals(
        fx.model, 0, fx.features, fx.total, ClassifierEngine::kFactored, 64));
  }
  state.SetLabel("u=" + std::to_string(state.range(0)) + " (poly)");
}
// The factored engine keeps going long after the exhaustive one has
// exploded.
BENCHMARK(BM_SetupFactored)->DenseRange(2, 20, 3)->Arg(50)->Arg(200);

void BM_SetupExpectedWorld(benchmark::State& state) {
  const DomainFixture fx(8, state.range(0), 500);
  ApproxClassifierOptions opts;
  opts.kind = ApproxKind::kExpectedWorld;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeApproxDomainConditionals(
        fx.model, 0, fx.features, fx.total, opts));
  }
}
BENCHMARK(BM_SetupExpectedWorld)->Arg(8)->Arg(50)->Arg(200);

void BM_SetupMonteCarlo(benchmark::State& state) {
  const DomainFixture fx(8, 50, 500);
  ApproxClassifierOptions opts;
  opts.kind = ApproxKind::kMonteCarlo;
  opts.num_samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeApproxDomainConditionals(
        fx.model, 0, fx.features, fx.total, opts));
  }
}
BENCHMARK(BM_SetupMonteCarlo)->Arg(128)->Arg(1024)->Arg(8192);

void BM_QueryClassification(benchmark::State& state) {
  // |D| domains over dim features; measure per-query ranking cost.
  const std::size_t num_domains = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 2000;
  Rng rng(23);
  std::vector<DomainConditionals> conds(num_domains);
  for (auto& c : conds) {
    c.prior = 0.01 + rng.NextDouble();
    c.q1.resize(dim);
    for (double& q : c.q1) q = 0.001 + 0.9 * rng.NextDouble();
  }
  const auto clf = NaiveBayesClassifier::FromConditionals(
      std::move(conds), std::vector<bool>(num_domains, false), {});
  DynamicBitset query(dim);
  for (int k = 0; k < 6; ++k) query.Set(rng.NextBelow(dim));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.Classify(query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryClassification)->Arg(10)->Arg(50)->Arg(200);

}  // namespace
}  // namespace paygo

BENCHMARK_MAIN();
