/// \file perf_write_path.cc
/// \brief AddSchema churn benchmark of the delta write path.
///
/// Builds a DDH-like integration system once per corpus size, then streams
/// extra schemas into it the way the serving writer does — clone, mutate,
/// adopt — under both write paths:
///   * delta  — SystemOptions::delta_mutations = true (the default):
///     one-row similarity extension, touched-domain mediation, incremental
///     classifier refresh;
///   * full   — delta_mutations = false: the legacy rebuild-everything
///     path, kept as the baseline.
/// Reports p50/p99/mean mutation latency per path and the speedup. A third
/// phase streams the same adds through a live PaygoServer and measures
/// snapshot staleness: the time from submitting AddSchemaAsync until a
/// reader polling server.generation() can observe the new snapshot.
///
/// The delta run also exports the paygo.classifier.domains_refreshed /
/// domains_reused counters, the direct evidence that classifier work is
/// O(affected domains); `--check` turns that into a PASS/FAIL gate for CI
/// (refreshed domains must stay within a small per-add budget).
///
/// Output: JSON on stdout (and, unless --json-out is empty, the same
/// object wrapped with provenance into BENCH_write.json — schema in
/// bench/README.md). Flags:
///   --corpora 500,2000   comma-separated corpus sizes
///   --adds N             schemas streamed per corpus (default 40)
///   --smoke              tiny preset (one 120-schema corpus, 8 adds)
///   --check              exit 1 if classifier refresh work is not O(delta)
///   --json-out FILE      machine-readable output ("" disables)
///   --human              readable summary instead of JSON

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/integration_system.h"
#include "obs/stats.h"
#include "serve/paygo_server.h"
#include "synth/ddh_generator.h"

namespace {

using namespace paygo;
using Clock = std::chrono::steady_clock;

struct BenchOptions {
  std::vector<std::size_t> corpora = {500, 2000};
  std::size_t adds = 40;
  bool check = false;
  std::string json_out = "BENCH_write.json";  // "" disables the file
  bool human = false;
};

double MicrosSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

struct LatencySummary {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;

  static LatencySummary Of(std::vector<double> us) {
    LatencySummary s;
    if (us.empty()) return s;
    std::sort(us.begin(), us.end());
    s.p50_us = us[us.size() / 2];
    s.p99_us = us[std::min(us.size() - 1,
                           static_cast<std::size_t>(us.size() * 0.99))];
    for (double v : us) s.mean_us += v;
    s.mean_us /= static_cast<double>(us.size());
    return s;
  }

  std::string ToJson() const {
    std::ostringstream os;
    os << "{\"p50_us\": " << p50_us << ", \"p99_us\": " << p99_us
       << ", \"mean_us\": " << mean_us << "}";
    return os.str();
  }
};

/// The writer's per-update work, measured end to end: clone the served
/// system, fold one schema in, adopt the draft.
std::vector<double> RunChurn(const IntegrationSystem& base, bool delta_mode,
                             const SchemaCorpus& pool, std::size_t first,
                             std::size_t adds) {
  auto sys = base.Clone();
  sys->set_delta_mutations(delta_mode);
  std::vector<double> us;
  us.reserve(adds);
  for (std::size_t i = 0; i < adds; ++i) {
    const Clock::time_point t0 = Clock::now();
    auto draft = sys->Clone();
    auto added = draft->AddSchema(pool.schema(first + i),
                                 pool.labels(first + i));
    us.push_back(MicrosSince(t0));
    if (!added.ok()) {
      std::cerr << "AddSchema failed: " << added.status() << "\n";
      std::exit(1);
    }
    sys = std::move(draft);
  }
  return us;
}

/// Streams the same adds through a live server; staleness is how long a
/// generation-polling reader waits for each add to become visible.
std::vector<double> RunServedStaleness(const IntegrationSystem& base,
                                       const SchemaCorpus& pool,
                                       std::size_t first, std::size_t adds) {
  auto sys = base.Clone();
  ServeOptions serve;
  serve.num_workers = 1;
  PaygoServer server(std::move(sys), serve);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << s << "\n";
    std::exit(1);
  }
  std::vector<double> us;
  us.reserve(adds);
  for (std::size_t i = 0; i < adds; ++i) {
    const std::uint64_t gen_before = server.generation();
    const Clock::time_point t0 = Clock::now();
    auto fut = server.AddSchemaAsync(pool.schema(first + i),
                                     pool.labels(first + i));
    while (server.generation() == gen_before) {
      std::this_thread::yield();
    }
    us.push_back(MicrosSince(t0));
    if (Status s = fut.get(); !s.ok()) {
      std::cerr << "AddSchemaAsync failed: " << s << "\n";
      std::exit(1);
    }
  }
  server.Stop();
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--corpora" && next()) {
      opts.corpora.clear();
      std::stringstream ss(argv[i]);
      std::string piece;
      while (std::getline(ss, piece, ',')) {
        opts.corpora.push_back(
            static_cast<std::size_t>(std::atoll(piece.c_str())));
      }
    } else if (arg == "--adds" && next()) {
      opts.adds = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (arg == "--smoke") {
      opts.corpora = {120};
      opts.adds = 8;
    } else if (arg == "--check") {
      opts.check = true;
    } else if (arg == "--json-out" && next()) {
      opts.json_out = argv[i];
    } else if (arg == "--human") {
      opts.human = true;
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 2;
    }
  }

  Counter* refreshed =
      StatsRegistry::Global().GetCounter("paygo.classifier.domains_refreshed");
  Counter* reused =
      StatsRegistry::Global().GetCounter("paygo.classifier.domains_reused");

  bool check_failed = false;
  std::ostringstream results;
  std::ostringstream human;
  results << "{";
  bool first_corpus = true;
  for (std::size_t corpus_size : opts.corpora) {
    // One pool holds base + extras so both paths fold identical schemas.
    const SchemaCorpus pool = MakeDdhCorpus(
        {.num_schemas = corpus_size + opts.adds, .seed = 17});
    SchemaCorpus base_corpus("ddh-base");
    for (std::size_t i = 0; i < corpus_size; ++i) {
      base_corpus.Add(pool.schema(i), pool.labels(i));
    }
    auto built = IntegrationSystem::Build(std::move(base_corpus));
    if (!built.ok()) {
      std::cerr << built.status() << "\n";
      return 1;
    }

    const std::vector<double> full_us =
        RunChurn(**built, /*delta_mode=*/false, pool, corpus_size, opts.adds);
    refreshed->Reset();
    reused->Reset();
    const std::vector<double> delta_us =
        RunChurn(**built, /*delta_mode=*/true, pool, corpus_size, opts.adds);
    const std::uint64_t delta_refreshed = refreshed->value();
    const std::uint64_t delta_reused = reused->value();
    const std::vector<double> staleness_us =
        RunServedStaleness(**built, pool, corpus_size, opts.adds);

    const LatencySummary full = LatencySummary::Of(full_us);
    const LatencySummary delta = LatencySummary::Of(delta_us);
    const LatencySummary staleness = LatencySummary::Of(staleness_us);
    const double speedup_p50 =
        delta.p50_us > 0.0 ? full.p50_us / delta.p50_us : 0.0;
    const double speedup_mean =
        delta.mean_us > 0.0 ? full.mean_us / delta.mean_us : 0.0;
    const std::size_t num_domains = (*built)->domains().num_domains();

    // The O(delta) gate: across all adds, the classifier must have fully
    // recomputed only a small per-add number of domains — not the whole
    // model. The budget is loose (a schema can legitimately join several
    // qualifying domains) but catastrophically smaller than D * adds.
    const std::uint64_t budget =
        opts.adds * std::max<std::uint64_t>(4, num_domains / 10);
    const bool ok = delta_refreshed <= budget;
    if (!ok) check_failed = true;

    if (!first_corpus) results << ", ";
    first_corpus = false;
    results << "\"corpus_" << corpus_size << "\": {\"adds\": " << opts.adds
            << ", \"full\": " << full.ToJson()
            << ", \"delta\": " << delta.ToJson()
            << ", \"speedup_p50\": " << speedup_p50
            << ", \"speedup_mean\": " << speedup_mean
            << ", \"staleness\": " << staleness.ToJson()
            << ", \"classifier\": {\"num_domains\": " << num_domains
            << ", \"domains_refreshed\": " << delta_refreshed
            << ", \"domains_reused\": " << delta_reused
            << ", \"refresh_budget\": " << budget
            << ", \"o_delta\": " << (ok ? "true" : "false") << "}}";

    human << "corpus " << corpus_size << " (" << num_domains
          << " domains), " << opts.adds << " adds:\n"
          << "  full   p50 " << full.p50_us << "us  p99 " << full.p99_us
          << "us  mean " << full.mean_us << "us\n"
          << "  delta  p50 " << delta.p50_us << "us  p99 " << delta.p99_us
          << "us  mean " << delta.mean_us << "us  ("
          << speedup_p50 << "x p50, " << speedup_mean << "x mean)\n"
          << "  staleness p50 " << staleness.p50_us << "us  p99 "
          << staleness.p99_us << "us\n"
          << "  classifier refreshed " << delta_refreshed << " / reused "
          << delta_reused << " domain rebuilds (budget " << budget << ", "
          << (ok ? "O(delta) OK" : "O(delta) VIOLATED") << ")\n";
  }
  results << "}";

  if (!opts.json_out.empty()) {
    const auto ts_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::ofstream out(opts.json_out, std::ios::trunc);
    out << "{\"bench\": \"write_path\", \"ts_ms\": " << ts_ms
        << ", \"config\": {\"corpora\": [";
    for (std::size_t i = 0; i < opts.corpora.size(); ++i) {
      out << (i ? ", " : "") << opts.corpora[i];
    }
    out << "], \"adds\": " << opts.adds << "}, \"results\": "
        << results.str() << "}\n";
    if (!out) {
      std::cerr << "failed writing " << opts.json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << opts.json_out << "\n";
  }

  if (opts.human) {
    std::cout << human.str();
  } else {
    std::cout << results.str() << "\n";
  }
  if (opts.check && check_failed) {
    std::cerr << "FAIL: classifier refresh work exceeded the O(delta) "
                 "budget\n";
    return 1;
  }
  return 0;
}
