/// \file baseline_comparison.cc
/// \brief Quantifies the Section 2.2 comparison against the related-work
/// baseline [17] (He, Tao & Chang, CIKM 2004): pre-specified-k clustering
/// with chi-square (multinomial homogeneity) similarity.
///
/// The thesis argues, without measuring, that (1) requiring the number of
/// clusters in advance is untenable at web scale, and (2) anchor
/// attributes cannot be assumed. This bench measures both claims on the
/// synthetic corpora:
///   * on DDH with the oracle k = 5, the baseline matches the thesis's
///     algorithm — when you know k, knowing k helps;
///   * on DW+SS, where the true number of domains is unknowable, the
///     baseline's quality depends sharply on the guessed k, while the
///     threshold-based algorithm needs no k at all.

#include <iostream>

#include "baseline/mdc_clustering.h"
#include "bench_util.h"
#include "eval/partition_metrics.h"
#include "synth/ddh_generator.h"
#include "synth/web_generator.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace paygo;

void DdhOracleK() {
  std::cout << "--- DDH (5 true domains), baseline given the oracle k ---\n";
  DdhGeneratorOptions gen;
  gen.num_schemas = 800;  // keep the O(n^2 dim) baseline affordable
  const bench::PreparedCorpus prep(MakeDdhCorpus(gen));

  TablePrinter table({"Method", "Clusters", "Precision", "Recall",
                      "Time(s)"});
  {
    WallTimer t;
    const bench::SweepPoint point =
        bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);
    table.AddRow({"paygo HAC (tau=0.25, no k)",
                  std::to_string(point.eval.num_domains),
                  FormatDouble(point.eval.avg_precision, 3),
                  FormatDouble(point.eval.avg_recall, 3),
                  FormatDouble(t.ElapsedSeconds(), 2)});
  }
  for (bool anchors : {false, true}) {
    WallTimer t;
    MdcOptions opts;
    opts.num_clusters = 5;
    opts.use_anchor_seeding = anchors;
    const auto result = MdcBaseline::Run(prep.lexicon, opts);
    if (!result.ok()) {
      std::cerr << "baseline failed: " << result.status() << "\n";
      return;
    }
    const DomainModel model = HardAssignment(*result, prep.corpus.size());
    const ClusteringEvaluation eval = EvaluateClustering(model, prep.corpus);
    table.AddRow({std::string("MDC baseline k=5") +
                      (anchors ? " + anchors" : ""),
                  std::to_string(eval.num_domains),
                  FormatDouble(eval.avg_precision, 3),
                  FormatDouble(eval.avg_recall, 3),
                  FormatDouble(t.ElapsedSeconds(), 2)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void DwSsUnknownK() {
  std::cout << "--- DW+SS (true number of domains unknowable), baseline "
               "k sweep ---\n";
  const bench::PreparedCorpus prep(MakeDwSsCorpus());

  // Alongside the thesis's metrics, report the standard external indices
  // (pairwise F1 against the label relation, ARI against the primary-label
  // partition) so the comparison stands on textbook ground too.
  const std::vector<int> truth = PartitionFromPrimaryLabels(prep.corpus);
  TablePrinter table({"Method", "Clusters", "Precision", "Recall",
                      "Non-homog.", "Pairwise F1", "ARI"});
  {
    const bench::SweepPoint point =
        bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);
    const PairwiseScores pw = PairwiseLabelScores(point.model, prep.corpus);
    table.AddRow({"paygo HAC (tau=0.25, no k)",
                  std::to_string(point.eval.num_domains),
                  FormatDouble(point.eval.avg_precision, 3),
                  FormatDouble(point.eval.avg_recall, 3),
                  FormatDouble(point.eval.frac_non_homogeneous, 3),
                  FormatDouble(pw.f1, 3),
                  FormatDouble(AdjustedRandIndex(
                                   PartitionFromModel(point.model), truth),
                               3)});
  }
  for (std::size_t k : {10u, 25u, 50u, 97u, 150u, 200u}) {
    MdcOptions opts;
    opts.num_clusters = k;
    const auto result = MdcBaseline::Run(prep.lexicon, opts);
    if (!result.ok()) {
      std::cerr << "baseline failed: " << result.status() << "\n";
      return;
    }
    const DomainModel model = HardAssignment(*result, prep.corpus.size());
    const ClusteringEvaluation eval = EvaluateClustering(model, prep.corpus);
    const PairwiseScores pw = PairwiseLabelScores(model, prep.corpus);
    table.AddRow({"MDC baseline k=" + std::to_string(k),
                  std::to_string(eval.num_domains),
                  FormatDouble(eval.avg_precision, 3),
                  FormatDouble(eval.avg_recall, 3),
                  FormatDouble(eval.frac_non_homogeneous, 3),
                  FormatDouble(pw.f1, 3),
                  FormatDouble(
                      AdjustedRandIndex(PartitionFromModel(model), truth),
                      3)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: with the oracle k the baseline is "
               "competitive; guessing k too small\nmixes domains "
               "(non-homogeneous mass, precision loss), guessing too large "
               "fragments them\n(recall loss). The thesis's algorithm "
               "reaches its quality without knowing k.\n\nNote the metric "
               "disagreement: the thesis's label-dominance metrics tolerate "
               "the\nfragmentation its thresholded clustering produces "
               "(fragments stay pure), while the\nstandard indices (ARI, "
               "pairwise F1) penalize it — under ARI the baseline with a\n"
               "well-guessed k looks better. Both views are reported; pick "
               "the one matching your\ndownstream use (per-domain mediation "
               "tolerates fragments; global dedup does not).\n";
}

}  // namespace

int main() {
  std::cout << "=== Related-work baseline [17]: pre-specified-k chi-square "
               "clustering ===\n\n";
  DdhOracleK();
  DwSsUnknownK();
  return 0;
}
