/// \file table_6_1_corpus_stats.cc
/// \brief Reproduces Table 6.1: statistics about the DW, SS and combined
/// schema sets.
///
/// Thesis values for reference:
///                           DW     SS     Both
///   Number of Schemas       63     252    315
///   Max. terms per schema   72     119    119
///   Avg. terms per schema   14     12.4   12.8
///   Number of labels used   24     85     97
///   Max. labels per schema  2      4      4
///   Avg. labels per schema  1      1.5    1.4
///   Max. schemas per label  13     67     67
///   Avg. schemas per label  2.8    4.4    4.5

#include <iostream>

#include "schema/corpus.h"
#include "synth/web_generator.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace paygo;
  const SchemaCorpus dw = MakeDwCorpus();
  const SchemaCorpus ss = MakeSsCorpus();
  const SchemaCorpus both = SchemaCorpus::Union(dw, ss, "Both");
  Tokenizer tok;

  TablePrinter table({"Statistic", "DW", "SS", "Both"});
  std::vector<CorpusStats> stats = {dw.ComputeStats(tok), ss.ComputeStats(tok),
                                    both.ComputeStats(tok)};
  auto row = [&](const std::string& name, auto getter, int precision) {
    std::vector<std::string> cells = {name};
    for (const CorpusStats& s : stats) {
      cells.push_back(FormatDouble(static_cast<double>(getter(s)), precision));
    }
    table.AddRow(cells);
  };
  row("Number of Schemas", [](const CorpusStats& s) { return s.num_schemas; },
      0);
  row("Max. terms per schema",
      [](const CorpusStats& s) { return s.max_terms_per_schema; }, 0);
  row("Avg. terms per schema",
      [](const CorpusStats& s) { return s.avg_terms_per_schema; }, 1);
  row("Number of labels used",
      [](const CorpusStats& s) { return s.num_labels; }, 0);
  row("Max. labels per schema",
      [](const CorpusStats& s) { return s.max_labels_per_schema; }, 0);
  row("Avg. labels per schema",
      [](const CorpusStats& s) { return s.avg_labels_per_schema; }, 1);
  row("Max. schemas per label",
      [](const CorpusStats& s) { return s.max_schemas_per_label; }, 0);
  row("Avg. schemas per label",
      [](const CorpusStats& s) { return s.avg_schemas_per_label; }, 1);

  std::cout << "=== Table 6.1: Statistics about schema sets (synthetic "
               "DW/SS stand-ins) ===\n";
  table.Print(std::cout);
  std::cout << "\nThesis reference: schemas 63/252/315; labels 24/85/97; "
               "avg terms 14/12.4/12.8;\nmax labels 2/4/4; avg labels "
               "1/1.5/1.4; max schemas-per-label 13/67/67; avg 2.8/4.4/4.5\n";
  return 0;
}
