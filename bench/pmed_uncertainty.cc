/// \file pmed_uncertainty.cc
/// \brief Quantifies mediated-schema uncertainty — the full probabilistic
/// mediated schemas of Das Sarma et al. [8] on top of the thesis's
/// clustering.
///
/// The thesis uses a single mediated schema per domain with probabilistic
/// mappings; [8]'s general model also makes the mediated schema itself
/// probabilistic when attribute-name evidence is borderline. This bench
/// reports, for every multi-schema domain of DW+SS: how many borderline
/// attribute pairs exist, how many alternative mediated schemas they
/// induce, the modal alternative's probability mass, and example
/// co-mediation probabilities — the uncertainty the deterministic mediator
/// silently resolves.

#include <iostream>

#include "bench_util.h"
#include "mediate/probabilistic_mediated_schema.h"
#include "synth/web_generator.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace paygo;
  std::cout << "=== Probabilistic mediated schemas ([8]'s full model) on "
               "DW+SS domains ===\n\n";
  const bench::PreparedCorpus prep(MakeDwSsCorpus());
  const bench::SweepPoint point =
      bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);
  Tokenizer tok;

  TablePrinter table({"Domain", "Schemas", "Borderline pairs",
                      "Alternatives", "Modal prob"});
  std::size_t domains_with_uncertainty = 0;
  std::size_t assessed = 0;
  std::vector<std::pair<std::string, std::string>> example_pairs;
  for (std::uint32_t r = 0; r < point.model.num_domains(); ++r) {
    const auto& members = point.model.SchemasOf(r);
    if (members.size() < 3) continue;
    PMedSchemaOptions opts;
    opts.uncertainty_band = 0.08;
    const auto pmed =
        BuildProbabilisticMediatedSchema(prep.corpus, tok, members, opts);
    if (!pmed.ok()) continue;
    ++assessed;
    if (pmed->alternatives.size() > 1) {
      ++domains_with_uncertainty;
      table.AddRow({std::to_string(r), std::to_string(members.size()),
                    std::to_string(pmed->borderline_pairs.size()),
                    std::to_string(pmed->alternatives.size()),
                    FormatDouble(pmed->alternatives[0].probability, 3)});
      if (example_pairs.size() < 5 && !pmed->borderline_pairs.empty()) {
        example_pairs.push_back(pmed->borderline_pairs[0]);
      }
    }
  }
  table.Print(std::cout);
  std::cout << "\n" << domains_with_uncertainty << " of " << assessed
            << " domains (3+ schemas) carry mediated-schema uncertainty.\n";
  if (!example_pairs.empty()) {
    std::cout << "Example borderline attribute pairs (merge-or-not is "
                 "genuinely ambiguous):\n";
    for (const auto& [a, b] : example_pairs) {
      std::cout << "  '" << a << "'  ~  '" << b << "'\n";
    }
  }
  std::cout << "\nExpected shape: a minority of domains are affected; the "
               "modal alternative (which\nequals the thesis's deterministic "
               "mediated schema) carries most of the mass, so the\nsingle-"
               "schema simplification the thesis makes is usually safe — "
               "but not free.\n";
  return 0;
}
