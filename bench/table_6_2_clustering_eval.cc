/// \file table_6_2_clustering_eval.cc
/// \brief Reproduces Table 6.2: clustering evaluation at tau_c_sim = 0.2
/// and 0.3 on DW, SS, and their union (Avg. Jaccard linkage, theta = 0.02).
///
/// Thesis values for reference:
///                   tau = 0.2            tau = 0.3
///                 DW    SS    Both     DW    SS    Both
///   Precision     0.75  0.84  0.81     0.85  0.87  0.82
///   Recall        0.93  0.77  0.78     0.98  0.86  0.86
///   Unclustered   0.25  0.37  0.29     0.48  0.56  0.50
///   Non-homog.    0     0.11  0.13     0     0.03  0.04
///   Fragmentation 1     1.77  1.29     1.38  1.67  1.58

#include <iostream>

#include "bench_util.h"
#include "synth/web_generator.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace paygo;
  using bench::PreparedCorpus;
  using bench::RunClusteringPoint;

  std::vector<PreparedCorpus> corpora;
  corpora.emplace_back(MakeDwCorpus());
  corpora.emplace_back(MakeSsCorpus());
  corpora.emplace_back(MakeDwSsCorpus());

  TablePrinter table({"Metric", "DW@0.2", "SS@0.2", "Both@0.2", "DW@0.3",
                      "SS@0.3", "Both@0.3"});
  std::vector<ClusteringEvaluation> evals;
  for (double tau : {0.2, 0.3}) {
    for (const PreparedCorpus& prep : corpora) {
      evals.push_back(
          RunClusteringPoint(prep, LinkageKind::kAverage, tau).eval);
    }
  }
  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells = {name};
    for (const ClusteringEvaluation& e : evals) {
      cells.push_back(FormatDouble(getter(e), 2));
    }
    table.AddRow(cells);
  };
  row("Precision",
      [](const ClusteringEvaluation& e) { return e.avg_precision; });
  row("Recall", [](const ClusteringEvaluation& e) { return e.avg_recall; });
  row("Unclustered",
      [](const ClusteringEvaluation& e) { return e.frac_unclustered; });
  row("Non-homog.",
      [](const ClusteringEvaluation& e) { return e.frac_non_homogeneous; });
  row("Fragmentation",
      [](const ClusteringEvaluation& e) { return e.fragmentation; });

  std::cout << "=== Table 6.2: Evaluation of schema clustering "
               "(Avg. Jaccard, theta = 0.02) ===\n";
  table.Print(std::cout);
  std::cout << "\nThesis reference @0.2: P 0.75/0.84/0.81, R 0.93/0.77/0.78, "
               "Uncl 0.25/0.37/0.29,\nNonH 0/0.11/0.13, Frag 1/1.77/1.29; "
               "@0.3: P 0.85/0.87/0.82, R 0.98/0.86/0.86,\nUncl "
               "0.48/0.56/0.50, NonH 0/0.03/0.04, Frag 1.38/1.67/1.58\n";
  std::cout << "\nExpected shape: precision & recall rise from tau 0.2 to "
               "0.3; unclustered rises;\nnon-homogeneous falls; DW "
               "outperforms the noisier SS.\n";
  return 0;
}
