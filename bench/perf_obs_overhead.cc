/// \file perf_obs_overhead.cc
/// \brief Measures the cost of the tracing instrumentation on the
/// clustering hot path and enforces the "<2% overhead when idle" budget.
///
/// Three states matter (see src/obs/trace.h's cost model):
///   off       compiled out via -DPAYGO_TRACING=OFF — not measurable from
///             this binary (it would need a second build tree); the idle
///             bound below is the compiled-in-vs-off comparison by proxy,
///             since an idle span site costs exactly one relaxed load +
///             branch more than no span site.
///   idle      compiled in, Tracer disabled (the default production state)
///   recording Tracer enabled, spans landing in the per-thread rings
///
/// Methodology: idle and recording runs of the same HAC workload are
/// interleaved batch-wise (so frequency scaling / cache warmth bias both
/// equally) and summarized by median. The idle *budget check* is
/// analytical rather than differential: median workload times at this
/// scale are noisy at the ~1% level, so instead we measure the per-site
/// cost of an idle span in a tight loop (typically ~1 ns), multiply by
/// the number of span sites the workload actually crosses (counted by a
/// recording run), and compare against the workload's runtime. That
/// product over-estimates the true idle overhead (the tight loop is the
/// worst case for branch-prediction amortization), making the 2% gate
/// conservative.
///
/// Exit status: 0 when the idle overhead estimate is within budget,
/// 1 otherwise. Flags: --n <schemas> (default 500), --reps <batches>
/// (default 7).

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/hac.h"
#include "obs/trace.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"
#include "synth/ddh_generator.h"
#include "text/tokenizer.h"
#include "util/timer.h"

namespace paygo {
namespace {

constexpr double kIdleBudgetFraction = 0.02;

struct Workload {
  SchemaCorpus corpus;
  Tokenizer tokenizer;
  Lexicon lexicon;
  std::vector<DynamicBitset> features;
  SimilarityMatrix sims;

  explicit Workload(std::size_t n)
      : corpus([n] {
          DdhGeneratorOptions opts;
          opts.num_schemas = n;
          return MakeDdhCorpus(opts);
        }()),
        lexicon(Lexicon::Build(corpus, tokenizer)),
        features(FeatureVectorizer(lexicon).VectorizeCorpus()),
        sims(features) {}

  std::uint64_t RunOnceMicros() const {
    HacOptions opts;
    opts.tau_c_sim = 0.25;
    const WallTimer timer;
    const auto result = Hac::Run(features, sims, opts);
    if (!result.ok()) {
      std::cerr << "workload failed: " << result.status() << "\n";
      std::exit(1);
    }
    return timer.ElapsedMicros();
  }
};

std::uint64_t Median(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Cost of one compiled-in-but-idle span site, in nanoseconds.
double MeasureIdleSpanNanos() {
  constexpr std::uint64_t kIters = 20'000'000;
  Tracer::Disable();
  const WallTimer timer;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    PAYGO_TRACE_SPAN("bench.idle_probe");
  }
  const std::uint64_t us = timer.ElapsedMicros();
  return static_cast<double>(us) * 1000.0 / static_cast<double>(kIters);
}

}  // namespace
}  // namespace paygo

int main(int argc, char** argv) {
  using namespace paygo;

  std::size_t n = 500;
  int reps = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--n" && i + 1 < argc) {
      n = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: perf_obs_overhead [--n <schemas>] [--reps <k>]\n";
      return 2;
    }
  }

  const Workload workload(n);

  // Warm up both paths once before timing anything.
  Tracer::Disable();
  workload.RunOnceMicros();
  Tracer::Enable();
  workload.RunOnceMicros();

  // Count the span sites one workload run crosses (ring capacity bounds
  // RetainedEventCount, so also keep the merge count visible).
  Tracer::ClearAll();
  workload.RunOnceMicros();
  const std::uint64_t spans_per_run = Tracer::RetainedEventCount();
  Tracer::Disable();
  Tracer::ClearAll();

  std::vector<std::uint64_t> idle_us;
  std::vector<std::uint64_t> recording_us;
  for (int r = 0; r < reps; ++r) {
    Tracer::Disable();
    idle_us.push_back(workload.RunOnceMicros());
    Tracer::Enable();
    recording_us.push_back(workload.RunOnceMicros());
    Tracer::ClearAll();
  }
  Tracer::Disable();

  const std::uint64_t idle_med = Median(idle_us);
  const std::uint64_t rec_med = Median(recording_us);
  const double idle_span_ns = MeasureIdleSpanNanos();

  // Worst-case idle overhead: every span site at tight-loop cost, relative
  // to the workload's own runtime.
  const double idle_overhead =
      idle_med == 0 ? 0.0
                    : (static_cast<double>(spans_per_run) * idle_span_ns) /
                          (static_cast<double>(idle_med) * 1000.0);
  const double recording_overhead =
      idle_med == 0 ? 0.0
                    : (static_cast<double>(rec_med) - static_cast<double>(idle_med)) /
                          static_cast<double>(idle_med);

  std::cout << "workload: HAC fast engine, " << n << " schemas, " << reps
            << " interleaved batches\n"
            << "idle median:        " << idle_med << " us\n"
            << "recording median:   " << rec_med << " us ("
            << recording_overhead * 100.0 << "% vs idle)\n"
            << "spans per run:      " << spans_per_run
            << " (retained; ring-capped at " << TraceRing::kCapacity << ")\n"
            << "idle span site:     " << idle_span_ns << " ns\n"
            << "idle overhead est:  " << idle_overhead * 100.0
            << "% of workload (budget " << kIdleBudgetFraction * 100.0
            << "%)\n";

  if (idle_overhead > kIdleBudgetFraction) {
    std::cout << "FAIL: idle tracing overhead exceeds budget\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}
