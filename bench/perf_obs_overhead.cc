/// \file perf_obs_overhead.cc
/// \brief Measures the cost of the tracing instrumentation on the
/// clustering hot path plus the wire-propagation lane, and enforces the
/// "<2% overhead when idle" budget.
///
/// Three states matter (see src/obs/trace.h's cost model):
///   off       compiled out via -DPAYGO_TRACING=OFF — not measurable from
///             this binary (it would need a second build tree); the idle
///             bound below is the compiled-in-vs-off comparison by proxy,
///             since an idle span site costs exactly one relaxed load +
///             branch more than no span site.
///   idle      compiled in, Tracer disabled (the default production state)
///   recording Tracer enabled, spans landing in the per-thread rings
///
/// Methodology: idle and recording runs of the same HAC workload are
/// interleaved batch-wise (so frequency scaling / cache warmth bias both
/// equally) and summarized by median. The idle *budget check* is
/// analytical rather than differential: median workload times at this
/// scale are noisy at the ~1% level, so instead we measure the per-site
/// cost of an idle span in a tight loop (typically ~1 ns), multiply by
/// the number of span sites the workload actually crosses (counted by a
/// recording run), and compare against the workload's runtime. That
/// product over-estimates the true idle overhead (the tight loop is the
/// worst case for branch-prediction amortization), making the 2% gate
/// conservative.
///
/// Wire-propagation lane: kPing round trips against an in-process
/// ShardService, untraced (CallOnce — the idle production path, which
/// sends no preamble) vs propagation-enabled (CallOnceTraced with a
/// kTraceContext preamble frame). The traced delta prices what a sampled
/// request pays for context propagation; the *idle* budget gate is again
/// analytical — when tracing is off the only cost the propagation path
/// adds to an untraced call is a null-context branch, bounded by the same
/// tight-loop probe and compared against the measured untraced RTT.
///
/// Exit status: 0 when every idle overhead estimate is within budget,
/// 1 otherwise. Flags: --n <schemas> (default 500), --reps <batches>
/// (default 7), --pings <count> (default 200), --check (explicit gate
/// mode for CI; gating also runs by default), --json-out <file> (default
/// BENCH_obs.json; empty string disables the file).

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/hac.h"
#include "obs/trace.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"
#include "serve/paygo_server.h"
#include "shard/shard_service.h"
#include "shard/wire.h"
#include "synth/ddh_generator.h"
#include "text/tokenizer.h"
#include "util/timer.h"

namespace paygo {
namespace {

constexpr double kIdleBudgetFraction = 0.02;

struct Workload {
  SchemaCorpus corpus;
  Tokenizer tokenizer;
  Lexicon lexicon;
  std::vector<DynamicBitset> features;
  SimilarityMatrix sims;

  explicit Workload(std::size_t n)
      : corpus([n] {
          DdhGeneratorOptions opts;
          opts.num_schemas = n;
          return MakeDdhCorpus(opts);
        }()),
        lexicon(Lexicon::Build(corpus, tokenizer)),
        features(FeatureVectorizer(lexicon).VectorizeCorpus()),
        sims(features) {}

  std::uint64_t RunOnceMicros() const {
    HacOptions opts;
    opts.tau_c_sim = 0.25;
    const WallTimer timer;
    const auto result = Hac::Run(features, sims, opts);
    if (!result.ok()) {
      std::cerr << "workload failed: " << result.status() << "\n";
      std::exit(1);
    }
    return timer.ElapsedMicros();
  }
};

std::uint64_t Median(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Cost of one compiled-in-but-idle span site, in nanoseconds. Also the
/// conservative bound for the propagation path's idle null-context branch
/// (same shape: one predictable branch on a cold flag/pointer).
double MeasureIdleSpanNanos() {
  constexpr std::uint64_t kIters = 20'000'000;
  Tracer::Disable();
  const WallTimer timer;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    PAYGO_TRACE_SPAN("bench.idle_probe");
  }
  const std::uint64_t us = timer.ElapsedMicros();
  return static_cast<double>(us) * 1000.0 / static_cast<double>(kIters);
}

struct WireLane {
  std::uint64_t untraced_med_us = 0;  ///< CallOnce kPing RTT (idle path)
  std::uint64_t traced_med_us = 0;    ///< CallOnceTraced kPing RTT
  double propagation_overhead = 0.0;  ///< traced vs untraced, fractional
  double idle_overhead_est = 0.0;     ///< null-ctx branch vs untraced RTT
};

/// Loopback kPing round trips against an in-process ShardService, with
/// and without the kTraceContext preamble. Tracer stays disabled so the
/// delta prices propagation (extra frame + parse + guard), not recording.
Result<WireLane> MeasureWireLane(int pings, double idle_branch_ns) {
  Tracer::Disable();
  PaygoServer server{ServeOptions{}};
  Status started = server.Start();
  if (!started.ok()) return started;
  ShardService service(server);
  Result<std::uint16_t> port = service.Start();
  if (!port.ok()) return port.status();

  WireTraceContext ctx;
  ctx.trace_id = Tracer::NextTraceId();
  ctx.parent_span_id = 1;
  ctx.sampled = true;
  ctx.deadline_us = 1'000'000;

  auto ping = [&](const WireTraceContext* c) -> Result<std::uint64_t> {
    const WallTimer timer;
    Result<Frame> reply =
        CallOnceTraced("127.0.0.1", *port, FrameType::kPing, "", 1000, c);
    if (!reply.ok()) return reply.status();
    return timer.ElapsedMicros();
  };

  // Warm both paths (connection setup, first-touch allocations).
  for (int i = 0; i < 8; ++i) {
    if (Result<std::uint64_t> r = ping(nullptr); !r.ok()) return r.status();
    if (Result<std::uint64_t> r = ping(&ctx); !r.ok()) return r.status();
  }

  // Interleave so scheduler/frequency drift biases both lanes equally.
  std::vector<std::uint64_t> untraced, traced;
  untraced.reserve(pings);
  traced.reserve(pings);
  for (int i = 0; i < pings; ++i) {
    Result<std::uint64_t> u = ping(nullptr);
    if (!u.ok()) return u.status();
    untraced.push_back(*u);
    Result<std::uint64_t> t = ping(&ctx);
    if (!t.ok()) return t.status();
    traced.push_back(*t);
  }
  service.Stop();
  server.Stop();

  WireLane lane;
  lane.untraced_med_us = Median(untraced);
  lane.traced_med_us = Median(traced);
  if (lane.untraced_med_us > 0) {
    lane.propagation_overhead =
        (static_cast<double>(lane.traced_med_us) -
         static_cast<double>(lane.untraced_med_us)) /
        static_cast<double>(lane.untraced_med_us);
    lane.idle_overhead_est =
        idle_branch_ns / (static_cast<double>(lane.untraced_med_us) * 1000.0);
  }
  return lane;
}

}  // namespace
}  // namespace paygo

int main(int argc, char** argv) {
  using namespace paygo;

  std::size_t n = 500;
  int reps = 7;
  int pings = 200;
  bool check = false;
  std::string json_out = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--n" && i + 1 < argc) {
      n = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--pings" && i + 1 < argc) {
      pings = std::atoi(argv[++i]);
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::cerr << "usage: perf_obs_overhead [--n <schemas>] [--reps <k>] "
                   "[--pings <count>] [--check] [--json-out <file>]\n";
      return 2;
    }
  }

  const Workload workload(n);

  // Warm up both paths once before timing anything.
  Tracer::Disable();
  workload.RunOnceMicros();
  Tracer::Enable();
  workload.RunOnceMicros();

  // Count the span sites one workload run crosses (ring capacity bounds
  // RetainedEventCount, so also keep the merge count visible).
  Tracer::ClearAll();
  workload.RunOnceMicros();
  const std::uint64_t spans_per_run = Tracer::RetainedEventCount();
  Tracer::Disable();
  Tracer::ClearAll();

  std::vector<std::uint64_t> idle_us;
  std::vector<std::uint64_t> recording_us;
  for (int r = 0; r < reps; ++r) {
    Tracer::Disable();
    idle_us.push_back(workload.RunOnceMicros());
    Tracer::Enable();
    recording_us.push_back(workload.RunOnceMicros());
    Tracer::ClearAll();
  }
  Tracer::Disable();

  const std::uint64_t idle_med = Median(idle_us);
  const std::uint64_t rec_med = Median(recording_us);
  const double idle_span_ns = MeasureIdleSpanNanos();

  // Worst-case idle overhead: every span site at tight-loop cost, relative
  // to the workload's own runtime.
  const double idle_overhead =
      idle_med == 0 ? 0.0
                    : (static_cast<double>(spans_per_run) * idle_span_ns) /
                          (static_cast<double>(idle_med) * 1000.0);
  const double recording_overhead =
      idle_med == 0 ? 0.0
                    : (static_cast<double>(rec_med) - static_cast<double>(idle_med)) /
                          static_cast<double>(idle_med);

  Result<WireLane> wire = MeasureWireLane(pings, idle_span_ns);
  if (!wire.ok()) {
    std::cerr << "wire lane failed: " << wire.status() << "\n";
    return 1;
  }

  std::cout << "workload: HAC fast engine, " << n << " schemas, " << reps
            << " interleaved batches\n"
            << "idle median:        " << idle_med << " us\n"
            << "recording median:   " << rec_med << " us ("
            << recording_overhead * 100.0 << "% vs idle)\n"
            << "spans per run:      " << spans_per_run
            << " (retained; ring-capped at " << TraceRing::kCapacity << ")\n"
            << "idle span site:     " << idle_span_ns << " ns\n"
            << "idle overhead est:  " << idle_overhead * 100.0
            << "% of workload (budget " << kIdleBudgetFraction * 100.0
            << "%)\n"
            << "wire lane:          " << pings << " interleaved kPing pairs\n"
            << "  untraced median:  " << wire->untraced_med_us << " us\n"
            << "  traced median:    " << wire->traced_med_us << " us ("
            << wire->propagation_overhead * 100.0 << "% propagation cost)\n"
            << "  idle wire est:    " << wire->idle_overhead_est * 100.0
            << "% of untraced RTT (budget " << kIdleBudgetFraction * 100.0
            << "%)\n";

  const bool idle_ok = idle_overhead <= kIdleBudgetFraction;
  const bool wire_ok = wire->idle_overhead_est <= kIdleBudgetFraction;
  const bool pass = idle_ok && wire_ok;

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::trunc);
    out << "{\"bench\": \"obs_overhead\", \"n\": " << n
        << ", \"reps\": " << reps << ", \"idle_med_us\": " << idle_med
        << ", \"recording_med_us\": " << rec_med
        << ", \"recording_overhead\": " << recording_overhead
        << ", \"spans_per_run\": " << spans_per_run
        << ", \"idle_span_ns\": " << idle_span_ns
        << ", \"idle_overhead_est\": " << idle_overhead
        << ", \"wire\": {\"pings\": " << pings
        << ", \"untraced_med_us\": " << wire->untraced_med_us
        << ", \"traced_med_us\": " << wire->traced_med_us
        << ", \"propagation_overhead\": " << wire->propagation_overhead
        << ", \"idle_overhead_est\": " << wire->idle_overhead_est << "}"
        << ", \"budget_fraction\": " << kIdleBudgetFraction
        << ", \"check\": " << (check ? "true" : "false")
        << ", \"pass\": " << (pass ? "true" : "false") << "}\n";
    if (!out) {
      std::cerr << "failed writing " << json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << json_out << "\n";
  }

  if (!idle_ok) {
    std::cout << "FAIL: idle tracing overhead exceeds budget\n";
    return 1;
  }
  if (!wire_ok) {
    std::cout << "FAIL: idle wire propagation overhead exceeds budget\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}
