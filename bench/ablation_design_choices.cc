/// \file ablation_design_choices.cc
/// \brief Ablations of the thesis's design choices (DESIGN.md section 2).
///
///  (a) uncertainty threshold theta: hard assignments (theta = 0) vs the
///      thesis's 0.02 vs looser values — effect on clustering quality and
///      on the number of uncertain schemas the classifier must enumerate;
///  (b) strict Algorithm 3 semantics vs fall-back-to-home-cluster;
///  (c) term-similarity function: LCS-based t_sim vs Porter-stem vs exact
///      match (Section 4.1 proposes the first two);
///  (d) CamelCase splitting on/off (Algorithm 1's splitting step);
///  (e) classifier construction: exact factored vs expected-world vs
///      Monte-Carlo approximations — ranking agreement on real queries.

#include <iostream>

#include "bench_util.h"
#include "classify/approx_classifier.h"
#include "cluster/fuzzy_assignment.h"
#include "classify/naive_bayes.h"
#include "classify/query_featurizer.h"
#include "eval/classification_metrics.h"
#include "synth/query_generator.h"
#include "synth/web_generator.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace paygo;

void ThetaAblation(const bench::PreparedCorpus& prep) {
  std::cout << "--- (a) Uncertainty threshold theta (Avg. Jaccard, tau = "
               "0.25) ---\n";
  TablePrinter table({"theta", "Precision", "Recall", "Uncertain schemas",
                      "Multi-domain schemas"});
  for (double theta : {0.0, 0.02, 0.05, 0.1, 0.3, 0.5}) {
    const bench::SweepPoint point =
        bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25, theta);
    std::size_t uncertain = 0, multi = 0;
    for (std::uint32_t r = 0; r < point.model.num_domains(); ++r) {
      uncertain += point.model.UncertainSchemas(r).size();
    }
    for (std::uint32_t i = 0; i < point.model.num_schemas(); ++i) {
      if (point.model.DomainsOf(i).size() > 1) ++multi;
    }
    table.AddRow({FormatDouble(theta, 2),
                  FormatDouble(point.eval.avg_precision, 3),
                  FormatDouble(point.eval.avg_recall, 3),
                  std::to_string(uncertain), std::to_string(multi)});
  }
  table.Print(std::cout);
  std::cout << "Expected: theta = 0 yields hard assignments (no uncertain "
               "schemas); larger theta\nspreads boundary schemas over more "
               "domains, growing classifier setup cost (2^u).\n\n";
}

void StrictnessAblation(const bench::PreparedCorpus& prep) {
  // Max. Jaccard (single-link analog) chains loose clusters whose members
  // can sit below tau average similarity to their own cluster — exactly
  // the case Algorithm 3 leaves unspecified.
  std::cout << "--- (b) Algorithm 3 strict semantics vs home-cluster "
               "fallback (Max. Jaccard, tau = 0.35) ---\n";
  TablePrinter table({"Mode", "Assigned schemas", "Dropped schemas",
                      "Precision", "Recall"});
  for (bool strict : {true, false}) {
    HacOptions hac;
    hac.linkage = LinkageKind::kMax;
    hac.tau_c_sim = 0.35;
    const auto clustering = Hac::Run(prep.features, prep.sims, hac);
    AssignmentOptions assign;
    assign.tau_c_sim = 0.35;
    assign.strict_thesis_semantics = strict;
    const auto model = AssignProbabilities(prep.sims, *clustering, assign);
    std::size_t assigned = 0;
    for (std::uint32_t i = 0; i < model->num_schemas(); ++i) {
      if (!model->DomainsOf(i).empty()) ++assigned;
    }
    const ClusteringEvaluation eval =
        EvaluateClustering(*model, prep.corpus);
    table.AddRow({strict ? "strict (thesis)" : "home-cluster fallback",
                  std::to_string(assigned),
                  std::to_string(model->num_schemas() - assigned),
                  FormatDouble(eval.avg_precision, 3),
                  FormatDouble(eval.avg_recall, 3)});
  }
  table.Print(std::cout);
  std::cout << "Expected: strict semantics silently drops schemas whose "
               "average similarity to their\nown cluster falls below tau; "
               "the fallback keeps them at the cost of precision.\n\n";
}

void FuzzyVsProbabilisticAblation(const bench::PreparedCorpus& prep) {
  std::cout << "--- (b2) Membership model: probabilistic (Algorithm 3) vs "
               "fuzzy c-means style (Section 2.1.1's alternative) ---\n";
  HacOptions hac;
  hac.tau_c_sim = 0.25;
  const auto clustering = Hac::Run(prep.features, prep.sims, hac);

  TablePrinter table({"Membership model", "Precision", "Recall",
                      "Multi-domain schemas"});
  auto report = [&](const std::string& name, const DomainModel& model) {
    std::size_t multi = 0;
    for (std::uint32_t i = 0; i < model.num_schemas(); ++i) {
      if (model.DomainsOf(i).size() > 1) ++multi;
    }
    const ClusteringEvaluation eval = EvaluateClustering(model, prep.corpus);
    table.AddRow({name, FormatDouble(eval.avg_precision, 3),
                  FormatDouble(eval.avg_recall, 3), std::to_string(multi)});
  };
  {
    AssignmentOptions assign;
    assign.tau_c_sim = 0.25;
    const auto model = AssignProbabilities(prep.sims, *clustering, assign);
    report("probabilistic (thesis, theta=0.02)", *model);
  }
  for (double fuzzifier : {1.5, 2.0, 3.0}) {
    FuzzyAssignmentOptions opts;
    opts.fuzzifier = fuzzifier;
    const auto model =
        AssignFuzzyMemberships(prep.sims, *clustering, opts);
    report("fuzzy m=" + FormatDouble(fuzzifier, 1), *model);
  }
  table.Print(std::cout);
  std::cout << "Expected: both express boundary uncertainty; the fuzzy "
               "model spreads membership more\nwidely as m grows, while "
               "the probabilistic model composes directly with the\n"
               "probabilistic mediation of Section 4.4 (the thesis's "
               "reason for choosing it).\n\n";
}

void SimilarityKindAblation() {
  std::cout << "--- (c)+(d) Term similarity function and CamelCase "
               "splitting (tau = 0.25) ---\n";
  TablePrinter table({"t_sim / tokenizer", "dim L", "Precision", "Recall",
                      "Unclustered"});
  struct Config {
    std::string name;
    TermSimilarityKind kind;
    double tau_t_sim;
    bool camel;
  };
  const std::vector<Config> configs = {
      {"LCS 0.8 (thesis)", TermSimilarityKind::kLcs, 0.8, true},
      {"Porter stem", TermSimilarityKind::kStem, 0.5, true},
      {"exact match", TermSimilarityKind::kExact, 1.0, true},
      {"LCS 0.8, no CamelCase split", TermSimilarityKind::kLcs, 0.8, false},
  };
  for (const Config& cfg : configs) {
    SchemaCorpus corpus = MakeDwSsCorpus();
    TokenizerOptions tok_opts;
    tok_opts.split_camel_case = cfg.camel;
    Tokenizer tok(tok_opts);
    Lexicon lexicon = Lexicon::Build(corpus, tok);
    FeatureVectorizerOptions fv;
    fv.similarity_kind = cfg.kind;
    fv.tau_t_sim = cfg.tau_t_sim;
    FeatureVectorizer vec(lexicon, fv);
    const auto features = vec.VectorizeCorpus();
    SimilarityMatrix sims(features);
    HacOptions hac;
    hac.tau_c_sim = 0.25;
    const auto clustering = Hac::Run(features, sims, hac);
    AssignmentOptions assign;
    assign.tau_c_sim = 0.25;
    const auto model = AssignProbabilities(sims, *clustering, assign);
    const ClusteringEvaluation eval = EvaluateClustering(*model, corpus);
    table.AddRow({cfg.name, std::to_string(lexicon.dim()),
                  FormatDouble(eval.avg_precision, 3),
                  FormatDouble(eval.avg_recall, 3),
                  FormatDouble(eval.frac_unclustered, 3)});
  }
  table.Print(std::cout);
  std::cout << "Expected: LCS-based t_sim absorbs surface variation "
               "(plurals) that exact match\nmisses; disabling CamelCase "
               "splitting loses the terms inside concatenated names.\n\n";
}

void ClassifierEngineAblation(const bench::PreparedCorpus& prep) {
  std::cout << "--- (e) Classifier construction: exact vs approximations "
               "(tau = 0.25, theta = 0.3) ---\n";
  // theta = 0.3 creates genuinely uncertain schemas, so the engines'
  // possible-world treatments actually differ.
  const bench::SweepPoint point =
      bench::RunClusteringPoint(prep, LinkageKind::kAverage, 0.25, 0.3);
  std::vector<std::vector<std::string>> domain_labels;
  for (std::uint32_t r = 0; r < point.model.num_domains(); ++r) {
    domain_labels.push_back(DominantLabels(point.model, r, prep.corpus));
  }
  FeatureVectorizer vectorizer(prep.lexicon);
  QueryFeaturizer featurizer(prep.tokenizer, vectorizer);
  const auto gen = QueryGenerator::Build(prep.corpus, prep.lexicon, {});
  if (!gen.ok()) {
    std::cerr << "query generator failed: " << gen.status() << "\n";
    return;
  }

  struct Engine {
    std::string name;
    NaiveBayesClassifier clf;
  };
  std::vector<Engine> engines;
  {
    auto exact = NaiveBayesClassifier::Build(point.model, prep.features,
                                             prep.corpus.size(), {});
    engines.push_back({"exact factored", std::move(*exact)});
    ApproxClassifierOptions ew;
    ew.kind = ApproxKind::kExpectedWorld;
    engines.push_back({"expected-world",
                       std::move(*BuildApproxClassifier(
                           point.model, prep.features, prep.corpus.size(),
                           ew))});
    ApproxClassifierOptions mc;
    mc.kind = ApproxKind::kMonteCarlo;
    mc.num_samples = 512;
    engines.push_back({"Monte-Carlo 512",
                       std::move(*BuildApproxClassifier(
                           point.model, prep.features, prep.corpus.size(),
                           mc))});
  }

  TablePrinter table({"Engine", "Top-1", "Top-3",
                      "Top-1 agreement with exact"});
  std::vector<std::vector<std::uint32_t>> exact_top1;
  for (std::size_t e = 0; e < engines.size(); ++e) {
    Rng rng(99);
    TopKAccumulator acc;
    std::size_t agree = 0, total = 0;
    for (std::size_t size = 2; size <= 6; ++size) {
      for (int q = 0; q < 40; ++q) {
        const GeneratedQuery query = gen->Generate(size, rng);
        const auto ranking = engines[e].clf.Classify(
            featurizer.FeaturizeTerms(query.keywords));
        acc.Record(ranking, domain_labels, query.target_label);
        if (e == 0) {
          exact_top1.push_back({ranking.empty() ? 0 : ranking[0].domain});
        } else if (!ranking.empty()) {
          agree += (ranking[0].domain == exact_top1[total][0]) ? 1 : 0;
        }
        ++total;
      }
    }
    table.AddRow({engines[e].name, FormatDouble(acc.Top1Fraction(), 3),
                  FormatDouble(acc.Top3Fraction(), 3),
                  e == 0 ? "1.000"
                         : FormatDouble(static_cast<double>(agree) /
                                            static_cast<double>(total),
                                        3)});
  }
  table.Print(std::cout);
  std::cout << "Expected: the approximations track the exact classifier "
               "closely; the factored exact\nengine already removes the "
               "exponential setup factor (Chapter 7's future work).\n";
}

}  // namespace

int main() {
  std::cout << "=== Ablation: the thesis's design choices on DW+SS ===\n\n";
  const bench::PreparedCorpus prep(MakeDwSsCorpus());
  ThetaAblation(prep);
  StrictnessAblation(prep);
  FuzzyVsProbabilisticAblation(prep);
  SimilarityKindAblation();
  ClassifierEngineAblation(prep);
  return 0;
}
