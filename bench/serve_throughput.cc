/// \file serve_throughput.cc
/// \brief Closed-loop load benchmark of the PaygoServer serving runtime.
///
/// Builds an integration system over a synthetic corpus, starts the
/// server, and runs three phases:
///
///   1. a closed-loop load phase — N client threads classify keyword
///      queries back-to-back, measuring client-observed latency;
///   2. a saturation probe — a burst of async submissions against a
///      deliberately tiny queue to demonstrate admission-control
///      rejection under overload;
///   3. a mixed phase — the same closed loop while a writer adds schemas
///      concurrently, exercising snapshot swaps under load.
///
/// Output is a single JSON object (schema documented in bench/README.md);
/// pass --human for a readable summary instead. Unless --json-out is
/// empty, the same object — enriched with the bench name, a timestamp,
/// and the configuration — is also written to a machine-readable file
/// (default BENCH_serve.json) for CI trend tracking.
///
/// Flags: --corpus <dw|ss|both|many> --threads N --seconds S --workers N
///        --queue-depth N --cache-capacity N --delay-us N
///        --json-out FILE --human

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/integration_system.h"
#include "serve/load_generator.h"
#include "serve/paygo_server.h"
#include "synth/many_domains.h"
#include "synth/web_generator.h"

namespace {

using namespace paygo;

struct BenchOptions {
  std::string corpus = "both";
  std::size_t threads = 4;
  double seconds = 2.0;
  std::size_t workers = 4;
  std::size_t queue_depth = 256;
  std::size_t cache_capacity = 1024;
  std::uint64_t delay_us = 0;
  std::string json_out = "BENCH_serve.json";  // "" disables the file
  bool human = false;
};

SchemaCorpus MakeCorpus(const std::string& name) {
  if (name == "dw") return MakeDwCorpus();
  if (name == "ss") return MakeSsCorpus();
  if (name == "many") return MakeManyDomainCorpus();
  return MakeDwSsCorpus();
}

Schema MakeExtraSchema(int i) {
  Schema schema;
  schema.source_name = "live-source-" + std::to_string(i);
  schema.attributes = {"departure city", "destination city",
                       "travel date", "fare class",
                       "seat " + std::to_string(i)};
  return schema;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--corpus" && next()) {
      opts.corpus = argv[i];
    } else if (arg == "--threads" && next()) {
      opts.threads = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (arg == "--seconds" && next()) {
      opts.seconds = std::atof(argv[i]);
    } else if (arg == "--workers" && next()) {
      opts.workers = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (arg == "--queue-depth" && next()) {
      opts.queue_depth = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (arg == "--cache-capacity" && next()) {
      opts.cache_capacity = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (arg == "--delay-us" && next()) {
      opts.delay_us = static_cast<std::uint64_t>(std::atoll(argv[i]));
    } else if (arg == "--json-out" && next()) {
      opts.json_out = argv[i];
    } else if (arg == "--human") {
      opts.human = true;
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 2;
    }
  }

  auto built = IntegrationSystem::Build(MakeCorpus(opts.corpus));
  if (!built.ok()) {
    std::cerr << built.status() << "\n";
    return 1;
  }
  std::vector<std::string> queries = BuildQueryPool(**built, 256, 17);

  // Phase 1: steady-state closed loop.
  ServeOptions serve;
  serve.num_workers = opts.workers;
  serve.queue_depth = opts.queue_depth;
  serve.cache_capacity = opts.cache_capacity;
  serve.artificial_request_delay_us = opts.delay_us;
  PaygoServer server(std::move(*built), serve);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  LoadGenOptions load;
  load.client_threads = opts.threads;
  load.duration_ms = static_cast<std::uint64_t>(opts.seconds * 1000);
  const LoadReport steady = RunClosedLoopLoad(server, queries, load);

  // Phase 2: saturation probe against a tiny queue. Slow the handlers so
  // the burst cannot drain between submissions.
  auto built2 = IntegrationSystem::Build(MakeCorpus(opts.corpus));
  if (!built2.ok()) {
    std::cerr << built2.status() << "\n";
    return 1;
  }
  ServeOptions tiny = serve;
  tiny.num_workers = 1;
  tiny.queue_depth = 2;
  tiny.cache_capacity = 0;  // every request does real work
  tiny.artificial_request_delay_us =
      std::max<std::uint64_t>(opts.delay_us, 2000);
  PaygoServer saturated(std::move(*built2), tiny);
  if (Status s = saturated.Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const std::uint64_t probe_rejected =
      RunSaturationProbe(saturated, queries[0], 64);
  saturated.Stop();

  // Phase 3: the same closed loop with a concurrent AddSchema writer.
  std::vector<std::future<Status>> writes;
  for (int i = 0; i < 4; ++i) {
    writes.push_back(server.AddSchemaAsync(MakeExtraSchema(i),
                                           {"live-domain"}));
  }
  const LoadReport mixed = RunClosedLoopLoad(server, queries, load);
  for (auto& w : writes) w.get();
  const std::uint64_t generation = server.generation();
  server.Stop();

  std::ostringstream results;
  results << "{\"steady\": " << steady.ToJson()
          << ", \"mixed_with_writer\": " << mixed.ToJson()
          << ", \"saturation_probe\": {\"burst\": 64, \"rejected\": "
          << probe_rejected << "}, \"final_generation\": " << generation
          << "}";

  if (!opts.json_out.empty()) {
    // Machine-readable record for CI trend tracking (schema in
    // bench/README.md): results wrapped with provenance + configuration.
    const auto ts_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::ofstream out(opts.json_out, std::ios::trunc);
    out << "{\"bench\": \"serve_throughput\", \"ts_ms\": " << ts_ms
        << ", \"config\": {\"corpus\": \"" << opts.corpus
        << "\", \"threads\": " << opts.threads
        << ", \"seconds\": " << opts.seconds
        << ", \"workers\": " << opts.workers
        << ", \"queue_depth\": " << opts.queue_depth
        << ", \"cache_capacity\": " << opts.cache_capacity
        << ", \"delay_us\": " << opts.delay_us
        << "}, \"results\": " << results.str() << "}\n";
    if (!out) {
      std::cerr << "failed writing " << opts.json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << opts.json_out << "\n";
  }

  if (opts.human) {
    std::cout << "steady:    " << steady.qps << " qps, p50 "
              << steady.p50_us << "us p95 " << steady.p95_us << "us p99 "
              << steady.p99_us << "us, cache hit rate "
              << steady.cache_hit_rate << "\n";
    std::cout << "mixed:     " << mixed.qps << " qps under " << generation
              << " snapshot swaps\n";
    std::cout << "saturation: " << probe_rejected
              << "/64 requests rejected by admission control\n";
    return 0;
  }
  std::cout << results.str() << "\n";
  return 0;
}
