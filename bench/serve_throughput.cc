/// \file serve_throughput.cc
/// \brief Closed-loop load benchmark of the PaygoServer serving runtime.
///
/// Builds an integration system over a synthetic corpus, starts the
/// server, and runs three phases:
///
///   1. a closed-loop load phase — N client threads classify keyword
///      queries back-to-back, measuring client-observed latency;
///   2. a saturation probe — a burst of async submissions against a
///      deliberately tiny queue to demonstrate admission-control
///      rejection under overload;
///   3. a mixed phase — the same closed loop while a writer adds schemas
///      concurrently, exercising snapshot swaps under load.
///
/// Output is a single JSON object (schema documented in bench/README.md);
/// pass --human for a readable summary instead. Unless --json-out is
/// empty, the same object — enriched with the bench name, a timestamp,
/// and the configuration — is also written to a machine-readable file
/// (default BENCH_serve.json) for CI trend tracking.
///
/// With --shards the bench switches to the domain-sharded mode instead:
/// the corpus is consistent-hash partitioned, one in-process ShardNode is
/// started per shard, and the multi-endpoint wire-protocol closed loop
/// measures aggregate read QPS per shard count — the scaling curve lands
/// in BENCH_serve.json as "shard_scaling". A replica probe (primary +
/// read replica, full snapshot replication, load served off the replica)
/// rides along.
///
/// Flags: --corpus <dw|ss|both|many> --threads N --seconds S --workers N
///        --queue-depth N --cache-capacity N --delay-us N --batch-max N
///        --shards N[,N...] --json-out FILE --human
///        --check [--p99-budget-us N]
///
/// --batch-max sets ServeOptions::classify_batch_max, so the steady phase
/// exercises the coalesced classify sweep (batch_sweeps/batched_requests
/// land in the JSON). --check turns the steady phase into a CI gate: exit
/// 1 if any steady request errored or client-observed p99 exceeds the
/// budget (default 200ms — a regression tripwire, not a latency SLO).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/integration_system.h"
#include "serve/load_generator.h"
#include "serve/paygo_server.h"
#include "shard/hash_ring.h"
#include "shard/router.h"
#include "shard/shard_node.h"
#include "synth/many_domains.h"
#include "synth/web_generator.h"

namespace {

using namespace paygo;

struct BenchOptions {
  std::string corpus = "both";
  bool corpus_set = false;
  std::size_t threads = 4;
  double seconds = 2.0;
  std::size_t workers = 4;
  std::size_t queue_depth = 256;
  std::size_t cache_capacity = 1024;
  std::uint64_t delay_us = 0;
  std::size_t batch_max = 1;  // classify_batch_max for the steady server
  std::vector<std::size_t> shards;  // non-empty selects the sharded mode
  std::string json_out = "BENCH_serve.json";  // "" disables the file
  bool human = false;
  bool check = false;
  double p99_budget_us = 200000;  // steady-phase client-observed p99 gate
};

SchemaCorpus MakeCorpus(const std::string& name) {
  if (name == "dw") return MakeDwCorpus();
  if (name == "ss") return MakeSsCorpus();
  if (name == "many") return MakeManyDomainCorpus();
  return MakeDwSsCorpus();
}

Schema MakeExtraSchema(int i) {
  Schema schema;
  schema.source_name = "live-source-" + std::to_string(i);
  schema.attributes = {"departure city", "destination city",
                       "travel date", "fare class",
                       "seat " + std::to_string(i)};
  return schema;
}

std::vector<std::size_t> ParseShardCounts(const std::string& text) {
  std::vector<std::size_t> counts;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    const int n = std::atoi(item.c_str());
    if (n >= 1) counts.push_back(static_cast<std::size_t>(n));
  }
  return counts;
}

/// One point of the scaling curve: partition, start a fleet, probe the
/// router, load every shard over the wire.
struct ShardSweepPoint {
  std::size_t shards = 0;
  std::vector<std::size_t> schemas_per_shard;
  LoadReport load;
  std::size_t router_shards_ok = 0;
  std::size_t router_shards_total = 0;
  std::size_t router_ranked = 0;
};

int RunShardSweep(const BenchOptions& opts) {
  // Sharding pays off on the many-small-domains corpus shape; default to
  // it unless the user asked for a specific corpus.
  const std::string corpus_name = opts.corpus_set ? opts.corpus : "many";
  const SchemaCorpus corpus = MakeCorpus(corpus_name);

  // The query pool comes from one unsharded build over the full corpus,
  // so every shard count replays the identical workload.
  auto full = IntegrationSystem::Build(corpus);
  if (!full.ok()) {
    std::cerr << full.status() << "\n";
    return 1;
  }
  const std::vector<std::string> queries = BuildQueryPool(**full, 256, 17);
  full->reset();

  // A fixed artificial handler delay makes the capacity per shard
  // deterministic (workers / delay), so the curve reflects shard-count
  // scaling rather than the host's core count; enough closed-loop clients
  // to saturate the largest fleet.
  const std::uint64_t delay_us = std::max<std::uint64_t>(opts.delay_us, 1000);
  LoadGenOptions load;
  load.client_threads = std::max<std::size_t>(opts.threads, 4 * opts.workers);
  load.duration_ms = static_cast<std::uint64_t>(opts.seconds * 1000);

  std::vector<ShardSweepPoint> curve;
  for (const std::size_t num_shards : opts.shards) {
    const HashRing ring(num_shards);
    std::vector<SchemaCorpus> parts = PartitionCorpus(corpus, ring);

    ShardSweepPoint point;
    point.shards = num_shards;
    std::vector<std::unique_ptr<ShardNode>> nodes;
    std::vector<ShardAddress> addresses;
    std::vector<WireEndpoint> endpoints;
    for (std::size_t s = 0; s < parts.size(); ++s) {
      point.schemas_per_shard.push_back(parts[s].size());
      ShardNodeOptions node_opts;
      node_opts.serve.num_workers = opts.workers;
      node_opts.serve.queue_depth = opts.queue_depth;
      node_opts.serve.cache_capacity = 0;  // every request does real work
      node_opts.serve.artificial_request_delay_us = delay_us;
      node_opts.service.handler_threads =
          std::max<std::size_t>(opts.workers, 4);
      node_opts.admin_port = -1;
      auto node = std::make_unique<ShardNode>(std::move(node_opts));
      std::unique_ptr<IntegrationSystem> system;
      if (parts[s].size() > 0) {
        auto built = IntegrationSystem::Build(std::move(parts[s]));
        if (!built.ok()) {
          std::cerr << "shard " << s << ": " << built.status() << "\n";
          return 1;
        }
        system = std::move(*built);
      }
      // An empty arc starts a not-ready node; the router degrades around
      // it, which the probe counters record.
      if (Status started = node->Start(std::move(system)); !started.ok()) {
        std::cerr << "shard " << s << ": " << started << "\n";
        return 1;
      }
      addresses.push_back(ShardAddress{"127.0.0.1", node->shard_port()});
      endpoints.push_back(WireEndpoint{"127.0.0.1", node->shard_port(), 1});
      nodes.push_back(std::move(node));
    }

    const ShardRouter router(addresses);
    if (auto scattered = router.Classify(queries[0], 5); scattered.ok()) {
      point.router_shards_ok = scattered->shards_ok;
      point.router_shards_total = scattered->shards_total;
      point.router_ranked = scattered->ranked.size();
    }

    point.load = RunClosedLoopWireLoad(endpoints, queries, load);
    curve.push_back(std::move(point));
    for (auto& node : nodes) node->Stop();
  }

  // Replica probe: primary + read replica over a small corpus; the
  // replica bootstraps via full-snapshot replication, then serves reads.
  ShardNodeOptions primary_opts;
  primary_opts.admin_port = -1;
  ShardNode primary(std::move(primary_opts));
  auto primary_system = IntegrationSystem::Build(MakeDwCorpus());
  if (!primary_system.ok()) {
    std::cerr << primary_system.status() << "\n";
    return 1;
  }
  if (Status s = primary.Start(std::move(*primary_system)); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  ShardNodeOptions replica_opts;
  replica_opts.admin_port = -1;
  replica_opts.replica = true;
  replica_opts.replica_sync.primary_port = primary.shard_port();
  replica_opts.replica_sync.poll_interval_ms = 50;
  ShardNode replica(std::move(replica_opts));
  if (Status s = replica.Start(nullptr); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const std::uint64_t primary_generation = primary.server().generation();
  bool replica_synced = false;
  for (int i = 0; i < 500; ++i) {
    if (replica.replica() != nullptr &&
        replica.replica()->GetStats().synced_generation >=
            primary_generation) {
      replica_synced = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  LoadReport replica_load;
  std::string replica_stats_json = "{}";
  if (replica_synced) {
    LoadGenOptions replica_load_opts;
    replica_load_opts.client_threads = 4;
    replica_load_opts.duration_ms = 500;
    replica_load = RunClosedLoopWireLoad(
        {WireEndpoint{"127.0.0.1", replica.shard_port(), 1}}, queries,
        replica_load_opts);
    replica_stats_json = replica.replica()->StatsJson();
  }
  replica.Stop();
  primary.Stop();

  std::ostringstream results;
  results << "{\"shard_scaling\": [";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const ShardSweepPoint& p = curve[i];
    if (i > 0) results << ", ";
    results << "{\"shards\": " << p.shards << ", \"schemas_per_shard\": [";
    for (std::size_t s = 0; s < p.schemas_per_shard.size(); ++s) {
      if (s > 0) results << ", ";
      results << p.schemas_per_shard[s];
    }
    results << "], \"router_probe\": {\"shards_ok\": " << p.router_shards_ok
            << ", \"shards_total\": " << p.router_shards_total
            << ", \"ranked\": " << p.router_ranked
            << "}, \"load\": " << p.load.ToJson() << "}";
  }
  results << "]";
  double qps_at = 0, qps_base = 0;
  for (const ShardSweepPoint& p : curve) {
    if (p.shards == 1) qps_base = p.load.qps;
    if (p.shards == 2) qps_at = p.load.qps;
  }
  if (qps_base > 0 && qps_at > 0) {
    results << ", \"qps_scaling_2x_vs_1x\": " << (qps_at / qps_base);
  }
  results << ", \"replica_probe\": {\"synced\": "
          << (replica_synced ? "true" : "false")
          << ", \"primary_generation\": " << primary_generation
          << ", \"replication\": " << replica_stats_json
          << ", \"load\": " << replica_load.ToJson() << "}}";

  if (!opts.json_out.empty()) {
    const auto ts_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::ofstream out(opts.json_out, std::ios::trunc);
    out << "{\"bench\": \"serve_throughput\", \"mode\": \"shard_scaling\", "
        << "\"ts_ms\": " << ts_ms << ", \"config\": {\"corpus\": \""
        << corpus_name << "\", \"threads\": " << load.client_threads
        << ", \"seconds\": " << opts.seconds
        << ", \"workers\": " << opts.workers
        << ", \"delay_us\": " << delay_us << ", \"shard_counts\": [";
    for (std::size_t i = 0; i < opts.shards.size(); ++i) {
      if (i > 0) out << ", ";
      out << opts.shards[i];
    }
    out << "]}, \"results\": " << results.str() << "}\n";
    if (!out) {
      std::cerr << "failed writing " << opts.json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << opts.json_out << "\n";
  }

  if (opts.human) {
    for (const ShardSweepPoint& p : curve) {
      std::cout << "shards=" << p.shards << ": " << p.load.qps
                << " qps aggregate, p50 " << p.load.p50_us << "us, router "
                << p.router_shards_ok << "/" << p.router_shards_total
                << " shards ok\n";
    }
    if (qps_base > 0 && qps_at > 0) {
      std::cout << "2-shard vs 1-shard aggregate QPS: "
                << (qps_at / qps_base) << "x\n";
    }
    std::cout << "replica: " << (replica_synced ? "synced" : "NOT SYNCED")
              << ", " << replica_load.qps << " qps served off replica\n";
    return 0;
  }
  std::cout << results.str() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--corpus" && next()) {
      opts.corpus = argv[i];
      opts.corpus_set = true;
    } else if (arg == "--shards" && next()) {
      opts.shards = ParseShardCounts(argv[i]);
      if (opts.shards.empty()) {
        std::cerr << "--shards wants a comma-separated list of counts\n";
        return 2;
      }
    } else if (arg == "--threads" && next()) {
      opts.threads = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (arg == "--seconds" && next()) {
      opts.seconds = std::atof(argv[i]);
    } else if (arg == "--workers" && next()) {
      opts.workers = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (arg == "--queue-depth" && next()) {
      opts.queue_depth = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (arg == "--cache-capacity" && next()) {
      opts.cache_capacity = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (arg == "--delay-us" && next()) {
      opts.delay_us = static_cast<std::uint64_t>(std::atoll(argv[i]));
    } else if (arg == "--batch-max" && next()) {
      opts.batch_max = static_cast<std::size_t>(std::atoi(argv[i]));
    } else if (arg == "--json-out" && next()) {
      opts.json_out = argv[i];
    } else if (arg == "--human") {
      opts.human = true;
    } else if (arg == "--check") {
      opts.check = true;
    } else if (arg == "--p99-budget-us" && next()) {
      opts.p99_budget_us = std::atof(argv[i]);
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      return 2;
    }
  }

  if (!opts.shards.empty()) return RunShardSweep(opts);

  auto built = IntegrationSystem::Build(MakeCorpus(opts.corpus));
  if (!built.ok()) {
    std::cerr << built.status() << "\n";
    return 1;
  }
  std::vector<std::string> queries = BuildQueryPool(**built, 256, 17);

  // Phase 1: steady-state closed loop.
  ServeOptions serve;
  serve.num_workers = opts.workers;
  serve.queue_depth = opts.queue_depth;
  serve.cache_capacity = opts.cache_capacity;
  serve.artificial_request_delay_us = opts.delay_us;
  serve.classify_batch_max = opts.batch_max;
  PaygoServer server(std::move(*built), serve);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  LoadGenOptions load;
  load.client_threads = opts.threads;
  load.duration_ms = static_cast<std::uint64_t>(opts.seconds * 1000);
  const LoadReport steady = RunClosedLoopLoad(server, queries, load);
  // Coalescing counters for the steady phase, sampled before the mixed
  // phase adds more.
  const std::uint64_t steady_sweeps = server.metrics().batch_sweeps.load();
  const std::uint64_t steady_batched =
      server.metrics().batched_requests.load();

  // Phase 2: saturation probe against a tiny queue. Slow the handlers so
  // the burst cannot drain between submissions.
  auto built2 = IntegrationSystem::Build(MakeCorpus(opts.corpus));
  if (!built2.ok()) {
    std::cerr << built2.status() << "\n";
    return 1;
  }
  ServeOptions tiny = serve;
  tiny.num_workers = 1;
  tiny.queue_depth = 2;
  tiny.cache_capacity = 0;  // every request does real work
  tiny.artificial_request_delay_us =
      std::max<std::uint64_t>(opts.delay_us, 2000);
  PaygoServer saturated(std::move(*built2), tiny);
  if (Status s = saturated.Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  const std::uint64_t probe_rejected =
      RunSaturationProbe(saturated, queries[0], 64);
  saturated.Stop();

  // Phase 3: the same closed loop with a concurrent AddSchema writer.
  std::vector<std::future<Status>> writes;
  for (int i = 0; i < 4; ++i) {
    writes.push_back(server.AddSchemaAsync(MakeExtraSchema(i),
                                           {"live-domain"}));
  }
  const LoadReport mixed = RunClosedLoopLoad(server, queries, load);
  for (auto& w : writes) w.get();
  const std::uint64_t generation = server.generation();
  server.Stop();

  std::ostringstream results;
  results << "{\"steady\": " << steady.ToJson()
          << ", \"steady_batch\": {\"batch_max\": " << opts.batch_max
          << ", \"sweeps\": " << steady_sweeps
          << ", \"batched_requests\": " << steady_batched
          << "}, \"mixed_with_writer\": " << mixed.ToJson()
          << ", \"saturation_probe\": {\"burst\": 64, \"rejected\": "
          << probe_rejected << "}, \"final_generation\": " << generation
          << "}";

  if (!opts.json_out.empty()) {
    // Machine-readable record for CI trend tracking (schema in
    // bench/README.md): results wrapped with provenance + configuration.
    const auto ts_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::ofstream out(opts.json_out, std::ios::trunc);
    out << "{\"bench\": \"serve_throughput\", \"ts_ms\": " << ts_ms
        << ", \"config\": {\"corpus\": \"" << opts.corpus
        << "\", \"threads\": " << opts.threads
        << ", \"seconds\": " << opts.seconds
        << ", \"workers\": " << opts.workers
        << ", \"queue_depth\": " << opts.queue_depth
        << ", \"cache_capacity\": " << opts.cache_capacity
        << ", \"delay_us\": " << opts.delay_us
        << ", \"batch_max\": " << opts.batch_max
        << "}, \"results\": " << results.str() << "}\n";
    if (!out) {
      std::cerr << "failed writing " << opts.json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << opts.json_out << "\n";
  }

  if (opts.human) {
    std::cout << "steady:    " << steady.qps << " qps, p50 "
              << steady.p50_us << "us p95 " << steady.p95_us << "us p99 "
              << steady.p99_us << "us, cache hit rate "
              << steady.cache_hit_rate << "\n";
    if (opts.batch_max > 1) {
      std::cout << "batching:  max " << opts.batch_max << ", "
                << steady_sweeps << " sweeps over " << steady_batched
                << " requests\n";
    }
    std::cout << "mixed:     " << mixed.qps << " qps under " << generation
              << " snapshot swaps\n";
    std::cout << "saturation: " << probe_rejected
              << "/64 requests rejected by admission control\n";
  } else {
    std::cout << results.str() << "\n";
  }

  if (opts.check) {
    bool failed = false;
    if (steady.error_requests > 0) {
      std::cerr << "FAIL: " << steady.error_requests
                << " steady-phase requests errored\n";
      failed = true;
    }
    if (static_cast<double>(steady.p99_us) > opts.p99_budget_us) {
      std::cerr << "FAIL: steady-phase p99 " << steady.p99_us
                << "us over budget " << opts.p99_budget_us << "us\n";
      failed = true;
    }
    if (failed) return 1;
  }
  return 0;
}
