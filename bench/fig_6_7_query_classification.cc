/// \file fig_6_7_query_classification.cc
/// \brief Reproduces Figure 6.7: query classification quality on DW+SS —
/// top-1 and top-3 fractions for query sizes 1..10, 100 queries per size
/// (Section 6.1.3's random query generator).

#include <iostream>

#include "bench_util.h"
#include "classify/naive_bayes.h"
#include "classify/query_featurizer.h"
#include "eval/classification_metrics.h"
#include "synth/query_generator.h"
#include "synth/web_generator.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace paygo;
  using bench::PreparedCorpus;
  using bench::RunClusteringPoint;

  const PreparedCorpus prep(MakeDwSsCorpus());
  const bench::SweepPoint point =
      RunClusteringPoint(prep, LinkageKind::kAverage, 0.25);

  // Domain labels for hit testing.
  std::vector<std::vector<std::string>> domain_labels;
  for (std::uint32_t r = 0; r < point.model.num_domains(); ++r) {
    domain_labels.push_back(DominantLabels(point.model, r, prep.corpus));
  }

  // Classifier setup (Chapter 5; the thesis reports < 1 minute on DW+SS).
  WallTimer setup_timer;
  auto clf = NaiveBayesClassifier::Build(point.model, prep.features,
                                         prep.corpus.size(), {});
  if (!clf.ok()) {
    std::cerr << "classifier build failed: " << clf.status() << "\n";
    return 1;
  }
  const double setup_seconds = setup_timer.ElapsedSeconds();

  FeatureVectorizer vectorizer(prep.lexicon);
  QueryFeaturizer featurizer(prep.tokenizer, vectorizer);
  auto gen = QueryGenerator::Build(prep.corpus, prep.lexicon, {});
  if (!gen.ok()) {
    std::cerr << "query generator build failed: " << gen.status() << "\n";
    return 1;
  }

  Rng rng(61);
  TablePrinter table({"Keywords", "Top-1 fraction", "Top-3 fraction"});
  for (std::size_t size = 1; size <= 10; ++size) {
    TopKAccumulator acc;
    for (int q = 0; q < 100; ++q) {
      const GeneratedQuery query = gen->Generate(size, rng);
      const auto ranking =
          clf->Classify(featurizer.FeaturizeTerms(query.keywords));
      acc.Record(ranking, domain_labels, query.target_label);
    }
    table.AddRow({std::to_string(size), FormatDouble(acc.Top1Fraction(), 2),
                  FormatDouble(acc.Top3Fraction(), 2)});
  }

  std::cout << "=== Figure 6.7: Query classification quality (DW+SS, 100 "
               "queries per size) ===\n";
  table.Print(std::cout);
  std::cout << "\nClassifier setup time: " << FormatDouble(setup_seconds, 3)
            << "s (thesis: < 1 minute on DW+SS)\n";
  std::cout << "\nExpected shape: both fractions rise with query size; "
               "top-1 approaches 1 for large\nqueries; top-3 dominates "
               "top-1 throughout.\n";
  return 0;
}
