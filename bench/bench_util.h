#ifndef PAYGO_BENCH_BENCH_UTIL_H_
#define PAYGO_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// \brief Shared plumbing for the experiment-reproduction binaries.
///
/// Each bench binary regenerates one table or figure of the thesis's
/// Chapter 6. The helpers here run the offline pipeline (Algorithms 1-3)
/// at given parameters and evaluate it with the Section 6.1.2 metrics, so
/// the binaries stay declarative: corpus + parameter grid + print.

#include <cstdint>
#include <vector>

#include "cluster/hac.h"
#include "cluster/linkage.h"
#include "cluster/probabilistic_assignment.h"
#include "eval/clustering_metrics.h"
#include "schema/corpus.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"
#include "text/tokenizer.h"

namespace paygo {
namespace bench {

/// Feature-space preparation shared across a tau sweep (Algorithm 1 and
/// the memoized similarity matrix are tau_c_sim-independent).
struct PreparedCorpus {
  SchemaCorpus corpus;
  Tokenizer tokenizer;
  Lexicon lexicon;
  std::vector<DynamicBitset> features;
  SimilarityMatrix sims;

  explicit PreparedCorpus(SchemaCorpus c,
                          FeatureVectorizerOptions feature_options = {})
      : corpus(std::move(c)),
        tokenizer(),
        lexicon(Lexicon::Build(corpus, tokenizer)),
        features(FeatureVectorizer(lexicon, feature_options)
                     .VectorizeCorpus()),
        sims(features) {}
};

/// One clustering run at (linkage, tau) evaluated against the labels.
struct SweepPoint {
  LinkageKind linkage = LinkageKind::kAverage;
  double tau_c_sim = 0.0;
  ClusteringEvaluation eval;
  DomainModel model;
};

/// Runs Algorithms 2+3 at the given parameters and evaluates (theta fixed
/// at the thesis's 0.02 unless overridden).
inline SweepPoint RunClusteringPoint(const PreparedCorpus& prep,
                                     LinkageKind linkage, double tau,
                                     double theta = 0.02) {
  SweepPoint point;
  point.linkage = linkage;
  point.tau_c_sim = tau;
  HacOptions hac;
  hac.linkage = linkage;
  hac.tau_c_sim = tau;
  auto clustering = Hac::Run(prep.features, prep.sims, hac);
  AssignmentOptions assign;
  assign.tau_c_sim = tau;
  assign.theta = theta;
  auto model = AssignProbabilities(prep.sims, *clustering, assign);
  point.model = std::move(*model);
  point.eval = EvaluateClustering(point.model, prep.corpus);
  return point;
}

/// The tau grid of Figures 6.2-6.6.
inline std::vector<double> FigureTauGrid() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

}  // namespace bench
}  // namespace paygo

#endif  // PAYGO_BENCH_BENCH_UTIL_H_
