/// \file perf_clustering.cc
/// \brief google-benchmark microbenchmarks for the clustering pipeline
/// (Section 4.2's memoized O(n) merge updates, plus Algorithm 1 costs).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/hac.h"
#include "cluster/neighbor_graph.h"
#include "cluster/probabilistic_assignment.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"
#include "synth/ddh_generator.h"
#include "synth/many_domains.h"
#include "text/similarity_index.h"
#include "text/term_similarity.h"
#include "text/tokenizer.h"

namespace paygo {
namespace {

SchemaCorpus CorpusOfSize(std::size_t n) {
  DdhGeneratorOptions opts;
  opts.num_schemas = n;
  return MakeDdhCorpus(opts);
}

struct Prepared {
  SchemaCorpus corpus;
  Tokenizer tokenizer;
  Lexicon lexicon;
  std::vector<DynamicBitset> features;

  explicit Prepared(std::size_t n)
      : corpus(CorpusOfSize(n)),
        lexicon(Lexicon::Build(corpus, tokenizer)),
        features(FeatureVectorizer(lexicon).VectorizeCorpus()) {}
};

void BM_LexiconBuild(benchmark::State& state) {
  const SchemaCorpus corpus = CorpusOfSize(state.range(0));
  Tokenizer tok;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Lexicon::Build(corpus, tok));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LexiconBuild)->Arg(100)->Arg(500)->Arg(2323);

void BM_FeatureVectors(benchmark::State& state) {
  const SchemaCorpus corpus = CorpusOfSize(state.range(0));
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  for (auto _ : state) {
    FeatureVectorizer vec(lexicon);  // includes the similarity index build
    benchmark::DoNotOptimize(vec.VectorizeCorpus());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FeatureVectors)->Arg(100)->Arg(500)->Arg(2323);

void BM_SimilarityMatrix(benchmark::State& state) {
  const Prepared prep(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityMatrix(prep.features));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_SimilarityMatrix)->Arg(100)->Arg(500)->Arg(1000)->Arg(2323);

void BM_HacFastEngine(benchmark::State& state) {
  const Prepared prep(state.range(0));
  const SimilarityMatrix sims(prep.features);
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(prep.features, sims, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HacFastEngine)->Arg(100)->Arg(500)->Arg(1000)->Arg(2323);

void BM_HacNaiveEngine(benchmark::State& state) {
  const Prepared prep(state.range(0));
  const SimilarityMatrix sims(prep.features);
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  opts.use_naive_engine = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(prep.features, sims, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// The naive O(n^3) engine is only practical at small n — that contrast is
// the point.
BENCHMARK(BM_HacNaiveEngine)->Arg(100)->Arg(200);

void BM_HacByLinkage(benchmark::State& state) {
  const Prepared prep(500);
  const SimilarityMatrix sims(prep.features);
  HacOptions opts;
  opts.linkage = static_cast<LinkageKind>(state.range(0));
  opts.tau_c_sim = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(prep.features, sims, opts));
  }
  state.SetLabel(LinkageKindName(opts.linkage));
}
BENCHMARK(BM_HacByLinkage)->DenseRange(0, 3);

void BM_HacSparseWebShape(benchmark::State& state) {
  // The sparse engine's regime: many small feature-disjoint domains.
  ManyDomainOptions gen;
  gen.num_domains = static_cast<std::size_t>(state.range(0));
  const SchemaCorpus corpus = MakeManyDomainCorpus(gen);
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  FeatureVectorizer vec(lexicon);
  const auto features = vec.VectorizeCorpus();
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  opts.use_sparse_engine = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(features, opts));
  }
  state.SetLabel(std::to_string(corpus.size()) + " schemas");
  state.SetItemsProcessed(state.iterations() * corpus.size());
}
BENCHMARK(BM_HacSparseWebShape)->Arg(100)->Arg(300)->Arg(600);

void BM_HacDenseWebShape(benchmark::State& state) {
  // Dense engine on the same web-shape corpora (includes the dense matrix
  // build, which the sparse engine never needs).
  ManyDomainOptions gen;
  gen.num_domains = static_cast<std::size_t>(state.range(0));
  const SchemaCorpus corpus = MakeManyDomainCorpus(gen);
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  FeatureVectorizer vec(lexicon);
  const auto features = vec.VectorizeCorpus();
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(features, opts));
  }
  state.SetLabel(std::to_string(corpus.size()) + " schemas");
  state.SetItemsProcessed(state.iterations() * corpus.size());
}
BENCHMARK(BM_HacDenseWebShape)->Arg(100)->Arg(300);

// --- parallel scaling curves (--threads=N adds N to the sweep) ---
//
// Each benchmark reports one point of the scaling curve; compare the
// /threads:1 row against /threads:4 etc. to read off the speedup (see
// bench/README.md). Thread count 0 = hardware concurrency.

void BM_SimilarityMatrixThreads(benchmark::State& state) {
  const Prepared prep(400);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityMatrix(prep.features, threads));
  }
  state.SetItemsProcessed(state.iterations() * 400 * 400);
}

void BM_HacFastEngineThreads(benchmark::State& state) {
  const Prepared prep(400);
  const SimilarityMatrix sims(prep.features);
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  opts.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(prep.features, sims, opts));
  }
  state.SetItemsProcessed(state.iterations() * 400);
}

void BM_SimilarityIndexThreads(benchmark::State& state) {
  const SchemaCorpus corpus = CorpusOfSize(400);
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityIndex(
        lexicon.terms(), TermSimilarity(TermSimilarityKind::kLcs), 0.8,
        threads));
  }
  state.SetItemsProcessed(state.iterations() * lexicon.dim());
}

void BM_ClusterPipelineThreads(benchmark::State& state) {
  // End to end over the parallel phases: dense matrix build + fast HAC
  // (the convenience overload), at 400 schemas — the acceptance-criteria
  // configuration for the 4-thread speedup.
  const Prepared prep(400);
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  opts.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(prep.features, opts));
  }
  state.SetItemsProcessed(state.iterations() * 400);
}

void BM_AssignProbabilities(benchmark::State& state) {
  const Prepared prep(state.range(0));
  const SimilarityMatrix sims(prep.features);
  HacOptions hac;
  hac.tau_c_sim = 0.25;
  const auto clustering = Hac::Run(prep.features, sims, hac);
  AssignmentOptions assign;
  assign.tau_c_sim = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignProbabilities(sims, *clustering, assign));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AssignProbabilities)->Arg(100)->Arg(500)->Arg(2323);

// --- the sparse-scaling lane (`--sparse-scaling`) ---
//
// Not a google-benchmark microbenchmark: one shot per corpus size, wall
// clock, up to 100k schemas — sizes where the dense engines are not merely
// slow but infeasible (the n^2 similarity matrix alone would be tens of
// GB). Writes a {"mode": "sparse_scaling"} curve to the --json-out file
// (schema documented in bench/README.md) and, under --check, gates on the
// acceptance criteria: sparse >= 5x dense at the largest dense-feasible n
// and bitwise-identical merges at small n across thread counts.

/// True iff the two merge histories are identical, similarity compared
/// bitwise (memcmp on the doubles), not within an epsilon.
bool MergesBitwiseEqual(const HacResult& x, const HacResult& y) {
  if (x.merges.size() != y.merges.size()) return false;
  for (std::size_t i = 0; i < x.merges.size(); ++i) {
    const HacMerge& a = x.merges[i];
    const HacMerge& b = y.merges[i];
    if (a.slot_a != b.slot_a || a.slot_b != b.slot_b) return false;
    if (std::memcmp(&a.similarity, &b.similarity, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct ScalePoint {
  std::size_t n = 0;
  std::size_t dim = 0;
  double sparse_seconds = 0.0;  // exact graph build + sparse HAC
  double graph_seconds = 0.0;   // exact graph build alone
  std::uint64_t edges = 0;
  std::uint64_t candidates = 0;
  double lsh_seconds = 0.0;     // LSH graph build + sparse HAC
  std::uint64_t lsh_edges = 0;
  double dense_seconds = -1.0;  // dense matrix + fast HAC; -1 = not run
  int merges_match_dense = -1;  // 1/0; -1 = dense not run
};

int RunSparseScalingLane(std::size_t max_n, std::size_t dense_max, bool check,
                         const std::string& json_out) {
  using Clock = std::chrono::steady_clock;
  const auto secs = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  HacOptions hac;
  hac.tau_c_sim = 0.25;

  std::vector<std::size_t> ns = {1000, 2000, 5000, 10000, 20000, 50000};
  ns.push_back(max_n);
  if (dense_max > 0 && dense_max <= max_n) ns.push_back(dense_max);
  std::sort(ns.begin(), ns.end());
  ns.erase(std::unique(ns.begin(), ns.end()), ns.end());
  ns.erase(std::remove_if(ns.begin(), ns.end(),
                          [&](std::size_t n) { return n > max_n; }),
           ns.end());

  std::vector<ScalePoint> points;
  bool passed = true;
  std::string failure;

  for (std::size_t n : ns) {
    ManyDomainFeatureOptions gen;
    gen.num_schemas = n;
    const auto features = MakeManyDomainFeatures(gen);
    // Small corpora finish in milliseconds; take best-of-3 so the --check
    // speedup ratio is not timer noise.
    const int reps = n <= 4000 ? 3 : 1;

    ScalePoint p;
    p.n = n;
    p.dim = features.empty() ? 0 : features[0].size();

    Result<HacResult> sparse = HacResult{};
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      NeighborGraphOptions go;
      go.mode = NeighborGraphMode::kExact;
      go.recall_tau = hac.tau_c_sim;
      auto graph = NeighborGraph::Build(features, go);
      if (!graph.ok()) {
        std::fprintf(stderr, "sparse-scaling: graph build failed at n=%zu: %s\n",
                     n, graph.status().message().c_str());
        return 1;
      }
      const auto t1 = Clock::now();
      sparse = Hac::RunOnGraph(*graph, hac);
      if (!sparse.ok()) {
        std::fprintf(stderr, "sparse-scaling: sparse HAC failed at n=%zu: %s\n",
                     n, sparse.status().message().c_str());
        return 1;
      }
      const auto t2 = Clock::now();
      const double total = secs(t0, t2);
      if (r == 0 || total < p.sparse_seconds) {
        p.sparse_seconds = total;
        p.graph_seconds = secs(t0, t1);
      }
      p.edges = graph->num_edges();
      p.candidates = graph->stats().candidates_generated;
    }

    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      NeighborGraphOptions go;
      go.mode = NeighborGraphMode::kMinHashLsh;
      go.recall_tau = hac.tau_c_sim;
      auto graph = NeighborGraph::Build(features, go);
      if (!graph.ok()) {
        std::fprintf(stderr, "sparse-scaling: LSH build failed at n=%zu: %s\n",
                     n, graph.status().message().c_str());
        return 1;
      }
      const auto lsh = Hac::RunOnGraph(*graph, hac);
      if (!lsh.ok()) {
        std::fprintf(stderr, "sparse-scaling: LSH HAC failed at n=%zu: %s\n",
                     n, lsh.status().message().c_str());
        return 1;
      }
      const auto t1 = Clock::now();
      const double total = secs(t0, t1);
      if (r == 0 || total < p.lsh_seconds) p.lsh_seconds = total;
      p.lsh_edges = graph->num_edges();
    }

    if (n <= dense_max) {
      Result<HacResult> dense = HacResult{};
      for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        const SimilarityMatrix sims(features);
        dense = Hac::Run(features, sims, hac);
        const auto t1 = Clock::now();
        if (!dense.ok()) {
          std::fprintf(stderr, "sparse-scaling: dense HAC failed at n=%zu: %s\n",
                       n, dense.status().message().c_str());
          return 1;
        }
        const double total = secs(t0, t1);
        if (r == 0 || total < p.dense_seconds || p.dense_seconds < 0) {
          p.dense_seconds = total;
        }
      }
      p.merges_match_dense = MergesBitwiseEqual(*sparse, *dense) ? 1 : 0;
      if (p.merges_match_dense != 1) {
        passed = false;
        failure = "exact sparse merges differ from dense at n=" +
                  std::to_string(n);
      }
    }

    std::fprintf(stderr,
                 "n=%-7zu dim=%-6zu sparse=%8.3fs (graph %7.3fs, %llu edges, "
                 "%llu cands)  lsh=%8.3fs (%llu edges)  dense=%s\n",
                 p.n, p.dim, p.sparse_seconds, p.graph_seconds,
                 static_cast<unsigned long long>(p.edges),
                 static_cast<unsigned long long>(p.candidates), p.lsh_seconds,
                 static_cast<unsigned long long>(p.lsh_edges),
                 p.dense_seconds < 0
                     ? "-"
                     : (std::to_string(p.dense_seconds) + "s").c_str());
    points.push_back(p);
  }

  // The --check gates.
  double speedup = -1.0;
  std::size_t largest_dense_n = 0;
  for (const ScalePoint& p : points) {
    if (p.dense_seconds >= 0 && p.n > largest_dense_n) {
      largest_dense_n = p.n;
      speedup = p.sparse_seconds > 0 ? p.dense_seconds / p.sparse_seconds : 0;
    }
  }
  constexpr double kRequiredSpeedup = 5.0;
  if (check) {
    if (largest_dense_n == 0) {
      passed = false;
      failure = "--check needs at least one dense-feasible n (--dense-max)";
    } else if (speedup < kRequiredSpeedup) {
      passed = false;
      failure = "sparse speedup " + std::to_string(speedup) + "x at n=" +
                std::to_string(largest_dense_n) + " is below the required " +
                std::to_string(kRequiredSpeedup) + "x";
    }
  }

  // Thread-count determinism at the smallest corpus: the sparse engine must
  // reproduce the dense serial merges bitwise at every thread count.
  std::vector<std::size_t> thread_counts = {1, 2, 4};
  bool threads_identical = true;
  if (check && !ns.empty()) {
    ManyDomainFeatureOptions gen;
    gen.num_schemas = std::min<std::size_t>(ns.front(), 2000);
    const auto features = MakeManyDomainFeatures(gen);
    const SimilarityMatrix sims(features);
    const auto dense = Hac::Run(features, sims, hac);
    if (!dense.ok()) return 1;
    for (std::size_t t : thread_counts) {
      NeighborGraphOptions go;
      go.mode = NeighborGraphMode::kExact;
      go.num_threads = t;
      auto graph = NeighborGraph::Build(features, go);
      if (!graph.ok()) return 1;
      HacOptions topt = hac;
      topt.num_threads = t;
      const auto sparse = Hac::RunOnGraph(*graph, topt);
      if (!sparse.ok() || !MergesBitwiseEqual(*sparse, *dense)) {
        threads_identical = false;
        passed = false;
        failure = "sparse merges at " + std::to_string(t) +
                  " threads differ from the serial dense merges";
      }
    }
  }

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "sparse-scaling: cannot write %s\n",
                   json_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"mode\": \"sparse_scaling\",\n");
    std::fprintf(f, "  \"tau_c_sim\": %.3f,\n", hac.tau_c_sim);
    std::fprintf(f,
                 "  \"generator\": {\"schemas_per_domain\": 32, "
                 "\"words_per_domain\": 24, \"seed\": 97},\n");
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const ScalePoint& p = points[i];
      std::fprintf(f,
                   "    {\"n\": %zu, \"dim\": %zu, \"sparse_seconds\": %.6f, "
                   "\"graph_seconds\": %.6f, \"edges\": %llu, "
                   "\"candidates_generated\": %llu, \"lsh_seconds\": %.6f, "
                   "\"lsh_edges\": %llu, ",
                   p.n, p.dim, p.sparse_seconds, p.graph_seconds,
                   static_cast<unsigned long long>(p.edges),
                   static_cast<unsigned long long>(p.candidates),
                   p.lsh_seconds, static_cast<unsigned long long>(p.lsh_edges));
      if (p.dense_seconds >= 0) {
        std::fprintf(f, "\"dense_seconds\": %.6f, \"speedup\": %.2f, ",
                     p.dense_seconds,
                     p.sparse_seconds > 0 ? p.dense_seconds / p.sparse_seconds
                                          : 0.0);
        std::fprintf(f, "\"merges_match_dense\": %s}",
                     p.merges_match_dense == 1 ? "true" : "false");
      } else {
        std::fprintf(
            f, "\"dense_seconds\": null, \"speedup\": null, "
               "\"merges_match_dense\": null}");
      }
      std::fprintf(f, "%s\n", i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"check\": {\"enabled\": %s, ", check ? "true" : "false");
    if (largest_dense_n > 0) {
      std::fprintf(f,
                   "\"largest_dense_n\": %zu, \"speedup\": %.2f, "
                   "\"required_speedup\": %.1f, ",
                   largest_dense_n, speedup, kRequiredSpeedup);
    }
    std::fprintf(f, "\"threads_bitwise_identical\": %s, \"passed\": %s}\n",
                 threads_identical ? "true" : "false",
                 passed ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "sparse-scaling: wrote %s\n", json_out.c_str());
  }

  if (check && !passed) {
    std::fprintf(stderr, "sparse-scaling: CHECK FAILED: %s\n",
                 failure.c_str());
    return 1;
  }
  if (check) std::fprintf(stderr, "sparse-scaling: check passed\n");
  return 0;
}

}  // namespace
}  // namespace paygo

// Custom main: `--threads=N` (consumed before google-benchmark sees the
// argv) adds N to the thread sweep of the scaling benchmarks, so a box
// with more cores can extend the curve without recompiling:
//
//   bench/perf_clustering --threads=16 \
//       --benchmark_filter='Threads'
//
// `--json-out=FILE` (default BENCH_clustering.json; empty disables)
// forwards to google-benchmark's JSON file reporter, giving CI a
// machine-readable record without memorizing the two underlying flags.
//
// `--sparse-scaling` switches to the hand-rolled dense-matrix-free scaling
// lane instead of google-benchmark (see RunSparseScalingLane above):
//
//   bench/perf_clustering --sparse-scaling --max-n=100000 --dense-max=8000
//       --check
//
// `--max-n=N` caps the corpus sweep (default 100000), `--dense-max=N` is
// the largest n the dense baseline runs at (default 8000; 0 disables the
// baseline), and `--check` exits nonzero unless sparse is >= 5x faster
// than dense at the largest dense-feasible n and the exact sparse merges
// are bitwise-identical to the dense serial merges at 1/2/4 threads.
int main(int argc, char** argv) {
  std::vector<std::size_t> sweep = {1, 2, 4, 8};
  std::string json_out = "BENCH_clustering.json";
  bool user_set_benchmark_out = false;
  bool sparse_scaling = false;
  bool sparse_check = false;
  std::size_t sparse_max_n = 100000;
  std::size_t sparse_dense_max = 8000;
  // Stable storage for flags we synthesize: google-benchmark keeps the
  // char* pointers it is given.
  std::vector<std::string> storage;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--threads=";
    const std::string json_prefix = "--json-out=";
    if (arg.rfind(prefix, 0) == 0) {
      const std::size_t extra = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + prefix.size(), nullptr, 10));
      if (std::find(sweep.begin(), sweep.end(), extra) == sweep.end()) {
        sweep.push_back(extra);
      }
      continue;
    }
    if (arg.rfind(json_prefix, 0) == 0) {
      json_out = arg.substr(json_prefix.size());
      continue;
    }
    if (arg == "--sparse-scaling") {
      sparse_scaling = true;
      continue;
    }
    if (arg == "--check") {
      sparse_check = true;
      continue;
    }
    if (arg.rfind("--max-n=", 0) == 0) {
      sparse_max_n = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + std::strlen("--max-n="), nullptr, 10));
      continue;
    }
    if (arg.rfind("--dense-max=", 0) == 0) {
      sparse_dense_max = static_cast<std::size_t>(std::strtoul(
          arg.c_str() + std::strlen("--dense-max="), nullptr, 10));
      continue;
    }
    if (arg.rfind("--benchmark_out", 0) == 0) user_set_benchmark_out = true;
    args.push_back(argv[i]);
  }
  if (sparse_scaling) {
    return paygo::RunSparseScalingLane(sparse_max_n, sparse_dense_max,
                                       sparse_check, json_out);
  }
  if (!json_out.empty() && !user_set_benchmark_out) {
    storage.push_back("--benchmark_out=" + json_out);
    storage.push_back("--benchmark_out_format=json");
    for (std::string& s : storage) args.push_back(s.data());
  }
  for (auto* bench :
       {benchmark::RegisterBenchmark("BM_SimilarityMatrixThreads",
                                     paygo::BM_SimilarityMatrixThreads),
        benchmark::RegisterBenchmark("BM_HacFastEngineThreads",
                                     paygo::BM_HacFastEngineThreads),
        benchmark::RegisterBenchmark("BM_SimilarityIndexThreads",
                                     paygo::BM_SimilarityIndexThreads),
        benchmark::RegisterBenchmark("BM_ClusterPipelineThreads",
                                     paygo::BM_ClusterPipelineThreads)}) {
    bench->ArgName("threads");
    for (std::size_t t : sweep) {
      bench->Arg(static_cast<std::int64_t>(t));
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
