/// \file perf_clustering.cc
/// \brief google-benchmark microbenchmarks for the clustering pipeline
/// (Section 4.2's memoized O(n) merge updates, plus Algorithm 1 costs).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/hac.h"
#include "cluster/probabilistic_assignment.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"
#include "synth/ddh_generator.h"
#include "synth/many_domains.h"
#include "text/similarity_index.h"
#include "text/term_similarity.h"
#include "text/tokenizer.h"

namespace paygo {
namespace {

SchemaCorpus CorpusOfSize(std::size_t n) {
  DdhGeneratorOptions opts;
  opts.num_schemas = n;
  return MakeDdhCorpus(opts);
}

struct Prepared {
  SchemaCorpus corpus;
  Tokenizer tokenizer;
  Lexicon lexicon;
  std::vector<DynamicBitset> features;

  explicit Prepared(std::size_t n)
      : corpus(CorpusOfSize(n)),
        lexicon(Lexicon::Build(corpus, tokenizer)),
        features(FeatureVectorizer(lexicon).VectorizeCorpus()) {}
};

void BM_LexiconBuild(benchmark::State& state) {
  const SchemaCorpus corpus = CorpusOfSize(state.range(0));
  Tokenizer tok;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Lexicon::Build(corpus, tok));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LexiconBuild)->Arg(100)->Arg(500)->Arg(2323);

void BM_FeatureVectors(benchmark::State& state) {
  const SchemaCorpus corpus = CorpusOfSize(state.range(0));
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  for (auto _ : state) {
    FeatureVectorizer vec(lexicon);  // includes the similarity index build
    benchmark::DoNotOptimize(vec.VectorizeCorpus());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FeatureVectors)->Arg(100)->Arg(500)->Arg(2323);

void BM_SimilarityMatrix(benchmark::State& state) {
  const Prepared prep(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityMatrix(prep.features));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_SimilarityMatrix)->Arg(100)->Arg(500)->Arg(1000)->Arg(2323);

void BM_HacFastEngine(benchmark::State& state) {
  const Prepared prep(state.range(0));
  const SimilarityMatrix sims(prep.features);
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(prep.features, sims, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HacFastEngine)->Arg(100)->Arg(500)->Arg(1000)->Arg(2323);

void BM_HacNaiveEngine(benchmark::State& state) {
  const Prepared prep(state.range(0));
  const SimilarityMatrix sims(prep.features);
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  opts.use_naive_engine = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(prep.features, sims, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// The naive O(n^3) engine is only practical at small n — that contrast is
// the point.
BENCHMARK(BM_HacNaiveEngine)->Arg(100)->Arg(200);

void BM_HacByLinkage(benchmark::State& state) {
  const Prepared prep(500);
  const SimilarityMatrix sims(prep.features);
  HacOptions opts;
  opts.linkage = static_cast<LinkageKind>(state.range(0));
  opts.tau_c_sim = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(prep.features, sims, opts));
  }
  state.SetLabel(LinkageKindName(opts.linkage));
}
BENCHMARK(BM_HacByLinkage)->DenseRange(0, 3);

void BM_HacSparseWebShape(benchmark::State& state) {
  // The sparse engine's regime: many small feature-disjoint domains.
  ManyDomainOptions gen;
  gen.num_domains = static_cast<std::size_t>(state.range(0));
  const SchemaCorpus corpus = MakeManyDomainCorpus(gen);
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  FeatureVectorizer vec(lexicon);
  const auto features = vec.VectorizeCorpus();
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  opts.use_sparse_engine = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(features, opts));
  }
  state.SetLabel(std::to_string(corpus.size()) + " schemas");
  state.SetItemsProcessed(state.iterations() * corpus.size());
}
BENCHMARK(BM_HacSparseWebShape)->Arg(100)->Arg(300)->Arg(600);

void BM_HacDenseWebShape(benchmark::State& state) {
  // Dense engine on the same web-shape corpora (includes the dense matrix
  // build, which the sparse engine never needs).
  ManyDomainOptions gen;
  gen.num_domains = static_cast<std::size_t>(state.range(0));
  const SchemaCorpus corpus = MakeManyDomainCorpus(gen);
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  FeatureVectorizer vec(lexicon);
  const auto features = vec.VectorizeCorpus();
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(features, opts));
  }
  state.SetLabel(std::to_string(corpus.size()) + " schemas");
  state.SetItemsProcessed(state.iterations() * corpus.size());
}
BENCHMARK(BM_HacDenseWebShape)->Arg(100)->Arg(300);

// --- parallel scaling curves (--threads=N adds N to the sweep) ---
//
// Each benchmark reports one point of the scaling curve; compare the
// /threads:1 row against /threads:4 etc. to read off the speedup (see
// bench/README.md). Thread count 0 = hardware concurrency.

void BM_SimilarityMatrixThreads(benchmark::State& state) {
  const Prepared prep(400);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityMatrix(prep.features, threads));
  }
  state.SetItemsProcessed(state.iterations() * 400 * 400);
}

void BM_HacFastEngineThreads(benchmark::State& state) {
  const Prepared prep(400);
  const SimilarityMatrix sims(prep.features);
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  opts.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(prep.features, sims, opts));
  }
  state.SetItemsProcessed(state.iterations() * 400);
}

void BM_SimilarityIndexThreads(benchmark::State& state) {
  const SchemaCorpus corpus = CorpusOfSize(400);
  Tokenizer tok;
  const Lexicon lexicon = Lexicon::Build(corpus, tok);
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimilarityIndex(
        lexicon.terms(), TermSimilarity(TermSimilarityKind::kLcs), 0.8,
        threads));
  }
  state.SetItemsProcessed(state.iterations() * lexicon.dim());
}

void BM_ClusterPipelineThreads(benchmark::State& state) {
  // End to end over the parallel phases: dense matrix build + fast HAC
  // (the convenience overload), at 400 schemas — the acceptance-criteria
  // configuration for the 4-thread speedup.
  const Prepared prep(400);
  HacOptions opts;
  opts.tau_c_sim = 0.25;
  opts.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hac::Run(prep.features, opts));
  }
  state.SetItemsProcessed(state.iterations() * 400);
}

void BM_AssignProbabilities(benchmark::State& state) {
  const Prepared prep(state.range(0));
  const SimilarityMatrix sims(prep.features);
  HacOptions hac;
  hac.tau_c_sim = 0.25;
  const auto clustering = Hac::Run(prep.features, sims, hac);
  AssignmentOptions assign;
  assign.tau_c_sim = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignProbabilities(sims, *clustering, assign));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AssignProbabilities)->Arg(100)->Arg(500)->Arg(2323);

}  // namespace
}  // namespace paygo

// Custom main: `--threads=N` (consumed before google-benchmark sees the
// argv) adds N to the thread sweep of the scaling benchmarks, so a box
// with more cores can extend the curve without recompiling:
//
//   bench/perf_clustering --threads=16 \
//       --benchmark_filter='Threads'
//
// `--json-out=FILE` (default BENCH_clustering.json; empty disables)
// forwards to google-benchmark's JSON file reporter, giving CI a
// machine-readable record without memorizing the two underlying flags.
int main(int argc, char** argv) {
  std::vector<std::size_t> sweep = {1, 2, 4, 8};
  std::string json_out = "BENCH_clustering.json";
  bool user_set_benchmark_out = false;
  // Stable storage for flags we synthesize: google-benchmark keeps the
  // char* pointers it is given.
  std::vector<std::string> storage;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--threads=";
    const std::string json_prefix = "--json-out=";
    if (arg.rfind(prefix, 0) == 0) {
      const std::size_t extra = static_cast<std::size_t>(
          std::strtoul(arg.c_str() + prefix.size(), nullptr, 10));
      if (std::find(sweep.begin(), sweep.end(), extra) == sweep.end()) {
        sweep.push_back(extra);
      }
      continue;
    }
    if (arg.rfind(json_prefix, 0) == 0) {
      json_out = arg.substr(json_prefix.size());
      continue;
    }
    if (arg.rfind("--benchmark_out", 0) == 0) user_set_benchmark_out = true;
    args.push_back(argv[i]);
  }
  if (!json_out.empty() && !user_set_benchmark_out) {
    storage.push_back("--benchmark_out=" + json_out);
    storage.push_back("--benchmark_out_format=json");
    for (std::string& s : storage) args.push_back(s.data());
  }
  for (auto* bench :
       {benchmark::RegisterBenchmark("BM_SimilarityMatrixThreads",
                                     paygo::BM_SimilarityMatrixThreads),
        benchmark::RegisterBenchmark("BM_HacFastEngineThreads",
                                     paygo::BM_HacFastEngineThreads),
        benchmark::RegisterBenchmark("BM_SimilarityIndexThreads",
                                     paygo::BM_SimilarityIndexThreads),
        benchmark::RegisterBenchmark("BM_ClusterPipelineThreads",
                                     paygo::BM_ClusterPipelineThreads)}) {
    bench->ArgName("threads");
    for (std::size_t t : sweep) {
      bench->Arg(static_cast<std::int64_t>(t));
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
