/// \file scalability.cc
/// \brief Corpus-size scaling of the full offline pipeline — the thesis's
/// motivation is web scale ("an order of 10 million high quality HTML
/// forms"), so the cost curves of every stage matter.
///
/// Sweeps DDH-like corpora from 250 to 4646 schemas (2x the thesis's
/// evaluation) and reports per-stage wall time plus the end-to-end total.
/// The quadratic similarity matrix dominates asymptotically, exactly as the
/// memoization analysis of Section 4.2 predicts; classifier setup stays
/// negligible thanks to the factored engine.

#include <iostream>

#include "bench_util.h"
#include "classify/naive_bayes.h"
#include "mediate/mediator.h"
#include "synth/ddh_generator.h"
#include "synth/many_domains.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace paygo;
  std::cout << "=== Pipeline scaling on DDH-like corpora ===\n";
  TablePrinter table({"Schemas", "dim L", "Lexicon(s)", "Features(s)",
                      "SimMatrix(s)", "HAC(s)", "SparseHAC(s)", "Assign(s)",
                      "Mediate(s)", "Classifier(s)", "Total(s)"});
  for (std::size_t n : {250u, 500u, 1000u, 2323u, 4646u}) {
    DdhGeneratorOptions gen;
    gen.num_schemas = n;
    const SchemaCorpus corpus = MakeDdhCorpus(gen);
    WallTimer total;

    WallTimer t;
    Tokenizer tok;
    const Lexicon lexicon = Lexicon::Build(corpus, tok);
    const double t_lex = t.ElapsedSeconds();

    t.Restart();
    FeatureVectorizer vec(lexicon);
    const auto features = vec.VectorizeCorpus();
    const double t_feat = t.ElapsedSeconds();

    t.Restart();
    const SimilarityMatrix sims(features);
    const double t_sims = t.ElapsedSeconds();

    t.Restart();
    HacOptions hac;
    hac.tau_c_sim = 0.25;
    const auto clustering = Hac::Run(features, sims, hac);
    const double t_hac = t.ElapsedSeconds();

    // The sparse engine skips the dense matrix entirely: time it end to
    // end (pair generation + clustering) for the comparison column. DDH is
    // its worst case (dense within-domain blocks), so cap the cell size.
    double t_sparse = -1.0;
    if (n <= 2323) {
      t.Restart();
      HacOptions sparse = hac;
      sparse.use_sparse_engine = true;
      const auto sparse_clustering = Hac::Run(features, sparse);
      t_sparse = t.ElapsedSeconds();
      if (!sparse_clustering.ok() ||
          sparse_clustering->clusters.size() !=
              clustering->clusters.size()) {
        std::cerr << "sparse/dense disagreement at n=" << n << "\n";
        return 1;
      }
    }

    t.Restart();
    AssignmentOptions assign;
    assign.tau_c_sim = 0.25;
    const auto model = AssignProbabilities(sims, *clustering, assign);
    const double t_assign = t.ElapsedSeconds();

    t.Restart();
    std::size_t mediated_attrs = 0;
    for (std::uint32_t r = 0; r < model->num_domains(); ++r) {
      const auto& members = model->SchemasOf(r);
      if (members.empty()) continue;
      const auto med = Mediator::BuildForDomain(corpus, tok, members, {});
      if (med.ok()) mediated_attrs += med->mediated.size();
    }
    const double t_med = t.ElapsedSeconds();

    t.Restart();
    const auto clf =
        NaiveBayesClassifier::Build(*model, features, corpus.size(), {});
    const double t_clf = t.ElapsedSeconds();
    if (!clf.ok()) {
      std::cerr << "classifier failed: " << clf.status() << "\n";
      return 1;
    }

    table.AddRow({std::to_string(n), std::to_string(lexicon.dim()),
                  FormatDouble(t_lex, 3), FormatDouble(t_feat, 3),
                  FormatDouble(t_sims, 3), FormatDouble(t_hac, 3),
                  t_sparse < 0 ? "-" : FormatDouble(t_sparse, 3),
                  FormatDouble(t_assign, 3),
                  FormatDouble(t_med, 3), FormatDouble(t_clf, 3),
                  FormatDouble(total.ElapsedSeconds(), 3)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: lexicon/features grow ~linearly (dim L "
               "saturates at the domain\nvocabulary); the dense similarity "
               "matrix and HAC grow ~quadratically and dominate; the\n"
               "factored classifier setup stays negligible at every size.\n"
               "Note: DDH is the sparse engine's WORST case (5 huge "
               "domains — nearly all within-\ndomain pairs share features, "
               "and hash rows lose to flat arrays); see the next sweep\n"
               "for its intended regime.\n";

  // --- Part 2: the web shape — many small domains (the thesis's actual
  // motivation). Cross-domain pairs share no features, so the sparse
  // engine's work is ~linear in n while dense stays quadratic. ---
  std::cout << "\n=== Web-shape scaling: many small domains (sparse "
               "engine's regime) ===\n";
  TablePrinter web({"Domains", "Schemas", "dim L", "DenseMatrix+HAC(s)",
                    "SparseHAC(s)"});
  for (std::size_t domains : {100u, 300u, 600u, 1200u, 2400u}) {
    ManyDomainOptions gen;
    gen.num_domains = domains;
    const SchemaCorpus corpus = MakeManyDomainCorpus(gen);
    Tokenizer tok;
    const Lexicon lexicon = Lexicon::Build(corpus, tok);
    FeatureVectorizer vec(lexicon);
    const auto features = vec.VectorizeCorpus();

    // Dense comparison capped: it is already 5+ seconds at 600 domains
    // and quadratic beyond.
    double t_dense = -1.0;
    std::size_t dense_clusters = 0;
    if (domains <= 600) {
      WallTimer t;
      HacOptions dense;
      dense.tau_c_sim = 0.25;
      const auto rd = Hac::Run(features, dense);
      t_dense = t.ElapsedSeconds();
      if (!rd.ok()) return 1;
      dense_clusters = rd->clusters.size();
    }

    WallTimer t;
    HacOptions sparse;
    sparse.tau_c_sim = 0.25;
    sparse.use_sparse_engine = true;
    const auto rs = Hac::Run(features, sparse);
    const double t_sparse = t.ElapsedSeconds();
    if (!rs.ok()) return 1;
    if (t_dense >= 0 && rs->clusters.size() != dense_clusters) {
      std::cerr << "sparse/dense disagreement at " << domains
                << " domains\n";
      return 1;
    }
    web.AddRow({std::to_string(domains), std::to_string(corpus.size()),
                std::to_string(lexicon.dim()),
                t_dense < 0 ? "-" : FormatDouble(t_dense, 3),
                FormatDouble(t_sparse, 3)});
  }
  web.Print(std::cout);
  std::cout << "\nExpected shape: dense cost grows ~quadratically in the "
               "schema count; sparse cost\ngrows ~linearly (pairs only "
               "within domains), overtaking dense as domains multiply\n"
               "— the regime web-scale pay-as-you-go integration lives "
               "in.\n";
  return 0;
}
