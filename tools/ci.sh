#!/usr/bin/env bash
# Local CI gate: the tier-1 suite plus a ThreadSanitizer pass over the
# serving runtime's concurrency tests.
#
#   tools/ci.sh            # full run (tier-1 + TSan serve tests)
#   tools/ci.sh --no-tsan  # tier-1 only
#
# Build trees: ./build (plain) and ./build-tsan (PAYGO_SANITIZE=thread).
# Both are incremental across runs.

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_TSAN=1
[[ "${1:-}" == "--no-tsan" ]] && RUN_TSAN=0

JOBS=$(nproc 2>/dev/null || echo 2)

echo "==> tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "==> tier-1: ctest"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "==> smoke: paygo_cli cluster --threads (serial vs parallel)"
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
./build/tools/paygo_cli generate ddh "$SMOKE_DIR/corpus.txt" >/dev/null
./build/tools/paygo_cli cluster "$SMOKE_DIR/corpus.txt" --threads 1 > "$SMOKE_DIR/serial.txt"
./build/tools/paygo_cli cluster "$SMOKE_DIR/corpus.txt" --threads 4 > "$SMOKE_DIR/parallel.txt"
if ! diff -q "$SMOKE_DIR/serial.txt" "$SMOKE_DIR/parallel.txt" >/dev/null; then
  echo "FAIL: --threads 4 clustering differs from --threads 1" >&2
  diff "$SMOKE_DIR/serial.txt" "$SMOKE_DIR/parallel.txt" | head -20 >&2
  exit 1
fi
echo "    serial and 4-thread cluster output identical"

echo "==> smoke: paygo_cli cluster --sparse (dense-matrix-free vs dense)"
# The exact-mode sparse build is merge-for-merge bitwise-identical to the
# dense path, so the CLI output must diff clean — clusters, memberships,
# every printed probability digit.
./build/tools/paygo_cli cluster "$SMOKE_DIR/corpus.txt" > "$SMOKE_DIR/dense.txt"
./build/tools/paygo_cli cluster "$SMOKE_DIR/corpus.txt" --sparse > "$SMOKE_DIR/sparse.txt"
if ! diff -q "$SMOKE_DIR/dense.txt" "$SMOKE_DIR/sparse.txt" >/dev/null; then
  echo "FAIL: --sparse clustering differs from the dense build" >&2
  diff "$SMOKE_DIR/dense.txt" "$SMOKE_DIR/sparse.txt" | head -20 >&2
  exit 1
fi
echo "    dense and sparse cluster output identical"

echo "==> smoke: perf_clustering --sparse-scaling --check (scaled down)"
# The dense-matrix-free scaling lane at CI size: sparse must beat dense by
# >= 5x at the largest dense-feasible n and reproduce the dense merges
# bitwise at 1/2/4 threads (full curve: --max-n=100000 --dense-max=8000;
# schema in bench/README.md).
./build/bench/perf_clustering --sparse-scaling --max-n=4000 --dense-max=2000 \
  --check --json-out="$SMOKE_DIR/BENCH_clustering.json" \
  2> "$SMOKE_DIR/sparse-scaling.log"
echo "    sparse scaling check passed (speedup + bitwise merges)"

echo "==> smoke: serve-bench admin endpoint (/healthz over loopback)"
# A small corpus keeps the system build fast; --admin-port 0 binds an
# ephemeral port that paygo_cli reports on stderr.
./build/tools/paygo_cli generate both "$SMOKE_DIR/admin-corpus.txt" >/dev/null
./build/tools/paygo_cli serve-bench "$SMOKE_DIR/admin-corpus.txt" \
  --serve-seconds 6 --admin-port 0 \
  > "$SMOKE_DIR/serve-bench.json" 2> "$SMOKE_DIR/serve-bench.log" &
SERVE_PID=$!
ADMIN_PORT=""
for _ in $(seq 1 100); do
  ADMIN_PORT=$(sed -n 's/.*admin server listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
    "$SMOKE_DIR/serve-bench.log" | head -1)
  [[ -n "$ADMIN_PORT" ]] && break
  sleep 0.1
done
if [[ -z "$ADMIN_PORT" ]]; then
  echo "FAIL: serve-bench never reported its admin port" >&2
  cat "$SMOKE_DIR/serve-bench.log" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
# curl-free HTTP GET via bash's /dev/tcp.
HEALTHZ_STATUS=$(exec 3<>"/dev/tcp/127.0.0.1/$ADMIN_PORT" \
  && printf 'GET /healthz HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n' >&3 \
  && head -1 <&3; exec 3>&- 2>/dev/null || true)
if [[ "$HEALTHZ_STATUS" != *" 200 "* ]]; then
  echo "FAIL: /healthz on port $ADMIN_PORT answered: $HEALTHZ_STATUS" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
wait "$SERVE_PID"
echo "    /healthz on 127.0.0.1:$ADMIN_PORT answered 200"

echo "==> smoke: perf_write_path --smoke --check (O(delta) classifier refresh)"
# --check fails the run unless the delta write path fully recomputed only
# a small per-add number of domain conditionals (counters
# paygo.classifier.domains_refreshed/domains_reused; DESIGN.md section 8).
./build/bench/perf_write_path --smoke --check --json-out "" \
  > "$SMOKE_DIR/write-path.json"
echo "    delta write path within the O(delta) refresh budget"

echo "==> smoke: perf_classifier --smoke --check (batch sweep >= 2x, p99 budget)"
# The batch-classification regression gate: batch-64 single-thread
# throughput must stay >= 2x batch-1 through the struct-of-arrays sweep,
# and per-query p99 must stay under budget. Writes BENCH_classifier.json
# (schema in bench/README.md).
./build/bench/perf_classifier --smoke --check \
  --json-out "$SMOKE_DIR/BENCH_classifier.json" \
  > "$SMOKE_DIR/classifier.json"
echo "    batch classify sweep within the speedup + p99 budget"

echo "==> smoke: serve_throughput --check (coalesced classify, p99 + errors)"
# A short coalesced-serving run: every steady-phase request must succeed
# and client-observed p99 must stay under the (loose) budget.
./build/bench/serve_throughput --seconds 0.5 --batch-max 8 --check \
  --json-out "" > "$SMOKE_DIR/serve-check.json"
echo "    coalesced serving within the p99 budget, zero errors"

echo "==> smoke: perf_obs_overhead --check (idle tracing + wire propagation)"
# Both idle gates (span sites on the HAC workload, null-context branch on
# the untraced wire path) must stay within the 2% budget. Writes
# BENCH_obs.json (schema in bench/README.md).
./build/bench/perf_obs_overhead --n 200 --reps 3 --pings 100 --check \
  --json-out "$SMOKE_DIR/BENCH_obs.json" > "$SMOKE_DIR/obs-overhead.txt"
echo "    tracing idle + propagation overhead within the 2% budget"

echo "==> smoke: domain-sharded fleet (2 shard primaries + replica + router)"
# Three paygo_cli processes on ephemeral ports: two primaries each serving
# their consistent-hash share of the corpus, plus a read replica of shard 0
# that bootstraps via snapshot replication. The router scatter/gathers one
# cross-domain query across the primaries.
./build/tools/paygo_cli generate both "$SMOKE_DIR/fleet-corpus.txt" >/dev/null

port_from_log() {  # <logfile> <label>  ->  port, or ""
  sed -n "s/.*$2 server listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p" \
    "$1" | head -1
}
wait_for_port() {  # <logfile> <label>
  local port=""
  for _ in $(seq 1 100); do
    port=$(port_from_log "$1" "$2")
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  echo "$port"
}
http_head() {  # <port> <path>  ->  first status line
  exec 3<>"/dev/tcp/127.0.0.1/$1" \
    && printf 'GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n' "$2" >&3 \
    && head -1 <&3; exec 3>&- 2>/dev/null || true
}

FLEET_PIDS=""
stop_fleet() { [[ -n "$FLEET_PIDS" ]] && kill $FLEET_PIDS 2>/dev/null || true; }

# --trace arms each node's Tracer so wire-propagated trace contexts tag
# server-side spans (idle cost only until a traced request arrives).
./build/tools/paygo_cli shard-node "$SMOKE_DIR/fleet-corpus.txt" \
  --shards 2 --shard-index 0 --admin-port 0 --trace \
  2> "$SMOKE_DIR/shard0.log" &
FLEET_PIDS="$!"
./build/tools/paygo_cli shard-node "$SMOKE_DIR/fleet-corpus.txt" \
  --shards 2 --shard-index 1 --admin-port 0 --trace \
  2> "$SMOKE_DIR/shard1.log" &
FLEET_PIDS="$FLEET_PIDS $!"

SHARD0_PORT=$(wait_for_port "$SMOKE_DIR/shard0.log" shard)
SHARD1_PORT=$(wait_for_port "$SMOKE_DIR/shard1.log" shard)
if [[ -z "$SHARD0_PORT" || -z "$SHARD1_PORT" ]]; then
  echo "FAIL: a shard primary never reported its wire port" >&2
  cat "$SMOKE_DIR/shard0.log" "$SMOKE_DIR/shard1.log" >&2
  stop_fleet; exit 1
fi

# The replica starts EMPTY and read-only; its /readyz must flip to 200
# only once the first replicated snapshot has installed.
./build/tools/paygo_cli shard-node --primary "127.0.0.1:$SHARD0_PORT" \
  --poll-ms 50 --admin-port 0 --trace 2> "$SMOKE_DIR/replica.log" &
FLEET_PIDS="$FLEET_PIDS $!"
REPLICA_ADMIN=$(wait_for_port "$SMOKE_DIR/replica.log" admin)
REPLICA_PORT=$(wait_for_port "$SMOKE_DIR/replica.log" shard)

for NODE in "shard0:$(port_from_log "$SMOKE_DIR/shard0.log" admin)" \
            "shard1:$(port_from_log "$SMOKE_DIR/shard1.log" admin)" \
            "replica:$REPLICA_ADMIN"; do
  NAME=${NODE%%:*}; PORT=${NODE##*:}
  if [[ -z "$PORT" ]]; then
    echo "FAIL: $NAME never reported its admin port" >&2
    stop_fleet; exit 1
  fi
  READY=""
  for _ in $(seq 1 100); do
    READY=$(http_head "$PORT" /readyz)
    [[ "$READY" == *" 200 "* ]] && break
    sleep 0.1
  done
  if [[ "$READY" != *" 200 "* ]]; then
    echo "FAIL: /readyz on $NAME (port $PORT) answered: $READY" >&2
    stop_fleet; exit 1
  fi
  echo "    /readyz on $NAME (127.0.0.1:$PORT) answered 200"
done

# One cross-domain query through the router; a non-empty merged ranking
# over both shards is the contract (shard-router exits 1 on empty).
if ! ./build/tools/paygo_cli shard-router used car price listing \
    --shard "127.0.0.1:$SHARD0_PORT" --shard "127.0.0.1:$SHARD1_PORT" \
    > "$SMOKE_DIR/router.txt"; then
  echo "FAIL: router scatter/gather returned no merged ranking" >&2
  cat "$SMOKE_DIR/router.txt" >&2
  stop_fleet; exit 1
fi
if ! grep -q "(2/2 shards answered)" "$SMOKE_DIR/router.txt"; then
  echo "FAIL: router did not merge both shards:" >&2
  cat "$SMOKE_DIR/router.txt" >&2
  stop_fleet; exit 1
fi
echo "    router merged a cross-domain ranking over 2/2 shards"

# Traced scatter over the whole fleet (2 primaries + the replica): one
# trace id propagates to every process, and --fleet-trace-out merges the
# per-process events into a single Chrome trace (pid 1 = router, pids
# 2/3/4 = the shards in --shard order, clocks RTT-aligned).
if [[ -z "$REPLICA_PORT" ]]; then
  echo "FAIL: replica never reported its wire port" >&2
  stop_fleet; exit 1
fi
if ! ./build/tools/paygo_cli shard-router used car price listing \
    --shard "127.0.0.1:$SHARD0_PORT" --shard "127.0.0.1:$SHARD1_PORT" \
    --shard "127.0.0.1:$REPLICA_PORT" \
    --trace --fleet-trace-out "$SMOKE_DIR/fleet-trace.json" \
    > "$SMOKE_DIR/router-traced.txt" 2> "$SMOKE_DIR/router-traced.log"; then
  echo "FAIL: traced router scatter failed" >&2
  cat "$SMOKE_DIR/router-traced.txt" "$SMOKE_DIR/router-traced.log" >&2
  stop_fleet; exit 1
fi
if ! grep -q "(3/3 shards answered)" "$SMOKE_DIR/router-traced.txt" \
    || ! grep -q "^trace id: [1-9]" "$SMOKE_DIR/router-traced.txt"; then
  echo "FAIL: traced scatter did not cover the fleet under a trace id:" >&2
  cat "$SMOKE_DIR/router-traced.txt" >&2
  stop_fleet; exit 1
fi
# Every process contributed: client-side spans on pid 1, server-side
# request spans under each shard's synthetic pid.
for SPAN in '"name": "router.scatter", "ph": "X", "pid": 1' \
            '"name": "serve.request", "ph": "X", "pid": 2' \
            '"name": "serve.request", "ph": "X", "pid": 3' \
            '"name": "serve.request", "ph": "X", "pid": 4'; do
  if ! grep -qF "$SPAN" "$SMOKE_DIR/fleet-trace.json"; then
    echo "FAIL: merged fleet trace is missing [$SPAN]" >&2
    head -40 "$SMOKE_DIR/fleet-trace.json" >&2
    stop_fleet; exit 1
  fi
done
echo "    merged fleet trace spans router + 2 primaries + replica"

# Persistent router: serve /fleet_tracez as the fleet's trace vantage
# point; the merged timeline must carry spans from both primaries.
http_get_body() {  # <port> <path>  ->  response body
  exec 3<>"/dev/tcp/127.0.0.1/$1" \
    && printf 'GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n' "$2" >&3 \
    && sed '1,/^\r$/d' <&3; exec 3>&- 2>/dev/null || true
}
./build/tools/paygo_cli shard-router used car price listing \
  --shard "127.0.0.1:$SHARD0_PORT" --shard "127.0.0.1:$SHARD1_PORT" \
  --trace --admin-port 0 \
  > "$SMOKE_DIR/router-persistent.txt" 2> "$SMOKE_DIR/router-persistent.log" &
ROUTER_PID=$!
FLEET_PIDS="$FLEET_PIDS $ROUTER_PID"
ROUTER_ADMIN=$(wait_for_port "$SMOKE_DIR/router-persistent.log" admin)
if [[ -z "$ROUTER_ADMIN" ]]; then
  echo "FAIL: persistent router never reported its admin port" >&2
  cat "$SMOKE_DIR/router-persistent.log" >&2
  stop_fleet; exit 1
fi
FLEET_TRACE_OK=0
for _ in $(seq 1 100); do
  http_get_body "$ROUTER_ADMIN" /fleet_tracez > "$SMOKE_DIR/fleet-tracez.json"
  if grep -qF '"name": "serve.request", "ph": "X", "pid": 2' \
        "$SMOKE_DIR/fleet-tracez.json" \
      && grep -qF '"name": "serve.request", "ph": "X", "pid": 3' \
        "$SMOKE_DIR/fleet-tracez.json"; then
    FLEET_TRACE_OK=1
    break
  fi
  sleep 0.1
done
if [[ "$FLEET_TRACE_OK" != 1 ]]; then
  echo "FAIL: /fleet_tracez never showed spans from both primaries" >&2
  head -40 "$SMOKE_DIR/fleet-tracez.json" >&2
  stop_fleet; exit 1
fi
echo "    /fleet_tracez on 127.0.0.1:$ROUTER_ADMIN merged both primaries"

# Clean shutdown: SIGTERM each node and require exit code 0.
FLEET_RC=0
kill -TERM $FLEET_PIDS
for PID in $FLEET_PIDS; do
  wait "$PID" || FLEET_RC=$?
done
if [[ "$FLEET_RC" != 0 ]]; then
  echo "FAIL: a fleet member did not shut down cleanly (rc=$FLEET_RC)" >&2
  exit 1
fi
echo "    fleet shut down cleanly"

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "==> tsan: configure + build serve + admin + trace + parallel tests (PAYGO_SANITIZE=thread)"
  cmake -B build-tsan -S . -DPAYGO_SANITIZE=thread >/dev/null
  cmake --build build-tsan --target serve_test serve_concurrency_test trace_test \
    clone_aliasing_test admin_server_test thread_pool_test \
    parallel_determinism_test shard_replication_test fleet_trace_test \
    zero_alloc_test batch_classify_test bitset_kernel_test \
    sparse_hac_test neighbor_graph_test -j "$JOBS"

  echo "==> tsan: trace_test"
  ./build-tsan/tests/trace_test
  echo "==> tsan: serve_test"
  ./build-tsan/tests/serve_test
  echo "==> tsan: serve_concurrency_test (tracing enabled)"
  ./build-tsan/tests/serve_concurrency_test
  echo "==> tsan: clone_aliasing_test (readers on retained snapshot vs writer)"
  ./build-tsan/tests/clone_aliasing_test
  echo "==> tsan: admin_server_test (concurrent scrapes vs rebuilds)"
  ./build-tsan/tests/admin_server_test
  echo "==> tsan: shard_replication_test (replication + degraded scatter)"
  ./build-tsan/tests/shard_replication_test
  echo "==> tsan: fleet_trace_test (wire-propagated contexts + trace merge)"
  ./build-tsan/tests/fleet_trace_test
  echo "==> tsan: bitset_kernel_test (vectorized vs scalar differential)"
  ./build-tsan/tests/bitset_kernel_test
  echo "==> tsan: batch_classify_test (batch vs single, concurrent callers)"
  ./build-tsan/tests/batch_classify_test
  echo "==> tsan: zero_alloc_test (steady-state classify allocates nothing)"
  ./build-tsan/tests/zero_alloc_test
  echo "==> tsan: thread_pool_test + parallel_determinism_test + sparse suites (ctest -j)"
  # Instrumented LCS scans are slow; the determinism harness and the
  # sparse-vs-dense fuzz honor PAYGO_DETERMINISM_SMALL and shrink their
  # corpora / round counts under TSan. sparse_hac_test and
  # neighbor_graph_test exercise the multi-threaded NeighborGraph build
  # and the parallel sparse row combines under the race detector.
  (cd build-tsan && PAYGO_DETERMINISM_SMALL=1 \
    ctest --output-on-failure -j "$JOBS" \
      -R '^(thread_pool_test|parallel_determinism_test|sparse_hac_test|neighbor_graph_test)$')
fi

echo "==> ci: all green"
