#!/usr/bin/env bash
# Local CI gate: the tier-1 suite plus a ThreadSanitizer pass over the
# serving runtime's concurrency tests.
#
#   tools/ci.sh            # full run (tier-1 + TSan serve tests)
#   tools/ci.sh --no-tsan  # tier-1 only
#
# Build trees: ./build (plain) and ./build-tsan (PAYGO_SANITIZE=thread).
# Both are incremental across runs.

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_TSAN=1
[[ "${1:-}" == "--no-tsan" ]] && RUN_TSAN=0

JOBS=$(nproc 2>/dev/null || echo 2)

echo "==> tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "==> tier-1: ctest"
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "==> tsan: configure + build serve + trace tests (PAYGO_SANITIZE=thread)"
  cmake -B build-tsan -S . -DPAYGO_SANITIZE=thread >/dev/null
  cmake --build build-tsan --target serve_test serve_concurrency_test trace_test -j "$JOBS"

  echo "==> tsan: trace_test"
  ./build-tsan/tests/trace_test
  echo "==> tsan: serve_test"
  ./build-tsan/tests/serve_test
  echo "==> tsan: serve_concurrency_test (tracing enabled)"
  ./build-tsan/tests/serve_concurrency_test
fi

echo "==> ci: all green"
