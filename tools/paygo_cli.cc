/// \file paygo_cli.cc
/// \brief Command-line front end to the paygo library.
///
/// Subcommands:
///   generate <dw|ss|both|ddh> <out-file>     emit a synthetic corpus
///   stats <corpus-file>                      Table 6.1-style statistics
///   cluster <corpus-file> [opts]             cluster into domains, print them
///   classify <corpus-file> <keywords...>     rank domains for a query
///   snapshot <corpus-file> <snapshot-file>   build and persist a system
///   query <snapshot-file> <keywords...>      classify against a snapshot
///   dendrogram <corpus-file>                 print the merge tree
///   bench-queries <corpus-file>              top-k quality on generated
///                                            queries (labels required)
///   serve-bench <corpus-file>                closed-loop load test of the
///                                            concurrent serving runtime
///                                            (JSON report)
///   shard-node <corpus-file>                 run one shard server (wire
///                                            protocol + admin HTTP) until
///                                            SIGINT/SIGTERM; --primary
///                                            turns it into a read replica
///   shard-router <keywords...> --shard a:p   one-shot cross-domain
///                                            scatter/gather over a fleet
///
/// Common options: --tau <v> (tau_c_sim, default 0.25), --theta <v>
/// (default 0.02), --linkage <avg|min|max|total>, --eval (score clustering
/// against the corpus labels, when present), --newick (dendrogram format),
/// --queries <n> (per size, default 50). serve-bench options:
/// --serve-threads, --serve-seconds, --serve-workers, --serve-queue-depth,
/// --human.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "classify/query_featurizer.h"
#include "cluster/dendrogram.h"
#include "core/integration_system.h"
#include "eval/classification_metrics.h"
#include "eval/clustering_metrics.h"
#include "obs/admin_server.h"
#include "obs/build_info.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "persist/model_io.h"
#include "schema/corpus_io.h"
#include "serve/load_generator.h"
#include "serve/paygo_server.h"
#include "shard/hash_ring.h"
#include "shard/router.h"
#include "shard/shard_node.h"
#include "synth/ddh_generator.h"
#include "synth/query_generator.h"
#include "synth/web_generator.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace paygo;

int Usage() {
  std::cerr <<
      R"(usage: paygo_cli <command> [args]

commands:
  generate <dw|ss|both|ddh> <out-file>   write a synthetic corpus file
  stats <corpus-file>                    corpus statistics (Table 6.1 style)
  cluster <corpus-file> [opts]           discover domains and print them
  classify <corpus-file> <keywords...>   rank domains for a keyword query
  snapshot <corpus-file> <snapshot-file> build a system and persist it
  query <snapshot-file> <keywords...>    classify against a saved snapshot
  serve-bench <corpus-file>              load-test the concurrent serving
                                         runtime; emits a JSON report
  shard-node <corpus-file>               serve one shard over the wire
                                         protocol until SIGINT/SIGTERM
  shard-router <keywords...> --shard a:p cross-domain scatter/gather query
                                         over a running fleet (one-shot, or
                                         persistent with --admin-port)
  --version                              print build provenance (bitset
                                         kernel, cmake toggles, compiler)

options (cluster/classify/snapshot):
  --batch <n>     (classify) score the query n times through one batch
                  sweep AND the single path, verify the rankings are
                  identical, and report both per-query timings
  --tau <v>       clustering threshold tau_c_sim (default 0.25)
  --theta <v>     uncertainty threshold theta (default 0.02)
  --linkage <k>   avg | min | max | total (default avg)
  --threads <n>   worker threads for clustering + index builds
                  (0 = hardware concurrency, default 1 = serial;
                  results are bit-identical at any setting)
  --sparse        (cluster) dense-matrix-free build: cluster over the
                  sparse neighbor graph instead of the O(n^2) similarity
                  matrix; output is bitwise identical to the dense build
  --lsh           with --sparse: approximate candidate generation via
                  MinHash/LSH banding (recall-bounded at tau; every
                  surviving edge still exactly verified)
  --eval          also score clustering against corpus labels

options (serve-bench):
  --serve-threads <n>      client threads (default 4)
  --serve-seconds <s>      load duration per phase (default 2)
  --serve-workers <n>      server worker threads (default 4)
  --serve-queue-depth <n>  admission-control queue depth (default 256)
  --slow-us <n>            slow-query log threshold in us (default 0:
                           every request qualifies for the slow_queries
                           section of the JSON report)
  --admin-port <p>         serve the admin HTTP endpoint on 127.0.0.1:<p>
                           while the bench runs (0 = ephemeral port; the
                           bound port is printed to stderr). Endpoints:
                           /metrics /varz /healthz /readyz /statusz
                           /slowz /tracez
  --export-jsonl <file>    append periodic metric snapshots to <file>
                           (one JSON object per line)
  --export-interval-ms <n> exporter wake interval (default 1000)
  --human                  readable summary instead of JSON

options (shard-node/shard-router):
  --shard-port <p>         wire-protocol port (default 0 = ephemeral; the
                           bound port is printed to stderr as
                           "shard server listening on 127.0.0.1:<p>")
  --primary <host:port>    run as a read replica of that primary: start
                           empty, pull snapshots/deltas, serve reads only
                           (no corpus file; /readyz flips 200 when the
                           first replicated snapshot installs)
  --shards <n>             with --shard-index: consistent-hash partition
  --shard-index <i>        the corpus and serve only shard i's share
  --poll-ms <n>            replica poll cadence (default 200)
  --shard <host:port>      (shard-router; repeatable) fleet member to
                           scatter the query to
  --trace                  (shard-node/shard-router) enable tracing without
                           a trace file: shard nodes record spans for
                           wire-propagated trace contexts, the router
                           propagates a trace id with every scatter
  --fleet-trace-out <file> (shard-router) after the query, pull matching
                           spans from every shard (kTraceFetch), merge
                           into one Chrome trace (pid per shard, clocks
                           aligned by RTT midpoint), and write it here
  --admin-port <p>         (shard-router) keep serving after the query:
                           admin HTTP on 127.0.0.1:<p> with /shardz /slowz
                           /fleet_tracez (+ obs endpoints) until SIGTERM

observability (cluster/classify/serve-bench):
  --trace-out <file>  enable tracing; write Chrome trace-event JSON on
                      exit (load in Perfetto / chrome://tracing)
  --stats-json <file> write the StatsRegistry dump as JSON on exit
)";
  return 2;
}

struct CliOptions {
  SystemOptions system;
  bool eval = false;
  bool newick = false;
  bool human = false;
  std::size_t queries_per_size = 50;
  std::size_t classify_batch = 0;  // 0/1 = single path; N>1 = batch sweep
  std::size_t serve_threads = 4;
  double serve_seconds = 2.0;
  std::size_t serve_workers = 4;
  std::size_t serve_queue_depth = 256;
  std::uint64_t slow_us = 0;
  int admin_port = -1;
  std::string export_jsonl;
  std::uint64_t export_interval_ms = 1000;
  std::string trace_out;
  std::string stats_json;
  bool trace = false;
  std::string fleet_trace_out;
  int shard_port = 0;
  std::string primary;
  std::size_t shards_total = 0;
  std::size_t shard_index = 0;
  std::uint64_t poll_ms = 200;
  std::vector<std::string> shard_addrs;
  std::vector<std::string> positional;
};

bool ParseCommon(int argc, char** argv, int first, CliOptions* out) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--tau") {
      const char* v = next();
      if (!v) return false;
      out->system.hac.tau_c_sim = std::atof(v);
      out->system.assignment.tau_c_sim = out->system.hac.tau_c_sim;
    } else if (arg == "--theta") {
      const char* v = next();
      if (!v) return false;
      out->system.assignment.theta = std::atof(v);
    } else if (arg == "--linkage") {
      const char* v = next();
      if (!v) return false;
      const std::string k = v;
      if (k == "avg") {
        out->system.hac.linkage = LinkageKind::kAverage;
      } else if (k == "min") {
        out->system.hac.linkage = LinkageKind::kMin;
      } else if (k == "max") {
        out->system.hac.linkage = LinkageKind::kMax;
      } else if (k == "total") {
        out->system.hac.linkage = LinkageKind::kTotal;
      } else {
        std::cerr << "unknown linkage '" << k << "'\n";
        return false;
      }
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      const std::size_t n = static_cast<std::size_t>(std::atoi(v));
      out->system.hac.num_threads = n;
      out->system.features.num_threads = n;
    } else if (arg == "--sparse") {
      out->system.sparse_build = true;
    } else if (arg == "--lsh") {
      out->system.sparse_build = true;
      out->system.neighbor_graph.mode = NeighborGraphMode::kMinHashLsh;
    } else if (arg == "--eval") {
      out->eval = true;
    } else if (arg == "--newick") {
      out->newick = true;
    } else if (arg == "--queries") {
      const char* v = next();
      if (!v) return false;
      out->queries_per_size = static_cast<std::size_t>(std::atoi(v));
      if (out->queries_per_size == 0) return false;
    } else if (arg == "--serve-threads") {
      const char* v = next();
      if (!v) return false;
      out->serve_threads = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--serve-seconds") {
      const char* v = next();
      if (!v) return false;
      out->serve_seconds = std::atof(v);
    } else if (arg == "--serve-workers") {
      const char* v = next();
      if (!v) return false;
      out->serve_workers = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--serve-queue-depth") {
      const char* v = next();
      if (!v) return false;
      out->serve_queue_depth = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--slow-us") {
      const char* v = next();
      if (!v) return false;
      out->slow_us = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--admin-port") {
      const char* v = next();
      if (!v) return false;
      out->admin_port = std::atoi(v);
    } else if (arg == "--export-jsonl") {
      const char* v = next();
      if (!v) return false;
      out->export_jsonl = v;
    } else if (arg == "--export-interval-ms") {
      const char* v = next();
      if (!v) return false;
      out->export_interval_ms = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--shard-port") {
      const char* v = next();
      if (!v) return false;
      out->shard_port = std::atoi(v);
    } else if (arg == "--primary") {
      const char* v = next();
      if (!v) return false;
      out->primary = v;
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return false;
      out->shards_total = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--shard-index") {
      const char* v = next();
      if (!v) return false;
      out->shard_index = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--poll-ms") {
      const char* v = next();
      if (!v) return false;
      out->poll_ms = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--shard") {
      const char* v = next();
      if (!v) return false;
      out->shard_addrs.push_back(v);
    } else if (arg == "--batch") {
      const char* v = next();
      if (!v) return false;
      out->classify_batch = static_cast<std::size_t>(std::atoi(v));
      if (out->classify_batch == 0) return false;
    } else if (arg.rfind("--batch=", 0) == 0) {
      out->classify_batch =
          static_cast<std::size_t>(std::atoi(arg.c_str() + 8));
      if (out->classify_batch == 0) return false;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      out->trace_out = v;
    } else if (arg == "--trace") {
      out->trace = true;
    } else if (arg == "--fleet-trace-out") {
      const char* v = next();
      if (!v) return false;
      out->fleet_trace_out = v;
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (!v) return false;
      out->stats_json = v;
    } else if (arg == "--human") {
      out->human = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      return false;
    } else {
      out->positional.push_back(arg);
    }
  }
  // The LSH recall guarantee is evaluated at the clustering threshold,
  // whatever order --tau and --lsh appeared in.
  out->system.neighbor_graph.recall_tau = out->system.hac.tau_c_sim;
  if (out->system.sparse_build) out->system.hac.use_sparse_engine = true;
  return true;
}

/// Flushes the trace / stats files requested via --trace-out /
/// --stats-json. Returns 0, or 1 when a file could not be written.
int WriteObservabilityOutputs(const CliOptions& cli) {
  int rc = 0;
  if (!cli.trace_out.empty()) {
    if (Status s = Tracer::WriteChromeTrace(cli.trace_out); !s.ok()) {
      std::cerr << s << "\n";
      rc = 1;
    } else {
      std::cerr << "wrote trace to " << cli.trace_out << "\n";
    }
  }
  if (!cli.stats_json.empty()) {
    std::ofstream out(cli.stats_json, std::ios::trunc);
    out << StatsRegistry::Global().ToJson() << "\n";
    if (!out) {
      std::cerr << "failed writing stats file " << cli.stats_json << "\n";
      rc = 1;
    } else {
      std::cerr << "wrote stats to " << cli.stats_json << "\n";
    }
  }
  return rc;
}

int CmdGenerate(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  SchemaCorpus corpus;
  if (args[0] == "dw") {
    corpus = MakeDwCorpus();
  } else if (args[0] == "ss") {
    corpus = MakeSsCorpus();
  } else if (args[0] == "both") {
    corpus = MakeDwSsCorpus();
  } else if (args[0] == "ddh") {
    corpus = MakeDdhCorpus();
  } else {
    std::cerr << "unknown corpus '" << args[0] << "'\n";
    return 2;
  }
  if (Status s = SaveCorpusFile(corpus, args[1]); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "wrote " << corpus.size() << " schemas to " << args[1] << "\n";
  return 0;
}

Result<SchemaCorpus> LoadOrFail(const std::string& path) {
  auto corpus = LoadCorpusFile(path);
  if (!corpus.ok()) std::cerr << corpus.status() << "\n";
  return corpus;
}

int CmdStats(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  const auto corpus = LoadOrFail(args[0]);
  if (!corpus.ok()) return 1;
  Tokenizer tok;
  const CorpusStats s = corpus->ComputeStats(tok);
  TablePrinter table({"Statistic", "Value"});
  table.AddRow({"Number of schemas", std::to_string(s.num_schemas)});
  table.AddRow({"Max terms per schema",
                std::to_string(s.max_terms_per_schema)});
  table.AddRow({"Avg terms per schema",
                FormatDouble(s.avg_terms_per_schema, 1)});
  table.AddRow({"Number of labels", std::to_string(s.num_labels)});
  table.AddRow({"Max labels per schema",
                std::to_string(s.max_labels_per_schema)});
  table.AddRow({"Avg labels per schema",
                FormatDouble(s.avg_labels_per_schema, 2)});
  table.AddRow({"Max schemas per label",
                std::to_string(s.max_schemas_per_label)});
  table.AddRow({"Avg schemas per label",
                FormatDouble(s.avg_schemas_per_label, 2)});
  table.Print(std::cout);
  return 0;
}

int CmdCluster(const CliOptions& cli) {
  if (cli.positional.size() != 1) return Usage();
  auto corpus = LoadOrFail(cli.positional[0]);
  if (!corpus.ok()) return 1;
  SystemOptions options = cli.system;
  options.build_classifier = false;
  auto sys = IntegrationSystem::Build(std::move(*corpus), options);
  if (!sys.ok()) {
    std::cerr << sys.status() << "\n";
    return 1;
  }
  const IntegrationSystem& s = **sys;
  std::size_t singletons = 0;
  for (std::uint32_t r = 0; r < s.domains().num_domains(); ++r) {
    if (s.domains().IsSingletonDomain(r)) {
      ++singletons;
      continue;
    }
    std::cout << s.DescribeDomain(r) << "\n";
  }
  std::cout << singletons << " schemas left unclustered.\n";
  if (cli.eval) {
    const ClusteringEvaluation eval =
        EvaluateClustering(s.domains(), s.corpus());
    std::cout << "\nprecision " << FormatDouble(eval.avg_precision, 3)
              << "  recall " << FormatDouble(eval.avg_recall, 3)
              << "  unclustered " << FormatDouble(eval.frac_unclustered, 3)
              << "  non-homogeneous "
              << FormatDouble(eval.frac_non_homogeneous, 3)
              << "  fragmentation " << FormatDouble(eval.fragmentation, 2)
              << "\n";
  }
  return WriteObservabilityOutputs(cli);
}

int PrintRanking(const IntegrationSystem& sys, const std::string& query) {
  auto suggestions = sys.SuggestDomains(query, 5);
  if (!suggestions.ok()) {
    std::cerr << suggestions.status() << "\n";
    return 1;
  }
  std::cout << "query: \"" << query << "\"\n";
  for (std::size_t k = 0; k < suggestions->size(); ++k) {
    const DomainSuggestion& d = (*suggestions)[k];
    std::cout << k + 1 << ". domain " << d.domain << " (score "
              << FormatDouble(d.log_posterior, 2) << ")";
    std::size_t shown = 0;
    for (const std::string& a : d.mediated_attributes) {
      std::cout << (shown == 0 ? " :" : "") << " [" << a << "]";
      if (++shown >= 8) {
        std::cout << " ...";
        break;
      }
    }
    std::cout << "\n";
  }
  return 0;
}

int CmdClassify(const CliOptions& cli) {
  if (cli.positional.size() < 2) return Usage();
  auto corpus = LoadOrFail(cli.positional[0]);
  if (!corpus.ok()) return 1;
  auto sys = IntegrationSystem::Build(std::move(*corpus), cli.system);
  if (!sys.ok()) {
    std::cerr << sys.status() << "\n";
    return 1;
  }
  std::vector<std::string> keywords(cli.positional.begin() + 1,
                                    cli.positional.end());
  const std::string query = Join(keywords, " ");
  if (cli.classify_batch > 1) {
    // --batch N: score the query N times through ONE batch sweep and N
    // times through the single path, verify the rankings are identical
    // (they are bitwise-equal by construction), and report both timings.
    using Clock = std::chrono::steady_clock;
    const std::vector<std::string> replicated(cli.classify_batch, query);

    const Clock::time_point b0 = Clock::now();
    auto batched = (*sys)->ClassifyKeywordQueryBatch(replicated);
    const double batch_us =
        std::chrono::duration<double, std::micro>(Clock::now() - b0).count();
    if (!batched.ok()) {
      std::cerr << batched.status() << "\n";
      return 1;
    }

    const Clock::time_point s0 = Clock::now();
    Result<std::vector<DomainScore>> single = std::vector<DomainScore>{};
    for (std::size_t i = 0; i < cli.classify_batch; ++i) {
      single = (*sys)->ClassifyKeywordQuery(query);
      if (!single.ok()) {
        std::cerr << single.status() << "\n";
        return 1;
      }
    }
    const double single_us =
        std::chrono::duration<double, std::micro>(Clock::now() - s0).count();

    for (const std::vector<DomainScore>& ranking : *batched) {
      if (ranking.size() != single->size()) {
        std::cerr << "batch/single ranking size mismatch\n";
        return 1;
      }
      for (std::size_t k = 0; k < ranking.size(); ++k) {
        if (ranking[k].domain != (*single)[k].domain ||
            ranking[k].log_posterior != (*single)[k].log_posterior) {
          std::cerr << "batch/single ranking DIVERGED at rank " << k
                    << " (this is a bug: the paths are bitwise-equal by "
                       "construction)\n";
          return 1;
        }
      }
    }
    const double n = static_cast<double>(cli.classify_batch);
    std::cout << "batch " << cli.classify_batch << ": "
              << FormatDouble(batch_us / n, 2) << "us/query (one sweep), "
              << "single path: " << FormatDouble(single_us / n, 2)
              << "us/query; rankings identical\n";
  }
  if (int rc = PrintRanking(**sys, query); rc != 0) return rc;
  return WriteObservabilityOutputs(cli);
}

int CmdSnapshot(const CliOptions& cli) {
  if (cli.positional.size() != 2) return Usage();
  auto corpus = LoadOrFail(cli.positional[0]);
  if (!corpus.ok()) return 1;
  auto sys = IntegrationSystem::Build(std::move(*corpus), cli.system);
  if (!sys.ok()) {
    std::cerr << sys.status() << "\n";
    return 1;
  }
  if (Status s = SaveSnapshot(**sys, cli.positional[1]); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "snapshot with " << (*sys)->domains().num_domains()
            << " domains written to " << cli.positional[1] << "\n";
  return 0;
}

int CmdQuery(const CliOptions& cli) {
  if (cli.positional.size() < 2) return Usage();
  auto sys = LoadSnapshot(cli.positional[0], cli.system);
  if (!sys.ok()) {
    std::cerr << sys.status() << "\n";
    return 1;
  }
  std::vector<std::string> keywords(cli.positional.begin() + 1,
                                    cli.positional.end());
  return PrintRanking(**sys, Join(keywords, " "));
}

int CmdDendrogram(const CliOptions& cli) {
  if (cli.positional.size() != 1) return Usage();
  auto corpus = LoadOrFail(cli.positional[0]);
  if (!corpus.ok()) return 1;
  SystemOptions options = cli.system;
  options.build_classifier = false;
  options.build_mediation = false;
  auto sys = IntegrationSystem::Build(std::move(*corpus), options);
  if (!sys.ok()) {
    std::cerr << sys.status() << "\n";
    return 1;
  }
  const auto dendro = Dendrogram::Build((*sys)->corpus().size(),
                                        (*sys)->clustering());
  if (!dendro.ok()) {
    std::cerr << dendro.status() << "\n";
    return 1;
  }
  std::cout << (cli.newick ? dendro->ToNewick(&(*sys)->corpus())
                           : dendro->ToAscii(&(*sys)->corpus()));
  return 0;
}

int CmdBenchQueries(const CliOptions& cli) {
  if (cli.positional.size() != 1) return Usage();
  auto corpus = LoadOrFail(cli.positional[0]);
  if (!corpus.ok()) return 1;
  if (corpus->AllLabels().empty()) {
    std::cerr << "bench-queries needs ground-truth labels in the corpus\n";
    return 1;
  }
  SystemOptions options = cli.system;
  options.build_mediation = false;
  auto sys = IntegrationSystem::Build(std::move(*corpus), options);
  if (!sys.ok()) {
    std::cerr << sys.status() << "\n";
    return 1;
  }
  const IntegrationSystem& s = **sys;
  std::vector<std::vector<std::string>> domain_labels;
  for (std::uint32_t r = 0; r < s.domains().num_domains(); ++r) {
    domain_labels.push_back(DominantLabels(s.domains(), r, s.corpus()));
  }
  auto gen = QueryGenerator::Build(s.corpus(), s.lexicon(), {});
  if (!gen.ok()) {
    std::cerr << gen.status() << "\n";
    return 1;
  }
  QueryFeaturizer featurizer(s.tokenizer(), s.vectorizer());
  Rng rng(61);
  TablePrinter table({"Keywords", "Top-1", "Top-3"});
  for (std::size_t size = 1; size <= 10; ++size) {
    TopKAccumulator acc;
    for (std::size_t q = 0; q < cli.queries_per_size; ++q) {
      const GeneratedQuery query = gen->Generate(size, rng);
      acc.Record(
          s.classifier().Classify(featurizer.FeaturizeTerms(query.keywords)),
          domain_labels, query.target_label);
    }
    table.AddRow({std::to_string(size), FormatDouble(acc.Top1Fraction(), 2),
                  FormatDouble(acc.Top3Fraction(), 2)});
  }
  table.Print(std::cout);
  return 0;
}

int CmdServeBench(const CliOptions& cli) {
  if (cli.positional.size() != 1) return Usage();
  auto corpus = LoadOrFail(cli.positional[0]);
  if (!corpus.ok()) return 1;
  auto sys = IntegrationSystem::Build(std::move(*corpus), cli.system);
  if (!sys.ok()) {
    std::cerr << sys.status() << "\n";
    return 1;
  }
  const std::vector<std::string> queries = BuildQueryPool(**sys, 256, 17);

  ServeOptions serve;
  serve.num_workers = cli.serve_workers;
  serve.queue_depth = cli.serve_queue_depth;
  serve.slow_query_threshold_us = cli.slow_us;
  serve.admin_port = cli.admin_port;
  serve.export_path = cli.export_jsonl;
  serve.export_interval_ms = cli.export_interval_ms;
  PaygoServer server(std::move(*sys), serve);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (server.admin() != nullptr) {
    // Scripts (tools/ci.sh) parse this line to find the ephemeral port.
    std::cerr << "admin server listening on 127.0.0.1:"
              << server.admin()->port() << "\n";
  }
  if (server.exporter() != nullptr) {
    std::cerr << "exporting metrics to " << cli.export_jsonl << " every "
              << cli.export_interval_ms << "ms\n";
  }
  LoadGenOptions load;
  load.client_threads = cli.serve_threads;
  load.duration_ms =
      static_cast<std::uint64_t>(cli.serve_seconds * 1000);
  const LoadReport report = RunClosedLoopLoad(server, queries, load);
  if (cli.human) {
    std::cout << report.qps << " qps over " << report.total_requests
              << " requests (" << load.client_threads << " clients, "
              << serve.num_workers << " workers)\n"
              << "latency p50 " << report.p50_us << "us  p95 "
              << report.p95_us << "us  p99 " << report.p99_us
              << "us  mean " << report.mean_us << "us\n"
              << "cache hit rate " << report.cache_hit_rate
              << ", rejected " << report.rejected << ", timed out "
              << report.timed_out << "\n\n"
              << server.DebugString();
  } else {
    // One strict-JSON object: the load report plus the slow-query log
    // (slowest first; span breakdowns populated when --trace-out enabled
    // tracing for this run).
    std::cout << "{\"report\": " << report.ToJson()
              << ", \"slow_queries\": " << server.slow_query_log().ToJson()
              << "}\n";
  }
  server.Stop();
  return WriteObservabilityOutputs(cli);
}

std::atomic<bool> g_shutdown{false};

void HandleShutdownSignal(int) { g_shutdown.store(true); }

int CmdShardNode(const CliOptions& cli) {
  const bool replica = !cli.primary.empty();
  if (replica ? !cli.positional.empty() : cli.positional.size() != 1) {
    return Usage();
  }

  ShardNodeOptions opts;
  opts.serve.num_workers = cli.serve_workers;
  opts.serve.queue_depth = cli.serve_queue_depth;
  opts.serve.slow_query_threshold_us = cli.slow_us;
  opts.service.port = static_cast<std::uint16_t>(cli.shard_port);
  opts.admin_port = cli.admin_port;

  std::unique_ptr<IntegrationSystem> system;
  if (replica) {
    auto addr = ParseShardAddress(cli.primary);
    if (!addr.ok()) {
      std::cerr << addr.status() << "\n";
      return 1;
    }
    opts.replica = true;
    opts.replica_sync.primary_host = addr->host;
    opts.replica_sync.primary_port = addr->port;
    opts.replica_sync.poll_interval_ms = cli.poll_ms;
    opts.replica_sync.system = cli.system;
  } else {
    auto corpus = LoadOrFail(cli.positional[0]);
    if (!corpus.ok()) return 1;
    if (cli.shards_total > 1) {
      if (cli.shard_index >= cli.shards_total) {
        std::cerr << "--shard-index must be < --shards\n";
        return 2;
      }
      const HashRing ring(cli.shards_total);
      std::vector<SchemaCorpus> parts = PartitionCorpus(*corpus, ring);
      *corpus = std::move(parts[cli.shard_index]);
      if (corpus->size() == 0) {
        std::cerr << "shard " << cli.shard_index
                  << " owns no schemas of this corpus\n";
        return 1;
      }
    }
    auto sys = IntegrationSystem::Build(std::move(*corpus), cli.system);
    if (!sys.ok()) {
      std::cerr << sys.status() << "\n";
      return 1;
    }
    system = std::move(*sys);
  }

  ShardNode node(std::move(opts));
  if (Status s = node.Start(std::move(system)); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  // Scripts (tools/ci.sh) parse these lines to find the ephemeral ports.
  std::cerr << "shard server listening on 127.0.0.1:" << node.shard_port()
            << "\n";
  if (node.admin_port() != 0) {
    std::cerr << "admin server listening on 127.0.0.1:" << node.admin_port()
              << "\n";
  }

  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cerr << "shutting down\n";
  node.Stop();
  return 0;
}

int CmdShardRouter(const CliOptions& cli) {
  const bool persistent = cli.admin_port >= 0;
  if (cli.shard_addrs.empty() || (cli.positional.empty() && !persistent)) {
    return Usage();
  }
  std::vector<ShardAddress> addresses;
  for (const std::string& a : cli.shard_addrs) {
    auto addr = ParseShardAddress(a);
    if (!addr.ok()) {
      std::cerr << addr.status() << "\n";
      return 2;
    }
    addresses.push_back(*addr);
  }
  RouterOptions ropts;
  if (cli.slow_us > 0) ropts.slow_query_threshold_us = cli.slow_us;
  const ShardRouter router(addresses, ropts);

  // Persistent mode: the router doubles as the fleet's trace/health
  // vantage point, serving /fleet_tracez (merged cross-shard timelines),
  // /shardz, and /slowz next to the obs endpoints.
  std::unique_ptr<AdminServer> admin;
  if (persistent) {
    AdminServerOptions aopts;
    aopts.port = cli.admin_port;
    admin = std::make_unique<AdminServer>(aopts);
    RegisterObsEndpoints(*admin);
    const ShardRouter* rtr = &router;
    admin->Handle("/shardz", [rtr](const HttpRequest&) {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = rtr->ShardzJson() + "\n";
      return response;
    });
    admin->Handle("/slowz", [rtr](const HttpRequest&) {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = rtr->SlowLogJson() + "\n";
      return response;
    });
    admin->Handle("/fleet_tracez", [rtr](const HttpRequest& request) {
      auto merged =
          rtr->FleetTraceJson(QueryParamU64(request.query, "trace_id"));
      HttpResponse response;
      if (!merged.ok()) {
        response.status = 500;
        response.body = merged.status().message() + "\n";
        return response;
      }
      response.content_type = "application/json";
      response.body = std::move(*merged);
      return response;
    });
    auto port = admin->Start();
    if (!port.ok()) {
      std::cerr << port.status() << "\n";
      return 1;
    }
    // Scripts (tools/ci.sh) parse this line to find the ephemeral port.
    std::cerr << "admin server listening on 127.0.0.1:" << *port << "\n";
  }

  int rc = 0;
  std::uint64_t trace_id = 0;
  if (!cli.positional.empty()) {
    const std::string query = Join(cli.positional, " ");
    auto scattered = router.Classify(query, 5);
    if (!scattered.ok()) {
      std::cerr << scattered.status() << "\n";
      return 1;
    }
    trace_id = scattered->trace_id;
    std::cout << "query: \"" << query << "\" (" << scattered->shards_ok
              << "/" << scattered->shards_total << " shards answered)\n";
    if (trace_id != 0) std::cout << "trace id: " << trace_id << "\n";
    for (std::size_t k = 0; k < scattered->ranked.size(); ++k) {
      const RoutedDomain& d = scattered->ranked[k];
      std::cout << k + 1 << ". shard " << d.shard << " domain " << d.domain
                << " (score " << FormatDouble(d.log_posterior, 2) << ")";
      std::size_t shown = 0;
      for (const std::string& a : d.mediated_attributes) {
        std::cout << (shown == 0 ? " :" : "") << " [" << a << "]";
        if (++shown >= 8) {
          std::cout << " ...";
          break;
        }
      }
      std::cout << "\n";
    }
    // A merged ranking is the smoke-test contract: no results means the
    // fleet is not actually serving.
    if (scattered->ranked.empty()) rc = 1;
  }

  if (!cli.fleet_trace_out.empty()) {
    auto merged = router.FleetTraceJson(trace_id);
    if (!merged.ok()) {
      std::cerr << merged.status() << "\n";
      rc = 1;
    } else {
      std::ofstream out(cli.fleet_trace_out, std::ios::trunc);
      out << *merged;
      out.flush();
      if (!out) {
        std::cerr << "failed writing fleet trace " << cli.fleet_trace_out
                  << "\n";
        rc = 1;
      } else {
        std::cerr << "wrote fleet trace to " << cli.fleet_trace_out << "\n";
      }
    }
  }

  if (persistent) {
    std::signal(SIGINT, HandleShutdownSignal);
    std::signal(SIGTERM, HandleShutdownSignal);
    while (!g_shutdown.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::cerr << "shutting down\n";
    admin->Stop();
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    std::cout << BuildInfoText();
    return 0;
  }
  CliOptions cli;
  if (!ParseCommon(argc, argv, 2, &cli)) return Usage();
  if (!cli.trace_out.empty() || cli.trace) Tracer::Enable();
  if (command == "generate") return CmdGenerate(cli.positional);
  if (command == "stats") return CmdStats(cli.positional);
  if (command == "cluster") return CmdCluster(cli);
  if (command == "classify") return CmdClassify(cli);
  if (command == "snapshot") return CmdSnapshot(cli);
  if (command == "query") return CmdQuery(cli);
  if (command == "dendrogram") return CmdDendrogram(cli);
  if (command == "bench-queries") return CmdBenchQueries(cli);
  if (command == "serve-bench") return CmdServeBench(cli);
  if (command == "shard-node") return CmdShardNode(cli);
  if (command == "shard-router") return CmdShardRouter(cli);
  std::cerr << "unknown command '" << command << "'\n";
  return Usage();
}
