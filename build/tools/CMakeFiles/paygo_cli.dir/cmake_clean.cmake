file(REMOVE_RECURSE
  "CMakeFiles/paygo_cli.dir/paygo_cli.cc.o"
  "CMakeFiles/paygo_cli.dir/paygo_cli.cc.o.d"
  "paygo_cli"
  "paygo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paygo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
