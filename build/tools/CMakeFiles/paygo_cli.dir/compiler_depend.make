# Empty compiler generated dependencies file for paygo_cli.
# This may be replaced when dependencies are built.
