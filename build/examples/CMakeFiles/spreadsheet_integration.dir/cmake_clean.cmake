file(REMOVE_RECURSE
  "CMakeFiles/spreadsheet_integration.dir/spreadsheet_integration.cpp.o"
  "CMakeFiles/spreadsheet_integration.dir/spreadsheet_integration.cpp.o.d"
  "spreadsheet_integration"
  "spreadsheet_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spreadsheet_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
