# Empty dependencies file for spreadsheet_integration.
# This may be replaced when dependencies are built.
