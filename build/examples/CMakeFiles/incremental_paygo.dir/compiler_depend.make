# Empty compiler generated dependencies file for incremental_paygo.
# This may be replaced when dependencies are built.
