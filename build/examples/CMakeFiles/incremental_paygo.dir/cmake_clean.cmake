file(REMOVE_RECURSE
  "CMakeFiles/incremental_paygo.dir/incremental_paygo.cpp.o"
  "CMakeFiles/incremental_paygo.dir/incremental_paygo.cpp.o.d"
  "incremental_paygo"
  "incremental_paygo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_paygo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
