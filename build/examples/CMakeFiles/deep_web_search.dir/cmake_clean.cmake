file(REMOVE_RECURSE
  "CMakeFiles/deep_web_search.dir/deep_web_search.cpp.o"
  "CMakeFiles/deep_web_search.dir/deep_web_search.cpp.o.d"
  "deep_web_search"
  "deep_web_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_web_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
