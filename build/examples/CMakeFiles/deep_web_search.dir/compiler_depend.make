# Empty compiler generated dependencies file for deep_web_search.
# This may be replaced when dependencies are built.
