# Empty dependencies file for paygo.
# This may be replaced when dependencies are built.
