
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/mdc_clustering.cc" "src/CMakeFiles/paygo.dir/baseline/mdc_clustering.cc.o" "gcc" "src/CMakeFiles/paygo.dir/baseline/mdc_clustering.cc.o.d"
  "/root/repo/src/classify/approx_classifier.cc" "src/CMakeFiles/paygo.dir/classify/approx_classifier.cc.o" "gcc" "src/CMakeFiles/paygo.dir/classify/approx_classifier.cc.o.d"
  "/root/repo/src/classify/naive_bayes.cc" "src/CMakeFiles/paygo.dir/classify/naive_bayes.cc.o" "gcc" "src/CMakeFiles/paygo.dir/classify/naive_bayes.cc.o.d"
  "/root/repo/src/classify/query_featurizer.cc" "src/CMakeFiles/paygo.dir/classify/query_featurizer.cc.o" "gcc" "src/CMakeFiles/paygo.dir/classify/query_featurizer.cc.o.d"
  "/root/repo/src/cluster/dendrogram.cc" "src/CMakeFiles/paygo.dir/cluster/dendrogram.cc.o" "gcc" "src/CMakeFiles/paygo.dir/cluster/dendrogram.cc.o.d"
  "/root/repo/src/cluster/fuzzy_assignment.cc" "src/CMakeFiles/paygo.dir/cluster/fuzzy_assignment.cc.o" "gcc" "src/CMakeFiles/paygo.dir/cluster/fuzzy_assignment.cc.o.d"
  "/root/repo/src/cluster/hac.cc" "src/CMakeFiles/paygo.dir/cluster/hac.cc.o" "gcc" "src/CMakeFiles/paygo.dir/cluster/hac.cc.o.d"
  "/root/repo/src/cluster/incremental.cc" "src/CMakeFiles/paygo.dir/cluster/incremental.cc.o" "gcc" "src/CMakeFiles/paygo.dir/cluster/incremental.cc.o.d"
  "/root/repo/src/cluster/linkage.cc" "src/CMakeFiles/paygo.dir/cluster/linkage.cc.o" "gcc" "src/CMakeFiles/paygo.dir/cluster/linkage.cc.o.d"
  "/root/repo/src/cluster/probabilistic_assignment.cc" "src/CMakeFiles/paygo.dir/cluster/probabilistic_assignment.cc.o" "gcc" "src/CMakeFiles/paygo.dir/cluster/probabilistic_assignment.cc.o.d"
  "/root/repo/src/core/integration_system.cc" "src/CMakeFiles/paygo.dir/core/integration_system.cc.o" "gcc" "src/CMakeFiles/paygo.dir/core/integration_system.cc.o.d"
  "/root/repo/src/eval/classification_metrics.cc" "src/CMakeFiles/paygo.dir/eval/classification_metrics.cc.o" "gcc" "src/CMakeFiles/paygo.dir/eval/classification_metrics.cc.o.d"
  "/root/repo/src/eval/clustering_metrics.cc" "src/CMakeFiles/paygo.dir/eval/clustering_metrics.cc.o" "gcc" "src/CMakeFiles/paygo.dir/eval/clustering_metrics.cc.o.d"
  "/root/repo/src/eval/partition_metrics.cc" "src/CMakeFiles/paygo.dir/eval/partition_metrics.cc.o" "gcc" "src/CMakeFiles/paygo.dir/eval/partition_metrics.cc.o.d"
  "/root/repo/src/feedback/consistency.cc" "src/CMakeFiles/paygo.dir/feedback/consistency.cc.o" "gcc" "src/CMakeFiles/paygo.dir/feedback/consistency.cc.o.d"
  "/root/repo/src/feedback/feedback.cc" "src/CMakeFiles/paygo.dir/feedback/feedback.cc.o" "gcc" "src/CMakeFiles/paygo.dir/feedback/feedback.cc.o.d"
  "/root/repo/src/integrate/data_source.cc" "src/CMakeFiles/paygo.dir/integrate/data_source.cc.o" "gcc" "src/CMakeFiles/paygo.dir/integrate/data_source.cc.o.d"
  "/root/repo/src/integrate/keyword_search.cc" "src/CMakeFiles/paygo.dir/integrate/keyword_search.cc.o" "gcc" "src/CMakeFiles/paygo.dir/integrate/keyword_search.cc.o.d"
  "/root/repo/src/integrate/query_engine.cc" "src/CMakeFiles/paygo.dir/integrate/query_engine.cc.o" "gcc" "src/CMakeFiles/paygo.dir/integrate/query_engine.cc.o.d"
  "/root/repo/src/integrate/tuple.cc" "src/CMakeFiles/paygo.dir/integrate/tuple.cc.o" "gcc" "src/CMakeFiles/paygo.dir/integrate/tuple.cc.o.d"
  "/root/repo/src/mediate/mediated_schema.cc" "src/CMakeFiles/paygo.dir/mediate/mediated_schema.cc.o" "gcc" "src/CMakeFiles/paygo.dir/mediate/mediated_schema.cc.o.d"
  "/root/repo/src/mediate/mediator.cc" "src/CMakeFiles/paygo.dir/mediate/mediator.cc.o" "gcc" "src/CMakeFiles/paygo.dir/mediate/mediator.cc.o.d"
  "/root/repo/src/mediate/probabilistic_mapping.cc" "src/CMakeFiles/paygo.dir/mediate/probabilistic_mapping.cc.o" "gcc" "src/CMakeFiles/paygo.dir/mediate/probabilistic_mapping.cc.o.d"
  "/root/repo/src/mediate/probabilistic_mediated_schema.cc" "src/CMakeFiles/paygo.dir/mediate/probabilistic_mediated_schema.cc.o" "gcc" "src/CMakeFiles/paygo.dir/mediate/probabilistic_mediated_schema.cc.o.d"
  "/root/repo/src/persist/model_io.cc" "src/CMakeFiles/paygo.dir/persist/model_io.cc.o" "gcc" "src/CMakeFiles/paygo.dir/persist/model_io.cc.o.d"
  "/root/repo/src/schema/corpus.cc" "src/CMakeFiles/paygo.dir/schema/corpus.cc.o" "gcc" "src/CMakeFiles/paygo.dir/schema/corpus.cc.o.d"
  "/root/repo/src/schema/corpus_io.cc" "src/CMakeFiles/paygo.dir/schema/corpus_io.cc.o" "gcc" "src/CMakeFiles/paygo.dir/schema/corpus_io.cc.o.d"
  "/root/repo/src/schema/feature_vector.cc" "src/CMakeFiles/paygo.dir/schema/feature_vector.cc.o" "gcc" "src/CMakeFiles/paygo.dir/schema/feature_vector.cc.o.d"
  "/root/repo/src/schema/lexicon.cc" "src/CMakeFiles/paygo.dir/schema/lexicon.cc.o" "gcc" "src/CMakeFiles/paygo.dir/schema/lexicon.cc.o.d"
  "/root/repo/src/schema/multi_table.cc" "src/CMakeFiles/paygo.dir/schema/multi_table.cc.o" "gcc" "src/CMakeFiles/paygo.dir/schema/multi_table.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/paygo.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/paygo.dir/schema/schema.cc.o.d"
  "/root/repo/src/synth/ddh_generator.cc" "src/CMakeFiles/paygo.dir/synth/ddh_generator.cc.o" "gcc" "src/CMakeFiles/paygo.dir/synth/ddh_generator.cc.o.d"
  "/root/repo/src/synth/many_domains.cc" "src/CMakeFiles/paygo.dir/synth/many_domains.cc.o" "gcc" "src/CMakeFiles/paygo.dir/synth/many_domains.cc.o.d"
  "/root/repo/src/synth/query_generator.cc" "src/CMakeFiles/paygo.dir/synth/query_generator.cc.o" "gcc" "src/CMakeFiles/paygo.dir/synth/query_generator.cc.o.d"
  "/root/repo/src/synth/tuple_generator.cc" "src/CMakeFiles/paygo.dir/synth/tuple_generator.cc.o" "gcc" "src/CMakeFiles/paygo.dir/synth/tuple_generator.cc.o.d"
  "/root/repo/src/synth/vocabulary.cc" "src/CMakeFiles/paygo.dir/synth/vocabulary.cc.o" "gcc" "src/CMakeFiles/paygo.dir/synth/vocabulary.cc.o.d"
  "/root/repo/src/synth/web_generator.cc" "src/CMakeFiles/paygo.dir/synth/web_generator.cc.o" "gcc" "src/CMakeFiles/paygo.dir/synth/web_generator.cc.o.d"
  "/root/repo/src/text/lcs.cc" "src/CMakeFiles/paygo.dir/text/lcs.cc.o" "gcc" "src/CMakeFiles/paygo.dir/text/lcs.cc.o.d"
  "/root/repo/src/text/porter_stemmer.cc" "src/CMakeFiles/paygo.dir/text/porter_stemmer.cc.o" "gcc" "src/CMakeFiles/paygo.dir/text/porter_stemmer.cc.o.d"
  "/root/repo/src/text/similarity_index.cc" "src/CMakeFiles/paygo.dir/text/similarity_index.cc.o" "gcc" "src/CMakeFiles/paygo.dir/text/similarity_index.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/CMakeFiles/paygo.dir/text/stopwords.cc.o" "gcc" "src/CMakeFiles/paygo.dir/text/stopwords.cc.o.d"
  "/root/repo/src/text/term_similarity.cc" "src/CMakeFiles/paygo.dir/text/term_similarity.cc.o" "gcc" "src/CMakeFiles/paygo.dir/text/term_similarity.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/paygo.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/paygo.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/util/bitset.cc" "src/CMakeFiles/paygo.dir/util/bitset.cc.o" "gcc" "src/CMakeFiles/paygo.dir/util/bitset.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/paygo.dir/util/random.cc.o" "gcc" "src/CMakeFiles/paygo.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/paygo.dir/util/status.cc.o" "gcc" "src/CMakeFiles/paygo.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/paygo.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/paygo.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/paygo.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/paygo.dir/util/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
