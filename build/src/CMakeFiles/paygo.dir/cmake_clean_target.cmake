file(REMOVE_RECURSE
  "libpaygo.a"
)
