# Empty dependencies file for pmed_uncertainty.
# This may be replaced when dependencies are built.
