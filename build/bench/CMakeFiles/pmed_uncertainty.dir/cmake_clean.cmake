file(REMOVE_RECURSE
  "CMakeFiles/pmed_uncertainty.dir/pmed_uncertainty.cc.o"
  "CMakeFiles/pmed_uncertainty.dir/pmed_uncertainty.cc.o.d"
  "pmed_uncertainty"
  "pmed_uncertainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmed_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
