# Empty dependencies file for fig_6_2_precision.
# This may be replaced when dependencies are built.
