file(REMOVE_RECURSE
  "CMakeFiles/fig_6_2_precision.dir/fig_6_2_precision.cc.o"
  "CMakeFiles/fig_6_2_precision.dir/fig_6_2_precision.cc.o.d"
  "fig_6_2_precision"
  "fig_6_2_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_6_2_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
