file(REMOVE_RECURSE
  "CMakeFiles/ddh_classification.dir/ddh_classification.cc.o"
  "CMakeFiles/ddh_classification.dir/ddh_classification.cc.o.d"
  "ddh_classification"
  "ddh_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddh_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
