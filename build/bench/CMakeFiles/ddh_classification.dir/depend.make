# Empty dependencies file for ddh_classification.
# This may be replaced when dependencies are built.
