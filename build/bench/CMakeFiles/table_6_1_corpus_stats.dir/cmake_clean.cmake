file(REMOVE_RECURSE
  "CMakeFiles/table_6_1_corpus_stats.dir/table_6_1_corpus_stats.cc.o"
  "CMakeFiles/table_6_1_corpus_stats.dir/table_6_1_corpus_stats.cc.o.d"
  "table_6_1_corpus_stats"
  "table_6_1_corpus_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_6_1_corpus_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
