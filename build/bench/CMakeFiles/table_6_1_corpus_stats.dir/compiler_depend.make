# Empty compiler generated dependencies file for table_6_1_corpus_stats.
# This may be replaced when dependencies are built.
