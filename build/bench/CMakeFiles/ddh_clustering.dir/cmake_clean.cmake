file(REMOVE_RECURSE
  "CMakeFiles/ddh_clustering.dir/ddh_clustering.cc.o"
  "CMakeFiles/ddh_clustering.dir/ddh_clustering.cc.o.d"
  "ddh_clustering"
  "ddh_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddh_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
