# Empty compiler generated dependencies file for ddh_clustering.
# This may be replaced when dependencies are built.
