# Empty compiler generated dependencies file for fig_6_6_unclustered.
# This may be replaced when dependencies are built.
