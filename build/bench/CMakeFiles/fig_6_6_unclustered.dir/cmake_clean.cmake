file(REMOVE_RECURSE
  "CMakeFiles/fig_6_6_unclustered.dir/fig_6_6_unclustered.cc.o"
  "CMakeFiles/fig_6_6_unclustered.dir/fig_6_6_unclustered.cc.o.d"
  "fig_6_6_unclustered"
  "fig_6_6_unclustered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_6_6_unclustered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
