file(REMOVE_RECURSE
  "CMakeFiles/perf_clustering.dir/perf_clustering.cc.o"
  "CMakeFiles/perf_clustering.dir/perf_clustering.cc.o.d"
  "perf_clustering"
  "perf_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
