# Empty compiler generated dependencies file for fig_6_7_query_classification.
# This may be replaced when dependencies are built.
