file(REMOVE_RECURSE
  "CMakeFiles/fig_6_7_query_classification.dir/fig_6_7_query_classification.cc.o"
  "CMakeFiles/fig_6_7_query_classification.dir/fig_6_7_query_classification.cc.o.d"
  "fig_6_7_query_classification"
  "fig_6_7_query_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_6_7_query_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
