# Empty dependencies file for table_6_2_clustering_eval.
# This may be replaced when dependencies are built.
