file(REMOVE_RECURSE
  "CMakeFiles/table_6_2_clustering_eval.dir/table_6_2_clustering_eval.cc.o"
  "CMakeFiles/table_6_2_clustering_eval.dir/table_6_2_clustering_eval.cc.o.d"
  "table_6_2_clustering_eval"
  "table_6_2_clustering_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_6_2_clustering_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
