file(REMOVE_RECURSE
  "CMakeFiles/fig_6_5_nonhomogeneous.dir/fig_6_5_nonhomogeneous.cc.o"
  "CMakeFiles/fig_6_5_nonhomogeneous.dir/fig_6_5_nonhomogeneous.cc.o.d"
  "fig_6_5_nonhomogeneous"
  "fig_6_5_nonhomogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_6_5_nonhomogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
