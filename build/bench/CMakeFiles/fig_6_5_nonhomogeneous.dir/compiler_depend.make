# Empty compiler generated dependencies file for fig_6_5_nonhomogeneous.
# This may be replaced when dependencies are built.
