# Empty compiler generated dependencies file for fig_6_3_recall.
# This may be replaced when dependencies are built.
