file(REMOVE_RECURSE
  "CMakeFiles/fig_6_3_recall.dir/fig_6_3_recall.cc.o"
  "CMakeFiles/fig_6_3_recall.dir/fig_6_3_recall.cc.o.d"
  "fig_6_3_recall"
  "fig_6_3_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_6_3_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
