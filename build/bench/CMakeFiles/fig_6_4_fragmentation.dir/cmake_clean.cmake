file(REMOVE_RECURSE
  "CMakeFiles/fig_6_4_fragmentation.dir/fig_6_4_fragmentation.cc.o"
  "CMakeFiles/fig_6_4_fragmentation.dir/fig_6_4_fragmentation.cc.o.d"
  "fig_6_4_fragmentation"
  "fig_6_4_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_6_4_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
