# Empty dependencies file for fig_6_4_fragmentation.
# This may be replaced when dependencies are built.
