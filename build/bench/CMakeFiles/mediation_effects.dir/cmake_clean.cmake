file(REMOVE_RECURSE
  "CMakeFiles/mediation_effects.dir/mediation_effects.cc.o"
  "CMakeFiles/mediation_effects.dir/mediation_effects.cc.o.d"
  "mediation_effects"
  "mediation_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediation_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
