# Empty compiler generated dependencies file for mediation_effects.
# This may be replaced when dependencies are built.
