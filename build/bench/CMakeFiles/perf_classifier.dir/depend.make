# Empty dependencies file for perf_classifier.
# This may be replaced when dependencies are built.
