file(REMOVE_RECURSE
  "CMakeFiles/perf_classifier.dir/perf_classifier.cc.o"
  "CMakeFiles/perf_classifier.dir/perf_classifier.cc.o.d"
  "perf_classifier"
  "perf_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
