# Empty dependencies file for mdc_baseline_test.
# This may be replaced when dependencies are built.
