file(REMOVE_RECURSE
  "CMakeFiles/mdc_baseline_test.dir/mdc_baseline_test.cc.o"
  "CMakeFiles/mdc_baseline_test.dir/mdc_baseline_test.cc.o.d"
  "mdc_baseline_test"
  "mdc_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdc_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
