# Empty compiler generated dependencies file for fuzzy_assignment_test.
# This may be replaced when dependencies are built.
