file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_assignment_test.dir/fuzzy_assignment_test.cc.o"
  "CMakeFiles/fuzzy_assignment_test.dir/fuzzy_assignment_test.cc.o.d"
  "fuzzy_assignment_test"
  "fuzzy_assignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
