# Empty compiler generated dependencies file for classification_metrics_test.
# This may be replaced when dependencies are built.
