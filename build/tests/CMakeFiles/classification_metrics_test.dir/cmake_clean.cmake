file(REMOVE_RECURSE
  "CMakeFiles/classification_metrics_test.dir/classification_metrics_test.cc.o"
  "CMakeFiles/classification_metrics_test.dir/classification_metrics_test.cc.o.d"
  "classification_metrics_test"
  "classification_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
