# Empty compiler generated dependencies file for term_similarity_test.
# This may be replaced when dependencies are built.
