file(REMOVE_RECURSE
  "CMakeFiles/term_similarity_test.dir/term_similarity_test.cc.o"
  "CMakeFiles/term_similarity_test.dir/term_similarity_test.cc.o.d"
  "term_similarity_test"
  "term_similarity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
