# Empty dependencies file for system_refinement_test.
# This may be replaced when dependencies are built.
