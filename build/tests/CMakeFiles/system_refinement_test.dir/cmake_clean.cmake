file(REMOVE_RECURSE
  "CMakeFiles/system_refinement_test.dir/system_refinement_test.cc.o"
  "CMakeFiles/system_refinement_test.dir/system_refinement_test.cc.o.d"
  "system_refinement_test"
  "system_refinement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_refinement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
