file(REMOVE_RECURSE
  "CMakeFiles/integration_system_test.dir/integration_system_test.cc.o"
  "CMakeFiles/integration_system_test.dir/integration_system_test.cc.o.d"
  "integration_system_test"
  "integration_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
