file(REMOVE_RECURSE
  "CMakeFiles/porter_stemmer_test.dir/porter_stemmer_test.cc.o"
  "CMakeFiles/porter_stemmer_test.dir/porter_stemmer_test.cc.o.d"
  "porter_stemmer_test"
  "porter_stemmer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/porter_stemmer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
