# Empty dependencies file for approx_classifier_test.
# This may be replaced when dependencies are built.
