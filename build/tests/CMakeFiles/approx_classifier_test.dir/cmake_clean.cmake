file(REMOVE_RECURSE
  "CMakeFiles/approx_classifier_test.dir/approx_classifier_test.cc.o"
  "CMakeFiles/approx_classifier_test.dir/approx_classifier_test.cc.o.d"
  "approx_classifier_test"
  "approx_classifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
