# Empty compiler generated dependencies file for sparse_hac_test.
# This may be replaced when dependencies are built.
