file(REMOVE_RECURSE
  "CMakeFiles/sparse_hac_test.dir/sparse_hac_test.cc.o"
  "CMakeFiles/sparse_hac_test.dir/sparse_hac_test.cc.o.d"
  "sparse_hac_test"
  "sparse_hac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_hac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
