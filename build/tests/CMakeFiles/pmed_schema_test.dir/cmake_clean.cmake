file(REMOVE_RECURSE
  "CMakeFiles/pmed_schema_test.dir/pmed_schema_test.cc.o"
  "CMakeFiles/pmed_schema_test.dir/pmed_schema_test.cc.o.d"
  "pmed_schema_test"
  "pmed_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmed_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
