# Empty compiler generated dependencies file for pmed_schema_test.
# This may be replaced when dependencies are built.
