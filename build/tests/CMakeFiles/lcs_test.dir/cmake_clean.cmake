file(REMOVE_RECURSE
  "CMakeFiles/lcs_test.dir/lcs_test.cc.o"
  "CMakeFiles/lcs_test.dir/lcs_test.cc.o.d"
  "lcs_test"
  "lcs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
