file(REMOVE_RECURSE
  "CMakeFiles/similarity_index_test.dir/similarity_index_test.cc.o"
  "CMakeFiles/similarity_index_test.dir/similarity_index_test.cc.o.d"
  "similarity_index_test"
  "similarity_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
