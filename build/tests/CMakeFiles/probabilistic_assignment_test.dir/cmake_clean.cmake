file(REMOVE_RECURSE
  "CMakeFiles/probabilistic_assignment_test.dir/probabilistic_assignment_test.cc.o"
  "CMakeFiles/probabilistic_assignment_test.dir/probabilistic_assignment_test.cc.o.d"
  "probabilistic_assignment_test"
  "probabilistic_assignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probabilistic_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
