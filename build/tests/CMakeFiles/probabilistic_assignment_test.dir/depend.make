# Empty dependencies file for probabilistic_assignment_test.
# This may be replaced when dependencies are built.
