# Empty dependencies file for schema_corpus_test.
# This may be replaced when dependencies are built.
