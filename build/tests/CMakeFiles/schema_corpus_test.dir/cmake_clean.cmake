file(REMOVE_RECURSE
  "CMakeFiles/schema_corpus_test.dir/schema_corpus_test.cc.o"
  "CMakeFiles/schema_corpus_test.dir/schema_corpus_test.cc.o.d"
  "schema_corpus_test"
  "schema_corpus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
