file(REMOVE_RECURSE
  "CMakeFiles/system_edges_test.dir/system_edges_test.cc.o"
  "CMakeFiles/system_edges_test.dir/system_edges_test.cc.o.d"
  "system_edges_test"
  "system_edges_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_edges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
