# Empty compiler generated dependencies file for system_edges_test.
# This may be replaced when dependencies are built.
