# Empty compiler generated dependencies file for clustering_metrics_test.
# This may be replaced when dependencies are built.
