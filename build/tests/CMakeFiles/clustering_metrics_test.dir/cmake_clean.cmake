file(REMOVE_RECURSE
  "CMakeFiles/clustering_metrics_test.dir/clustering_metrics_test.cc.o"
  "CMakeFiles/clustering_metrics_test.dir/clustering_metrics_test.cc.o.d"
  "clustering_metrics_test"
  "clustering_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
