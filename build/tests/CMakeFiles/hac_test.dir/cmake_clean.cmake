file(REMOVE_RECURSE
  "CMakeFiles/hac_test.dir/hac_test.cc.o"
  "CMakeFiles/hac_test.dir/hac_test.cc.o.d"
  "hac_test"
  "hac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
