# Empty dependencies file for hac_test.
# This may be replaced when dependencies are built.
