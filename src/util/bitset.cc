#include "util/bitset.h"

#include <cassert>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

namespace paygo {
namespace {

/// The word-level kernels below all compute exact integer popcounts over
/// the same words, so every flavor returns identical values — the
/// vectorized paths are drop-in replacements, not approximations. Each
/// kernel takes raw word arrays (the tail word is already trimmed by the
/// DynamicBitset invariant, so no masking is needed here).

// --- portable reference (always compiled; the differential oracle) ---

std::size_t AndCountWordsScalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return c;
}

std::size_t OrCountWordsScalar(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  }
  return c;
}

// --- word-at-a-time 4x unrolled (portable fast path) ---
//
// Four independent accumulators break the loop-carried dependency so the
// popcnt units pipeline; compilers also auto-vectorize this shape well.

std::size_t AndCountWordsUnrolled(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
    c1 += static_cast<std::size_t>(std::popcount(a[i + 1] & b[i + 1]));
    c2 += static_cast<std::size_t>(std::popcount(a[i + 2] & b[i + 2]));
    c3 += static_cast<std::size_t>(std::popcount(a[i + 3] & b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return c0 + c1 + c2 + c3;
}

std::size_t OrCountWordsUnrolled(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
    c1 += static_cast<std::size_t>(std::popcount(a[i + 1] | b[i + 1]));
    c2 += static_cast<std::size_t>(std::popcount(a[i + 2] | b[i + 2]));
    c3 += static_cast<std::size_t>(std::popcount(a[i + 3] | b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  }
  return c0 + c1 + c2 + c3;
}

/// Fused AND+OR popcount in one pass: the Jaccard hot path loads each
/// word pair once instead of twice.
void AndOrCountWordsUnrolled(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n, std::size_t* and_count,
                             std::size_t* or_count) {
  std::size_t ca = 0, co = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint64_t w0a = a[i], w0b = b[i];
    const std::uint64_t w1a = a[i + 1], w1b = b[i + 1];
    ca += static_cast<std::size_t>(std::popcount(w0a & w0b)) +
          static_cast<std::size_t>(std::popcount(w1a & w1b));
    co += static_cast<std::size_t>(std::popcount(w0a | w0b)) +
          static_cast<std::size_t>(std::popcount(w1a | w1b));
  }
  for (; i < n; ++i) {
    ca += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
    co += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  }
  *and_count = ca;
  *or_count = co;
}

#if defined(__AVX2__)

// --- AVX2: in-register popcount via the pshufb nibble-lookup algorithm
// (Mula). Each 256-bit lane counts 4 words; _mm256_sad_epu8 folds the
// per-byte counts into 4 u64 partial sums accumulated across iterations.

inline __m256i Popcount256(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline std::size_t HorizontalSum256(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::size_t>(_mm_extract_epi64(sum, 1));
}

std::size_t AndCountWordsAvx2(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va, vb)));
  }
  std::size_t c = HorizontalSum256(acc);
  for (; i < n; ++i) {
    c += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return c;
}

std::size_t OrCountWordsAvx2(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_or_si256(va, vb)));
  }
  std::size_t c = HorizontalSum256(acc);
  for (; i < n; ++i) {
    c += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  }
  return c;
}

void AndOrCountWordsAvx2(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n, std::size_t* and_count,
                         std::size_t* or_count) {
  __m256i acc_and = _mm256_setzero_si256();
  __m256i acc_or = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc_and =
        _mm256_add_epi64(acc_and, Popcount256(_mm256_and_si256(va, vb)));
    acc_or = _mm256_add_epi64(acc_or, Popcount256(_mm256_or_si256(va, vb)));
  }
  std::size_t ca = HorizontalSum256(acc_and);
  std::size_t co = HorizontalSum256(acc_or);
  for (; i < n; ++i) {
    ca += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
    co += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  }
  *and_count = ca;
  *or_count = co;
}

constexpr const char* kKernelName = "avx2";
constexpr auto* AndCountWords = AndCountWordsAvx2;
constexpr auto* OrCountWords = OrCountWordsAvx2;
constexpr auto* AndOrCountWords = AndOrCountWordsAvx2;

#elif defined(__ARM_NEON) || defined(__ARM_NEON__)

// --- NEON: vcntq_u8 per-byte popcount, widened via pairwise adds. Each
// iteration counts 2 words (one 128-bit vector).

std::size_t AndCountWordsNeon(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t va = vreinterpretq_u8_u64(vld1q_u64(a + i));
    const uint8x16_t vb = vreinterpretq_u8_u64(vld1q_u64(b + i));
    const uint8x16_t cnt = vcntq_u8(vandq_u8(va, vb));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
  }
  std::size_t c = static_cast<std::size_t>(vgetq_lane_u64(acc, 0)) +
                  static_cast<std::size_t>(vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) {
    c += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return c;
}

std::size_t OrCountWordsNeon(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t va = vreinterpretq_u8_u64(vld1q_u64(a + i));
    const uint8x16_t vb = vreinterpretq_u8_u64(vld1q_u64(b + i));
    const uint8x16_t cnt = vcntq_u8(vorrq_u8(va, vb));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
  }
  std::size_t c = static_cast<std::size_t>(vgetq_lane_u64(acc, 0)) +
                  static_cast<std::size_t>(vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) {
    c += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  }
  return c;
}

void AndOrCountWordsNeon(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n, std::size_t* and_count,
                         std::size_t* or_count) {
  uint64x2_t acc_and = vdupq_n_u64(0);
  uint64x2_t acc_or = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t va = vreinterpretq_u8_u64(vld1q_u64(a + i));
    const uint8x16_t vb = vreinterpretq_u8_u64(vld1q_u64(b + i));
    const uint8x16_t ca = vcntq_u8(vandq_u8(va, vb));
    const uint8x16_t co = vcntq_u8(vorrq_u8(va, vb));
    acc_and = vaddq_u64(acc_and, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(ca))));
    acc_or = vaddq_u64(acc_or, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(co))));
  }
  std::size_t ca = static_cast<std::size_t>(vgetq_lane_u64(acc_and, 0)) +
                   static_cast<std::size_t>(vgetq_lane_u64(acc_and, 1));
  std::size_t co = static_cast<std::size_t>(vgetq_lane_u64(acc_or, 0)) +
                   static_cast<std::size_t>(vgetq_lane_u64(acc_or, 1));
  for (; i < n; ++i) {
    ca += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
    co += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  }
  *and_count = ca;
  *or_count = co;
}

constexpr const char* kKernelName = "neon";
constexpr auto* AndCountWords = AndCountWordsNeon;
constexpr auto* OrCountWords = OrCountWordsNeon;
constexpr auto* AndOrCountWords = AndOrCountWordsNeon;

#else

constexpr const char* kKernelName = "unrolled";
constexpr auto* AndCountWords = AndCountWordsUnrolled;
constexpr auto* OrCountWords = OrCountWordsUnrolled;
constexpr auto* AndOrCountWords = AndOrCountWordsUnrolled;

#endif

}  // namespace

const char* DynamicBitset::KernelName() { return kKernelName; }

std::size_t DynamicBitset::AndCount(const DynamicBitset& a,
                                    const DynamicBitset& b) {
  assert(a.num_bits_ == b.num_bits_);
  return AndCountWords(a.words_.data(), b.words_.data(), a.words_.size());
}

std::size_t DynamicBitset::OrCount(const DynamicBitset& a,
                                   const DynamicBitset& b) {
  assert(a.num_bits_ == b.num_bits_);
  return OrCountWords(a.words_.data(), b.words_.data(), a.words_.size());
}

double DynamicBitset::Jaccard(const DynamicBitset& a, const DynamicBitset& b) {
  assert(a.num_bits_ == b.num_bits_);
  std::size_t inter = 0, uni = 0;
  AndOrCountWords(a.words_.data(), b.words_.data(), a.words_.size(), &inter,
                  &uni);
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::size_t DynamicBitset::AndCountScalar(const DynamicBitset& a,
                                          const DynamicBitset& b) {
  assert(a.num_bits_ == b.num_bits_);
  return AndCountWordsScalar(a.words_.data(), b.words_.data(),
                             a.words_.size());
}

std::size_t DynamicBitset::OrCountScalar(const DynamicBitset& a,
                                         const DynamicBitset& b) {
  assert(a.num_bits_ == b.num_bits_);
  return OrCountWordsScalar(a.words_.data(), b.words_.data(), a.words_.size());
}

double DynamicBitset::JaccardScalar(const DynamicBitset& a,
                                    const DynamicBitset& b) {
  const std::size_t uni = OrCountScalar(a, b);
  if (uni == 0) return 0.0;
  return static_cast<double>(AndCountScalar(a, b)) / static_cast<double>(uni);
}

std::size_t DynamicBitset::AndCountUnrolled(const DynamicBitset& a,
                                            const DynamicBitset& b) {
  assert(a.num_bits_ == b.num_bits_);
  return AndCountWordsUnrolled(a.words_.data(), b.words_.data(),
                               a.words_.size());
}

std::size_t DynamicBitset::OrCountUnrolled(const DynamicBitset& a,
                                           const DynamicBitset& b) {
  assert(a.num_bits_ == b.num_bits_);
  return OrCountWordsUnrolled(a.words_.data(), b.words_.data(),
                              a.words_.size());
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

void DynamicBitset::AppendSetBits(std::vector<std::size_t>* out) const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out->push_back((w << 6) + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

std::vector<std::size_t> DynamicBitset::SetBits() const {
  std::vector<std::size_t> out;
  AppendSetBits(&out);
  return out;
}

}  // namespace paygo
