#include "util/bitset.h"

#include <cassert>

namespace paygo {

std::size_t DynamicBitset::AndCount(const DynamicBitset& a,
                                    const DynamicBitset& b) {
  assert(a.num_bits_ == b.num_bits_);
  std::size_t c = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    c += static_cast<std::size_t>(std::popcount(a.words_[i] & b.words_[i]));
  }
  return c;
}

std::size_t DynamicBitset::OrCount(const DynamicBitset& a,
                                   const DynamicBitset& b) {
  assert(a.num_bits_ == b.num_bits_);
  std::size_t c = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    c += static_cast<std::size_t>(std::popcount(a.words_[i] | b.words_[i]));
  }
  return c;
}

double DynamicBitset::Jaccard(const DynamicBitset& a, const DynamicBitset& b) {
  const std::size_t uni = OrCount(a, b);
  if (uni == 0) return 0.0;
  return static_cast<double>(AndCount(a, b)) / static_cast<double>(uni);
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

std::vector<std::size_t> DynamicBitset::SetBits() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back((w << 6) + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace paygo
