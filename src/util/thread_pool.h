#ifndef PAYGO_UTIL_THREAD_POOL_H_
#define PAYGO_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// \brief Fixed worker pool with a deterministic chunked parallel-for.
///
/// The clustering pipeline's O(n^2) phases (pairwise similarity, the
/// similarity-index neighborhood scan, per-merge candidate re-evaluation)
/// are embarrassingly parallel, but the library's contract is stronger
/// than "parallel and correct": results must be *bit-identical* to the
/// serial path at any thread count. ThreadPool supports that with a
/// deliberately simple execution model:
///
///  * `ParallelFor(begin, end, grain, body)` splits the range into an
///    ordered partition of contiguous chunks. Chunk boundaries depend only
///    on the range size, the grain, and the pool width — never on timing.
///  * Chunks are claimed dynamically (an atomic cursor), so scheduling is
///    nondeterministic, but the *combination discipline* callers follow is
///    not: every output slot is written by exactly one chunk, and ordered
///    by-products (heap pushes, neighbor-list appends) are buffered per
///    chunk and applied by the caller in ascending chunk order, which —
///    because the partition is ordered and contiguous — reproduces the
///    serial iteration order exactly, for every chunk count.
///  * Floating-point reductions across chunks are forbidden by convention;
///    cross-chunk reductions are restricted to exact types (integers,
///    entry buffers). FP values are always computed per slot from the same
///    inputs the serial path reads.
///
/// The caller participates in its own ParallelFor (pool workers act as
/// helpers), so a pool of width N applies N-way parallelism with N-1
/// helper tasks and degrades to a plain inline loop when the range is
/// small or the width is 1. Exceptions thrown by chunk bodies are
/// captured per chunk and the lowest-index one is rethrown on the calling
/// thread after every chunk finished — again independent of timing.
///
/// There is no work stealing, no task graph, and no priority: schema
/// clustering needs balanced data-parallel sweeps, and everything beyond
/// that is surface area for nondeterminism.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace paygo {

/// \brief Fixed-width worker pool. Thread-safe; one instance may serve
/// Submit() and ParallelFor() calls from multiple threads concurrently.
class ThreadPool {
 public:
  /// Maps a user-facing thread-count knob to a pool width: 0 means
  /// hardware_concurrency (at least 1), anything else is taken verbatim.
  static std::size_t ResolveThreadCount(std::size_t requested);

  /// Spawns \p num_threads - 1 helper workers (the calling thread is the
  /// pool's N-th lane during ParallelFor). Width 1 spawns no threads at
  /// all — every operation runs inline on the caller.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The pool width (helpers + the participating caller).
  std::size_t num_threads() const { return width_; }

  /// One contiguous piece of a ParallelFor range.
  struct Chunk {
    std::size_t index;  ///< 0-based position in the ordered partition.
    std::size_t begin;  ///< First element (inclusive).
    std::size_t end;    ///< Last element (exclusive).
  };

  /// Number of chunks ParallelFor will use for a range of \p size elements
  /// with the given minimum \p grain: 0 for an empty range, otherwise
  /// min(ceil(size / grain), width * kChunksPerThread) clamped to >= 1.
  /// Callers use this to pre-size per-chunk output buffers.
  std::size_t NumChunks(std::size_t size, std::size_t grain) const;

  /// Runs \p body over every chunk of [begin, end). Blocks until all
  /// chunks completed. When the partition is a single chunk the body runs
  /// inline with zero pool interaction (the exact serial path). Rethrows
  /// the lowest-chunk-index exception after all chunks finished.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(const Chunk&)>& body);

  /// Schedules \p f on a helper worker; the future carries the result or
  /// the thrown exception. On a width-1 pool the task runs inline here.
  template <typename F>
  auto Submit(F f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> result = task->get_future();
    if (workers_.empty()) {
      (*task)();
    } else {
      Enqueue([task] { (*task)(); });
    }
    return result;
  }

  /// Chunks-per-thread oversubscription: triangular workloads (row i of a
  /// pairwise scan costs n - i) balance to within 1/(2 * chunks) of
  /// optimal with contiguous chunks, so a few chunks per lane suffice.
  static constexpr std::size_t kChunksPerThread = 4;

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop(std::size_t worker_index);

  std::size_t width_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace paygo

#endif  // PAYGO_UTIL_THREAD_POOL_H_
