#include "util/table_printer.h"

#include <algorithm>

#include "util/string_util.h"

namespace paygo {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell << std::string(widths[c] - cell.size(), ' ');
      os << (c + 1 == headers_.size() ? " |" : " | ");
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto csv_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ",";
      const std::string& cell = cells[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << "\"\"";
          else os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << "\n";
  };
  csv_row(headers_);
  for (const auto& row : rows_) csv_row(row);
}

}  // namespace paygo
