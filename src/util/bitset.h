#ifndef PAYGO_UTIL_BITSET_H_
#define PAYGO_UTIL_BITSET_H_

/// \file bitset.h
/// \brief Fixed-size-at-construction dynamic bitset with fast set operations.
///
/// Binary schema feature vectors (Section 4.1 of the thesis) are stored as
/// DynamicBitsets so that the Jaccard coefficient over high-dimensional
/// binary vectors reduces to word-wise AND/OR popcounts.
///
/// The AND/OR popcount kernels come in several build-time-selected
/// flavors (see bitset.cc): a portable word-at-a-time scalar loop that is
/// ALWAYS compiled (the differential-test oracle), a 4x-unrolled variant,
/// and AVX2 / NEON in-register popcounts compiled in only when the
/// target supports them (`__AVX2__` / `__ARM_NEON`, e.g. via
/// -march=native). Every flavor counts the same exact integers, so
/// AndCount/OrCount/Jaccard are bit-identical across kernels — a property
/// tests/bitset_kernel_test.cc enforces over ragged tails and random
/// patterns. KernelName() reports which flavor this build dispatches to.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace paygo {

/// \brief A bit vector whose size is fixed at construction.
///
/// Supports the operations the clustering pipeline needs: bit get/set,
/// popcount, AND/OR popcounts of two vectors (for Jaccard), and in-place
/// AND/OR merges (for Total-Jaccard cluster summaries).
class DynamicBitset {
 public:
  /// Creates an all-zero bitset with \p num_bits bits.
  explicit DynamicBitset(std::size_t num_bits = 0)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  /// Number of bits (the dimensionality of the vector).
  std::size_t size() const { return num_bits_; }

  /// True iff bit \p i is set. \p i must be < size().
  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets bit \p i to \p value. \p i must be < size().
  void Set(std::size_t i, bool value = true) {
    if (value) {
      words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
    } else {
      words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }
  }

  /// Sets all bits to zero without changing the size.
  void Reset() {
    for (auto& w : words_) w = 0;
  }

  /// Sets all bits to one.
  void SetAll() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    TrimTail();
  }

  /// Number of set bits.
  std::size_t Count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  /// True iff no bit is set.
  bool None() const {
    for (auto w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Number of positions set in both `a` and `b`. Sizes must match.
  /// Dispatches to the fastest kernel this build compiled in.
  static std::size_t AndCount(const DynamicBitset& a, const DynamicBitset& b);
  /// Number of positions set in either `a` or `b`. Sizes must match.
  static std::size_t OrCount(const DynamicBitset& a, const DynamicBitset& b);

  /// Jaccard coefficient |a AND b| / |a OR b|; returns 0 when both are
  /// empty. Computes both popcounts in one fused pass over the words.
  static double Jaccard(const DynamicBitset& a, const DynamicBitset& b);

  /// Portable straight-loop reference kernels, always compiled regardless
  /// of the dispatch target — the oracle the differential kernel tests
  /// compare every vectorized flavor against.
  static std::size_t AndCountScalar(const DynamicBitset& a,
                                    const DynamicBitset& b);
  static std::size_t OrCountScalar(const DynamicBitset& a,
                                   const DynamicBitset& b);
  static double JaccardScalar(const DynamicBitset& a, const DynamicBitset& b);

  /// The portable 4x-unrolled word-at-a-time kernels, compiled in every
  /// build (the dispatch target when no SIMD extension is available, and
  /// a second differential subject when one is).
  static std::size_t AndCountUnrolled(const DynamicBitset& a,
                                      const DynamicBitset& b);
  static std::size_t OrCountUnrolled(const DynamicBitset& a,
                                     const DynamicBitset& b);

  /// The kernel flavor AndCount/OrCount/Jaccard dispatch to in this build:
  /// "avx2", "neon", or "unrolled".
  static const char* KernelName();

  /// In-place AND with \p other. Sizes must match.
  DynamicBitset& operator&=(const DynamicBitset& other);
  /// In-place OR with \p other. Sizes must match.
  DynamicBitset& operator|=(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> SetBits() const;

  /// Appends the indices of all set bits, ascending, to \p out without
  /// clearing it. The zero-allocation flavor of SetBits(): a caller that
  /// reuses \p out across queries allocates only until its capacity
  /// reaches the high-water mark.
  void AppendSetBits(std::vector<std::size_t>* out) const;

 private:
  /// Clears any bits in the final word beyond num_bits_.
  void TrimTail() {
    const std::size_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::size_t num_bits_;
  std::vector<std::uint64_t> words_;
};

}  // namespace paygo

#endif  // PAYGO_UTIL_BITSET_H_
