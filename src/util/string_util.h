#ifndef PAYGO_UTIL_STRING_UTIL_H_
#define PAYGO_UTIL_STRING_UTIL_H_

/// \file string_util.h
/// \brief Small string helpers shared across the library.

#include <string>
#include <string_view>
#include <vector>

namespace paygo {

/// Returns \p s with ASCII letters lowered.
std::string ToLowerAscii(std::string_view s);

/// Returns \p s without leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Splits \p s on any character in \p delims; empty pieces are dropped.
std::vector<std::string> SplitAny(std::string_view s, std::string_view delims);

/// Splits \p s on the single character \p delim, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff \p s starts with \p prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff every character of \p s is an ASCII letter.
bool IsAlphaAscii(std::string_view s);

/// Formats a double with \p precision digits after the decimal point.
std::string FormatDouble(double value, int precision = 3);

}  // namespace paygo

#endif  // PAYGO_UTIL_STRING_UTIL_H_
