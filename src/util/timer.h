#ifndef PAYGO_UTIL_TIMER_H_
#define PAYGO_UTIL_TIMER_H_

/// \file timer.h
/// \brief Wall-clock timing for experiment harnesses.

#include <chrono>
#include <cstdint>

namespace paygo {

/// \brief Measures elapsed wall time from construction or the last Restart().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Whole microseconds elapsed since construction / last Restart().
  std::uint64_t ElapsedMicros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace paygo

#endif  // PAYGO_UTIL_TIMER_H_
