#include "util/random.h"

#include <cassert>
#include <cmath>

namespace paygo {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64, used only to expand the user seed into the xoshiro state.
inline std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not be seeded with all zeros; splitmix makes this
  // practically impossible, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

}  // namespace paygo
