#ifndef PAYGO_UTIL_BOUNDED_QUEUE_H_
#define PAYGO_UTIL_BOUNDED_QUEUE_H_

/// \file bounded_queue.h
/// \brief A bounded multi-producer multi-consumer queue with non-blocking
/// admission.
///
/// Originally the serving layer's back-pressure primitive, now shared
/// with the admin HTTP endpoint's handler pool. Producers (request
/// submitters) never block — TryPush fails immediately when the queue is at
/// capacity, which is exactly the admission-control contract (reject with a
/// status instead of queueing unbounded work). Consumers (worker threads)
/// block in Pop until an item arrives or the queue is closed.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace paygo {

/// \brief Bounded MPMC queue. All methods are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  /// \p capacity must be >= 1; it is the admission-control depth.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues \p item unless the queue is full or closed. Never blocks.
  /// Returns false on rejection (the item is left untouched so the caller
  /// can fail it).
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available (returns it) or the queue is closed
  /// and drained (returns nullopt). Consumers should exit on nullopt.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking Pop: returns the front item if one is queued, nullopt
  /// otherwise (even while the queue is open). The batch-coalescing read
  /// path uses this to drain already-queued work without ever waiting for
  /// more to arrive.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: subsequent TryPush calls fail, consumers drain the
  /// remaining items and then receive nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Drops every queued item without running it, returning them so the
  /// caller can fail their promises. Used on shutdown-without-drain.
  std::deque<T> DrainNow() {
    std::lock_guard<std::mutex> lock(mu_);
    std::deque<T> out;
    out.swap(items_);
    return out;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace paygo

#endif  // PAYGO_UTIL_BOUNDED_QUEUE_H_
