#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace paygo {

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string Trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> SplitAny(std::string_view s,
                                  std::string_view delims) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (delims.find(c) != std::string_view::npos) {
      if (!current.empty()) {
        out.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool IsAlphaAscii(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace paygo
