#ifndef PAYGO_UTIL_RANDOM_H_
#define PAYGO_UTIL_RANDOM_H_

/// \file random.h
/// \brief Deterministic seeded random number generation.
///
/// Every randomized component of the library (corpus generators, the query
/// generator of Section 6.1.3, Monte-Carlo classifier approximation) draws
/// from an explicitly seeded Rng so that experiments are reproducible
/// bit-for-bit across runs.

#include <cstdint>
#include <vector>

namespace paygo {

/// \brief A small, fast, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform integer in [0, bound). \p bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability \p p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. All weights must be >= 0 and at least one must be > 0.
  std::size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffles \p v in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace paygo

#endif  // PAYGO_UTIL_RANDOM_H_
