#ifndef PAYGO_UTIL_STATUS_H_
#define PAYGO_UTIL_STATUS_H_

/// \file status.h
/// \brief Status / Result<T> error-handling primitives.
///
/// The library follows the Arrow/RocksDB convention of returning a Status (or
/// a Result<T>, which is a Status plus a value) from any operation that can
/// fail, instead of throwing exceptions across library boundaries.

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace paygo {

/// \brief Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kIoError = 9,
  kDeadlineExceeded = 10,
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (OK carries
/// no allocation in the common case of an empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factory helpers, one per StatusCode.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// @}

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error category.
  StatusCode code() const { return code_; }
  /// The (possibly empty) human-readable message.
  const std::string& message() const { return message_; }

  /// \name Category predicates.
  /// @{
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code_ == StatusCode::kNotImplemented; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  /// @}

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief A Status plus a value: either holds a T or a non-OK Status.
///
/// Mirrors arrow::Result. Accessing the value of a failed Result is a
/// programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding \p value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  /// Constructs a failed result from a non-OK \p status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or \p fallback when the result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define PAYGO_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::paygo::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define PAYGO_ASSIGN_OR_RETURN(lhs, expr)          \
  auto PAYGO_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!PAYGO_CONCAT_(_res_, __LINE__).ok())        \
    return PAYGO_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(PAYGO_CONCAT_(_res_, __LINE__)).value()

#define PAYGO_CONCAT_INNER_(a, b) a##b
#define PAYGO_CONCAT_(a, b) PAYGO_CONCAT_INNER_(a, b)

}  // namespace paygo

#endif  // PAYGO_UTIL_STATUS_H_
