#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <string>

#include "obs/stats.h"

namespace paygo {
namespace {

/// Shared state of one ParallelFor: a dynamic chunk cursor plus completion
/// tracking. Heap-allocated and shared with helper tasks so the caller can
/// return as soon as the last chunk finishes, even if a helper is still
/// unwinding its claim loop.
struct ParallelForState {
  std::size_t begin = 0;
  std::size_t size = 0;
  std::size_t num_chunks = 0;
  const std::function<void(const ThreadPool::Chunk&)>* body = nullptr;

  std::atomic<std::size_t> next_chunk{0};
  std::vector<std::exception_ptr> errors;

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t done_chunks = 0;

  ThreadPool::Chunk ChunkAt(std::size_t k) const {
    // Even contiguous split: chunk k covers [k*size/chunks, (k+1)*size/..).
    return {k, begin + k * size / num_chunks,
            begin + (k + 1) * size / num_chunks};
  }

  /// Claims and runs chunks until the cursor is exhausted. Exceptions are
  /// boxed per chunk; the caller rethrows the lowest index after the join.
  void DrainChunks() {
    for (;;) {
      const std::size_t k =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_chunks) return;
      try {
        (*body)(ChunkAt(k));
      } catch (...) {
        errors[k] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (++done_chunks == num_chunks) done_cv.notify_all();
    }
  }
};

}  // namespace

std::size_t ThreadPool::ResolveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads)
    : width_(std::max<std::size_t>(num_threads, 1)) {
  static Counter* pools =
      StatsRegistry::Global().GetCounter("paygo.pool.pools_created");
  pools->Increment();
  workers_.reserve(width_ - 1);
  for (std::size_t i = 0; i + 1 < width_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  // Per-worker task counter (pool lane, not OS thread id): lets the stats
  // dump show how evenly parallel phases spread across lanes.
  Counter* tasks_run = StatsRegistry::Global().GetCounter(
      "paygo.pool.worker." + std::to_string(worker_index) + ".tasks");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    tasks_run->Increment();
    task();
  }
}

std::size_t ThreadPool::NumChunks(std::size_t size, std::size_t grain) const {
  if (size == 0) return 0;
  if (width_ == 1) return 1;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const std::size_t by_grain = (size + g - 1) / g;
  return std::max<std::size_t>(
      1, std::min(by_grain, width_ * kChunksPerThread));
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             std::size_t grain,
                             const std::function<void(const Chunk&)>& body) {
  const std::size_t size = end > begin ? end - begin : 0;
  const std::size_t chunks = NumChunks(size, grain);
  if (chunks == 0) return;
  if (chunks == 1 || workers_.empty()) {
    // Single chunk spanning the range: the exact serial path, exceptions
    // propagate naturally.
    body({0, begin, end});
    return;
  }

  static Counter* fors =
      StatsRegistry::Global().GetCounter("paygo.pool.parallel_fors");
  static Counter* chunk_count =
      StatsRegistry::Global().GetCounter("paygo.pool.chunks_run");
  fors->Increment();
  chunk_count->Add(chunks);

  auto state = std::make_shared<ParallelForState>();
  state->begin = begin;
  state->size = size;
  state->num_chunks = chunks;
  state->body = &body;
  state->errors.resize(chunks);

  // N-way execution = the caller plus at most width-1 helpers; never more
  // helpers than chunks beyond the caller's own lane.
  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    Enqueue([state] { state->DrainChunks(); });
  }
  state->DrainChunks();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock,
                        [&] { return state->done_chunks == chunks; });
  }
  // `body` may dangle once we return; helpers past this point only touch
  // the cursor (>= num_chunks) and never dereference it again.
  for (std::size_t k = 0; k < chunks; ++k) {
    if (state->errors[k]) std::rethrow_exception(state->errors[k]);
  }
}

}  // namespace paygo
