#ifndef PAYGO_UTIL_TABLE_PRINTER_H_
#define PAYGO_UTIL_TABLE_PRINTER_H_

/// \file table_printer.h
/// \brief ASCII-table and CSV rendering for experiment output.
///
/// The bench harness prints the same rows/series the paper's tables and
/// figures report; TablePrinter renders them legibly on a terminal and can
/// also emit CSV for plotting.

#include <ostream>
#include <string>
#include <vector>

namespace paygo {

/// \brief Accumulates rows of string cells and renders them aligned.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> cells);

  /// Convenience: appends a row where numeric cells are pre-formatted.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Renders an aligned ASCII table (pipe-separated, with a rule).
  void Print(std::ostream& os) const;

  /// Renders the table as CSV.
  void PrintCsv(std::ostream& os) const;

  /// Number of data rows.
  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace paygo

#endif  // PAYGO_UTIL_TABLE_PRINTER_H_
