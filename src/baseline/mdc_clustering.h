#ifndef PAYGO_BASELINE_MDC_CLUSTERING_H_
#define PAYGO_BASELINE_MDC_CLUSTERING_H_

/// \file mdc_clustering.h
/// \brief The pre-specified-k baseline of the thesis's related work [17]
/// (He, Tao & Chang, "Organizing structured web sources by query schemas:
/// a clustering approach", CIKM 2004).
///
/// Section 2.2 contrasts the thesis against this approach on three axes:
/// it requires the number of clusters in advance, it assumes per-domain
/// anchor attributes, and it measures cluster similarity by how likely the
/// two clusters' attributes were drawn from the same multinomial
/// distribution (a chi-square test) rather than by Jaccard similarity.
/// This module reimplements that style of algorithm so the bench harness
/// can reproduce the comparison the thesis makes only argumentatively:
/// with the right k it performs well, but at web scale k is unknowable and
/// mis-specifying it degrades quality — while the thesis's threshold-based
/// algorithm needs no k at all.

#include <cstdint>
#include <vector>

#include "cluster/hac.h"
#include "cluster/probabilistic_assignment.h"
#include "schema/lexicon.h"
#include "util/status.h"

namespace paygo {

/// \brief Options of the baseline.
struct MdcOptions {
  /// The pre-specified number of clusters ([17] used exactly 8 domains;
  /// the thesis's point is that this is unknowable at web scale).
  std::size_t num_clusters = 5;
  /// Seed clusters from anchor attributes: the k most frequent terms that
  /// never co-occur in a schema ([17]'s anchor assumption). When off, the
  /// algorithm is purely agglomerative.
  bool use_anchor_seeding = false;
  /// Anchors must appear in at least this many schemas.
  std::size_t min_anchor_frequency = 2;
};

/// \brief Model-differentiation clustering with chi-square similarity.
class MdcBaseline {
 public:
  /// Clusters the schemas of \p lexicon (term occurrence only — the same
  /// information the thesis's algorithm uses) into exactly
  /// options.num_clusters clusters (fewer if there are fewer schemas).
  static Result<HacResult> Run(const Lexicon& lexicon,
                               const MdcOptions& options);

  /// The (negated, per-degree-of-freedom) chi-square statistic used as
  /// cluster similarity: higher means the two term-count vectors look more
  /// like draws from one multinomial. Exposed for tests.
  static double ChiSquareSimilarity(const std::vector<std::uint32_t>& counts_a,
                                    std::size_t total_a,
                                    const std::vector<std::uint32_t>& counts_b,
                                    std::size_t total_b);
};

/// Wraps a hard clustering as a DomainModel (every schema with probability
/// 1 in its cluster's domain) so baseline output plugs into the
/// Section 6.1.2 evaluation and the classifier.
DomainModel HardAssignment(const HacResult& clustering,
                           std::size_t num_schemas);

}  // namespace paygo

#endif  // PAYGO_BASELINE_MDC_CLUSTERING_H_
