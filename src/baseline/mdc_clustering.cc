#include "baseline/mdc_clustering.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace paygo {
namespace {

/// Per-cluster model: term-occurrence counts (how many member schemas
/// contain each term) and their sum.
struct ClusterModel {
  std::vector<std::uint32_t> counts;
  std::size_t total = 0;
  std::vector<std::uint32_t> members;
  bool active = true;
  std::uint32_t version = 0;

  void Absorb(ClusterModel& other) {
    for (std::size_t t = 0; t < counts.size(); ++t) {
      counts[t] += other.counts[t];
    }
    total += other.total;
    members.insert(members.end(), other.members.begin(),
                   other.members.end());
    other.active = false;
    other.members.clear();
    other.members.shrink_to_fit();
    ++version;
    ++other.version;
  }
};

struct HeapEntry {
  double sim;
  std::uint32_t a, b, va, vb;
  bool operator<(const HeapEntry& o) const {
    if (sim != o.sim) return sim < o.sim;
    if (a != o.a) return a > o.a;
    return b > o.b;
  }
};

/// Greedy anchor selection: most frequent terms that never co-occur with
/// an already chosen anchor in any schema.
std::vector<std::uint32_t> SelectAnchors(const Lexicon& lexicon,
                                         std::size_t k,
                                         std::size_t min_frequency) {
  std::vector<std::uint32_t> by_freq(lexicon.dim());
  for (std::uint32_t t = 0; t < lexicon.dim(); ++t) by_freq[t] = t;
  std::sort(by_freq.begin(), by_freq.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              if (lexicon.TermFrequency(x) != lexicon.TermFrequency(y)) {
                return lexicon.TermFrequency(x) > lexicon.TermFrequency(y);
              }
              return x < y;
            });
  std::vector<std::uint32_t> anchors;
  for (std::uint32_t t : by_freq) {
    if (anchors.size() >= k) break;
    if (lexicon.TermFrequency(t) < min_frequency) break;
    bool co_occurs = false;
    for (std::size_t i = 0; i < lexicon.num_schemas() && !co_occurs; ++i) {
      const auto& terms = lexicon.schema_terms(i);
      if (!std::binary_search(terms.begin(), terms.end(), t)) continue;
      for (std::uint32_t a : anchors) {
        if (std::binary_search(terms.begin(), terms.end(), a)) {
          co_occurs = true;
          break;
        }
      }
    }
    if (!co_occurs) anchors.push_back(t);
  }
  return anchors;
}

}  // namespace

double MdcBaseline::ChiSquareSimilarity(
    const std::vector<std::uint32_t>& counts_a, std::size_t total_a,
    const std::vector<std::uint32_t>& counts_b, std::size_t total_b) {
  assert(counts_a.size() == counts_b.size());
  if (total_a == 0 || total_b == 0) return 0.0;
  const double na = static_cast<double>(total_a);
  const double nb = static_cast<double>(total_b);
  double chi2 = 0.0;
  std::size_t dof = 0;
  for (std::size_t t = 0; t < counts_a.size(); ++t) {
    const double joint =
        static_cast<double>(counts_a[t]) + static_cast<double>(counts_b[t]);
    if (joint <= 0.0) continue;
    ++dof;
    const double ea = joint * na / (na + nb);
    const double eb = joint * nb / (na + nb);
    const double da = static_cast<double>(counts_a[t]) - ea;
    const double db = static_cast<double>(counts_b[t]) - eb;
    chi2 += da * da / ea + db * db / eb;
  }
  if (dof <= 1) return 0.0;
  // Similarity: negative normalized statistic, mapped into (0, 1] so that
  // identical distributions score 1.
  const double normalized = chi2 / static_cast<double>(dof - 1);
  return 1.0 / (1.0 + normalized);
}

Result<HacResult> MdcBaseline::Run(const Lexicon& lexicon,
                                   const MdcOptions& options) {
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  const std::size_t n = lexicon.num_schemas();
  const std::size_t dim = lexicon.dim();
  if (n == 0) return HacResult{};

  std::vector<ClusterModel> clusters(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    clusters[i].counts.assign(dim, 0);
    for (std::uint32_t t : lexicon.schema_terms(i)) clusters[i].counts[t] = 1;
    clusters[i].total = lexicon.schema_terms(i).size();
    clusters[i].members = {i};
  }
  std::size_t active = n;
  std::vector<HacMerge> merges;

  // Anchor seeding: pre-merge each anchor's schemas into one cluster.
  if (options.use_anchor_seeding) {
    const std::vector<std::uint32_t> anchors = SelectAnchors(
        lexicon, options.num_clusters, options.min_anchor_frequency);
    for (std::uint32_t anchor : anchors) {
      std::int64_t seed = -1;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!clusters[i].active || clusters[i].members.size() != 1) continue;
        const auto& terms = lexicon.schema_terms(clusters[i].members[0]);
        if (!std::binary_search(terms.begin(), terms.end(), anchor)) continue;
        if (seed < 0) {
          seed = i;
        } else {
          clusters[static_cast<std::size_t>(seed)].Absorb(clusters[i]);
          merges.push_back({static_cast<std::uint32_t>(seed), i, 1.0});
          --active;
        }
      }
    }
  }

  auto pair_sim = [&](std::uint32_t a, std::uint32_t b) {
    return ChiSquareSimilarity(clusters[a].counts, clusters[a].total,
                               clusters[b].counts, clusters[b].total);
  };

  std::priority_queue<HeapEntry> heap;
  for (std::uint32_t a = 0; a < n; ++a) {
    if (!clusters[a].active) continue;
    for (std::uint32_t b = a + 1; b < n; ++b) {
      if (!clusters[b].active) continue;
      heap.push({pair_sim(a, b), a, b, clusters[a].version,
                 clusters[b].version});
    }
  }

  while (active > options.num_clusters && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (!clusters[top.a].active || !clusters[top.b].active) continue;
    if (clusters[top.a].version != top.va ||
        clusters[top.b].version != top.vb) {
      continue;
    }
    // Chi-square similarity is not monotone under merges, so a stale-free
    // heap top is only an approximation of the global argmax; recompute
    // and re-push when the cached value is out of date.
    const double fresh = pair_sim(top.a, top.b);
    if (fresh + 1e-12 < top.sim && !heap.empty() &&
        fresh < heap.top().sim) {
      heap.push({fresh, top.a, top.b, clusters[top.a].version,
                 clusters[top.b].version});
      continue;
    }
    clusters[top.a].Absorb(clusters[top.b]);
    merges.push_back({top.a, top.b, fresh});
    --active;
    for (std::uint32_t c = 0; c < n; ++c) {
      if (!clusters[c].active || c == top.a) continue;
      const std::uint32_t lo = std::min(top.a, c);
      const std::uint32_t hi = std::max(top.a, c);
      heap.push({pair_sim(lo, hi), lo, hi, clusters[lo].version,
                 clusters[hi].version});
    }
  }

  HacResult result;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!clusters[i].active) continue;
    std::vector<std::uint32_t> members = clusters[i].members;
    std::sort(members.begin(), members.end());
    result.clusters.push_back(std::move(members));
  }
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const auto& x, const auto& y) { return x[0] < y[0]; });
  result.merges = std::move(merges);
  return result;
}

DomainModel HardAssignment(const HacResult& clustering,
                           std::size_t num_schemas) {
  std::vector<std::vector<std::pair<std::uint32_t, double>>> schema_domains(
      num_schemas);
  for (std::uint32_t r = 0; r < clustering.clusters.size(); ++r) {
    for (std::uint32_t i : clustering.clusters[r]) {
      schema_domains[i] = {{r, 1.0}};
    }
  }
  return DomainModel::Build(clustering.clusters, std::move(schema_domains));
}

}  // namespace paygo
