#include "core/integration_system.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "obs/trace.h"

namespace paygo {

Result<std::unique_ptr<IntegrationSystem>> IntegrationSystem::Build(
    SchemaCorpus corpus, SystemOptions options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("corpus is empty");
  }
  auto sys = std::unique_ptr<IntegrationSystem>(new IntegrationSystem());
  sys->options_ = options;
  sys->corpus_ = std::make_shared<const SchemaCorpus>(std::move(corpus));

  PAYGO_TRACE_SPAN("system.build");

  // Algorithm 1: terms, lexicon, feature vectors.
  {
    PAYGO_TRACE_SPAN("system.build.features");
    sys->tokenizer_ = std::make_shared<const Tokenizer>(options.tokenizer);
    sys->lexicon_ = std::make_shared<const Lexicon>(
        Lexicon::Build(*sys->corpus_, *sys->tokenizer_));
    if (sys->lexicon_->dim() == 0) {
      return Status::InvalidArgument(
          "no terms survived extraction; check the corpus and tokenizer "
          "options");
    }
    sys->vectorizer_ = std::make_shared<const FeatureVectorizer>(
        *sys->lexicon_, options.features);
    sys->features_ = std::make_shared<const std::vector<DynamicBitset>>(
        sys->vectorizer_->VectorizeCorpus());
  }

  if (options.sparse_build) {
    // Algorithm 2/3, dense-matrix-free: the sparse neighbor graph stands
    // in for the O(n^2) similarity matrix end to end.
    {
      PAYGO_TRACE_SPAN("system.build.similarity");
      NeighborGraphOptions graph_options = options.neighbor_graph;
      graph_options.num_threads = options.hac.num_threads;
      PAYGO_ASSIGN_OR_RETURN(
          NeighborGraph graph,
          NeighborGraph::Build(*sys->features_, graph_options));
      sys->graph_ = std::make_shared<const NeighborGraph>(std::move(graph));
    }
    PAYGO_ASSIGN_OR_RETURN(sys->clustering_,
                           Hac::RunOnGraph(*sys->graph_, options.hac));
    {
      PAYGO_TRACE_SPAN("system.build.assign");
      PAYGO_ASSIGN_OR_RETURN(
          sys->domains_,
          AssignProbabilities(*sys->graph_, sys->clustering_,
                              options.assignment, options.hac.num_threads));
    }
  } else {
    // Algorithm 2: clustering (with the memoized similarity matrix).
    {
      PAYGO_TRACE_SPAN("system.build.similarity");
      sys->sims_ = std::make_shared<const SimilarityMatrix>(
          *sys->features_, options.hac.num_threads);
    }
    PAYGO_ASSIGN_OR_RETURN(
        sys->clustering_,
        Hac::Run(*sys->features_, *sys->sims_, options.hac));

    // Algorithm 3: probabilistic schema-to-domain assignment.
    {
      PAYGO_TRACE_SPAN("system.build.assign");
      PAYGO_ASSIGN_OR_RETURN(
          sys->domains_,
          AssignProbabilities(*sys->sims_, sys->clustering_,
                              options.assignment));
    }
  }

  // Section 4.4 mediation and the Chapter 5 classifier (all heavy
  // classifier work happens here, at setup time).
  PAYGO_RETURN_NOT_OK(sys->RebuildDerivedState());

  sys->sources_.resize(sys->corpus_->size());
  return sys;
}

Result<std::unique_ptr<IntegrationSystem>> IntegrationSystem::Restore(
    SchemaCorpus corpus, SystemOptions options, DomainModel model,
    std::vector<DomainConditionals> conditionals,
    std::vector<std::string> lexicon_terms,
    std::vector<DynamicBitset> features) {
  if (corpus.empty()) {
    return Status::InvalidArgument("corpus is empty");
  }
  if (model.num_schemas() != corpus.size()) {
    return Status::InvalidArgument(
        "restored model covers " + std::to_string(model.num_schemas()) +
        " schemas but the corpus has " + std::to_string(corpus.size()));
  }
  auto sys = std::unique_ptr<IntegrationSystem>(new IntegrationSystem());
  sys->options_ = options;
  sys->corpus_ = std::make_shared<const SchemaCorpus>(std::move(corpus));

  sys->tokenizer_ = std::make_shared<const Tokenizer>(options.tokenizer);
  if (!lexicon_terms.empty()) {
    // Frozen-lexicon restore (snapshot v2): the feature space is the one
    // the system was actually serving with, not a re-derivation.
    if (features.size() != sys->corpus_->size()) {
      return Status::InvalidArgument(
          "restored feature vectors cover " +
          std::to_string(features.size()) + " schemas but the corpus has " +
          std::to_string(sys->corpus_->size()));
    }
    const std::size_t dim = lexicon_terms.size();
    for (const DynamicBitset& f : features) {
      if (f.size() != dim) {
        return Status::InvalidArgument(
            "restored feature vector dimension does not match the restored "
            "lexicon");
      }
    }
    sys->lexicon_ = std::make_shared<const Lexicon>(Lexicon::FromTerms(
        std::move(lexicon_terms), *sys->corpus_, *sys->tokenizer_));
    sys->vectorizer_ = std::make_shared<const FeatureVectorizer>(
        *sys->lexicon_, options.features);
    sys->features_ = std::make_shared<const std::vector<DynamicBitset>>(
        std::move(features));
  } else {
    sys->lexicon_ = std::make_shared<const Lexicon>(
        Lexicon::Build(*sys->corpus_, *sys->tokenizer_));
    sys->vectorizer_ = std::make_shared<const FeatureVectorizer>(
        *sys->lexicon_, options.features);
    sys->features_ = std::make_shared<const std::vector<DynamicBitset>>(
        sys->vectorizer_->VectorizeCorpus());
  }
  if (options.sparse_build) {
    NeighborGraphOptions graph_options = options.neighbor_graph;
    graph_options.num_threads = options.hac.num_threads;
    PAYGO_ASSIGN_OR_RETURN(NeighborGraph graph,
                           NeighborGraph::Build(*sys->features_,
                                                graph_options));
    sys->graph_ = std::make_shared<const NeighborGraph>(std::move(graph));
  } else {
    sys->sims_ = std::make_shared<const SimilarityMatrix>(
        *sys->features_, options.hac.num_threads);
  }

  // The clustering result is reconstructed from the model (merge history
  // is not persisted — it only serves diagnostics).
  sys->clustering_.clusters = model.clusters();
  sys->domains_ = std::move(model);

  if (options.build_mediation) {
    sys->mediations_.reserve(sys->domains_.num_domains());
    for (std::uint32_t r = 0; r < sys->domains_.num_domains(); ++r) {
      const auto& members = sys->domains_.SchemasOf(r);
      if (members.empty()) {
        sys->mediations_.push_back(std::make_shared<const DomainMediation>());
        continue;
      }
      PAYGO_ASSIGN_OR_RETURN(
          DomainMediation med,
          Mediator::BuildForDomain(*sys->corpus_, *sys->tokenizer_, members,
                                   options.mediator));
      sys->mediations_.push_back(
          std::make_shared<const DomainMediation>(std::move(med)));
    }
  }

  if (!conditionals.empty()) {
    if (conditionals.size() != sys->domains_.num_domains()) {
      return Status::InvalidArgument(
          "restored classifier covers a different number of domains than "
          "the model");
    }
    if (conditionals[0].q1.size() != sys->lexicon_->dim()) {
      return Status::InvalidArgument(
          "restored classifier feature space (dim " +
          std::to_string(conditionals[0].q1.size()) +
          ") does not match the corpus lexicon (dim " +
          std::to_string(sys->lexicon_->dim()) +
          "); were different tokenizer options used?");
    }
    std::vector<bool> singleton;
    singleton.reserve(sys->domains_.num_domains());
    for (std::uint32_t r = 0; r < sys->domains_.num_domains(); ++r) {
      singleton.push_back(sys->domains_.IsSingletonDomain(r));
    }
    sys->classifier_ = std::make_shared<const NaiveBayesClassifier>(
        NaiveBayesClassifier::FromConditionals(std::move(conditionals),
                                               std::move(singleton),
                                               options.classifier));
    sys->query_featurizer_ = std::make_shared<const QueryFeaturizer>(
        *sys->tokenizer_, *sys->vectorizer_);
  }

  sys->sources_.resize(sys->corpus_->size());
  return sys;
}

std::unique_ptr<IntegrationSystem> IntegrationSystem::Clone() const {
  PAYGO_TRACE_SPAN("system.clone");
  auto copy = std::unique_ptr<IntegrationSystem>(new IntegrationSystem());
  copy->options_ = options_;
  // Structural sharing: every shared_ptr<const T> component is aliased, not
  // copied — the vectorizer's lexicon reference and the query featurizer's
  // tokenizer/vectorizer references stay valid because the objects they
  // point at are themselves shared (stable addresses for the life of both
  // systems). Mutators never write through these pointers; they swap in
  // fresh components copy-on-write.
  copy->corpus_ = corpus_;
  copy->tokenizer_ = tokenizer_;
  copy->lexicon_ = lexicon_;
  copy->vectorizer_ = vectorizer_;
  copy->features_ = features_;
  copy->sims_ = sims_;
  copy->graph_ = graph_;
  copy->clustering_ = clustering_;
  copy->domains_ = domains_;
  copy->classifier_ = classifier_;
  copy->query_featurizer_ = query_featurizer_;
  copy->mediations_ = mediations_;
  copy->sources_ = sources_;
  return copy;
}

Status IntegrationSystem::RebuildDerivedState() {
  PAYGO_TRACE_SPAN("system.rebuild_derived");
  if (options_.build_mediation) {
    PAYGO_TRACE_SPAN("system.mediate");
    std::vector<std::shared_ptr<const DomainMediation>> mediations;
    mediations.reserve(domains_.num_domains());
    for (std::uint32_t r = 0; r < domains_.num_domains(); ++r) {
      const auto& members = domains_.SchemasOf(r);
      if (members.empty()) {
        // Empty domain: empty mediation.
        mediations.push_back(std::make_shared<const DomainMediation>());
        continue;
      }
      auto med = Mediator::BuildForDomain(*corpus_, *tokenizer_, members,
                                          options_.mediator);
      if (!med.ok()) return med.status();
      mediations.push_back(
          std::make_shared<const DomainMediation>(std::move(*med)));
    }
    mediations_ = std::move(mediations);
  }
  if (options_.build_classifier) {
    PAYGO_TRACE_SPAN("system.build_classifier");
    auto clf = NaiveBayesClassifier::Build(domains_, *features_,
                                           corpus_->size(),
                                           options_.classifier);
    if (!clf.ok()) return clf.status();
    classifier_ =
        std::make_shared<const NaiveBayesClassifier>(std::move(*clf));
    if (query_featurizer_ == nullptr) {
      query_featurizer_ = std::make_shared<const QueryFeaturizer>(
          *tokenizer_, *vectorizer_);
    }
  }
  return Status::OK();
}

Status IntegrationSystem::RebuildDerivedStateDelta(
    const std::vector<std::uint32_t>& affected_domains,
    std::size_t old_num_domains) {
  PAYGO_TRACE_SPAN("system.rebuild_derived_delta");
  std::vector<bool> affected(domains_.num_domains(), false);
  for (std::uint32_t r : affected_domains) {
    if (r < affected.size()) affected[r] = true;
  }
  for (std::size_t r = old_num_domains; r < affected.size(); ++r) {
    affected[r] = true;
  }
  if (options_.build_mediation) {
    PAYGO_TRACE_SPAN("system.mediate_delta");
    std::vector<std::shared_ptr<const DomainMediation>> mediations;
    mediations.reserve(domains_.num_domains());
    for (std::uint32_t r = 0; r < domains_.num_domains(); ++r) {
      if (r < mediations_.size() && !affected[r]) {
        // BuildForDomain is a pure function of the domain's members, which
        // did not change — share the existing mediation.
        mediations.push_back(mediations_[r]);
        continue;
      }
      const auto& members = domains_.SchemasOf(r);
      if (members.empty()) {
        mediations.push_back(std::make_shared<const DomainMediation>());
        continue;
      }
      auto med = Mediator::BuildForDomain(*corpus_, *tokenizer_, members,
                                          options_.mediator);
      if (!med.ok()) return med.status();
      mediations.push_back(
          std::make_shared<const DomainMediation>(std::move(*med)));
    }
    mediations_ = std::move(mediations);
  }
  if (options_.build_classifier && classifier_ != nullptr) {
    PAYGO_TRACE_SPAN("system.update_classifier");
    std::vector<std::uint32_t> touched;
    touched.reserve(affected.size());
    for (std::uint32_t r = 0; r < affected.size(); ++r) {
      if (affected[r]) touched.push_back(r);
    }
    auto clf = NaiveBayesClassifier::UpdateDomains(
        *classifier_, domains_, *features_, corpus_->size(), touched);
    if (!clf.ok()) return clf.status();
    classifier_ =
        std::make_shared<const NaiveBayesClassifier>(std::move(*clf));
  } else if (options_.build_classifier) {
    // No base classifier to update (never happens on the Build() path);
    // fall back to the full build.
    auto clf = NaiveBayesClassifier::Build(domains_, *features_,
                                           corpus_->size(),
                                           options_.classifier);
    if (!clf.ok()) return clf.status();
    classifier_ =
        std::make_shared<const NaiveBayesClassifier>(std::move(*clf));
    if (query_featurizer_ == nullptr) {
      query_featurizer_ = std::make_shared<const QueryFeaturizer>(
          *tokenizer_, *vectorizer_);
    }
  }
  return Status::OK();
}

Result<IncrementalAddResult> IntegrationSystem::AddSchema(
    Schema schema, std::vector<std::string> labels) {
  PAYGO_TRACE_SPAN("system.add_schema");
  // Delegate the Algorithm 3-style assignment to the incremental engine,
  // seeded with the system's current state.
  IncrementalOptions inc_opts;
  inc_opts.tau_c_sim = options_.assignment.tau_c_sim;
  inc_opts.theta = options_.assignment.theta;
  const std::size_t old_num_domains = domains_.num_domains();
  IncrementalClusterer inc(*tokenizer_, *vectorizer_, *features_, domains_,
                           inc_opts);
  PAYGO_ASSIGN_OR_RETURN(IncrementalAddResult result,
                         inc.AddSchema(schema));
  // Adopt the updated state copy-on-write: readers of a snapshot that
  // shares the old components never see these swaps.
  {
    auto corpus = std::make_shared<SchemaCorpus>(*corpus_);
    corpus->Add(std::move(schema), std::move(labels));
    corpus_ = std::move(corpus);
  }
  features_ = std::make_shared<const std::vector<DynamicBitset>>(
      inc.TakeFeatures());
  domains_ = inc.model();
  clustering_.clusters = domains_.clusters();
  clustering_.merges.clear();  // merge history no longer describes the model
  if (options_.sparse_build) {
    if (options_.delta_mutations) {
      // One appended schema: extend the graph by its (exact) row instead
      // of rebuilding candidate generation from scratch.
      graph_ = std::make_shared<const NeighborGraph>(*graph_, *features_);
    } else {
      NeighborGraphOptions graph_options = options_.neighbor_graph;
      graph_options.num_threads = options_.hac.num_threads;
      PAYGO_ASSIGN_OR_RETURN(
          NeighborGraph graph,
          NeighborGraph::Build(*features_, graph_options));
      graph_ = std::make_shared<const NeighborGraph>(std::move(graph));
    }
  } else if (options_.delta_mutations) {
    // One appended schema: extend the memoized matrix by its row/column
    // (O(n * dim)) instead of refilling all O(n^2) pairs.
    sims_ = std::make_shared<const SimilarityMatrix>(*sims_, *features_);
  } else {
    sims_ = std::make_shared<const SimilarityMatrix>(
        *features_, options_.hac.num_threads);
  }
  sources_.resize(corpus_->size());
  if (options_.delta_mutations) {
    // The schema joined result.memberships' domains (or opened a new one);
    // every other domain's member set is untouched.
    std::vector<std::uint32_t> affected;
    affected.reserve(result.memberships.size());
    for (const auto& [domain, prob] : result.memberships) {
      affected.push_back(domain);
    }
    PAYGO_RETURN_NOT_OK(RebuildDerivedStateDelta(affected, old_num_domains));
  } else {
    PAYGO_RETURN_NOT_OK(RebuildDerivedState());
  }
  return result;
}

Status IntegrationSystem::RebuildFromScratch() {
  PAYGO_ASSIGN_OR_RETURN(std::unique_ptr<IntegrationSystem> fresh,
                         Build(*corpus_, options_));
  // Carry the attached data sources over, then adopt the fresh state.
  fresh->sources_ = std::move(sources_);
  *this = std::move(*fresh);
  return Status::OK();
}

Status IntegrationSystem::ApplyFeedback(const FeedbackStore& store) {
  if (store.has_explicit_feedback()) {
    if (options_.sparse_build) {
      return Status::FailedPrecondition(
          "explicit-feedback reclustering needs the dense similarity "
          "matrix; rebuild the system without sparse_build to apply "
          "corrections");
    }
    PAYGO_ASSIGN_OR_RETURN(
        DomainModel refined,
        ReclusterWithFeedback(*features_, *sims_, options_.hac,
                              options_.assignment, store));
    domains_ = std::move(refined);
    clustering_.clusters = domains_.clusters();
    clustering_.merges.clear();
    PAYGO_RETURN_NOT_OK(RebuildDerivedState());
  }
  if (store.has_implicit_feedback() && classifier_ != nullptr) {
    classifier_ = std::make_shared<const NaiveBayesClassifier>(
        AdjustClassifierWithClicks(*classifier_, store));
  }
  return Status::OK();
}

Result<std::vector<DomainScore>> IntegrationSystem::ClassifyKeywordQuery(
    std::string_view keyword_query) const {
  PAYGO_TRACE_SPAN("system.classify_query");
  if (classifier_ == nullptr) {
    return Status::FailedPrecondition(
        "system was built without a classifier");
  }
  return classifier_->Classify(query_featurizer_->Featurize(keyword_query));
}

Result<std::vector<std::vector<DomainScore>>>
IntegrationSystem::ClassifyKeywordQueryBatch(
    std::span<const std::string> keyword_queries) const {
  PAYGO_TRACE_SPAN("system.classify_batch");
  if (classifier_ == nullptr) {
    return Status::FailedPrecondition(
        "system was built without a classifier");
  }
  std::vector<DynamicBitset> features;
  features.reserve(keyword_queries.size());
  for (const std::string& q : keyword_queries) {
    features.push_back(query_featurizer_->Featurize(q));
  }
  return classifier_->ClassifyBatch(features);
}

Result<std::vector<DomainSuggestion>> IntegrationSystem::SuggestDomains(
    std::string_view keyword_query, std::size_t k) const {
  PAYGO_ASSIGN_OR_RETURN(std::vector<DomainScore> ranking,
                         ClassifyKeywordQuery(keyword_query));
  std::vector<DomainSuggestion> out;
  for (const DomainScore& s : ranking) {
    if (out.size() >= k) break;
    DomainSuggestion sug;
    sug.domain = s.domain;
    sug.log_posterior = s.log_posterior;
    if (!mediations_.empty()) {
      for (const MediatedAttribute& a :
           mediations_[s.domain]->mediated.attributes) {
        sug.mediated_attributes.push_back(a.name);
      }
    }
    out.push_back(std::move(sug));
  }
  return out;
}

Result<IntegrationSystem::KeywordSearchAnswer>
IntegrationSystem::AnswerKeywordQuery(
    std::string_view keyword_query,
    const KeywordSearchOptions& options) const {
  PAYGO_TRACE_SPAN("system.keyword_search");
  if (mediations_.empty()) {
    return Status::FailedPrecondition("system was built without mediation");
  }
  KeywordSearchAnswer answer;
  PAYGO_ASSIGN_OR_RETURN(
      answer.consulted,
      SuggestDomains(keyword_query, options.domains_to_consult));
  if (answer.consulted.empty()) return answer;

  // Softmax-normalize the consulted domains' log posteriors so tuple
  // scores from different domains are comparable.
  double max_lp = answer.consulted[0].log_posterior;
  for (const DomainSuggestion& d : answer.consulted) {
    max_lp = std::max(max_lp, d.log_posterior);
  }
  std::vector<double> posteriors;
  double norm = 0.0;
  for (const DomainSuggestion& d : answer.consulted) {
    const double p = std::exp(d.log_posterior - max_lp);
    posteriors.push_back(p);
    norm += p;
  }
  for (double& p : posteriors) p /= norm;

  const std::vector<std::string> keywords =
      query_featurizer_->ExtractTerms(keyword_query);
  std::vector<const DataSource*> by_schema(corpus_->size(), nullptr);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    by_schema[i] = sources_[i].get();
  }

  std::vector<std::vector<KeywordHit>> per_domain;
  for (std::size_t k = 0; k < answer.consulted.size(); ++k) {
    PAYGO_ASSIGN_OR_RETURN(
        std::vector<KeywordHit> hits,
        SearchDomainTuples(answer.consulted[k].domain, posteriors[k],
                           *mediations_[answer.consulted[k].domain],
                           by_schema, keywords, options));
    per_domain.push_back(std::move(hits));
  }
  answer.hits = MergeKeywordHits(std::move(per_domain), options.max_hits);
  return answer;
}

Status IntegrationSystem::AttachTuples(std::uint32_t schema_id,
                                       std::vector<Tuple> tuples) {
  if (schema_id >= corpus_->size()) {
    return Status::OutOfRange("schema id out of range");
  }
  // Copy-on-write: the store may be shared with published snapshots, so
  // tuples are appended to a private copy that replaces the pointer.
  auto src = sources_[schema_id] == nullptr
                 ? std::make_shared<DataSource>(schema_id,
                                                corpus_->schema(schema_id))
                 : std::make_shared<DataSource>(*sources_[schema_id]);
  for (Tuple& t : tuples) {
    PAYGO_RETURN_NOT_OK(src->AddTuple(std::move(t)));
  }
  sources_[schema_id] = std::move(src);
  return Status::OK();
}

Result<std::vector<RankedTuple>> IntegrationSystem::AnswerStructuredQuery(
    std::uint32_t domain, const StructuredQuery& query) const {
  PAYGO_TRACE_SPAN("system.structured_query");
  if (mediations_.empty()) {
    return Status::FailedPrecondition("system was built without mediation");
  }
  if (domain >= mediations_.size()) {
    return Status::OutOfRange("domain id out of range");
  }
  std::vector<const DataSource*> by_schema(corpus_->size(), nullptr);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    by_schema[i] = sources_[i].get();
  }
  QueryEngine engine(*mediations_[domain], by_schema);
  return engine.Answer(query);
}

std::string IntegrationSystem::DescribeDomain(std::uint32_t domain,
                                              std::size_t max_members) const {
  std::ostringstream os;
  const auto& members = domains_.SchemasOf(domain);
  os << "Domain " << domain << " (" << members.size() << " schemas";
  if (domains_.IsSingletonDomain(domain)) os << ", unclustered";
  os << ")\n";
  if (!mediations_.empty()) {
    os << "  mediated schema:";
    std::size_t shown = 0;
    for (const MediatedAttribute& a : mediations_[domain]->mediated.attributes) {
      if (shown++ >= 10) {
        os << " ...";
        break;
      }
      os << " [" << a.name << "]";
    }
    os << "\n";
  }
  std::size_t shown = 0;
  for (const auto& [schema, prob] : members) {
    if (shown++ >= max_members) {
      os << "  ... (" << members.size() - max_members << " more)\n";
      break;
    }
    os << "  " << corpus_->schema(schema).source_name << " (p=" << prob
       << "): ";
    const auto& attrs = corpus_->schema(schema).attributes;
    for (std::size_t a = 0; a < attrs.size() && a < 6; ++a) {
      os << (a ? "; " : "") << attrs[a];
    }
    if (attrs.size() > 6) os << "; ...";
    os << "\n";
  }
  return os.str();
}

}  // namespace paygo
