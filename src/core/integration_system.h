#ifndef PAYGO_CORE_INTEGRATION_SYSTEM_H_
#define PAYGO_CORE_INTEGRATION_SYSTEM_H_

/// \file integration_system.h
/// \brief The pay-as-you-go integration system facade (Figure 3.1).
///
/// IntegrationSystem::Build runs the full offline pipeline on a schema
/// corpus: term extraction and feature vectors (Algorithm 1), hierarchical
/// agglomerative clustering (Algorithm 2), probabilistic schema-to-domain
/// assignment (Algorithm 3), per-domain schema mediation and probabilistic
/// mapping (Section 4.4), and naive-Bayes classifier construction
/// (Chapter 5). At runtime it classifies keyword queries into ranked
/// domains and answers structured queries over a domain's mediated schema
/// with probability-ranked tuples.

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "classify/naive_bayes.h"
#include "classify/query_featurizer.h"
#include "cluster/hac.h"
#include "cluster/incremental.h"
#include "cluster/neighbor_graph.h"
#include "cluster/probabilistic_assignment.h"
#include "feedback/feedback.h"
#include "integrate/data_source.h"
#include "integrate/keyword_search.h"
#include "integrate/query_engine.h"
#include "mediate/mediator.h"
#include "schema/corpus.h"
#include "schema/feature_vector.h"
#include "schema/lexicon.h"
#include "text/tokenizer.h"
#include "util/status.h"

namespace paygo {

/// \brief Options of the full pipeline; each stage's options are the
/// corresponding module's.
struct SystemOptions {
  TokenizerOptions tokenizer;
  FeatureVectorizerOptions features;
  HacOptions hac;
  AssignmentOptions assignment;
  ClassifierOptions classifier;
  MediatorOptions mediator;
  /// Dense-matrix-free build: clustering and domain assignment run over
  /// the sparse NeighborGraph (see neighbor_graph below) and the O(n^2)
  /// SimilarityMatrix is never allocated — the web-scale path. The HAC
  /// engine is forced sparse, so the hac options must satisfy its
  /// contract (tau_c_sim > 0, no Total Jaccard, no max_clusters). With
  /// the default exact graph the resulting clustering and domain model
  /// are bitwise identical to the dense build; with an LSH graph they are
  /// an approximation with bounded candidate recall. Explicit-feedback
  /// reclustering (ApplyFeedback) still needs the dense matrix and is
  /// rejected in this mode. Dense remains the default and the oracle.
  bool sparse_build = false;
  /// Neighbor-graph construction knobs for sparse_build (mode, LSH
  /// banding, hot-posting handling). num_threads is taken from
  /// hac.num_threads, not from here.
  NeighborGraphOptions neighbor_graph;
  /// Skip mediation (clustering/classification-only deployments).
  bool build_mediation = true;
  /// Skip classifier construction.
  bool build_classifier = true;
  /// Delta write path (default): AddSchema extends the similarity matrix by
  /// one row instead of refilling it, rebuilds mediation only for the
  /// domains the schema joined, and refreshes the classifier incrementally
  /// via NaiveBayesClassifier::UpdateDomains — bit-identical to the full
  /// path but O(delta) instead of O(corpus). Set false to force the legacy
  /// full rebuild on every mutation (the differential-test oracle and the
  /// perf baseline).
  bool delta_mutations = true;
};

/// \brief One entry of a keyword query's answer: a relevant domain, its
/// mediated schema, and the classifier's score.
struct DomainSuggestion {
  std::uint32_t domain = 0;
  double log_posterior = 0.0;
  /// The dominant mediated-attribute names (the "structured query
  /// interface" the thesis presents to the user), empty when mediation was
  /// not built.
  std::vector<std::string> mediated_attributes;
};

/// \brief The built pay-as-you-go data integration system.
///
/// Thread-safety contract: every const member function is a pure read — no
/// lazily-filled caches, no mutable members, no const_casts anywhere on the
/// ClassifyKeywordQuery / SuggestDomains / AnswerKeywordQuery /
/// AnswerStructuredQuery / DescribeDomain paths — so any number of threads
/// may call const methods concurrently on one instance. Mutators
/// (AddSchema, ApplyFeedback, RebuildFromScratch, AttachTuples) are NOT
/// safe to run concurrently with reads on the same instance; the serving
/// layer (src/serve) handles this by mutating a Clone() and publishing it
/// with an atomic snapshot swap instead of locking readers out.
class IntegrationSystem {
 public:
  /// Runs the offline pipeline. The corpus is copied into the system.
  static Result<std::unique_ptr<IntegrationSystem>> Build(
      SchemaCorpus corpus, SystemOptions options = {});

  /// Reconstructs a system from persisted parts (see persist/model_io.h):
  /// the cheap derived state (lexicon, feature vectors, mediation) is
  /// rebuilt from the corpus under \p options; the expensive parts — the
  /// probabilistic domain model and, when non-empty, the classifier
  /// conditionals — are restored verbatim instead of recomputed.
  ///
  /// When \p lexicon_terms is non-empty the lexicon is NOT rebuilt from the
  /// corpus: it is frozen to exactly those terms (Lexicon::FromTerms) and
  /// \p features — which must then have corpus.size() entries of dimension
  /// lexicon_terms.size() — is adopted verbatim as the per-schema feature
  /// vectors. This is the only correct way to restore a system whose corpus
  /// grew through AddSchema after Build: those schemas were featurized by
  /// VectorizeExternalTerms against the frozen lexicon, so re-deriving the
  /// lexicon from the grown corpus would change the feature space and
  /// silently (or loudly, via the dim check) diverge from the persisted
  /// classifier. Snapshot format v2 persists both (see persist/model_io.h).
  static Result<std::unique_ptr<IntegrationSystem>> Restore(
      SchemaCorpus corpus, SystemOptions options, DomainModel model,
      std::vector<DomainConditionals> conditionals,
      std::vector<std::string> lexicon_terms = {},
      std::vector<DynamicBitset> features = {});

  /// Structurally shared copy for copy-on-write snapshotting: the
  /// immutable heavyweights — corpus, tokenizer, lexicon, similarity
  /// index/vectorizer, per-schema feature vectors, similarity matrix,
  /// classifier, per-domain mediations, attached tuple stores — sit behind
  /// shared_ptr<const T>, so a clone is O(#components + #domains +
  /// #schemas) pointer copies, independent of corpus text, matrix, or
  /// model size. Mutators copy-on-write exactly the components they
  /// replace (a fresh corpus/feature vector on append, the touched
  /// domains' mediations, one tuple store), so mutating the clone never
  /// disturbs concurrent readers of the original: shared components are
  /// const and never written in place.
  std::unique_ptr<IntegrationSystem> Clone() const;

  // --- runtime: keyword queries (Chapter 5) ---

  /// Ranks domains for a raw keyword query string (e.g. "departure Toronto
  /// destination Cairo"). Requires build_classifier.
  Result<std::vector<DomainScore>> ClassifyKeywordQuery(
      std::string_view keyword_query) const;

  /// Batch flavor of ClassifyKeywordQuery: featurizes every query, then
  /// ranks all of them in one cache-resident struct-of-arrays sweep
  /// (NaiveBayesClassifier::ClassifyBatch). results[i] is bitwise-identical
  /// to ClassifyKeywordQuery(keyword_queries[i]) — the batch path is a
  /// throughput optimization, never a different answer.
  Result<std::vector<std::vector<DomainScore>>> ClassifyKeywordQueryBatch(
      std::span<const std::string> keyword_queries) const;

  /// ClassifyKeywordQuery plus each domain's mediated query interface,
  /// truncated to the top \p k domains — the search-results-page shape of
  /// Section 1.1.
  Result<std::vector<DomainSuggestion>> SuggestDomains(
      std::string_view keyword_query, std::size_t k = 3) const;

  /// \brief End-to-end keyword search (Section 1.1's motivating use case):
  /// classify the query into domains, retrieve tuples from the top
  /// domains, and rank them by domain posterior x tuple probability x
  /// value-match boost, so "departure Toronto destination Cairo" surfaces
  /// actual Toronto-Cairo rows. Requires classifier, mediation, and
  /// attached tuples.
  struct KeywordSearchAnswer {
    /// The domains consulted, with their interfaces (as SuggestDomains).
    std::vector<DomainSuggestion> consulted;
    /// Merged tuple hits, descending by score.
    std::vector<KeywordHit> hits;
  };
  Result<KeywordSearchAnswer> AnswerKeywordQuery(
      std::string_view keyword_query,
      const KeywordSearchOptions& options = {}) const;

  // --- pay-as-you-go refinement (Chapter 7) ---

  /// Folds a newly discovered source into the live system without
  /// re-clustering (the incremental path of cluster/incremental.h): the
  /// schema joins qualifying domains or opens a new singleton, the
  /// affected domains' mediation is rebuilt, and the classifier is
  /// refreshed. The lexicon stays frozen — the returned
  /// unseen_term_fraction reports the drift; call Build() afresh when it
  /// accumulates.
  Result<IncrementalAddResult> AddSchema(
      Schema schema, std::vector<std::string> labels = {});

  /// Applies accumulated user feedback: explicit corrections recluster the
  /// corpus under must-link/cannot-link constraints (and pin the corrected
  /// schemas), implicit clicks reweight the classifier priors. Mediation
  /// and classifier are rebuilt to match the refined domains.
  Status ApplyFeedback(const FeedbackStore& store);

  /// The "refine later" escape hatch: re-runs the whole offline pipeline
  /// (including a fresh lexicon, so terms incremental additions could not
  /// represent become features) over the current corpus. Attached tuple
  /// data is preserved. Call when AddSchema's drift accumulates.
  Status RebuildFromScratch();

  // --- runtime: structured queries (Section 4.4) ---

  /// Attaches tuple data for the schema at corpus index \p schema_id.
  Status AttachTuples(std::uint32_t schema_id, std::vector<Tuple> tuples);

  /// Answers a structured query over domain \p domain's mediated schema.
  /// Requires build_mediation and attached tuples.
  Result<std::vector<RankedTuple>> AnswerStructuredQuery(
      std::uint32_t domain, const StructuredQuery& query) const;

  // --- introspection ---

  const SchemaCorpus& corpus() const { return *corpus_; }
  const Tokenizer& tokenizer() const { return *tokenizer_; }
  const Lexicon& lexicon() const { return *lexicon_; }
  const FeatureVectorizer& vectorizer() const { return *vectorizer_; }
  const std::vector<DynamicBitset>& features() const { return *features_; }
  /// Requires has_similarities() (absent in sparse_build mode).
  const SimilarityMatrix& similarities() const { return *sims_; }
  bool has_similarities() const { return sims_ != nullptr; }
  /// Requires has_neighbor_graph() (present in sparse_build mode).
  const NeighborGraph& neighbor_graph() const { return *graph_; }
  bool has_neighbor_graph() const { return graph_ != nullptr; }
  const HacResult& clustering() const { return clustering_; }
  const DomainModel& domains() const { return domains_; }
  /// Requires build_classifier.
  const NaiveBayesClassifier& classifier() const { return *classifier_; }
  bool has_classifier() const { return classifier_ != nullptr; }
  /// Requires build_mediation.
  const DomainMediation& mediation(std::uint32_t domain) const {
    return *mediations_[domain];
  }
  bool has_mediation() const { return !mediations_.empty(); }
  const SystemOptions& options() const { return options_; }

  /// Overrides the worker-thread count used by subsequent rebuild-style
  /// mutations (RebuildFromScratch, ApplyFeedback, AddSchema) on this
  /// instance: 0 = hardware concurrency, 1 = serial. Results are
  /// bit-identical at any setting; the serving layer calls this on a
  /// Clone() before mutating it, so readers of the published snapshot are
  /// never affected.
  void set_num_threads(std::size_t num_threads) {
    options_.hac.num_threads = num_threads;
    options_.features.num_threads = num_threads;
  }

  /// Toggles the delta write path on this instance (see
  /// SystemOptions::delta_mutations). The differential tests and the
  /// write-path bench build one system, then flip this on Clone()s so the
  /// delta and full paths start from bit-identical state.
  void set_delta_mutations(bool enabled) {
    options_.delta_mutations = enabled;
  }

  /// Human-readable domain summary: size, top attributes, member sources.
  std::string DescribeDomain(std::uint32_t domain,
                             std::size_t max_members = 8) const;

 private:
  IntegrationSystem() = default;
  /// Rebuilds mediation (when enabled) and the classifier from the current
  /// corpus/features/domains — the full path, O(#domains) mediations plus a
  /// whole-model classifier build.
  Status RebuildDerivedState();
  /// The delta path: rebuilds mediation only for \p affected_domains (ids
  /// >= \p old_num_domains are implicitly affected — they are new), keeps
  /// every other domain's mediation shared, and refreshes the classifier
  /// via NaiveBayesClassifier::UpdateDomains. Bit-identical to
  /// RebuildDerivedState because BuildForDomain and the factored
  /// conditionals depend only on the domain's own members.
  Status RebuildDerivedStateDelta(
      const std::vector<std::uint32_t>& affected_domains,
      std::size_t old_num_domains);

  // All heavyweight components are shared_ptr<const T>: Clone() copies the
  // pointers, mutators replace whole components copy-on-write. HacResult /
  // DomainModel stay by value — they are mutated piecemeal by the
  // incremental and feedback paths and are O(#schemas) small.
  SystemOptions options_;
  std::shared_ptr<const SchemaCorpus> corpus_;
  std::shared_ptr<const Tokenizer> tokenizer_;
  std::shared_ptr<const Lexicon> lexicon_;
  std::shared_ptr<const FeatureVectorizer> vectorizer_;
  std::shared_ptr<const std::vector<DynamicBitset>> features_;
  std::shared_ptr<const SimilarityMatrix> sims_;  // null in sparse_build mode
  std::shared_ptr<const NeighborGraph> graph_;    // non-null iff sparse_build
  HacResult clustering_;
  DomainModel domains_;
  std::shared_ptr<const NaiveBayesClassifier> classifier_;
  std::shared_ptr<const QueryFeaturizer> query_featurizer_;
  std::vector<std::shared_ptr<const DomainMediation>> mediations_;
  std::vector<std::shared_ptr<const DataSource>> sources_;  // by schema id
};

}  // namespace paygo

#endif  // PAYGO_CORE_INTEGRATION_SYSTEM_H_
