#ifndef PAYGO_CLASSIFY_APPROX_CLASSIFIER_H_
#define PAYGO_CLASSIFY_APPROX_CLASSIFIER_H_

/// \file approx_classifier.h
/// \brief Approximate classifier construction (Chapter 7 future work).
///
/// The thesis's conclusion proposes "approximating the probability
/// distributions that require such exponential time" as a remedy for the
/// classifier's setup cost. Two approximations are provided (alongside the
/// exact factored engine in naive_bayes.h, which removes the exponential
/// factor with no approximation at all):
///
///  * kExpectedWorld — collapse the possible worlds of each domain into a
///    single pseudo-world with the expected member count and expected
///    per-feature counts; exact for the prior, approximate for the
///    conditionals (Jensen gap of the 1/(2|S'|+1) factor).
///  * kMonteCarlo — sample K worlds from the membership Bernoullis and
///    average the same accumulators the exact engines use; unbiased,
///    variance ~ 1/K.

#include <cstdint>

#include "classify/naive_bayes.h"
#include "cluster/probabilistic_assignment.h"
#include "util/bitset.h"
#include "util/status.h"

namespace paygo {

/// \brief Which approximation to use.
enum class ApproxKind {
  kExpectedWorld,
  kMonteCarlo,
};

/// \brief Options of the approximate construction.
struct ApproxClassifierOptions {
  ApproxKind kind = ApproxKind::kExpectedWorld;
  /// Monte-Carlo sample count per domain.
  std::size_t num_samples = 1024;
  /// Monte-Carlo seed (deterministic).
  std::uint64_t seed = 7;
  /// Options forwarded to the resulting classifier.
  ClassifierOptions base;
};

/// \brief Builds a NaiveBayesClassifier whose per-domain conditionals are
/// approximated instead of computed exactly.
Result<NaiveBayesClassifier> BuildApproxClassifier(
    const DomainModel& model, const std::vector<DynamicBitset>& features,
    std::size_t num_schemas_total, const ApproxClassifierOptions& options = {});

/// Approximate conditionals for one domain (exposed for accuracy tests
/// against ComputeDomainConditionals).
Result<DomainConditionals> ComputeApproxDomainConditionals(
    const DomainModel& model, std::uint32_t domain,
    const std::vector<DynamicBitset>& features, std::size_t num_schemas_total,
    const ApproxClassifierOptions& options);

}  // namespace paygo

#endif  // PAYGO_CLASSIFY_APPROX_CLASSIFIER_H_
