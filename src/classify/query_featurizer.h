#ifndef PAYGO_CLASSIFY_QUERY_FEATURIZER_H_
#define PAYGO_CLASSIFY_QUERY_FEATURIZER_H_

/// \file query_featurizer.h
/// \brief Turns a keyword query into a feature vector F_Q (Section 5.1).
///
/// The query is canonicalized exactly like schema attribute names (stop
/// words and very short keywords removed), then F_Q[j] = 1 iff some query
/// term has t_sim(L_j, term) >= tau_t_sim — query terms need not appear in
/// the lexicon.

#include <string>
#include <string_view>
#include <vector>

#include "schema/feature_vector.h"
#include "text/tokenizer.h"
#include "util/bitset.h"

namespace paygo {

/// \brief Featurizes keyword queries against a built feature space.
class QueryFeaturizer {
 public:
  /// Both references must outlive the featurizer.
  QueryFeaturizer(const Tokenizer& tokenizer,
                  const FeatureVectorizer& vectorizer)
      : tokenizer_(tokenizer), vectorizer_(vectorizer) {}

  /// The canonical term set T_Q of a raw keyword query string.
  std::vector<std::string> ExtractTerms(std::string_view keyword_query) const {
    return tokenizer_.TokenizeAll({std::string(keyword_query)});
  }

  /// F_Q of a raw keyword query string.
  DynamicBitset Featurize(std::string_view keyword_query) const {
    return vectorizer_.VectorizeExternalTerms(ExtractTerms(keyword_query));
  }

  /// F_Q of a pre-tokenized keyword list (the query generator produces
  /// canonical terms directly).
  DynamicBitset FeaturizeTerms(const std::vector<std::string>& terms) const {
    return vectorizer_.VectorizeExternalTerms(terms);
  }

 private:
  const Tokenizer& tokenizer_;
  const FeatureVectorizer& vectorizer_;
};

}  // namespace paygo

#endif  // PAYGO_CLASSIFY_QUERY_FEATURIZER_H_
