#include "classify/approx_classifier.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace paygo {
namespace {

DomainConditionals ExpectedWorld(const DomainModel& model,
                                 std::uint32_t domain,
                                 const std::vector<DynamicBitset>& features,
                                 std::size_t num_schemas_total) {
  const std::size_t dim = features.empty() ? 0 : features[0].size();
  const double p = dim > 0 ? 1.0 / static_cast<double>(dim) : 0.5;
  DomainConditionals out;
  out.q1.assign(dim, 0.0);

  // Expected member count: E|S'| = sum of membership probabilities. The
  // prior Pr(D_r) = E|S'| / |S| is exact (linearity of expectation over
  // Eq. 5.3 + 5.5 + 5.6).
  double expected_size = 0.0;
  for (const auto& [schema, prob] : model.SchemasOf(domain)) {
    expected_size += prob;
  }
  out.prior = expected_size / static_cast<double>(num_schemas_total);
  if (expected_size <= 0.0) {
    std::fill(out.q1.begin(), out.q1.end(), p);
    out.prior = 0.0;
    return out;
  }

  // Single pseudo-world: member counts replaced by their expectations.
  const double m = 1.0 + expected_size;
  const double denom = expected_size + m;  // == 2 E|S'| + 1
  const double smooth = p * m / denom;
  for (std::size_t j = 0; j < dim; ++j) out.q1[j] = smooth;
  for (const auto& [schema, prob] : model.SchemasOf(domain)) {
    for (std::size_t j : features[schema].SetBits()) {
      out.q1[j] += prob / denom;
    }
  }
  // Clamp into the open interval (the exact engines guarantee this by
  // construction; the approximation preserves it up to rounding).
  for (double& q : out.q1) q = std::min(std::max(q, 1e-12), 1.0 - 1e-12);
  return out;
}

DomainConditionals MonteCarlo(const DomainModel& model, std::uint32_t domain,
                              const std::vector<DynamicBitset>& features,
                              std::size_t num_schemas_total,
                              std::size_t num_samples, Rng& rng) {
  const std::size_t dim = features.empty() ? 0 : features[0].size();
  const double p = dim > 0 ? 1.0 / static_cast<double>(dim) : 0.5;
  DomainConditionals out;
  out.q1.assign(dim, 0.0);

  std::vector<std::uint32_t> certain;
  std::vector<std::uint32_t> uncertain;
  std::vector<double> probs;
  for (const auto& [schema, prob] : model.SchemasOf(domain)) {
    if (prob >= 1.0) {
      certain.push_back(schema);
    } else if (prob > 0.0) {
      uncertain.push_back(schema);
      probs.push_back(prob);
    }
  }

  // Sampled analogs of the exact engines' accumulators (see naive_bayes.cc).
  double pr_d = 0.0, t0 = 0.0, t1 = 0.0;
  std::vector<double> h(uncertain.size(), 0.0);
  std::vector<bool> included(uncertain.size());
  const double inv_total = 1.0 / static_cast<double>(num_schemas_total);
  const double inv_samples = 1.0 / static_cast<double>(num_samples);

  for (std::size_t s = 0; s < num_samples; ++s) {
    std::size_t sz = certain.size();
    for (std::size_t i = 0; i < uncertain.size(); ++i) {
      included[i] = rng.NextBernoulli(probs[i]);
      if (included[i]) ++sz;
    }
    if (sz == 0) continue;
    const double omega = static_cast<double>(sz) * inv_total * inv_samples;
    const double denom = static_cast<double>(2 * sz + 1);
    pr_d += omega;
    t0 += omega / denom;
    t1 += omega * static_cast<double>(1 + sz) / denom;
    for (std::size_t i = 0; i < uncertain.size(); ++i) {
      if (included[i]) h[i] += omega / denom;
    }
  }

  out.prior = pr_d;
  if (pr_d <= 0.0) {
    std::fill(out.q1.begin(), out.q1.end(), p);
    out.prior = 0.0;
    return out;
  }
  const double inv_pr = 1.0 / pr_d;
  const double smooth = p * t1 * inv_pr;
  const double slope = t0 * inv_pr;
  for (std::size_t j = 0; j < dim; ++j) out.q1[j] = smooth;
  for (std::uint32_t s : certain) {
    for (std::size_t j : features[s].SetBits()) out.q1[j] += slope;
  }
  for (std::size_t i = 0; i < uncertain.size(); ++i) {
    const double hi = h[i] * inv_pr;
    for (std::size_t j : features[uncertain[i]].SetBits()) out.q1[j] += hi;
  }
  for (double& q : out.q1) q = std::min(std::max(q, 1e-12), 1.0 - 1e-12);
  return out;
}

}  // namespace

Result<DomainConditionals> ComputeApproxDomainConditionals(
    const DomainModel& model, std::uint32_t domain,
    const std::vector<DynamicBitset>& features, std::size_t num_schemas_total,
    const ApproxClassifierOptions& options) {
  if (num_schemas_total == 0) {
    return Status::InvalidArgument("num_schemas_total must be positive");
  }
  switch (options.kind) {
    case ApproxKind::kExpectedWorld:
      return ExpectedWorld(model, domain, features, num_schemas_total);
    case ApproxKind::kMonteCarlo: {
      if (options.num_samples == 0) {
        return Status::InvalidArgument("num_samples must be positive");
      }
      // Derive a per-domain seed so domains are independent yet the whole
      // build stays deterministic.
      Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + domain);
      return MonteCarlo(model, domain, features, num_schemas_total,
                        options.num_samples, rng);
    }
  }
  return Status::InvalidArgument("unknown approximation kind");
}

Result<NaiveBayesClassifier> BuildApproxClassifier(
    const DomainModel& model, const std::vector<DynamicBitset>& features,
    std::size_t num_schemas_total, const ApproxClassifierOptions& options) {
  if (features.size() != model.num_schemas()) {
    return Status::InvalidArgument(
        "feature count does not match the domain model's schema count");
  }
  std::vector<DomainConditionals> conds;
  std::vector<bool> singleton;
  conds.reserve(model.num_domains());
  for (std::uint32_t r = 0; r < model.num_domains(); ++r) {
    PAYGO_ASSIGN_OR_RETURN(DomainConditionals c,
                           ComputeApproxDomainConditionals(
                               model, r, features, num_schemas_total,
                               options));
    conds.push_back(std::move(c));
    singleton.push_back(model.IsSingletonDomain(r));
  }
  return NaiveBayesClassifier::FromConditionals(std::move(conds),
                                                std::move(singleton),
                                                options.base);
}

}  // namespace paygo
