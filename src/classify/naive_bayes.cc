#include "classify/naive_bayes.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "obs/stats.h"
#include "obs/trace.h"

namespace paygo {
namespace {

/// Accumulators shared by the exhaustive and factored engines.
///
/// Over the possible worlds S' (always containing all certain schemas, any
/// subset of the uncertain ones), with per-world unnormalized weight
/// omega(S') = (|S'| / |S|) * Pr(D_r = S'):
///   pr_d = sum omega                                    == Pr(D_r)
///   t0   = sum omega / (2|S'| + 1)
///   t1   = sum omega * (1 + |S'|) / (2|S'| + 1)
///   h[i] = sum over worlds containing uncertain schema i of
///          omega / (2|S'| + 1)
/// The m-estimate conditional (Eq. 5.9 with p = 1/dim L, m = 1 + |S'|) is
/// linear in the membership indicators, so
///   Pr(F_j=1 | D_r) = (base_j * t0 + p * t1 + sum_{i: F_ij=1} h[i]) / pr_d
/// where base_j counts certain schemas with feature j set. Worlds with
/// |S'| = 0 carry weight 0 (Eq. 5.5), which also resolves the first
/// robustness issue of Section 5.2.
struct WorldAccumulators {
  double pr_d = 0.0;
  double t0 = 0.0;
  double t1 = 0.0;
  std::vector<double> h;  // one per uncertain schema
};

WorldAccumulators AccumulateExhaustive(const std::vector<double>& probs,
                                       std::size_t num_certain,
                                       std::size_t num_schemas_total) {
  const std::size_t u = probs.size();
  WorldAccumulators acc;
  acc.h.assign(u, 0.0);
  const double inv_total = 1.0 / static_cast<double>(num_schemas_total);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << u); ++mask) {
    double w = 1.0;
    for (std::size_t i = 0; i < u; ++i) {
      w *= (mask >> i) & 1 ? probs[i] : 1.0 - probs[i];
    }
    const std::size_t sz = num_certain + std::popcount(mask);
    if (sz == 0) continue;  // omega = 0
    const double omega = static_cast<double>(sz) * inv_total * w;
    const double denom = static_cast<double>(2 * sz + 1);
    acc.pr_d += omega;
    acc.t0 += omega / denom;
    acc.t1 += omega * static_cast<double>(1 + sz) / denom;
    for (std::size_t i = 0; i < u; ++i) {
      if ((mask >> i) & 1) acc.h[i] += omega / denom;
    }
  }
  return acc;
}

/// Coefficients of prod_i ((1-p_i) + p_i x): coef[c] = Pr(exactly c of the
/// uncertain schemas are included).
std::vector<double> SubsetSizePoly(const std::vector<double>& probs) {
  std::vector<double> coef = {1.0};
  for (double p : probs) {
    std::vector<double> next(coef.size() + 1, 0.0);
    for (std::size_t c = 0; c < coef.size(); ++c) {
      next[c] += coef[c] * (1.0 - p);
      next[c + 1] += coef[c] * p;
    }
    coef = std::move(next);
  }
  return coef;
}

WorldAccumulators AccumulateFactored(const std::vector<double>& probs,
                                     std::size_t num_certain,
                                     std::size_t num_schemas_total) {
  const std::size_t u = probs.size();
  WorldAccumulators acc;
  acc.h.assign(u, 0.0);
  const double inv_total = 1.0 / static_cast<double>(num_schemas_total);

  const std::vector<double> coef = SubsetSizePoly(probs);
  for (std::size_t c = 0; c <= u; ++c) {
    const std::size_t sz = num_certain + c;
    if (sz == 0) continue;
    const double omega = static_cast<double>(sz) * inv_total * coef[c];
    const double denom = static_cast<double>(2 * sz + 1);
    acc.pr_d += omega;
    acc.t0 += omega / denom;
    acc.t1 += omega * static_cast<double>(1 + sz) / denom;
  }

  // h[i]: worlds containing uncertain schema i, grouped by the count of the
  // other included uncertain schemas (leave-one-out size polynomial).
  for (std::size_t i = 0; i < u; ++i) {
    std::vector<double> rest;
    rest.reserve(u - 1);
    for (std::size_t k = 0; k < u; ++k) {
      if (k != i) rest.push_back(probs[k]);
    }
    const std::vector<double> loo = SubsetSizePoly(rest);
    for (std::size_t c = 0; c < loo.size(); ++c) {
      const std::size_t sz = num_certain + c + 1;  // +1 for schema i itself
      const double omega =
          static_cast<double>(sz) * inv_total * probs[i] * loo[c];
      acc.h[i] += omega / static_cast<double>(2 * sz + 1);
    }
  }
  return acc;
}

}  // namespace

Result<DomainConditionals> ComputeDomainConditionals(
    const DomainModel& model, std::uint32_t domain,
    const std::vector<DynamicBitset>& features, std::size_t num_schemas_total,
    ClassifierEngine engine, std::size_t max_uncertain_exhaustive) {
  const std::size_t dim = features.empty() ? 0 : features[0].size();
  DomainConditionals out;
  const double p = dim > 0 ? 1.0 / static_cast<double>(dim) : 0.5;

  const std::vector<std::uint32_t> certain = model.CertainSchemas(domain);
  const std::vector<std::uint32_t> uncertain = model.UncertainSchemas(domain);
  std::vector<double> probs;
  probs.reserve(uncertain.size());
  for (std::uint32_t i : uncertain) probs.push_back(model.Membership(i, domain));

  // Possible worlds for this domain: 2^u subsets of the uncertain schemas
  // (saturated for u >= 63). The exhaustive engine enumerates all of them;
  // the factored engine evaluates only u + 1 subset-size classes and the
  // difference is reported as "pruned".
  StatsRegistry& reg = StatsRegistry::Global();
  static Counter* enumerated =
      reg.GetCounter("paygo.classifier.subsets_enumerated");
  static Counter* pruned = reg.GetCounter("paygo.classifier.subsets_pruned");
  const std::size_t u = probs.size();
  const std::uint64_t possible =
      u >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << u);

  PAYGO_TRACE_SPAN("classify.domain_conditionals");
  WorldAccumulators acc;
  switch (engine) {
    case ClassifierEngine::kExhaustive:
      if (uncertain.size() > max_uncertain_exhaustive) {
        return Status::ResourceExhausted(
            "domain " + std::to_string(domain) + " has " +
            std::to_string(uncertain.size()) +
            " uncertain schemas; exhaustive enumeration capped at " +
            std::to_string(max_uncertain_exhaustive) +
            " (use the factored engine)");
      }
      acc = AccumulateExhaustive(probs, certain.size(), num_schemas_total);
      enumerated->Add(possible);
      break;
    case ClassifierEngine::kFactored:
      acc = AccumulateFactored(probs, certain.size(), num_schemas_total);
      enumerated->Add(u + 1);
      pruned->Add(possible - std::min<std::uint64_t>(possible, u + 1));
      break;
  }

  out.prior = acc.pr_d;
  out.q1.assign(dim, 0.0);
  if (acc.pr_d <= 0.0) {
    // Degenerate domain (no possible world with a member): flat smoothing.
    std::fill(out.q1.begin(), out.q1.end(), p);
    out.prior = 0.0;
    return out;
  }

  const double inv_pr = 1.0 / acc.pr_d;
  const double smooth = p * acc.t1 * inv_pr;  // contribution of the p*m term
  const double slope = acc.t0 * inv_pr;       // per certain-member count
  for (std::size_t j = 0; j < dim; ++j) out.q1[j] = smooth;
  for (std::uint32_t s : certain) {
    for (std::size_t j : features[s].SetBits()) out.q1[j] += slope;
  }
  for (std::size_t i = 0; i < uncertain.size(); ++i) {
    const double hi = acc.h[i] * inv_pr;
    for (std::size_t j : features[uncertain[i]].SetBits()) out.q1[j] += hi;
  }
  return out;
}

Result<NaiveBayesClassifier> NaiveBayesClassifier::Build(
    const DomainModel& model, const std::vector<DynamicBitset>& features,
    std::size_t num_schemas_total, const ClassifierOptions& options) {
  if (features.size() != model.num_schemas()) {
    return Status::InvalidArgument(
        "feature count does not match the domain model's schema count");
  }
  if (num_schemas_total == 0) {
    return Status::InvalidArgument("num_schemas_total must be positive");
  }
  NaiveBayesClassifier clf;
  clf.options_ = options;
  clf.conditionals_.reserve(model.num_domains());
  clf.singleton_domain_.reserve(model.num_domains());
  for (std::uint32_t r = 0; r < model.num_domains(); ++r) {
    PAYGO_ASSIGN_OR_RETURN(
        DomainConditionals cond,
        ComputeDomainConditionals(model, r, features, num_schemas_total,
                                  options.engine,
                                  options.max_uncertain_exhaustive));
    clf.conditionals_.push_back(std::move(cond));
    clf.singleton_domain_.push_back(model.IsSingletonDomain(r));
  }
  clf.Precompute();
  return clf;
}

NaiveBayesClassifier NaiveBayesClassifier::FromConditionals(
    std::vector<DomainConditionals> conditionals,
    std::vector<bool> singleton_domain, const ClassifierOptions& options) {
  NaiveBayesClassifier clf;
  clf.options_ = options;
  clf.conditionals_ = std::move(conditionals);
  clf.singleton_domain_ = std::move(singleton_domain);
  clf.singleton_domain_.resize(clf.conditionals_.size(), false);
  clf.Precompute();
  return clf;
}

void NaiveBayesClassifier::Precompute() {
  // All remaining query-independent work (Section 5.3): per-domain base
  // score with every feature absent, plus per-feature log-odds so a query
  // only pays for its set features.
  constexpr double kNegInf = -1e300;
  base_.resize(conditionals_.size());
  log_odds_.resize(conditionals_.size());
  for (std::size_t r = 0; r < conditionals_.size(); ++r) {
    const DomainConditionals& c = conditionals_[r];
    double base = c.prior > 0.0 ? std::log(c.prior) : kNegInf;
    log_odds_[r].resize(c.q1.size());
    for (std::size_t j = 0; j < c.q1.size(); ++j) {
      const double q = std::min(std::max(c.q1[j], 1e-300), 1.0 - 1e-15);
      base += std::log1p(-q);
      log_odds_[r][j] = std::log(q) - std::log1p(-q);
    }
    base_[r] = base;
  }
}

std::vector<DomainScore> NaiveBayesClassifier::Classify(
    const DynamicBitset& query) const {
  PAYGO_TRACE_SPAN("classify.query");
  static Counter* queries =
      StatsRegistry::Global().GetCounter("paygo.classifier.queries");
  queries->Increment();
  const std::vector<std::size_t> set_bits = query.SetBits();
  std::vector<DomainScore> scores;
  scores.reserve(conditionals_.size());
  for (std::uint32_t r = 0; r < conditionals_.size(); ++r) {
    if (options_.skip_singleton_domains && singleton_domain_[r]) continue;
    double s = base_[r];
    for (std::size_t j : set_bits) s += log_odds_[r][j];
    scores.push_back({r, s});
  }
  std::sort(scores.begin(), scores.end(),
            [](const DomainScore& a, const DomainScore& b) {
              if (a.log_posterior != b.log_posterior) {
                return a.log_posterior > b.log_posterior;
              }
              return a.domain < b.domain;
            });
  return scores;
}

}  // namespace paygo
