#include "classify/naive_bayes.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "obs/stats.h"
#include "obs/trace.h"

namespace paygo {
namespace {

/// Accumulators shared by the exhaustive and factored engines.
///
/// Over the possible worlds S' (always containing all certain schemas, any
/// subset of the uncertain ones), with per-world unnormalized weight
/// omega(S') = |S'| * Pr(D_r = S') — deliberately WITHOUT the 1/|S| of
/// Eq. 5.5, which is applied once at the very end:
///   mass = sum omega                                    == |S| * Pr(D_r)
///   t0   = sum omega / (2|S'| + 1)
///   t1   = sum omega * (1 + |S'|) / (2|S'| + 1)
///   h[i] = sum over worlds containing uncertain schema i of
///          omega / (2|S'| + 1)
/// The m-estimate conditional (Eq. 5.9 with p = 1/dim L, m = 1 + |S'|) is
/// linear in the membership indicators, so
///   Pr(F_j=1 | D_r) = (base_j * t0 + p * t1 + sum_{i: F_ij=1} h[i]) / mass
/// where base_j counts certain schemas with feature j set — every ratio
/// the 1/|S| factor would cancel out of is computed without it, so q1 is
/// bitwise independent of the corpus size (the property UpdateDomains
/// relies on to reuse unaffected domains verbatim). Only the prior
/// Pr(D_r) = mass / |S| sees the corpus size, in one multiply. Worlds with
/// |S'| = 0 carry weight 0 (Eq. 5.5), which also resolves the first
/// robustness issue of Section 5.2.
struct WorldAccumulators {
  double mass = 0.0;
  double t0 = 0.0;
  double t1 = 0.0;
  std::vector<double> h;  // one per uncertain schema
};

WorldAccumulators AccumulateExhaustive(const std::vector<double>& probs,
                                       std::size_t num_certain) {
  const std::size_t u = probs.size();
  WorldAccumulators acc;
  acc.h.assign(u, 0.0);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << u); ++mask) {
    double w = 1.0;
    for (std::size_t i = 0; i < u; ++i) {
      w *= (mask >> i) & 1 ? probs[i] : 1.0 - probs[i];
    }
    const std::size_t sz = num_certain + std::popcount(mask);
    if (sz == 0) continue;  // omega = 0
    const double omega = static_cast<double>(sz) * w;
    const double denom = static_cast<double>(2 * sz + 1);
    acc.mass += omega;
    acc.t0 += omega / denom;
    acc.t1 += omega * static_cast<double>(1 + sz) / denom;
    for (std::size_t i = 0; i < u; ++i) {
      if ((mask >> i) & 1) acc.h[i] += omega / denom;
    }
  }
  return acc;
}

/// Coefficients of prod_i ((1-p_i) + p_i x): coef[c] = Pr(exactly c of the
/// uncertain schemas are included).
std::vector<double> SubsetSizePoly(const std::vector<double>& probs) {
  std::vector<double> coef = {1.0};
  for (double p : probs) {
    std::vector<double> next(coef.size() + 1, 0.0);
    for (std::size_t c = 0; c < coef.size(); ++c) {
      next[c] += coef[c] * (1.0 - p);
      next[c + 1] += coef[c] * p;
    }
    coef = std::move(next);
  }
  return coef;
}

WorldAccumulators AccumulateFactored(const std::vector<double>& probs,
                                     std::size_t num_certain) {
  const std::size_t u = probs.size();
  WorldAccumulators acc;
  acc.h.assign(u, 0.0);

  const std::vector<double> coef = SubsetSizePoly(probs);
  for (std::size_t c = 0; c <= u; ++c) {
    const std::size_t sz = num_certain + c;
    if (sz == 0) continue;
    const double omega = static_cast<double>(sz) * coef[c];
    const double denom = static_cast<double>(2 * sz + 1);
    acc.mass += omega;
    acc.t0 += omega / denom;
    acc.t1 += omega * static_cast<double>(1 + sz) / denom;
  }

  // h[i]: worlds containing uncertain schema i, grouped by the count of the
  // other included uncertain schemas (leave-one-out size polynomial).
  for (std::size_t i = 0; i < u; ++i) {
    std::vector<double> rest;
    rest.reserve(u - 1);
    for (std::size_t k = 0; k < u; ++k) {
      if (k != i) rest.push_back(probs[k]);
    }
    const std::vector<double> loo = SubsetSizePoly(rest);
    for (std::size_t c = 0; c < loo.size(); ++c) {
      const std::size_t sz = num_certain + c + 1;  // +1 for schema i itself
      const double omega = static_cast<double>(sz) * probs[i] * loo[c];
      acc.h[i] += omega / static_cast<double>(2 * sz + 1);
    }
  }
  return acc;
}

/// Membership probabilities of the domain's uncertain schemas, in
/// UncertainSchemas order (the accumulation input both the full and the
/// prior-only computations share).
std::vector<double> UncertainProbs(const DomainModel& model,
                                   std::uint32_t domain,
                                   const std::vector<std::uint32_t>& uncertain) {
  std::vector<double> probs;
  probs.reserve(uncertain.size());
  for (std::uint32_t i : uncertain) {
    probs.push_back(model.Membership(i, domain));
  }
  return probs;
}

Status CheckExhaustiveBudget(std::uint32_t domain, std::size_t num_uncertain,
                             std::size_t max_uncertain_exhaustive) {
  if (num_uncertain > max_uncertain_exhaustive) {
    return Status::ResourceExhausted(
        "domain " + std::to_string(domain) + " has " +
        std::to_string(num_uncertain) +
        " uncertain schemas; exhaustive enumeration capped at " +
        std::to_string(max_uncertain_exhaustive) +
        " (use the factored engine)");
  }
  return Status::OK();
}

}  // namespace

Result<DomainConditionals> ComputeDomainConditionals(
    const DomainModel& model, std::uint32_t domain,
    const std::vector<DynamicBitset>& features, std::size_t num_schemas_total,
    ClassifierEngine engine, std::size_t max_uncertain_exhaustive) {
  const std::size_t dim = features.empty() ? 0 : features[0].size();
  DomainConditionals out;
  const double p = dim > 0 ? 1.0 / static_cast<double>(dim) : 0.5;

  const std::vector<std::uint32_t> certain = model.CertainSchemas(domain);
  const std::vector<std::uint32_t> uncertain = model.UncertainSchemas(domain);
  const std::vector<double> probs = UncertainProbs(model, domain, uncertain);

  // Possible worlds for this domain: 2^u subsets of the uncertain schemas
  // (saturated for u >= 63). The exhaustive engine enumerates all of them;
  // the factored engine evaluates only u + 1 subset-size classes and the
  // difference is reported as "pruned".
  StatsRegistry& reg = StatsRegistry::Global();
  static Counter* enumerated =
      reg.GetCounter("paygo.classifier.subsets_enumerated");
  static Counter* pruned = reg.GetCounter("paygo.classifier.subsets_pruned");
  const std::size_t u = probs.size();
  const std::uint64_t possible =
      u >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << u);

  PAYGO_TRACE_SPAN("classify.domain_conditionals");
  WorldAccumulators acc;
  switch (engine) {
    case ClassifierEngine::kExhaustive:
      PAYGO_RETURN_NOT_OK(CheckExhaustiveBudget(domain, uncertain.size(),
                                                max_uncertain_exhaustive));
      acc = AccumulateExhaustive(probs, certain.size());
      enumerated->Add(possible);
      break;
    case ClassifierEngine::kFactored:
      acc = AccumulateFactored(probs, certain.size());
      enumerated->Add(u + 1);
      pruned->Add(possible - std::min<std::uint64_t>(possible, u + 1));
      break;
  }

  out.q1.assign(dim, 0.0);
  if (acc.mass <= 0.0) {
    // Degenerate domain (no possible world with a member): flat smoothing.
    std::fill(out.q1.begin(), out.q1.end(), p);
    out.prior = 0.0;
    return out;
  }
  // The only place the corpus size enters (Eq. 5.5's 1/|S|).
  out.prior = acc.mass / static_cast<double>(num_schemas_total);

  const double inv_mass = 1.0 / acc.mass;
  const double smooth = p * acc.t1 * inv_mass;  // contribution of the p*m term
  const double slope = acc.t0 * inv_mass;       // per certain-member count
  for (std::size_t j = 0; j < dim; ++j) out.q1[j] = smooth;
  for (std::uint32_t s : certain) {
    for (std::size_t j : features[s].SetBits()) out.q1[j] += slope;
  }
  for (std::size_t i = 0; i < uncertain.size(); ++i) {
    const double hi = acc.h[i] * inv_mass;
    for (std::size_t j : features[uncertain[i]].SetBits()) out.q1[j] += hi;
  }
  return out;
}

Result<double> ComputeDomainPrior(const DomainModel& model,
                                  std::uint32_t domain,
                                  std::size_t num_schemas_total,
                                  ClassifierEngine engine,
                                  std::size_t max_uncertain_exhaustive) {
  const std::vector<std::uint32_t> certain = model.CertainSchemas(domain);
  const std::vector<std::uint32_t> uncertain = model.UncertainSchemas(domain);
  const std::vector<double> probs = UncertainProbs(model, domain, uncertain);
  // Run the same accumulation the full computation runs (the mass sum is
  // independent of the other accumulators, so summing it alone in the same
  // order yields the same bits), then apply the same final 1/|S|.
  WorldAccumulators acc;
  switch (engine) {
    case ClassifierEngine::kExhaustive:
      PAYGO_RETURN_NOT_OK(CheckExhaustiveBudget(domain, uncertain.size(),
                                                max_uncertain_exhaustive));
      acc = AccumulateExhaustive(probs, certain.size());
      break;
    case ClassifierEngine::kFactored:
      acc = AccumulateFactored(probs, certain.size());
      break;
  }
  if (acc.mass <= 0.0) return 0.0;
  return acc.mass / static_cast<double>(num_schemas_total);
}

Result<NaiveBayesClassifier> NaiveBayesClassifier::Build(
    const DomainModel& model, const std::vector<DynamicBitset>& features,
    std::size_t num_schemas_total, const ClassifierOptions& options) {
  if (features.size() != model.num_schemas()) {
    return Status::InvalidArgument(
        "feature count does not match the domain model's schema count");
  }
  if (num_schemas_total == 0) {
    return Status::InvalidArgument("num_schemas_total must be positive");
  }
  NaiveBayesClassifier clf;
  clf.options_ = options;
  clf.conditionals_.reserve(model.num_domains());
  clf.singleton_domain_.reserve(model.num_domains());
  for (std::uint32_t r = 0; r < model.num_domains(); ++r) {
    PAYGO_ASSIGN_OR_RETURN(
        DomainConditionals cond,
        ComputeDomainConditionals(model, r, features, num_schemas_total,
                                  options.engine,
                                  options.max_uncertain_exhaustive));
    clf.conditionals_.push_back(std::move(cond));
    clf.singleton_domain_.push_back(model.IsSingletonDomain(r));
  }
  clf.Precompute();
  return clf;
}

NaiveBayesClassifier NaiveBayesClassifier::FromConditionals(
    std::vector<DomainConditionals> conditionals,
    std::vector<bool> singleton_domain, const ClassifierOptions& options) {
  NaiveBayesClassifier clf;
  clf.options_ = options;
  clf.conditionals_ = std::move(conditionals);
  clf.singleton_domain_ = std::move(singleton_domain);
  clf.singleton_domain_.resize(clf.conditionals_.size(), false);
  clf.Precompute();
  return clf;
}

void NaiveBayesClassifier::Precompute() {
  // All remaining query-independent work (Section 5.3): per-domain base
  // score with every feature absent, plus per-feature log-odds so a query
  // only pays for its set features.
  base_.resize(conditionals_.size());
  log1mq_sum_.resize(conditionals_.size());
  log_odds_.resize(conditionals_.size());
  for (std::size_t r = 0; r < conditionals_.size(); ++r) PrecomputeDomain(r);
}

void NaiveBayesClassifier::PrecomputeDomain(std::size_t r) {
  const DomainConditionals& c = conditionals_[r];
  double s = 0.0;
  log_odds_[r].resize(c.q1.size());
  for (std::size_t j = 0; j < c.q1.size(); ++j) {
    const double q = std::min(std::max(c.q1[j], 1e-300), 1.0 - 1e-15);
    s += std::log1p(-q);
    log_odds_[r][j] = std::log(q) - std::log1p(-q);
  }
  log1mq_sum_[r] = s;
  RefreshBase(r);
}

void NaiveBayesClassifier::RefreshBase(std::size_t r) {
  constexpr double kNegInf = -1e300;
  const double prior = conditionals_[r].prior;
  base_[r] = (prior > 0.0 ? std::log(prior) : kNegInf) + log1mq_sum_[r];
}

Result<NaiveBayesClassifier> NaiveBayesClassifier::UpdateDomains(
    const NaiveBayesClassifier& base, const DomainModel& model,
    const std::vector<DynamicBitset>& features, std::size_t num_schemas_total,
    const std::vector<std::uint32_t>& affected_domains) {
  if (features.size() != model.num_schemas()) {
    return Status::InvalidArgument(
        "feature count does not match the domain model's schema count");
  }
  if (num_schemas_total == 0) {
    return Status::InvalidArgument("num_schemas_total must be positive");
  }
  if (model.num_domains() < base.num_domains()) {
    return Status::InvalidArgument(
        "domain model shrank across an incremental update (" +
        std::to_string(model.num_domains()) + " < " +
        std::to_string(base.num_domains()) + " domains)");
  }
  StatsRegistry& reg = StatsRegistry::Global();
  static Counter* refreshed =
      reg.GetCounter("paygo.classifier.domains_refreshed");
  static Counter* reused = reg.GetCounter("paygo.classifier.domains_reused");
  PAYGO_TRACE_SPAN("classify.update_domains");

  NaiveBayesClassifier clf;
  clf.options_ = base.options_;
  clf.conditionals_ = base.conditionals_;
  clf.log_odds_ = base.log_odds_;
  clf.log1mq_sum_ = base.log1mq_sum_;
  clf.base_ = base.base_;
  const std::size_t old_domains = base.num_domains();
  clf.conditionals_.resize(model.num_domains());
  clf.log_odds_.resize(model.num_domains());
  clf.log1mq_sum_.resize(model.num_domains(), 0.0);
  clf.base_.resize(model.num_domains(), 0.0);
  clf.singleton_domain_.resize(model.num_domains());
  for (std::uint32_t r = 0; r < model.num_domains(); ++r) {
    clf.singleton_domain_[r] = model.IsSingletonDomain(r);
  }

  std::vector<bool> affected(model.num_domains(), false);
  for (std::uint32_t r : affected_domains) {
    if (r >= model.num_domains()) {
      return Status::InvalidArgument("affected domain id " +
                                     std::to_string(r) + " out of range");
    }
    affected[r] = true;
  }
  // Domains the base classifier has never seen are necessarily affected.
  for (std::size_t r = old_domains; r < model.num_domains(); ++r) {
    affected[r] = true;
  }

  for (std::uint32_t r = 0; r < model.num_domains(); ++r) {
    if (affected[r]) {
      PAYGO_ASSIGN_OR_RETURN(
          clf.conditionals_[r],
          ComputeDomainConditionals(model, r, features, num_schemas_total,
                                    clf.options_.engine,
                                    clf.options_.max_uncertain_exhaustive));
      clf.PrecomputeDomain(r);
      refreshed->Increment();
    } else {
      // Untouched schema set: q1 and log-odds are bitwise what Build()
      // would produce (the accumulators never see |S|); only the prior's
      // 1/|S| normalizer changed.
      PAYGO_ASSIGN_OR_RETURN(
          clf.conditionals_[r].prior,
          ComputeDomainPrior(model, r, num_schemas_total, clf.options_.engine,
                             clf.options_.max_uncertain_exhaustive));
      clf.RefreshBase(r);
      reused->Increment();
    }
  }
  return clf;
}

NaiveBayesClassifier NaiveBayesClassifier::WithPriors(
    const std::vector<double>& priors) const {
  NaiveBayesClassifier clf = *this;
  assert(priors.size() == clf.conditionals_.size());
  const std::size_t n = std::min(priors.size(), clf.conditionals_.size());
  for (std::size_t r = 0; r < n; ++r) {
    clf.conditionals_[r].prior = priors[r];
    clf.RefreshBase(r);
  }
  return clf;
}

namespace {

/// The one ranking order every classify path shares: descending posterior,
/// ties broken by domain id for determinism.
bool ScoreBefore(const DomainScore& a, const DomainScore& b) {
  if (a.log_posterior != b.log_posterior) {
    return a.log_posterior > b.log_posterior;
  }
  return a.domain < b.domain;
}

}  // namespace

void NaiveBayesClassifier::ClassifyInto(const DynamicBitset& query,
                                        ClassifyScratch* scratch,
                                        std::vector<DomainScore>* out) const {
  PAYGO_TRACE_SPAN("classify.query");
  static Counter* queries =
      StatsRegistry::Global().GetCounter("paygo.classifier.queries");
  queries->Increment();
  scratch->set_bits.clear();
  query.AppendSetBits(&scratch->set_bits);
  out->clear();
  out->reserve(conditionals_.size());
  for (std::uint32_t r = 0; r < conditionals_.size(); ++r) {
    if (options_.skip_singleton_domains && singleton_domain_[r]) continue;
    double s = base_[r];
    const double* lo = log_odds_[r].data();
    for (std::size_t j : scratch->set_bits) s += lo[j];
    out->push_back({r, s});
  }
  // std::sort is in-place (introsort) — no heap traffic.
  std::sort(out->begin(), out->end(), ScoreBefore);
}

std::vector<DomainScore> NaiveBayesClassifier::Classify(
    const DynamicBitset& query) const {
  static thread_local ClassifyScratch scratch;
  std::vector<DomainScore> scores;
  ClassifyInto(query, &scratch, &scores);
  return scores;
}

void NaiveBayesClassifier::ClassifyBatchInto(
    std::span<const DynamicBitset> queries, ClassifyScratch* scratch,
    std::vector<std::vector<DomainScore>>* out) const {
  PAYGO_TRACE_SPAN("classify.batch");
  StatsRegistry& reg = StatsRegistry::Global();
  static Counter* query_counter = reg.GetCounter("paygo.classifier.queries");
  static Counter* sweeps = reg.GetCounter("paygo.classifier.batch_sweeps");
  const std::size_t batch = queries.size();
  query_counter->Add(batch);
  sweeps->Increment();

  // Featurize once into a CSR layout: query b's set features live in
  // batch_indices[batch_offsets[b] .. batch_offsets[b+1]).
  scratch->batch_offsets.clear();
  scratch->batch_indices.clear();
  for (const DynamicBitset& q : queries) {
    scratch->batch_offsets.push_back(scratch->batch_indices.size());
    q.AppendSetBits(&scratch->batch_indices);
  }
  scratch->batch_offsets.push_back(scratch->batch_indices.size());

  // Resize without surrendering inner-vector capacity: a plain resize()
  // destroys surplus vectors on shrink, so the next larger batch would
  // reallocate them all. Park them in the scratch pool instead and pull
  // from it when growing — any batch at or below the high-water size is
  // then alloc-free. The pool's own backing array is pre-grown here so a
  // later shrink has room to park without allocating.
  if (scratch->spare_rankings.capacity() < batch) {
    scratch->spare_rankings.reserve(batch);
  }
  while (out->size() > batch) {
    scratch->spare_rankings.push_back(std::move(out->back()));
    out->pop_back();
  }
  while (out->size() < batch) {
    if (!scratch->spare_rankings.empty()) {
      out->push_back(std::move(scratch->spare_rankings.back()));
      scratch->spare_rankings.pop_back();
    } else {
      out->emplace_back();
    }
  }
  for (std::size_t b = 0; b < batch; ++b) {
    (*out)[b].clear();
    (*out)[b].reserve(conditionals_.size());
  }

  // The struct-of-arrays sweep: domain-major, so each domain's log_odds_
  // row is loaded into cache once and scored against all B queries before
  // moving on — the single-query loop instead re-touches every row per
  // query. Per (query, domain) the accumulation is base + ascending
  // feature adds, the exact order ClassifyInto uses, which is what makes
  // the batch path bitwise-identical to B single calls.
  const std::size_t* off = scratch->batch_offsets.data();
  const std::size_t* idx = scratch->batch_indices.data();
  for (std::uint32_t r = 0; r < conditionals_.size(); ++r) {
    if (options_.skip_singleton_domains && singleton_domain_[r]) continue;
    const double base = base_[r];
    const double* lo = log_odds_[r].data();
    for (std::size_t b = 0; b < batch; ++b) {
      double s = base;
      for (std::size_t k = off[b]; k < off[b + 1]; ++k) s += lo[idx[k]];
      (*out)[b].push_back({r, s});
    }
  }
  for (std::size_t b = 0; b < batch; ++b) {
    std::sort((*out)[b].begin(), (*out)[b].end(), ScoreBefore);
  }
}

std::vector<std::vector<DomainScore>> NaiveBayesClassifier::ClassifyBatch(
    std::span<const DynamicBitset> queries) const {
  static thread_local ClassifyScratch scratch;
  std::vector<std::vector<DomainScore>> out;
  ClassifyBatchInto(queries, &scratch, &out);
  return out;
}

}  // namespace paygo
