#include "classify/query_featurizer.h"

// QueryFeaturizer is header-only glue over Tokenizer and FeatureVectorizer;
// this translation unit anchors the target's object file.
