#ifndef PAYGO_CLASSIFY_NAIVE_BAYES_H_
#define PAYGO_CLASSIFY_NAIVE_BAYES_H_

/// \file naive_bayes.h
/// \brief Chapter 5: the naive Bayesian query classifier over probabilistic
/// domains.
///
/// For each domain D_r the classifier needs the prior Pr(D_r) and the
/// per-feature conditionals Pr(F_j = 1 | D_r). Both are expectations over
/// the possible worlds of the probabilistic domain — the subsets S' of
/// S(D_r) that contain every certain schema and any combination of the
/// uncertain ones (Equations 5.3-5.9, with the m-estimate p = 1/dim L,
/// m = 1 + |S'|). Two exact engines are provided:
///
///  * kExhaustive — the thesis's literal 2^|S-hat(D_r)| subset enumeration
///    (Section 5.3), exponential in the number of uncertain schemas;
///  * kFactored — an algebraically identical polynomial-time evaluation:
///    because the m-estimate numerator is linear in the subset-membership
///    indicators and the denominator depends only on |S'|, the expectation
///    factorizes through the subset-size distribution (a product of
///    independent Bernoullis), removing the exponential factor exactly —
///    the thesis's Chapter 7 future-work item, solved without
///    approximation.
///
/// All expensive work happens at Build() time; Classify() costs
/// O(|D| * |set features of the query|) via precomputed log-odds.
///
/// The conditionals Pr(F_j=1 | D_r) are evaluated from |S|-free
/// accumulators (the 1/|S| prior normalizer is applied once, at the end),
/// so q1 is bitwise independent of the corpus size. That is what makes
/// UpdateDomains() exact: when a schema arrives, only the domains whose
/// schema sets changed need their conditionals recomputed — every other
/// domain keeps its q1 vector verbatim and merely has its prior rescaled
/// to the new |S| (recomputed through the same accumulation loop, so the
/// result is bit-identical to a from-scratch Build()).

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/probabilistic_assignment.h"
#include "util/bitset.h"
#include "util/status.h"

namespace paygo {

/// \brief How to evaluate the possible-world expectations at setup time.
enum class ClassifierEngine {
  /// Literal 2^u enumeration (thesis Section 5.3).
  kExhaustive,
  /// Exact polynomial-time factorization (default).
  kFactored,
};

/// \brief Options of the classifier construction.
struct ClassifierOptions {
  ClassifierEngine engine = ClassifierEngine::kFactored;
  /// The exhaustive engine refuses domains with more uncertain schemas than
  /// this (2^u subsets); Build() then returns ResourceExhausted. The
  /// factored engine has no such limit.
  std::size_t max_uncertain_exhaustive = 24;
  /// Exclude singleton domains (unclustered schemas) from ranking. The
  /// thesis keeps them; off by default.
  bool skip_singleton_domains = false;
};

/// \brief Per-domain model parameters: the prior and Pr(F_j=1|D_r).
struct DomainConditionals {
  /// Pr(D_r) (Equation 5.3). Priors need not sum to 1 across domains; the
  /// constant Pr(F_Q) is never needed for ranking (Section 5.1).
  double prior = 0.0;
  /// Pr(F_j = 1 | D_r) for every lexicon feature j (Equation 5.4 with the
  /// m-estimate 5.9); strictly inside (0, 1) by construction.
  std::vector<double> q1;
};

/// \brief One ranked classification answer.
struct DomainScore {
  std::uint32_t domain = 0;
  /// log Pr(F_Q | D_r) + log Pr(D_r) (unnormalized log posterior).
  double log_posterior = 0.0;
};

/// \brief Reusable scratch for the zero-allocation classify paths.
///
/// Holds the query set-bit extraction buffers (single query, and the CSR
/// layout the batch sweep uses). Every buffer grows to its high-water mark
/// and is then reused, so a caller that keeps one scratch per thread pays
/// zero heap allocations in steady state (tests/zero_alloc_test.cc proves
/// it with a counting operator new). Not thread-safe: one scratch per
/// thread — Classify/ClassifyBatch keep a thread_local one internally.
struct ClassifyScratch {
  /// Set feature indices of the current single query.
  std::vector<std::size_t> set_bits;
  /// CSR set-bit layout of a batch: query b's set features are
  /// batch_indices[batch_offsets[b] .. batch_offsets[b+1]).
  std::vector<std::size_t> batch_offsets;
  std::vector<std::size_t> batch_indices;
  /// Warm ranking vectors parked here when a batch shrinks, reclaimed when
  /// it grows again — ClassifyBatchInto never destroys an inner vector's
  /// capacity, so any batch at or below the high-water size is alloc-free.
  std::vector<std::vector<DomainScore>> spare_rankings;
};

/// \brief The query classifier. Build once, classify many times.
class NaiveBayesClassifier {
 public:
  /// Builds the classifier from the domain model and the schema feature
  /// vectors (corpus order). \p num_schemas_total is |S| (Equation 5.5).
  static Result<NaiveBayesClassifier> Build(
      const DomainModel& model, const std::vector<DynamicBitset>& features,
      std::size_t num_schemas_total, const ClassifierOptions& options = {});

  /// Wraps externally computed conditionals (used by the approximate
  /// engines of approx_classifier.h). \p singleton_domain flags which
  /// domains are singletons, honored when skip_singleton_domains is set.
  static NaiveBayesClassifier FromConditionals(
      std::vector<DomainConditionals> conditionals,
      std::vector<bool> singleton_domain, const ClassifierOptions& options);

  /// Incremental refresh: a classifier for \p model where only the domains
  /// in \p affected_domains (plus any domains \p base does not cover yet)
  /// have their conditionals recomputed; every other domain reuses \p
  /// base's q1 vector and precomputed log-odds verbatim, and has its prior
  /// recomputed for the new \p num_schemas_total. Exact, not approximate:
  /// the factored engine makes each domain's conditionals depend only on
  /// its own membership rows and its members' feature vectors, so the
  /// result is bit-identical to Build() over the same inputs. Domains must
  /// never shrink ids across updates (the incremental clusterer only
  /// appends); \p affected_domains must list every domain whose schema set
  /// or membership probabilities changed.
  static Result<NaiveBayesClassifier> UpdateDomains(
      const NaiveBayesClassifier& base, const DomainModel& model,
      const std::vector<DynamicBitset>& features,
      std::size_t num_schemas_total,
      const std::vector<std::uint32_t>& affected_domains);

  /// A copy of this classifier with per-domain priors replaced by
  /// \p priors (size must equal num_domains()). Conditionals and log-odds
  /// are reused verbatim; only the prior-dependent base scores are
  /// recomputed — the implicit-feedback fast path.
  NaiveBayesClassifier WithPriors(const std::vector<double>& priors) const;

  /// Ranks all domains for the query feature vector, descending by
  /// posterior. Ties broken by domain id for determinism.
  std::vector<DomainScore> Classify(const DynamicBitset& query) const;

  /// The zero-allocation flavor of Classify: ranks into \p *out (cleared
  /// first, capacity reused) using \p *scratch for the set-bit buffer.
  /// Steady state — same classifier, reused buffers — performs zero heap
  /// allocations. Bitwise-identical to Classify (same accumulation order).
  void ClassifyInto(const DynamicBitset& query, ClassifyScratch* scratch,
                    std::vector<DomainScore>* out) const;

  /// Ranks B queries in one struct-of-arrays sweep: the loop order is
  /// domain-major, so each domain's log_odds_ row streams through cache
  /// ONCE for all B queries instead of once per query. Output is
  /// bitwise-identical (EXPECT_EQ on doubles, not near) to B independent
  /// Classify calls — per (query, domain) the scored features are summed
  /// in the same ascending order onto the same base. results[b] is the
  /// ranking of queries[b].
  std::vector<std::vector<DomainScore>> ClassifyBatch(
      std::span<const DynamicBitset> queries) const;

  /// Zero-allocation flavor of ClassifyBatch: rankings go into \p *out
  /// (resized to queries.size(); inner vectors cleared, capacity reused —
  /// shrinking batches park surplus vectors in the scratch rather than
  /// freeing them). Steady state at or below the high-water batch size
  /// performs zero heap allocations.
  void ClassifyBatchInto(std::span<const DynamicBitset> queries,
                         ClassifyScratch* scratch,
                         std::vector<std::vector<DomainScore>>* out) const;

  /// Number of domains the classifier covers.
  std::size_t num_domains() const { return conditionals_.size(); }
  /// Feature-space dimensionality.
  std::size_t dim() const {
    return conditionals_.empty() ? 0 : conditionals_[0].q1.size();
  }

  /// Pr(D_r) — for tests and inspection.
  double Prior(std::uint32_t domain) const {
    return conditionals_[domain].prior;
  }
  /// Pr(F_j = 1 | D_r) — for tests and inspection.
  double FeatureProb(std::uint32_t domain, std::size_t j) const {
    return conditionals_[domain].q1[j];
  }

  /// All per-domain conditionals (for persistence and the feedback layer).
  const std::vector<DomainConditionals>& conditionals() const {
    return conditionals_;
  }
  /// Per-domain singleton flags, as passed at construction.
  const std::vector<bool>& singleton_domains() const {
    return singleton_domain_;
  }
  /// The options the classifier was built with.
  const ClassifierOptions& options() const { return options_; }

 private:
  NaiveBayesClassifier() = default;
  void Precompute();
  /// Recomputes log_odds_[r], log1mq_sum_[r], and base_[r] from
  /// conditionals_[r]. The single canonical per-domain precompute — both
  /// the full Build() and the incremental UpdateDomains() go through it,
  /// which is what keeps the two paths bit-identical.
  void PrecomputeDomain(std::size_t r);
  /// base_[r] from the domain's prior and cached log1mq_sum_[r].
  void RefreshBase(std::size_t r);

  ClassifierOptions options_;
  std::vector<DomainConditionals> conditionals_;
  std::vector<bool> singleton_domain_;
  // Precomputed scoring terms: score(Q) = base_[r] + sum over set features
  // of log_odds_[r][j], where base_ = log prior + log1mq_sum_ (the cached
  // sum_j log(1 - q1[j])) and log_odds_[r][j] = log q1[j] - log(1 - q1[j]).
  // log1mq_sum_ is kept separately so a prior-only change (incremental
  // arrivals rescale every prior; click feedback reweights them) refreshes
  // base_ without touching the O(dim) log evaluations.
  std::vector<double> base_;
  std::vector<double> log1mq_sum_;
  std::vector<std::vector<double>> log_odds_;
};

/// Computes the exact per-domain conditionals for one domain. Exposed for
/// tests (the exhaustive/factored agreement property) and the perf bench.
Result<DomainConditionals> ComputeDomainConditionals(
    const DomainModel& model, std::uint32_t domain,
    const std::vector<DynamicBitset>& features, std::size_t num_schemas_total,
    ClassifierEngine engine, std::size_t max_uncertain_exhaustive);

/// Computes only Pr(D_r) for one domain — the cheap O(|S-hat|^2) slice of
/// ComputeDomainConditionals, accumulated through the identical loop so
/// the result is bit-identical to the full computation's prior. This is
/// what lets UpdateDomains rescale unaffected domains' priors to a new
/// corpus size without touching their conditionals.
Result<double> ComputeDomainPrior(const DomainModel& model,
                                  std::uint32_t domain,
                                  std::size_t num_schemas_total,
                                  ClassifierEngine engine,
                                  std::size_t max_uncertain_exhaustive);

}  // namespace paygo

#endif  // PAYGO_CLASSIFY_NAIVE_BAYES_H_
