#include "synth/vocabulary.h"

#include <cassert>
#include <cstdlib>

#include "util/string_util.h"

namespace paygo {
namespace {

/// Builds a core attribute list from pipe-separated variant strings.
std::vector<AttributeVariants> Core(
    std::initializer_list<std::string_view> attrs) {
  std::vector<AttributeVariants> out;
  out.reserve(attrs.size());
  for (std::string_view a : attrs) out.push_back(Variants(a));
  return out;
}

DomainTemplate T(std::string label,
                 std::initializer_list<std::string_view> core,
                 std::vector<std::string> pools, double weight,
                 std::vector<std::string> related = {}) {
  DomainTemplate t;
  t.label = std::move(label);
  t.core = Core(core);
  t.shared_pools = std::move(pools);
  t.weight = weight;
  t.related_labels = std::move(related);
  return t;
}

// ---------------------------------------------------------------------------
// Shared cross-domain attribute pools. These create the generic-term bleed
// ("name", "date", "location", ...) that makes real web and spreadsheet
// schemas overlap across domains.
// ---------------------------------------------------------------------------
std::vector<AttributePool> MakeSharedPools() {
  std::vector<AttributePool> pools;
  pools.push_back({"person",
                   Core({
                       "name|full name",
                       "first name|given name",
                       "last name|surname|family name",
                       "age",
                       "date of birth|birth date",
                       "gender|sex",
                       "occupation",
                       "nationality",
                   })});
  pools.push_back({"location",
                   Core({
                       "city|town",
                       "state|province",
                       "country",
                       "address|street address",
                       "zip code|postal code",
                       "region",
                       "location",
                       "latitude",
                       "longitude",
                   })});
  pools.push_back({"datetime",
                   Core({
                       "date",
                       "start date|date started",
                       "end date|date ended",
                       "year",
                       "time",
                       "start time",
                       "end time",
                       "month",
                       "duration",
                       "deadline|due date",
                   })});
  pools.push_back({"money",
                   Core({
                       "price",
                       "cost|total cost",
                       "amount",
                       "total|total amount",
                       "currency",
                       "fee|fees",
                       "budget",
                       "payment method|payment",
                       "discount",
                   })});
  pools.push_back({"contact",
                   Core({
                       "email|email address",
                       "phone|phone number|telephone",
                       "fax|fax number",
                       "website|web site",
                       "contact|contact person",
                       "mobile|cell phone",
                   })});
  pools.push_back({"descriptor",
                   Core({
                       "name",
                       "title",
                       "description",
                       "type",
                       "category",
                       "status",
                       "notes|comments|remarks",
                       "identifier|reference number",
                       "code",
                       "rank|ranking",
                       "rating",
                       "count",
                       "quantity",
                       "size",
                       "source",
                   })});
  pools.push_back({"education",
                   Core({
                       "school|school name",
                       "grade|grade level",
                       "student|student name",
                       "subject",
                       "level",
                       "score|total score",
                       "district|school district",
                       "gpa",
                   })});
  pools.push_back({"media",
                   Core({
                       "title",
                       "genre",
                       "release date|date of release",
                       "rating",
                       "language",
                       "format",
                       "publisher",
                       "review|reviews",
                       "length",
                   })});
  pools.push_back({"web",
                   Core({
                       "url|link",
                       "username|user name",
                       "password",
                       "last updated|date updated",
                       "page views|visits",
                       "tags|keywords",
                   })});
  pools.push_back({"measurement",
                   Core({
                       "weight",
                       "height",
                       "width",
                       "depth",
                       "temperature",
                       "volume",
                       "area",
                       "percentage|percent",
                   })});
  return pools;
}

// ---------------------------------------------------------------------------
// DDH: five sharply separated domains with large attribute pools, mirroring
// the corpus of Das Sarma et al. [8] (bibliography, cars, courses, movies,
// people). Example schemas in the thesis: {title, authors, year of publish,
// conference name} and {year, type, make, model}.
// ---------------------------------------------------------------------------
std::vector<DomainTemplate> MakeDdhTemplates() {
  std::vector<DomainTemplate> t;
  t.push_back(T("bibliography",
                {
                    "title|paper title",
                    "authors|author|author names",
                    "year of publish|publication year|year published",
                    "conference name|conference",
                    "journal|journal name",
                    "volume",
                    "issue|issue number",
                    "pages|page numbers|num pages",
                    "publisher",
                    "abstract",
                    "keywords",
                    "isbn",
                    "doi",
                    "edition",
                    "editor|editors",
                    "citations|cited by|citation count",
                    "booktitle|book title",
                    "month published",
                    "institution|affiliation",
                    "venue",
                    "series|series title",
                    "words|word count",
                    "language of publication",
                    "copyright holder",
                    "appears in|appeared in",
                    "supplementary material",
                },
                {}, 1.4));
  t.push_back(T("cars",
                {
                    "make|car make",
                    "model|car model",
                    "year|model year",
                    "type|vehicle type",
                    "price|asking price|list price",
                    "mileage|odometer|odometer reading",
                    "color|exterior color",
                    "interior color",
                    "transmission|transmission type",
                    "engine|engine size|engine type",
                    "fuel type|fuel economy",
                    "doors|number of doors",
                    "body style|body type",
                    "vin|vin number",
                    "condition",
                    "drivetrain|drive type",
                    "cylinders",
                    "horsepower",
                    "trim|trim level",
                    "seller|dealer name|dealer",
                    "warranty",
                    "stock number",
                    "accident history",
                    "previous owners|number of owners",
                    "inspection report",
                    "towing capacity",
                },
                {}, 1.4));
  t.push_back(T("courses",
                {
                    "course name|course title|course",
                    "course number|course code",
                    "instructor|instructor name|professor name|professor",
                    "credits|credit hours|units",
                    "department",
                    "semester|term",
                    "section|section number",
                    "room|room number|classroom",
                    "bldg|building",
                    "days|meeting days|class days",
                    "class time|meeting time|hours",
                    "prerequisites|prereqs",
                    "enrollment|max enrollment|enrollment limit",
                    "syllabus",
                    "textbook|required textbook",
                    "campus",
                    "location",
                    "seats available|open seats",
                    "waitlist",
                    "final exam date",
                    "lab hours",
                    "schedule number",
                    "grading basis",
                    "teaching assistant",
                    "office hours",
                    "course description",
                },
                {}, 1.0));
  t.push_back(T("movies",
                {
                    "title|movie title|film title",
                    "director|directed by",
                    "cast|actors|starring",
                    "genre",
                    "release year|year released",
                    "mpaa rating|rating",
                    "runtime|running time",
                    "studio",
                    "plot|plot summary|synopsis",
                    "language",
                    "country of origin",
                    "box office|gross",
                    "dvd release date",
                    "format",
                    "user rating|viewer rating",
                    "producer",
                    "screenwriter|writer",
                    "composer|music by",
                    "distributor",
                    "subtitles",
                    "awards won",
                    "reviews",
                    "filming locations",
                    "sequel to",
                    "soundtrack",
                },
                {}, 0.9));
  t.push_back(T("people",
                {
                    "first name|given name",
                    "last name|surname|family name",
                    "middle name|middle initial",
                    "email|email address",
                    "phone|phone number|home phone",
                    "address|home address|street address",
                    "city",
                    "state",
                    "zip|zip code",
                    "country",
                    "date of birth|birthdate",
                    "gender|sex",
                    "occupation|job title",
                    "company|employer",
                    "fax",
                    "website|homepage",
                    "marital status",
                    "nationality",
                    "interests|hobbies",
                    "mobile|cell phone|mobile phone",
                    "salutation",
                    "education",
                    "spouse name",
                    "emergency contact",
                    "preferred language",
                },
                {}, 0.3));
  return t;
}

// ---------------------------------------------------------------------------
// DW: deep-web form domains — attribute names are well phrased and strongly
// domain-indicative (Section 6.1.1). 19 templated labels; the remaining 5
// DW labels ride on unique schemas (see UniqueSchemaSpecs).
// ---------------------------------------------------------------------------
std::vector<DomainTemplate> MakeDwTemplates() {
  std::vector<DomainTemplate> t;
  t.push_back(T("tourism",
                {
                    "departure airport|airport of departure",
                    "destination airport|arrival airport",
                    "departing|departure date",
                    "returning|return date",
                    "airline|carrier",
                    "class|cabin class",
                    "passengers|number of passengers",
                    "stops|number of stops",
                    "flight number",
                    "departure city",
                    "destination city|destination",
                    "trip type",
                    "layover duration",
                    "baggage allowance",
                },
                {"datetime"}, 3.0, {"hotels", "events"}));
  t.push_back(T("hotels",
                {
                    "hotel name|property name",
                    "check in|check in date",
                    "check out|check out date",
                    "rooms|number of rooms",
                    "guests|number of guests|adults",
                    "star rating|hotel class",
                    "amenities",
                    "room type",
                    "nightly rate|rate per night|room rate",
                    "smoking preference",
                    "cancellation policy",
                    "breakfast included",
                    "parking availability",
                },
                {"location", "money"}, 2.5, {"tourism"}));
  t.push_back(T("jobs",
                {
                    "job title|position title|position",
                    "company|company name|employer",
                    "salary|salary range|compensation",
                    "job type|employment type",
                    "experience|years of experience|experience required",
                    "industry",
                    "job description",
                    "posted date|date posted",
                    "qualifications|requirements",
                    "benefits",
                    "career level",
                    "remote eligible",
                    "visa sponsorship",
                },
                {"location", "contact"}, 2.5, {"business", "people"}));
  t.push_back(T("bibliography",
                {
                    "title|publication title",
                    "authors|author",
                    "year of publish|publication year",
                    "conference name|conference",
                    "journal|journal name",
                    "volume",
                    "pages",
                    "publisher",
                    "abstract",
                    "isbn",
                    "keywords",
                    "editor",
                },
                {}, 2.0, {"research"}));
  t.push_back(T("movies",
                {
                    "movie title|film title",
                    "director",
                    "cast|actors|starring",
                    "genre",
                    "release year|year released",
                    "mpaa rating",
                    "runtime|running time",
                    "studio",
                    "plot summary|synopsis",
                    "box office",
                },
                {"media"}, 2.0, {"events", "music"}));
  t.push_back(T("music",
                {
                    "song|song title|track",
                    "artist|artist name|composer",
                    "album|album title",
                    "genre",
                    "label|record label",
                    "track number",
                    "duration|track length",
                    "year released|release year",
                    "lyrics",
                    "producer",
                    "tempo",
                    "featured artists",
                },
                {"media"}, 2.0, {"movies", "concerts", "events"}));
  t.push_back(T("courses",
                {
                    "course name|course title",
                    "course number|course code",
                    "instructor|professor name",
                    "credits|credit hours",
                    "department",
                    "semester|term",
                    "room number|classroom",
                    "meeting days",
                    "class time|meeting time",
                    "prerequisites",
                    "enrollment limit",
                },
                {"education"}, 2.0, {"schools", "people"}));
  t.push_back(T("people",
                {
                    "first name",
                    "last name|family name",
                    "function|role",
                    "description",
                    "date of birth|place of birth",
                    "date of death|place of death",
                    "occupation",
                    "affiliation",
                    "research interests",
                    "office phone",
                    "biography",
                },
                {"contact", "person"}, 7.0, {"organizations", "schools"}));
  t.push_back(T("sports",
                {
                    "team|team name",
                    "player|player name",
                    "league",
                    "season",
                    "wins",
                    "losses",
                    "draws",
                    "standings",
                    "points|points scored",
                    "position played",
                    "coach|head coach",
                    "stadium|home stadium",
                    "games played",
                },
                {"datetime"}, 2.0, {"events", "competitions"}));
  t.push_back(T("events",
                {
                    "event name|event title",
                    "venue",
                    "event date",
                    "organizer|host",
                    "tickets|ticket price",
                    "capacity",
                    "speakers|performers",
                    "registration deadline",
                    "agenda|program",
                    "sponsor|sponsors",
                },
                {"location", "datetime"}, 2.0, {"concerts", "festivals"}));
  t.push_back(T("food",
                {
                    "recipe name|dish name|recipe",
                    "ingredients",
                    "cuisine|cuisine type",
                    "oven temperature",
                    "allergens",
                    "cooking time|prep time",
                    "servings|serving size",
                    "calories",
                    "difficulty",
                    "instructions|directions",
                    "course type|meal type",
                    "dietary restrictions",
                },
                {"descriptor"}, 1.5, {"drink"}));
  t.push_back(T("insurance",
                {
                    "policy number|policy id",
                    "policy type|coverage type",
                    "premium|monthly premium|annual premium",
                    "deductible",
                    "coverage amount|coverage limit",
                    "insurer|insurance company|provider",
                    "policy holder|insured name",
                    "effective date",
                    "expiration date|expiry date",
                    "claim number",
                    "beneficiary",
                    "underwriter",
                    "rider options",
                },
                {"person"}, 1.5, {"healthplans", "money"}));
  t.push_back(T("banks",
                {
                    "account number",
                    "account type",
                    "balance|account balance",
                    "interest rate|apr",
                    "branch|branch name",
                    "routing number",
                    "account holder",
                    "minimum balance",
                    "monthly fee",
                    "overdraft limit",
                    "opened date|date opened",
                },
                {"money"}, 1.5, {"accounts", "money"}));
  t.push_back(T("medications",
                {
                    "drug name|medication name|medication",
                    "dosage|dose",
                    "manufacturer",
                    "side effects",
                    "active ingredient|active ingredients",
                    "prescription required",
                    "indications|uses",
                    "interactions|drug interactions",
                    "strength",
                    "form|dosage form",
                    "warnings",
                    "storage conditions",
                    "generic equivalent",
                },
                {}, 1.5, {"healthplans"}));
  t.push_back(T("plants",
                {
                    "plant name|common name",
                    "scientific name|botanical name|family name",
                    "bloom time|flowering season",
                    "sunlight|light requirements|sun exposure",
                    "watering|water needs",
                    "hardiness zone|usda zone",
                    "soil type|soil requirements",
                    "mature height",
                    "growth rate",
                    "native region|native to",
                    "propagation method",
                    "pest resistance",
                },
                {}, 1.5, {"environment", "nurseries"}));
  t.push_back(T("schools",
                {
                    "school name",
                    "principal|principal name",
                    "enrollment|total enrollment",
                    "grades offered|grade levels",
                    "student teacher ratio",
                    "tuition|annual tuition",
                    "accreditation",
                    "founded|year founded",
                    "mascot",
                    "school type",
                },
                {"location", "education"}, 2.0, {"people", "courses"}));
  t.push_back(T("organizations",
                {
                    "organization name|organisation",
                    "mission|mission statement",
                    "founded|year founded|established",
                    "headquarters",
                    "members|membership|number of members",
                    "chairman|president|director",
                    "annual revenue",
                    "sector|industry sector",
                    "employees|number of employees",
                    "tax id",
                },
                {"contact", "location"}, 1.5, {"business", "people"}));
  t.push_back(T("research",
                {
                    "project title|research title",
                    "principal investigator|lead researcher",
                    "funding agency|sponsor agency",
                    "grant amount|funding amount",
                    "research area|field of study",
                    "start date",
                    "end date|completion date",
                    "publications",
                    "lab|laboratory",
                    "collaborators",
                },
                {"person"}, 1.5, {"grants", "bibliography", "fellowships"}));
  t.push_back(T("awards",
                {
                    "award name|award title|award",
                    "recipient|recipient name|winner",
                    "year awarded|award year",
                    "awarding body|presented by",
                    "award category",
                    "prize money|prize amount",
                    "selection committee",
                    "acceptance speech",
                    "citation|award citation",
                    "nominees",
                    "ceremony date",
                },
                {"person"}, 1.5, {"competitions", "people"}));
  return t;
}

// ---------------------------------------------------------------------------
// SS: spreadsheet domains — smaller cores, heavier shared pools (column
// headers like {Name, Grade, School, District, Project}), much more label
// blending. 28 SS-only templates; 12 DW templates are reused (see
// SsReusedDwLabels), and 45 more labels ride on unique schemas.
// ---------------------------------------------------------------------------
std::vector<DomainTemplate> MakeSsTemplates() {
  std::vector<DomainTemplate> t;
  t.push_back(T("accounts",
                {
                    "account|account name",
                    "account number",
                    "balance",
                    "debit",
                    "credit",
                    "statement date",
                    "reconciliation status",
                },
                {"money", "datetime"}, 1.5, {"banks", "invoices", "taxes"}));
  t.push_back(T("activities",
                {
                    "activity|activity name",
                    "participants",
                    "supervisor",
                    "equipment needed",
                    "age group",
                },
                {"datetime", "location", "descriptor"}, 1.5,
                {"events", "schedule", "sports"}));
  t.push_back(T("art",
                {
                    "artwork title|work title",
                    "artist|artist name",
                    "medium",
                    "dimensions",
                    "gallery|museum",
                    "provenance",
                    "acquisition number",
                    "period|art period",
                    "style",
                },
                {"datetime", "money"}, 1.5, {"media", "events"}));
  t.push_back(T("articles",
                {
                    "headline|article title",
                    "byline|reporter",
                    "publication|newspaper",
                    "section",
                    "word count",
                    "published date|publish date",
                    "syndication rights",
                },
                {"web", "descriptor"}, 1.5, {"blogs", "media"}));
  t.push_back(T("blogs",
                {
                    "blog name|blog title",
                    "post title",
                    "blogger|blog author",
                    "posted on|post date",
                    "comments count",
                    "subscribers",
                    "rss feed",
                },
                {"web"}, 1.2, {"articles", "media"}));
  t.push_back(T("buildings",
                {
                    "building name",
                    "floors|number of floors",
                    "year built|construction year",
                    "architect",
                    "square footage|floor area",
                    "occupancy",
                    "building use",
                },
                {"location"}, 1.5, {"architecture", "housing"}));
  t.push_back(T("chemistry",
                {
                    "compound|compound name",
                    "chemical formula|formula",
                    "molecular weight|molar mass",
                    "melting point",
                    "boiling point",
                    "cas number",
                    "density",
                    "solubility",
                    "hazard class",
                },
                {"measurement"}, 1.2, {"research", "genes"}));
  t.push_back(T("competitions",
                {
                    "competition name|contest name",
                    "entrant|competitor",
                    "placing|final placing",
                    "score",
                    "judges",
                    "entry fee",
                    "division",
                },
                {"datetime", "person"}, 1.5, {"awards", "sports", "games"}));
  t.push_back(T("concerts",
                {
                    "performer|band|headliner",
                    "venue|concert hall",
                    "concert date|show date",
                    "ticket price",
                    "opening act",
                    "setlist",
                    "tour name",
                    "sound engineer",
                },
                {"location", "datetime"}, 1.5, {"music", "events"}));
  t.push_back(T("databases",
                {
                    "database name",
                    "table name",
                    "records|row count|number of records",
                    "dbms|database system",
                    "replication mode",
                    "index count",
                    "schema version",
                    "last backup",
                    "storage size",
                },
                {"web"}, 1.2, {"schemas", "applications"}));
  t.push_back(T("degrees",
                {
                    "degree|degree name",
                    "major|field of study",
                    "university|institution",
                    "graduation year|year of graduation",
                    "honors",
                    "thesis title",
                    "advisor name",
                },
                {"person", "education"}, 1.5, {"schools", "people", "exams"}));
  t.push_back(T("departments",
                {
                    "department|department name",
                    "department head|chair",
                    "staff count|number of staff",
                    "office|office location",
                    "budget allocation",
                    "division",
                },
                {"contact", "money"}, 1.5, {"organizations", "people"}));
  t.push_back(T("drink",
                {
                    "beverage|drink name",
                    "brand",
                    "alcohol content|abv",
                    "bottle size",
                    "serving temperature",
                    "origin|country of origin",
                    "vintage",
                    "tasting notes",
                },
                {"money"}, 1.2, {"food", "alcohol"}));
  t.push_back(T("environment",
                {
                    "site name|monitoring site",
                    "pollutant",
                    "emission level|emissions",
                    "air quality index",
                    "water quality",
                    "habitat type",
                    "species count",
                },
                {"location", "measurement", "datetime"}, 1.5,
                {"plants", "research", "animals"}));
  t.push_back(T("exams",
                {
                    "exam|exam name|test name",
                    "exam date|test date",
                    "passing score|pass mark",
                    "max score|maximum marks",
                    "retake policy",
                    "candidates|examinees",
                    "proctor|invigilator",
                    "exam room",
                },
                {"education"}, 1.5, {"courses", "schools", "degrees"}));
  t.push_back(T("festivals",
                {
                    "festival name",
                    "festival dates",
                    "lineup|headliners",
                    "attendance|expected attendance",
                    "shuttle service",
                    "pass price|festival pass",
                    "stages",
                    "camping",
                },
                {"location"}, 1.2, {"events", "concerts", "music"}));
  t.push_back(T("grants",
                {
                    "grant title|grant name",
                    "grantee|grant recipient",
                    "funding agency|funder",
                    "award amount|grant amount",
                    "grant period",
                    "grant number",
                    "proposal deadline",
                    "indirect cost rate",
                },
                {"money", "datetime"}, 1.5,
                {"research", "fellowships", "projects"}));
  t.push_back(T("healthplans",
                {
                    "plan name|health plan",
                    "monthly premium",
                    "copay|co payment",
                    "deductible",
                    "network|provider network",
                    "out of pocket maximum",
                    "coverage tier",
                    "formulary"
                },
                {"person"}, 1.2, {"insurance", "medications"}));
  t.push_back(T("industry",
                {
                    "sector|industry sector",
                    "output|annual output",
                    "workforce|labor force",
                    "exports",
                    "imports",
                    "growth rate|annual growth",
                    "market share",
                },
                {"money", "location"}, 1.2, {"business", "factories"}));
  t.push_back(T("internships",
                {
                    "internship title|intern position",
                    "host company|host organization",
                    "stipend|monthly stipend",
                    "duration|internship length",
                    "mentor|supervisor name",
                    "application deadline",
                    "eligibility",
                },
                {"location", "contact"}, 1.2, {"jobs", "fellowships"}));
  t.push_back(T("invoices",
                {
                    "invoice number|invoice id",
                    "invoice date",
                    "bill to|billed to",
                    "line items",
                    "subtotal",
                    "tax",
                    "amount due|balance due",
                    "payment terms",
                },
                {"money"}, 1.5, {"accounts", "suppliers", "taxes"}));
  t.push_back(T("items",
                {
                    "item|item name",
                    "sku|item number",
                    "unit price",
                    "barcode",
                    "in stock|stock level|quantity on hand",
                    "supplier",
                    "reorder point",
                    "warehouse|bin location",
                },
                {"descriptor", "money"}, 1.5, {"suppliers", "invoices"}));
  t.push_back(T("locations",
                {
                    "place name|location name",
                    "elevation|altitude",
                    "population",
                    "timezone|time zone",
                    "county",
                    "area code",
                },
                {"location"}, 1.5, {"roads", "tourism"}));
  t.push_back(T("media",
                {
                    "outlet|media outlet",
                    "circulation",
                    "audience|audience size",
                    "frequency|broadcast frequency",
                    "owner|parent company",
                    "market|media market",
                },
                {"media", "web"}, 1.2, {"articles", "videos", "channels"}));
  t.push_back(T("money",
                {
                    "transaction id",
                    "transaction date",
                    "payee",
                    "payer",
                    "exchange rate",
                    "account",
                },
                {"money"}, 1.5, {"banks", "accounts", "taxes"}));
  t.push_back(T("projects",
                {
                    "project|project name|project title",
                    "project manager|project lead",
                    "milestone|milestones",
                    "completion|percent complete",
                    "risk register",
                    "deliverables",
                    "stakeholders",
                    "phase|project phase",
                },
                {"datetime", "money", "descriptor"}, 2.0,
                {"grants", "research", "schools"}));
  t.push_back(T("suppliers",
                {
                    "supplier|supplier name|vendor",
                    "lead time",
                    "minimum order|minimum order quantity",
                    "payment terms",
                    "supplier rating",
                    "catalog number",
                },
                {"contact", "location"}, 1.2, {"items", "invoices"}));
  t.push_back(T("taxes",
                {
                    "tax year",
                    "taxable income",
                    "tax rate",
                    "tax bracket",
                    "itemized deductions",
                    "withholding|tax withheld",
                    "refund|refund amount",
                    "filing status",
                },
                {"money", "person"}, 1.2, {"accounts", "money"}));
  return t;
}

std::vector<UniqueSchemaSpec> MakeUniqueSpecs() {
  // Entries 0-15 feed the DW corpus (5 distinct DW-only labels); the rest
  // feed SS (45 distinct SS-only labels, then repeats). Attribute term
  // vocabularies are pairwise disjoint so none of these should ever merge
  // with anything.
  return {
      // ---- DW unique schemas (labels: animals, games, housing, contacts,
      // business) ----
      {"animals", {"breed registry", "coat pattern", "litter size",
                   "vaccination record", "microchip"}},
      {"animals", {"wingspan", "migratory route", "nesting habits",
                   "plumage"}},
      {"games", {"polygon budget", "frame pacing", "shader preset",
                 "texture pack"}},
      {"games", {"speedrun split", "glitchless rules", "leaderboard seed"}},
      {"housing", {"escrow holdback", "easement clause", "lien position",
                   "appraisal contingency"}},
      {"housing", {"radon mitigation", "sump pump", "crawlspace"}},
      {"contacts", {"ham radio callsign", "qsl card", "repeater offset"}},
      {"contacts", {"emergency beacon", "satellite messenger",
                    "checkin cadence"}},
      {"business", {"pallet turnover", "dock door", "cross docking",
                    "wave picking"}},
      {"business", {"franchise royalty", "territory exclusivity",
                    "buildout allowance"}},
      {"animals", {"antler spread", "rutting season", "bag limit"}},
      {"games", {"deck archetype", "mana curve", "sideboard"}},
      {"housing", {"strata levy", "sinking fund", "bylaw infraction"}},
      {"contacts", {"pager code", "switchboard extension", "intercom zone"}},
      {"business", {"mystery shopper", "planogram compliance",
                    "shrinkage rate"}},
      {"games", {"dice pool", "initiative modifier", "saving throw"}},
      // ---- SS unique schemas: 45 distinct labels ----
      {"TOC", {"chapter heading", "leaf number", "folio",
               "indentation level"}},
      {"access", {"badge swipe", "turnstile lane", "tailgating alarm"}},
      {"airdisasters", {"crash site", "fatalities aboard",
                        "aircraft registration", "flight phase",
                        "probable cause"}},
      {"alcohol", {"proof gallon", "distillery bond", "cask strength",
                   "mash bill"}},
      {"applications", {"applicant pool", "shortlist round",
                        "reviewer assignment", "decision letter"}},
      {"architecture", {"cantilever span", "facade cladding", "load bearing",
                        "blueprint revision"}},
      {"attributes", {"cardinality estimate", "null fraction",
                      "distinct values", "column width"}},
      {"boardgames", {"meeple color", "victory point track",
                      "worker placement", "tile bag"}},
      {"cartoons", {"animation cel", "inbetweener", "storyboard panel",
                    "voice actor"}},
      {"categories", {"taxonomy depth", "parent node", "leaf label",
                      "sibling order"}},
      {"channels", {"transponder", "uplink band", "broadcast license",
                    "signal polarization"}},
      {"chess", {"elo delta", "opening repertoire", "zugzwang",
                 "endgame tablebase"}},
      {"codeofconduct", {"infraction tier", "remediation step",
                         "ombudsperson", "appeal window"}},
      {"comics", {"panel layout", "inker", "letterer", "variant cover",
                  "print run"}},
      {"exposures", {"dosimeter reading", "radiation badge", "half life",
                     "shielding factor"}},
      {"factories", {"assembly line speed", "defect rate per shift",
                     "tooling changeover", "kanban bin"}},
      {"fellowships", {"fellowship cohort", "residency requirement",
                       "nomination packet"}},
      {"gender", {"respondent identity", "pronoun preference",
                  "survey wave"}},
      {"genes", {"locus", "allele frequency", "codon", "expression profile",
                 "knockout strain"}},
      {"inflation", {"cpi basket", "price index", "base period",
                     "deflator"}},
      {"interments", {"plot row", "headstone inscription", "burial permit",
                      "cemetery section"}},
      {"librarians", {"dewey range", "circulation desk", "interlibrary loan",
                      "cataloging backlog"}},
      {"licenses", {"endorsement class", "renewal cycle", "points accrued",
                    "issuing authority"}},
      {"licensing", {"royalty tier", "sublicense right", "field of use",
                     "milestone payment"}},
      {"math", {"theorem number", "proof technique", "lemma dependency",
                "conjecture status"}},
      {"names", {"etymology", "diminutive form", "popularity percentile",
                 "name origin"}},
      {"nurseries", {"seedling tray", "germination rate", "potting mix",
                     "transplant week"}},
      {"plans", {"floorplan variant", "elevation drawing", "lot coverage",
                 "setback requirement"}},
      {"producers", {"output quota", "cooperative share", "harvest grade",
                     "certification body"}},
      {"race", {"census block", "enumeration district", "self reported origin",
                "sampling weight"}},
      {"religious", {"parish", "diocese", "congregation size", "liturgy",
                     "clergy roster"}},
      {"roads", {"pavement condition index", "traffic volume", "lane miles",
                 "resurfacing year"}},
      {"robots", {"actuator torque", "gripper payload", "servo count",
                  "degrees of freedom"}},
      {"schedule", {"shift rotation", "coverage gap", "swap request",
                    "on call roster"}},
      {"schemas", {"mediated attribute", "mapping confidence",
                   "source overlap"}},
      {"series", {"episode arc", "season order", "showrunner",
                  "renewal status"}},
      {"sessions", {"breakout track", "keynote slot", "abstract id",
                    "poster board"}},
      {"shows", {"matinee", "curtain call", "understudy", "box seat"}},
      {"subjects", {"consent form version", "cohort arm", "washout period",
                    "adverse event grade"}},
      {"teachers", {"tenure status", "certification area", "pedagogy rating",
                    "classroom roster"}},
      {"theatres", {"proscenium width", "orchestra pit", "rigging capacity",
                    "house seats"}},
      {"tracking", {"waybill", "last scan", "custody transfer",
                    "geofence event"}},
      {"videos", {"bitrate ladder", "codec profile", "watch completion",
                  "thumbnail variant"}},
      {"vulnerabilities", {"cve id", "cvss score", "exploit maturity",
                           "patch availability"}},
      {"windows", {"glazing layers", "u factor", "sash material",
                   "solar heat gain"}},
      // ---- extra SS unique schemas (labels repeat) ----
      {"chess", {"fide title", "time control", "simultaneous exhibition"}},
      {"robots", {"lidar range", "odometry drift", "docking station"}},
      {"genes", {"promoter region", "methylation site", "transcript variant"}},
      {"roads", {"culvert inventory", "guardrail segment", "skid resistance"}},
      {"videos", {"render farm", "proxy resolution", "color grade"}},
      {"math", {"integral table", "series convergence", "numeric stability"}},
      {"tracking", {"rfid tag", "pallet license plate", "dwell time"}},
      {"religious", {"pilgrimage route", "feast day", "relic inventory"}},
      {"schedule", {"bell schedule", "period length", "passing time"}},
      {"licenses", {"provisional permit", "road test score",
                    "vision screening"}},
      {"theatres", {"fly tower", "thrust stage", "lighting plot"}},
      {"comics", {"splash page", "gutter width", "omnibus edition"}},
      {"alcohol", {"fermentation tank", "yeast strain", "gravity reading"}},
      {"names", {"surname distribution", "patronymic", "transliteration"}},
      {"exposures", {"biomarker panel", "cumulative dose", "exposure window"}},
      {"plans", {"zoning overlay", "variance request", "plat map"}},
      {"producers", {"yield per hectare", "irrigation quota",
                     "storage silo"}},
      {"sessions", {"plenary hall", "badge pickup", "speaker ready room"}},
  };
}

}  // namespace

AttributeVariants Variants(std::string_view pipe_separated) {
  AttributeVariants v;
  v.forms = SplitAny(pipe_separated, "|");
  assert(!v.forms.empty());
  return v;
}

const std::vector<AttributePool>& SharedAttributePools() {
  static const std::vector<AttributePool> kPools = MakeSharedPools();
  return kPools;
}

const AttributePool& SharedPool(std::string_view name) {
  for (const AttributePool& p : SharedAttributePools()) {
    if (p.name == name) return p;
  }
  assert(false && "unknown shared pool");
  std::abort();
}

const std::vector<DomainTemplate>& DdhDomainTemplates() {
  static const std::vector<DomainTemplate> kTemplates = MakeDdhTemplates();
  return kTemplates;
}

const std::vector<DomainTemplate>& DwDomainTemplates() {
  static const std::vector<DomainTemplate> kTemplates = MakeDwTemplates();
  return kTemplates;
}

const std::vector<DomainTemplate>& SsDomainTemplates() {
  static const std::vector<DomainTemplate> kTemplates = MakeSsTemplates();
  return kTemplates;
}

const std::vector<std::string>& SsReusedDwLabels() {
  static const std::vector<std::string> kReused = {
      "people", "schools", "awards",        "events",
      "courses", "sports", "music",         "movies",
      "jobs",    "food",   "organizations", "research",
  };
  return kReused;
}

const std::vector<UniqueSchemaSpec>& UniqueSchemaSpecs() {
  static const std::vector<UniqueSchemaSpec> kSpecs = MakeUniqueSpecs();
  return kSpecs;
}

}  // namespace paygo
