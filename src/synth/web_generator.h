#ifndef PAYGO_SYNTH_WEB_GENERATOR_H_
#define PAYGO_SYNTH_WEB_GENERATOR_H_

/// \file web_generator.h
/// \brief Synthetic stand-ins for the DW (deep web) and SS (spreadsheet)
/// schema sets of Section 6.1.1.
///
/// Both generators reproduce the properties Table 6.1 reports and the
/// qualitative contrasts the thesis draws:
///
///  * DW — 63 schemas over 24 labels, at most 2 labels per schema, cleanly
///    phrased domain-indicative attribute names, ~25% unique schemas.
///  * SS — 252 schemas over 85 labels, up to 4 labels per schema, noisier:
///    generic spreadsheet column headers from shared pools, frequent
///    label blending (e.g. {Name, Grade, School, District, Project} ->
///    schools+people+awards+projects), ~25% unique schemas, plus a few
///    very wide spreadsheets (max terms per schema ~119 in the thesis).

#include <cstdint>

#include "schema/corpus.h"

namespace paygo {

/// \brief Options shared by the DW and SS generators.
struct WebGeneratorOptions {
  std::uint64_t seed = 29;
};

/// Generates the DW-like corpus (63 schemas, 24 labels).
SchemaCorpus MakeDwCorpus(const WebGeneratorOptions& options = {});

/// Generates the SS-like corpus (252 schemas, 85 labels).
SchemaCorpus MakeSsCorpus(const WebGeneratorOptions& options = {});

/// Convenience: union of DW and SS (the "Both" column of Table 6.1/6.2),
/// generated with the same seeds the individual corpora use.
SchemaCorpus MakeDwSsCorpus(const WebGeneratorOptions& options = {});

}  // namespace paygo

#endif  // PAYGO_SYNTH_WEB_GENERATOR_H_
