#ifndef PAYGO_SYNTH_QUERY_GENERATOR_H_
#define PAYGO_SYNTH_QUERY_GENERATOR_H_

/// \file query_generator.h
/// \brief Section 6.1.3: random keyword-query generation.
///
/// Simulates a user entering a keyword query with a particular domain in
/// mind:
///  1. pick a target label B_rand with probability proportional to
///     |S(B_rand)|;
///  2. filter the corpus terms to those appearing in at least
///     min_label_fraction of S(B_rand)'s schemas (0.25 for DW/SS, 0.1 for
///     DDH);
///  3. weight each surviving term by its discriminativeness
///     lambda(t, B) = rel. frequency in B / average rel. frequency across
///     all labels, normalized into a distribution;
///  4. draw the query's keywords i.i.d. from that distribution.

#include <cstdint>
#include <string>
#include <vector>

#include "schema/corpus.h"
#include "schema/lexicon.h"
#include "util/random.h"
#include "util/status.h"

namespace paygo {

/// \brief Options of the query generator.
struct QueryGeneratorOptions {
  /// A term must appear in at least this fraction of the target label's
  /// schemas to be a candidate keyword (thesis: 0.25 for DW/SS, 0.1 for
  /// DDH whose labels have hundreds of schemas).
  double min_label_fraction = 0.25;
};

/// \brief One generated query with its intended label.
struct GeneratedQuery {
  std::vector<std::string> keywords;
  std::string target_label;
};

/// \brief Generates label-targeted keyword queries from a labeled corpus.
class QueryGenerator {
 public:
  /// Precomputes per-label candidate terms and sampling distributions.
  /// Labels with no labeled schemas or no surviving candidate terms are
  /// excluded from targeting.
  static Result<QueryGenerator> Build(const SchemaCorpus& corpus,
                                      const Lexicon& lexicon,
                                      const QueryGeneratorOptions& options = {});

  /// Generates one query with \p num_keywords keywords (drawn i.i.d., so
  /// duplicates are possible, as in the thesis's model).
  GeneratedQuery Generate(std::size_t num_keywords, Rng& rng) const;

  /// Labels that can be targeted (non-empty candidate term lists).
  const std::vector<std::string>& targetable_labels() const {
    return labels_;
  }

  /// The candidate terms and their probabilities for one label (tests).
  const std::vector<std::pair<std::string, double>>& TermDistribution(
      const std::string& label) const;

 private:
  std::vector<std::string> labels_;
  std::vector<double> label_weights_;  // |S(B_j)|
  // Per label: (term, probability) with probabilities summing to 1.
  std::vector<std::vector<std::pair<std::string, double>>> term_dists_;
};

}  // namespace paygo

#endif  // PAYGO_SYNTH_QUERY_GENERATOR_H_
