#include "synth/web_generator.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "synth/vocabulary.h"
#include "util/random.h"

namespace paygo {
namespace {

/// Picks one surface form of a template attribute.
std::string PickForm(const AttributeVariants& v, Rng& rng) {
  return v.forms[rng.NextBelow(v.forms.size())];
}

/// Appends \p count distinct attributes sampled from \p source (without
/// replacement), skipping any whose chosen form is already present.
void SampleAttributes(const std::vector<AttributeVariants>& source,
                      std::size_t count, Rng& rng,
                      std::vector<std::string>* out) {
  std::vector<std::size_t> idx(source.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.Shuffle(idx);
  std::size_t taken = 0;
  for (std::size_t i : idx) {
    if (taken >= count) break;
    std::string form = PickForm(source[i], rng);
    if (std::find(out->begin(), out->end(), form) != out->end()) continue;
    out->push_back(std::move(form));
    ++taken;
  }
}

const DomainTemplate* FindTemplate(
    const std::vector<const DomainTemplate*>& pool, const std::string& label) {
  for (const DomainTemplate* t : pool) {
    if (t->label == label) return t;
  }
  return nullptr;
}

/// Picks a template index weighted by DomainTemplate::weight.
std::size_t PickTemplate(const std::vector<const DomainTemplate*>& pool,
                         Rng& rng) {
  std::vector<double> weights;
  weights.reserve(pool.size());
  for (const DomainTemplate* t : pool) weights.push_back(t->weight);
  return rng.NextWeighted(weights);
}

struct BlendConfig {
  /// Probability of blending in the k-th extra related label (cumulative
  /// coin flips; size bounds the extra labels).
  std::vector<double> extra_label_probs;
  /// Attributes contributed by each blended template.
  std::size_t blend_attrs_min = 1;
  std::size_t blend_attrs_max = 3;
  /// Probability a schema gains a "people" column block (spreadsheets).
  double people_block_prob = 0.0;
  /// Probability a schema absorbs 1-2 attributes from a random unrelated
  /// template WITHOUT acquiring its label — the stray columns real forms
  /// and spreadsheets carry.
  double cross_noise_prob = 0.0;
  /// Probability that a blended related topic contributes its attributes
  /// but the annotator does NOT record its label (the thesis's labels are
  /// "what I perceive as potential domains" — inherently incomplete).
  double blend_label_dropout = 0.0;
  /// Probability that, when a blend happened, the annotator records ONLY
  /// the blended label and not the primary one (judgment differences on
  /// multi-topic schemas). Together with blend_label_dropout this is the
  /// source of measured clustering impurity: the schema's vocabulary says
  /// one domain while its label says another.
  double primary_label_swap = 0.0;
  /// Probability an attribute name is rendered as a CamelCase form-field
  /// identifier ("departure airport" -> "DepartureAirport"), as HTML form
  /// internals often are — what Algorithm 1's CamelCase splitting exists
  /// for.
  double camel_case_prob = 0.0;
  /// Shared-pool attributes mixed in, uniform in [min, max].
  std::size_t pool_attrs_min = 0;
  std::size_t pool_attrs_max = 2;
  /// Core attributes, uniform in [min, max] (clamped to core size).
  std::size_t core_attrs_min = 4;
  std::size_t core_attrs_max = 9;
};

/// Generates one multi-label schema from a primary template plus blending.
/// When \p forced_template is non-negative it selects the primary template
/// directly (used to guarantee every label receives at least one schema).
void GenerateTemplatedSchema(const std::vector<const DomainTemplate*>& pool,
                             const BlendConfig& cfg, const std::string& prefix,
                             Rng& rng, SchemaCorpus* corpus,
                             int forced_template = -1) {
  const DomainTemplate& primary =
      *pool[forced_template >= 0 ? static_cast<std::size_t>(forced_template)
                                 : PickTemplate(pool, rng)];
  std::vector<std::string> labels = {primary.label};
  std::vector<std::string> attrs;

  // Core attributes.
  const std::size_t core_hi =
      std::min(cfg.core_attrs_max, primary.core.size());
  const std::size_t core_lo = std::min(cfg.core_attrs_min, core_hi);
  const std::size_t n_core = static_cast<std::size_t>(
      rng.NextInRange(static_cast<std::int64_t>(core_lo),
                      static_cast<std::int64_t>(core_hi)));
  SampleAttributes(primary.core, n_core, rng, &attrs);

  // Shared-pool attributes.
  if (!primary.shared_pools.empty() && cfg.pool_attrs_max > 0) {
    const std::size_t n_pool = static_cast<std::size_t>(
        rng.NextInRange(static_cast<std::int64_t>(cfg.pool_attrs_min),
                        static_cast<std::int64_t>(cfg.pool_attrs_max)));
    for (std::size_t k = 0; k < n_pool; ++k) {
      const std::string& pool_name =
          primary.shared_pools[rng.NextBelow(primary.shared_pools.size())];
      SampleAttributes(SharedPool(pool_name).attributes, 1, rng, &attrs);
    }
  }

  // Related-label blending (multi-topic schemas).
  for (double p : cfg.extra_label_probs) {
    if (!rng.NextBernoulli(p) || primary.related_labels.empty()) continue;
    const std::string& related = primary.related_labels[rng.NextBelow(
        primary.related_labels.size())];
    const DomainTemplate* rt = FindTemplate(pool, related);
    if (rt == nullptr) continue;
    if (std::find(labels.begin(), labels.end(), related) != labels.end()) {
      continue;
    }
    if (!rng.NextBernoulli(cfg.blend_label_dropout)) {
      labels.push_back(related);
    }
    const std::size_t n_blend = static_cast<std::size_t>(
        rng.NextInRange(static_cast<std::int64_t>(cfg.blend_attrs_min),
                        static_cast<std::int64_t>(cfg.blend_attrs_max)));
    SampleAttributes(rt->core, n_blend, rng, &attrs);
  }

  if (labels.size() >= 2 && rng.NextBernoulli(cfg.primary_label_swap)) {
    labels.erase(labels.begin());  // annotator saw only the blended topic
  }

  // Stray cross-topic attributes (no label attached).
  if (rng.NextBernoulli(cfg.cross_noise_prob)) {
    const DomainTemplate& other = *pool[rng.NextBelow(pool.size())];
    if (other.label != primary.label) {
      SampleAttributes(other.core, 1 + rng.NextBelow(2), rng, &attrs);
    }
  }

  // Ubiquitous person columns (spreadsheets frequently have a name block).
  if (rng.NextBernoulli(cfg.people_block_prob) &&
      std::find(labels.begin(), labels.end(), "people") == labels.end()) {
    labels.push_back("people");
    SampleAttributes(SharedPool("person").attributes,
                     1 + rng.NextBelow(3), rng, &attrs);
  }

  // Render some attributes as CamelCase form-field identifiers.
  for (std::string& attr : attrs) {
    if (!rng.NextBernoulli(cfg.camel_case_prob)) continue;
    std::string camel;
    bool upper_next = true;
    for (char c : attr) {
      if (c == ' ') {
        upper_next = true;
      } else {
        camel.push_back(upper_next ? static_cast<char>(std::toupper(
                                         static_cast<unsigned char>(c)))
                                   : c);
        upper_next = false;
      }
    }
    attr = std::move(camel);
  }

  Schema schema;
  schema.source_name = prefix + "_" + primary.label + "_" +
                       std::to_string(corpus->size());
  schema.attributes = std::move(attrs);
  corpus->Add(std::move(schema), std::move(labels));
}

/// Adds unique schemas from UniqueSchemaSpecs()[begin, begin+count).
void AddUniqueSchemas(std::size_t begin, std::size_t count,
                      const std::string& prefix, SchemaCorpus* corpus) {
  const auto& specs = UniqueSchemaSpecs();
  for (std::size_t i = begin; i < begin + count && i < specs.size(); ++i) {
    Schema schema;
    schema.source_name =
        prefix + "_unique_" + specs[i].label + "_" + std::to_string(i);
    schema.attributes = specs[i].attributes;
    corpus->Add(std::move(schema), {specs[i].label});
  }
}

/// Adds one very wide schema (the thesis's max-terms outliers: 72 in DW,
/// 119 in SS): a jumbo spreadsheet/form pulling from several templates and
/// every shared pool.
void AddJumboSchema(const std::vector<const DomainTemplate*>& pool,
                    std::size_t num_templates, std::size_t attrs_per_template,
                    const std::string& prefix, Rng& rng,
                    SchemaCorpus* corpus) {
  std::vector<std::string> labels;
  std::vector<std::string> attrs;
  for (std::size_t k = 0; k < num_templates && k < pool.size(); ++k) {
    const DomainTemplate& t = *pool[PickTemplate(pool, rng)];
    if (std::find(labels.begin(), labels.end(), t.label) == labels.end() &&
        labels.size() < 4) {
      labels.push_back(t.label);
    }
    SampleAttributes(t.core, attrs_per_template, rng, &attrs);
  }
  for (const AttributePool& p : SharedAttributePools()) {
    SampleAttributes(p.attributes, 3, rng, &attrs);
  }
  Schema schema;
  schema.source_name = prefix + "_jumbo_" + std::to_string(corpus->size());
  schema.attributes = std::move(attrs);
  corpus->Add(std::move(schema), std::move(labels));
}

}  // namespace

SchemaCorpus MakeDwCorpus(const WebGeneratorOptions& options) {
  SchemaCorpus corpus("DW");
  Rng rng(options.seed);

  std::vector<const DomainTemplate*> pool;
  for (const DomainTemplate& t : DwDomainTemplates()) pool.push_back(&t);

  // 46 templated schemas + 1 jumbo + 16 unique = 63 (Table 6.1).
  BlendConfig cfg;
  cfg.extra_label_probs = {0.15};  // at most 2 labels per schema
  cfg.core_attrs_min = 4;
  cfg.core_attrs_max = 9;
  cfg.pool_attrs_min = 1;
  cfg.pool_attrs_max = 3;
  cfg.cross_noise_prob = 0.4;
  cfg.camel_case_prob = 0.2;  // web form field identifiers
  cfg.blend_label_dropout = 0.35;
  cfg.primary_label_swap = 0.5;
  cfg.extra_label_probs = {0.45};  // blends happen; labels often partial
  // Coverage first: one schema per template so every DW label appears
  // (Table 6.1's 24 labels), then weighted draws fill the rest.
  for (std::size_t t = 0; t < pool.size(); ++t) {
    GenerateTemplatedSchema(pool, cfg, "dw", rng, &corpus,
                            static_cast<int>(t));
  }
  for (std::size_t i = pool.size(); i < 46; ++i) {
    GenerateTemplatedSchema(pool, cfg, "dw", rng, &corpus);
  }
  AddJumboSchema(pool, 2, 10, "dw", rng, &corpus);
  AddUniqueSchemas(0, 16, "dw", &corpus);
  return corpus;
}

SchemaCorpus MakeSsCorpus(const WebGeneratorOptions& options) {
  SchemaCorpus corpus("SS");
  Rng rng(options.seed + 1);

  // SS draws from its own templates plus the DW templates it shares labels
  // with (Table 6.1: 24 + 85 labels but 97 distinct overall).
  std::vector<const DomainTemplate*> pool;
  for (const DomainTemplate& t : SsDomainTemplates()) pool.push_back(&t);
  for (const DomainTemplate& t : DwDomainTemplates()) {
    const auto& reused = SsReusedDwLabels();
    if (std::find(reused.begin(), reused.end(), t.label) != reused.end()) {
      pool.push_back(&t);
    }
  }

  // 186 templated + 3 jumbo + 63 unique = 252 (Table 6.1).
  BlendConfig cfg;
  cfg.extra_label_probs = {0.50, 0.18, 0.06};  // up to 4 labels per schema
  cfg.core_attrs_min = 2;
  cfg.core_attrs_max = 5;
  cfg.blend_attrs_min = 2;
  cfg.blend_attrs_max = 4;
  cfg.pool_attrs_min = 2;
  cfg.pool_attrs_max = 4;
  cfg.people_block_prob = 0.22;
  cfg.cross_noise_prob = 0.55;
  cfg.camel_case_prob = 0.08;  // occasional exported-database headers
  cfg.blend_label_dropout = 0.3;
  cfg.primary_label_swap = 0.2;
  // Coverage first (every templated SS label appears), then weighted fill:
  // 40 templates + 45 unique-only labels = the thesis's 85 SS labels.
  for (std::size_t t = 0; t < pool.size(); ++t) {
    GenerateTemplatedSchema(pool, cfg, "ss", rng, &corpus,
                            static_cast<int>(t));
  }
  for (std::size_t i = pool.size(); i < 186; ++i) {
    GenerateTemplatedSchema(pool, cfg, "ss", rng, &corpus);
  }
  AddJumboSchema(pool, 6, 7, "ss", rng, &corpus);
  AddJumboSchema(pool, 4, 6, "ss", rng, &corpus);
  AddJumboSchema(pool, 3, 5, "ss", rng, &corpus);
  AddUniqueSchemas(16, 63, "ss", &corpus);
  return corpus;
}

SchemaCorpus MakeDwSsCorpus(const WebGeneratorOptions& options) {
  return SchemaCorpus::Union(MakeDwCorpus(options), MakeSsCorpus(options),
                             "DW+SS");
}

}  // namespace paygo
