#include "synth/tuple_generator.h"

#include "mediate/mediated_schema.h"
#include "util/random.h"
#include "util/string_util.h"

namespace paygo {

std::string SyntheticValue(const std::string& attribute, std::size_t k) {
  // Key the vocabulary on the canonical attribute name so that surface
  // variants ("email" / "email address") still share values across sources.
  const std::string canon = CanonicalAttributeName(attribute);
  const std::vector<std::string> parts = Split(canon, ' ');
  const std::string head = parts.empty() ? "value" : parts[0];
  return head + "_" + std::to_string(k);
}

void FillWithSyntheticTuples(DataSource* source,
                             const TupleGeneratorOptions& options) {
  // Seed per source so different sources draw different (but overlapping)
  // value combinations.
  std::uint64_t h = options.seed;
  for (char c : source->schema().source_name) {
    h = h * 1099511628211ULL + static_cast<unsigned char>(c);
  }
  Rng rng(h);
  const std::size_t width = source->schema().attributes.size();
  for (std::size_t t = 0; t < options.tuples_per_source; ++t) {
    Tuple tuple;
    tuple.values.reserve(width);
    for (std::size_t a = 0; a < width; ++a) {
      tuple.values.push_back(
          SyntheticValue(source->schema().attributes[a],
                         rng.NextBelow(options.values_per_attribute)));
    }
    // Width always matches by construction.
    (void)source->AddTuple(std::move(tuple));
  }
}

}  // namespace paygo
