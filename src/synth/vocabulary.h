#ifndef PAYGO_SYNTH_VOCABULARY_H_
#define PAYGO_SYNTH_VOCABULARY_H_

/// \file vocabulary.h
/// \brief Hand-authored attribute vocabularies behind the synthetic corpora.
///
/// The thesis evaluates on three corpora that are not publicly available
/// (DDH from Das Sarma et al. [8]; DW and SS collected manually by the
/// author). This module holds the raw material for faithful synthetic
/// stand-ins: per-domain attribute-name templates with surface-form
/// variants ("departure airport" / "airport of departure"), shared
/// cross-domain attribute pools that create the term bleed real web
/// schemas exhibit, and a pool of one-off attribute sets for the ~25% of
/// schemas the thesis describes as "unique". Domain labels are the actual
/// labels of the thesis's Appendix A.

#include <string>
#include <string_view>
#include <vector>

namespace paygo {

/// \brief One attribute with its interchangeable surface forms. The
/// generator picks one form per generated schema.
struct AttributeVariants {
  std::vector<std::string> forms;
};

/// Parses "a|b|c" into an AttributeVariants with three forms.
AttributeVariants Variants(std::string_view pipe_separated);

/// \brief A named pool of attributes shared across several domains
/// (person fields, dates, locations, ...). Shared pools inject the
/// cross-domain vocabulary overlap that makes SS noisier than DW.
struct AttributePool {
  std::string name;
  std::vector<AttributeVariants> attributes;
};

/// \brief The generative template of one domain label.
struct DomainTemplate {
  /// Appendix-A label.
  std::string label;
  /// Label-specific, domain-indicative attributes.
  std::vector<AttributeVariants> core;
  /// Names of shared pools this domain samples generic attributes from.
  std::vector<std::string> shared_pools;
  /// Relative popularity: how many schemas this label attracts.
  double weight = 1.0;
  /// Labels that plausibly co-occur with this one on a single schema
  /// (drives multi-label schemas, e.g. schools+people+awards+projects).
  std::vector<std::string> related_labels;
};

/// The shared cross-domain pools.
const std::vector<AttributePool>& SharedAttributePools();

/// Finds a shared pool by name; terminates on unknown names (authoring
/// errors should fail loudly in tests).
const AttributePool& SharedPool(std::string_view name);

/// The five DDH domains (bibliography, cars, courses, movies, people) with
/// large attribute pools — sharply separated, as Section 6.1.1 describes.
const std::vector<DomainTemplate>& DdhDomainTemplates();

/// 24 deep-web (DW) domain templates — cleanly phrased, domain-indicative
/// attribute names.
const std::vector<DomainTemplate>& DwDomainTemplates();

/// 73 spreadsheet (SS) domain templates — noisier: smaller cores, heavier
/// shared-pool mixing, more related-label blending. Together with the
/// 12 DW labels that SS reuses this yields the thesis's 85 SS labels and
/// 97 labels overall.
const std::vector<DomainTemplate>& SsDomainTemplates();

/// Names of DW templates that SS schemas also draw from (label overlap
/// between the two corpora, as in Table 6.1: 24 + 85 labels = 97 total).
const std::vector<std::string>& SsReusedDwLabels();

/// One-off attribute sets for "unique" schemas (about 25% of each corpus);
/// pairwise term-disjoint by construction so no clustering algorithm
/// should group them. Each entry is {label, attributes...}.
struct UniqueSchemaSpec {
  std::string label;
  std::vector<std::string> attributes;
};
const std::vector<UniqueSchemaSpec>& UniqueSchemaSpecs();

}  // namespace paygo

#endif  // PAYGO_SYNTH_VOCABULARY_H_
