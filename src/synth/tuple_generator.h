#ifndef PAYGO_SYNTH_TUPLE_GENERATOR_H_
#define PAYGO_SYNTH_TUPLE_GENERATOR_H_

/// \file tuple_generator.h
/// \brief Synthetic tuples for data sources (the runtime of Section 4.4).
///
/// The thesis never needed source data for clustering, but its architecture
/// (Figure 3.1) retrieves and ranks tuples at query time. Real deep-web
/// sources are unavailable, so this generator fills DataSources with
/// deterministic synthetic values. Values for an attribute are drawn from a
/// small per-attribute vocabulary ("<first term><id>") with a bounded id
/// space, so the same value recurs across sources that share attribute
/// vocabulary — which is exactly what exercises the duplicate-tuple
/// noisy-or consolidation rule.

#include <cstdint>

#include "integrate/data_source.h"
#include "schema/schema.h"

namespace paygo {

/// \brief Options of tuple generation.
struct TupleGeneratorOptions {
  /// Tuples per source.
  std::size_t tuples_per_source = 20;
  /// Distinct values per attribute; smaller values create more cross-source
  /// duplicates.
  std::size_t values_per_attribute = 8;
  std::uint64_t seed = 11;
};

/// Fills \p source with synthetic tuples (deterministic given the options
/// and the source's schema).
void FillWithSyntheticTuples(DataSource* source,
                             const TupleGeneratorOptions& options = {});

/// The value vocabulary entry \p k for attribute name \p attribute
/// (deterministic; shared across sources using the same attribute name).
std::string SyntheticValue(const std::string& attribute, std::size_t k);

}  // namespace paygo

#endif  // PAYGO_SYNTH_TUPLE_GENERATOR_H_
