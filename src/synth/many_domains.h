#ifndef PAYGO_SYNTH_MANY_DOMAINS_H_
#define PAYGO_SYNTH_MANY_DOMAINS_H_

/// \file many_domains.h
/// \brief The web-scale corpus shape: very many small domains.
///
/// The thesis's motivation is "an order of 10 million high quality HTML
/// forms" spanning domains whose number is unknowable — i.e., the number
/// of domains grows with the corpus while each stays small. DDH is the
/// opposite shape (5 huge domains). This generator produces the web shape:
/// each pseudo-domain gets its own private vocabulary, so schemas of
/// different domains share no features — exactly the regime where the
/// sparse HAC engine's feature-sharing pair count is ~linear in n while
/// the dense engines stay quadratic.

#include <cstdint>
#include <vector>

#include "schema/corpus.h"
#include "util/bitset.h"

namespace paygo {

/// \brief Options of the many-domain generator.
struct ManyDomainOptions {
  std::size_t num_domains = 100;
  /// Schemas per domain, uniform in [min, max].
  std::size_t min_schemas_per_domain = 4;
  std::size_t max_schemas_per_domain = 10;
  /// Domain vocabulary size (distinct word stems per domain).
  std::size_t words_per_domain = 8;
  /// Attributes per schema, uniform in [min, max].
  std::size_t min_attributes = 3;
  std::size_t max_attributes = 7;
  std::uint64_t seed = 97;
};

/// Generates the corpus; each schema is labeled "domain<k>".
SchemaCorpus MakeManyDomainCorpus(const ManyDomainOptions& options = {});

/// \brief Options of the direct feature-vector generator (bench scale).
///
/// MakeManyDomainCorpus runs the full text pipeline (words -> tokenizer ->
/// lexicon -> vectorizer), whose feature dimension grows linearly with the
/// number of domains — at 100k schemas the bitsets alone would be O(n^2)
/// bits. This variant emits feature vectors directly in a FIXED feature
/// space: each pseudo-domain draws a private vocabulary of feature ids
/// from the shared [0, dim) space, so bitset memory is n * dim bits and
/// expected posting-list length is (n * features_per_schema) / dim —
/// bounded, which keeps the sparse engine's candidate-pair count ~linear
/// in n. Cross-domain vocabulary collisions are rare but possible, exactly
/// like accidental term sharing on the web.
struct ManyDomainFeatureOptions {
  std::size_t num_schemas = 10000;
  /// Average schemas per pseudo-domain (the web shape keeps this small
  /// relative to the number of domains).
  std::size_t schemas_per_domain = 32;
  /// Domain vocabulary size (distinct feature ids per domain).
  std::size_t words_per_domain = 24;
  /// Features per schema, uniform in [min, max] (capped at the domain
  /// vocabulary size).
  std::size_t min_features = 4;
  std::size_t max_features = 9;
  /// Feature-space width. 0 = auto: sized so each feature id is reused by
  /// ~4 domains on average (bounded postings at any corpus size), rounded
  /// up to a multiple of 64, with a floor of 1024.
  std::size_t dim = 0;
  std::uint64_t seed = 97;
};

/// Generates feature vectors directly (no corpus / text pipeline). All
/// vectors share the same dimension. Deterministic in the seed.
std::vector<DynamicBitset> MakeManyDomainFeatures(
    const ManyDomainFeatureOptions& options = {});

}  // namespace paygo

#endif  // PAYGO_SYNTH_MANY_DOMAINS_H_
