#ifndef PAYGO_SYNTH_MANY_DOMAINS_H_
#define PAYGO_SYNTH_MANY_DOMAINS_H_

/// \file many_domains.h
/// \brief The web-scale corpus shape: very many small domains.
///
/// The thesis's motivation is "an order of 10 million high quality HTML
/// forms" spanning domains whose number is unknowable — i.e., the number
/// of domains grows with the corpus while each stays small. DDH is the
/// opposite shape (5 huge domains). This generator produces the web shape:
/// each pseudo-domain gets its own private vocabulary, so schemas of
/// different domains share no features — exactly the regime where the
/// sparse HAC engine's feature-sharing pair count is ~linear in n while
/// the dense engines stay quadratic.

#include <cstdint>

#include "schema/corpus.h"

namespace paygo {

/// \brief Options of the many-domain generator.
struct ManyDomainOptions {
  std::size_t num_domains = 100;
  /// Schemas per domain, uniform in [min, max].
  std::size_t min_schemas_per_domain = 4;
  std::size_t max_schemas_per_domain = 10;
  /// Domain vocabulary size (distinct word stems per domain).
  std::size_t words_per_domain = 8;
  /// Attributes per schema, uniform in [min, max].
  std::size_t min_attributes = 3;
  std::size_t max_attributes = 7;
  std::uint64_t seed = 97;
};

/// Generates the corpus; each schema is labeled "domain<k>".
SchemaCorpus MakeManyDomainCorpus(const ManyDomainOptions& options = {});

}  // namespace paygo

#endif  // PAYGO_SYNTH_MANY_DOMAINS_H_
