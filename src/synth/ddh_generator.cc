#include "synth/ddh_generator.h"

#include <algorithm>
#include <cmath>

#include "synth/vocabulary.h"
#include "util/random.h"

namespace paygo {
namespace {

const char* const kDecorations[] = {
    "(required)", "(optional)", "info",  "details", "code", "2",
    "new",        "old",        "main",  "alt",     "full", "short",
};

/// Samples \p n distinct indices in [0, weights.size()) with probability
/// proportional to weights, without replacement.
std::vector<std::size_t> WeightedSampleWithoutReplacement(
    std::vector<double> weights, std::size_t n, Rng& rng) {
  std::vector<std::size_t> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n && k < weights.size(); ++k) {
    const std::size_t pick = rng.NextWeighted(weights);
    out.push_back(pick);
    weights[pick] = 0.0;
  }
  return out;
}

}  // namespace

SchemaCorpus MakeDdhCorpus(const DdhGeneratorOptions& options) {
  SchemaCorpus corpus("DDH");
  Rng rng(options.seed);
  const std::vector<DomainTemplate>& templates = DdhDomainTemplates();
  // Domain sizes are skewed by template weight; 'people' is the smallest
  // domain, mirroring Section 6.3's under-representation experiment.
  std::vector<double> domain_weights;
  for (const DomainTemplate& t : templates) {
    domain_weights.push_back(t.weight);
  }
  // Per-template Zipf-like attribute popularity.
  std::vector<std::vector<double>> attr_weights(templates.size());
  for (std::size_t t = 0; t < templates.size(); ++t) {
    for (std::size_t k = 0; k < templates[t].core.size(); ++k) {
      attr_weights[t].push_back(
          1.0 / std::pow(static_cast<double>(k + 1), options.attribute_skew));
    }
  }

  const std::size_t num_decorations =
      std::min<std::size_t>(options.num_decorations,
                            sizeof(kDecorations) / sizeof(kDecorations[0]));

  for (std::size_t i = 0; i < options.num_schemas; ++i) {
    const std::size_t ti = rng.NextWeighted(domain_weights);
    const DomainTemplate& t = templates[ti];
    const std::size_t lo = options.min_attributes;
    const std::size_t hi = std::min(options.max_attributes, t.core.size());
    const std::size_t n = static_cast<std::size_t>(rng.NextInRange(
        static_cast<std::int64_t>(std::min(lo, hi)),
        static_cast<std::int64_t>(hi)));

    std::vector<std::size_t> idx =
        WeightedSampleWithoutReplacement(attr_weights[ti], n, rng);
    std::sort(idx.begin(), idx.end());  // stable attribute order

    Schema schema;
    schema.source_name =
        "ddh_" + t.label + "_" + std::to_string(corpus.size());
    for (std::size_t k : idx) {
      const auto& forms = t.core[k].forms;
      std::string attr = forms[rng.NextBelow(forms.size())];
      if (num_decorations > 0 && rng.NextBernoulli(options.decoration_prob)) {
        attr += " ";
        attr += kDecorations[rng.NextBelow(num_decorations)];
      }
      schema.attributes.push_back(std::move(attr));
    }
    corpus.Add(std::move(schema), {t.label});
  }
  return corpus;
}

}  // namespace paygo
