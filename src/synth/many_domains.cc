#include "synth/many_domains.h"

#include <algorithm>

#include "util/random.h"

namespace paygo {
namespace {

/// A pronounceable-ish random word: alternating consonants and vowels, so
/// accidental cross-domain LCS matches stay rare even at tau_t_sim 0.8.
std::string RandomWord(Rng& rng, std::size_t len) {
  static const char* kConsonants = "bcdfghjklmnpqrstvwz";
  static const char* kVowels = "aeiou";
  std::string w;
  for (std::size_t i = 0; i < len; ++i) {
    w.push_back(i % 2 == 0 ? kConsonants[rng.NextBelow(19)]
                           : kVowels[rng.NextBelow(5)]);
  }
  return w;
}

}  // namespace

SchemaCorpus MakeManyDomainCorpus(const ManyDomainOptions& options) {
  SchemaCorpus corpus("many-domains");
  Rng rng(options.seed);
  for (std::size_t d = 0; d < options.num_domains; ++d) {
    // Private vocabulary: word stems suffixed with the domain index so no
    // two domains can collide even if the random letters repeat.
    std::vector<std::string> words(options.words_per_domain);
    for (auto& w : words) {
      w = RandomWord(rng, 7) + std::to_string(d);
    }
    const std::string label = "domain" + std::to_string(d);
    const std::size_t schemas = static_cast<std::size_t>(rng.NextInRange(
        static_cast<std::int64_t>(options.min_schemas_per_domain),
        static_cast<std::int64_t>(options.max_schemas_per_domain)));
    for (std::size_t s = 0; s < schemas; ++s) {
      const std::size_t attrs = static_cast<std::size_t>(rng.NextInRange(
          static_cast<std::int64_t>(options.min_attributes),
          static_cast<std::int64_t>(
              std::min(options.max_attributes, words.size()))));
      // Attributes are 1- or 2-word combinations of the domain vocabulary.
      std::vector<std::size_t> idx(words.size());
      for (std::size_t k = 0; k < idx.size(); ++k) idx[k] = k;
      rng.Shuffle(idx);
      Schema schema;
      schema.source_name =
          label + "_src" + std::to_string(corpus.size());
      for (std::size_t a = 0; a < attrs; ++a) {
        std::string attr = words[idx[a]];
        if (rng.NextBernoulli(0.4)) {
          attr += " " + words[idx[(a + 1) % idx.size()]];
        }
        schema.attributes.push_back(std::move(attr));
      }
      corpus.Add(std::move(schema), {label});
    }
  }
  return corpus;
}

std::vector<DynamicBitset> MakeManyDomainFeatures(
    const ManyDomainFeatureOptions& options) {
  const std::size_t n = options.num_schemas;
  const std::size_t per_domain = std::max<std::size_t>(1, options.schemas_per_domain);
  const std::size_t num_domains = (n + per_domain - 1) / per_domain;
  const std::size_t vocab =
      std::max<std::size_t>(1, options.words_per_domain);
  std::size_t dim = options.dim;
  if (dim == 0) {
    // ~4 domains reuse each feature id on average, so posting lists stay
    // bounded as the corpus grows.
    dim = std::max<std::size_t>(1024, num_domains * vocab / 4);
    dim = (dim + 63) / 64 * 64;
  }
  const std::size_t min_f = std::min(std::max<std::size_t>(1, options.min_features), vocab);
  const std::size_t max_f =
      std::min(std::max(min_f, options.max_features), vocab);

  Rng rng(options.seed);
  std::vector<DynamicBitset> features;
  features.reserve(n);
  std::vector<std::size_t> words(vocab);
  std::vector<std::size_t> idx(vocab);
  for (std::size_t d = 0; d < num_domains && features.size() < n; ++d) {
    // Private vocabulary: distinct ids sampled from the shared space.
    for (std::size_t k = 0; k < vocab; ++k) {
      std::size_t id;
      bool fresh;
      do {
        id = static_cast<std::size_t>(rng.NextBelow(dim));
        fresh = true;
        for (std::size_t j = 0; j < k; ++j) {
          if (words[j] == id) {
            fresh = false;
            break;
          }
        }
      } while (!fresh);
      words[k] = id;
    }
    for (std::size_t s = 0; s < per_domain && features.size() < n; ++s) {
      const std::size_t f = static_cast<std::size_t>(rng.NextInRange(
          static_cast<std::int64_t>(min_f), static_cast<std::int64_t>(max_f)));
      for (std::size_t k = 0; k < idx.size(); ++k) idx[k] = k;
      rng.Shuffle(idx);
      DynamicBitset bits(dim);
      for (std::size_t a = 0; a < f; ++a) bits.Set(words[idx[a]]);
      features.push_back(std::move(bits));
    }
  }
  return features;
}

}  // namespace paygo
