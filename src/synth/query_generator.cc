#include "synth/query_generator.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace paygo {

Result<QueryGenerator> QueryGenerator::Build(
    const SchemaCorpus& corpus, const Lexicon& lexicon,
    const QueryGeneratorOptions& options) {
  if (options.min_label_fraction < 0.0 || options.min_label_fraction > 1.0) {
    return Status::InvalidArgument("min_label_fraction must be in [0, 1]");
  }
  if (corpus.size() != lexicon.num_schemas()) {
    return Status::InvalidArgument(
        "lexicon was built over a different corpus");
  }

  const std::vector<std::string> all_labels = corpus.AllLabels();
  if (all_labels.empty()) {
    return Status::FailedPrecondition("corpus has no labels to target");
  }
  const std::size_t num_labels = all_labels.size();
  const std::size_t dim = lexicon.dim();

  // Freq(t, B): number of schemas of S(B) containing term t; and |S(B)|.
  std::map<std::string, std::size_t> label_index;
  for (std::size_t b = 0; b < num_labels; ++b) label_index[all_labels[b]] = b;
  std::vector<std::vector<double>> freq(num_labels,
                                        std::vector<double>(dim, 0.0));
  std::vector<double> schemas_per_label(num_labels, 0.0);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (const std::string& label : corpus.labels(i)) {
      const std::size_t b = label_index.at(label);
      schemas_per_label[b] += 1.0;
      for (std::uint32_t t : lexicon.schema_terms(i)) freq[b][t] += 1.0;
    }
  }

  // Relative frequencies rel(t, B) = Freq(t,B) / sum_t' Freq(t',B), and the
  // per-term average over all labels (the denominator of lambda).
  std::vector<double> label_totals(num_labels, 0.0);
  for (std::size_t b = 0; b < num_labels; ++b) {
    for (std::size_t t = 0; t < dim; ++t) label_totals[b] += freq[b][t];
  }
  std::vector<double> avg_rel(dim, 0.0);
  for (std::size_t b = 0; b < num_labels; ++b) {
    if (label_totals[b] <= 0.0) continue;
    for (std::size_t t = 0; t < dim; ++t) {
      avg_rel[t] += freq[b][t] / label_totals[b];
    }
  }
  for (double& v : avg_rel) v /= static_cast<double>(num_labels);

  QueryGenerator gen;
  for (std::size_t b = 0; b < num_labels; ++b) {
    if (schemas_per_label[b] <= 0.0 || label_totals[b] <= 0.0) continue;
    // Filter out terms below the frequency fraction, weight the rest by
    // normalized lambda.
    std::vector<std::pair<std::string, double>> dist;
    double norm = 0.0;
    for (std::size_t t = 0; t < dim; ++t) {
      if (freq[b][t] / schemas_per_label[b] <
          options.min_label_fraction - 1e-12) {
        continue;
      }
      if (freq[b][t] <= 0.0 || avg_rel[t] <= 0.0) continue;
      const double lambda = (freq[b][t] / label_totals[b]) / avg_rel[t];
      dist.emplace_back(lexicon.term(t), lambda);
      norm += lambda;
    }
    if (dist.empty() || norm <= 0.0) continue;
    for (auto& [term, weight] : dist) weight /= norm;
    gen.labels_.push_back(all_labels[b]);
    gen.label_weights_.push_back(schemas_per_label[b]);
    gen.term_dists_.push_back(std::move(dist));
  }
  if (gen.labels_.empty()) {
    return Status::FailedPrecondition(
        "no label has candidate terms above the frequency fraction");
  }
  return gen;
}

GeneratedQuery QueryGenerator::Generate(std::size_t num_keywords,
                                        Rng& rng) const {
  GeneratedQuery q;
  const std::size_t b = rng.NextWeighted(label_weights_);
  q.target_label = labels_[b];
  const auto& dist = term_dists_[b];
  std::vector<double> weights;
  weights.reserve(dist.size());
  for (const auto& [term, w] : dist) weights.push_back(w);
  for (std::size_t k = 0; k < num_keywords; ++k) {
    q.keywords.push_back(dist[rng.NextWeighted(weights)].first);
  }
  return q;
}

const std::vector<std::pair<std::string, double>>&
QueryGenerator::TermDistribution(const std::string& label) const {
  static const std::vector<std::pair<std::string, double>> kEmpty;
  for (std::size_t b = 0; b < labels_.size(); ++b) {
    if (labels_[b] == label) return term_dists_[b];
  }
  return kEmpty;
}

}  // namespace paygo
