#ifndef PAYGO_SYNTH_DDH_GENERATOR_H_
#define PAYGO_SYNTH_DDH_GENERATOR_H_

/// \file ddh_generator.h
/// \brief Synthetic stand-in for the DDH schema set (Section 6.1.1).
///
/// The original DDH corpus — 2323 schemas from 5 sharply separated domains
/// (bibliography, cars, courses, movies, people), extracted from Google's
/// web index by Das Sarma et al. [8] — is not public. This generator
/// produces a corpus with the properties every DDH experiment depends on:
/// the same five domains, heavy intra-domain attribute-name reuse with
/// surface-form variation, and essentially no cross-domain vocabulary
/// overlap, so clustering "is expected to lend itself perfectly".

#include <cstdint>

#include "schema/corpus.h"

namespace paygo {

/// \brief Options of the DDH-like generator.
struct DdhGeneratorOptions {
  /// Total schemas (thesis: 2323).
  std::size_t num_schemas = 2323;
  /// Attributes per schema, uniform in [min, max] (DDH examples have ~4).
  std::size_t min_attributes = 3;
  std::size_t max_attributes = 9;
  /// Zipf-like skew of attribute popularity within a domain: attribute k
  /// of a template is drawn with weight 1/(k+1)^skew, so head attributes
  /// ("title", "make") appear in most schemas — which is what lets them
  /// survive the mediation frequency threshold (Section 6.3). 0 = uniform.
  double attribute_skew = 0.8;
  /// Probability an attribute name carries a source-specific decoration
  /// ("title (required)", "make 2"). Decorations multiply the number of
  /// distinct attribute names, driving the unclustered-mediation cost
  /// blow-up of Section 6.3. Default off.
  double decoration_prob = 0.0;
  /// Size of the decoration vocabulary.
  std::size_t num_decorations = 12;
  /// Deterministic seed.
  std::uint64_t seed = 17;
};

/// Generates the DDH-like corpus (labels: the five domain names).
SchemaCorpus MakeDdhCorpus(const DdhGeneratorOptions& options = {});

}  // namespace paygo

#endif  // PAYGO_SYNTH_DDH_GENERATOR_H_
