#ifndef PAYGO_FEEDBACK_CONSISTENCY_H_
#define PAYGO_FEEDBACK_CONSISTENCY_H_

/// \file consistency.h
/// \brief Automatic feedback from retrieved data (Chapter 7 future work).
///
/// The thesis's third refinement channel: "solicit automatic feedback from
/// the data retrieved from each data source at query time — determine
/// whether the tuples retrieved from the data sources in a given cluster
/// are consistent with each other, according to some measure of
/// consistency, and use this to assess the correctness of clustering."
///
/// The measure implemented here: map every source's tuples into the
/// domain's mediated schema (via its most probable mapping) and score each
/// source by how much its per-attribute value vocabulary overlaps the rest
/// of the domain's. A source whose values never co-occur with its domain
/// siblings' values is a clustering suspect — a candidate for the explicit
/// feedback loop (FeedbackStore::RecordCorrection).

#include <cstdint>
#include <vector>

#include "integrate/data_source.h"
#include "mediate/mediator.h"
#include "util/status.h"

namespace paygo {

/// \brief Options of the consistency assessment.
struct ConsistencyOptions {
  /// Sources with consistency below this are flagged as suspects.
  double suspect_threshold = 0.1;
  /// Mediated attributes must be populated by at least this many sources
  /// to contribute (an attribute only one source fills says nothing about
  /// cross-source consistency).
  std::size_t min_sources_per_attribute = 2;
};

/// \brief One member source's consistency verdict.
struct SourceConsistency {
  std::uint32_t schema_id = 0;
  /// Average per-attribute containment of this source's values in the
  /// union of its domain siblings' values; in [0, 1].
  double consistency = 0.0;
  /// True when the source had data and scored below the threshold.
  bool suspect = false;
  /// False when the source had no tuples or no comparable attributes.
  bool has_evidence = false;
};

/// \brief Consistency assessment of one domain.
struct ConsistencyReport {
  /// Mean consistency over sources with evidence (0 when none).
  double domain_consistency = 0.0;
  std::vector<SourceConsistency> sources;
  std::size_t num_suspects = 0;
};

/// Assesses the tuple-level consistency of a domain's member sources.
/// \p sources_by_schema is indexed by corpus schema id (nullptr = no data).
Result<ConsistencyReport> AssessDomainConsistency(
    const DomainMediation& mediation,
    const std::vector<const DataSource*>& sources_by_schema,
    const ConsistencyOptions& options = {});

}  // namespace paygo

#endif  // PAYGO_FEEDBACK_CONSISTENCY_H_
