#include "feedback/consistency.h"

#include <algorithm>
#include <set>
#include <string>

#include "util/string_util.h"

namespace paygo {

Result<ConsistencyReport> AssessDomainConsistency(
    const DomainMediation& mediation,
    const std::vector<const DataSource*>& sources_by_schema,
    const ConsistencyOptions& options) {
  if (options.suspect_threshold < 0.0 || options.suspect_threshold > 1.0) {
    return Status::InvalidArgument("suspect_threshold must be in [0, 1]");
  }
  const std::size_t width = mediation.mediated.size();
  ConsistencyReport report;

  // Per member: value vocabulary per mediated attribute, using the most
  // probable mapping (alternatives are sorted descending).
  struct MemberValues {
    std::uint32_t schema_id = 0;
    bool has_data = false;
    std::vector<std::set<std::string>> values;  // per mediated attribute
  };
  std::vector<MemberValues> members;
  members.reserve(mediation.members.size());
  for (std::size_t m = 0; m < mediation.members.size(); ++m) {
    MemberValues mv;
    mv.schema_id = mediation.members[m].first;
    mv.values.resize(width);
    const DataSource* src = mv.schema_id < sources_by_schema.size()
                                ? sources_by_schema[mv.schema_id]
                                : nullptr;
    if (src != nullptr && !src->tuples().empty() &&
        !mediation.mappings[m].alternatives.empty()) {
      const AttributeMapping& phi = mediation.mappings[m].alternatives[0];
      for (const Tuple& t : src->tuples()) {
        for (std::size_t a = 0;
             a < phi.target.size() && a < t.values.size(); ++a) {
          if (phi.target[a] >= 0 && !t.values[a].empty()) {
            mv.values[static_cast<std::size_t>(phi.target[a])].insert(
                ToLowerAscii(t.values[a]));
            mv.has_data = true;
          }
        }
      }
    }
    members.push_back(std::move(mv));
  }

  // How many sources populate each mediated attribute.
  std::vector<std::size_t> populated(width, 0);
  for (const MemberValues& mv : members) {
    for (std::size_t a = 0; a < width; ++a) {
      if (!mv.values[a].empty()) ++populated[a];
    }
  }

  double total = 0.0;
  std::size_t with_evidence = 0;
  for (const MemberValues& mv : members) {
    SourceConsistency sc;
    sc.schema_id = mv.schema_id;
    if (mv.has_data) {
      double attr_sum = 0.0;
      std::size_t attr_count = 0;
      for (std::size_t a = 0; a < width; ++a) {
        if (mv.values[a].empty()) continue;
        if (populated[a] < options.min_sources_per_attribute) continue;
        // Containment of this source's values in the siblings' union.
        std::size_t shared = 0;
        for (const std::string& v : mv.values[a]) {
          for (const MemberValues& other : members) {
            if (other.schema_id == mv.schema_id) continue;
            if (other.values[a].count(v)) {
              ++shared;
              break;
            }
          }
        }
        attr_sum += static_cast<double>(shared) /
                    static_cast<double>(mv.values[a].size());
        ++attr_count;
      }
      if (attr_count > 0) {
        sc.has_evidence = true;
        sc.consistency = attr_sum / static_cast<double>(attr_count);
        sc.suspect = sc.consistency < options.suspect_threshold;
        total += sc.consistency;
        ++with_evidence;
        if (sc.suspect) ++report.num_suspects;
      }
    }
    report.sources.push_back(sc);
  }
  report.domain_consistency =
      with_evidence > 0 ? total / static_cast<double>(with_evidence) : 0.0;
  return report;
}

}  // namespace paygo
