#ifndef PAYGO_FEEDBACK_FEEDBACK_H_
#define PAYGO_FEEDBACK_FEEDBACK_H_

/// \file feedback.h
/// \brief User feedback for refining the system (Chapter 7 future work).
///
/// The thesis's conclusion sketches two feedback channels:
///  * explicit — "the user directly assesses the correctness of
///    clustering (e.g., by informing the system that a schema should be
///    assigned to another cluster rather than the one determined)";
///  * implicit — "the system automatically infers the correctness of
///    clustering by monitoring user interaction (e.g., clicking on search
///    results)".
///
/// FeedbackStore accumulates both kinds. Explicit feedback compiles into
/// must-link / cannot-link constraints consumed by the constrained HAC
/// (HacOptions::must_link / cannot_link); implicit click feedback adjusts
/// the classifier's domain priors via a smoothed click-through rate.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "classify/naive_bayes.h"
#include "cluster/hac.h"
#include "cluster/linkage.h"
#include "cluster/probabilistic_assignment.h"
#include "util/status.h"

namespace paygo {

/// \brief Accumulates user feedback between refinement rounds.
class FeedbackStore {
 public:
  /// Explicit: the two schemas describe the same domain.
  Status RecordMustLink(std::uint32_t schema_a, std::uint32_t schema_b);
  /// Explicit: the two schemas must never share a domain.
  Status RecordCannotLink(std::uint32_t schema_a, std::uint32_t schema_b);
  /// Explicit correction, the thesis's example: \p schema was clustered
  /// with \p wrong_exemplar but belongs with \p right_exemplar. Compiles
  /// to one cannot-link plus one must-link.
  Status RecordCorrection(std::uint32_t schema, std::uint32_t wrong_exemplar,
                          std::uint32_t right_exemplar);

  /// Implicit: the user saw domain \p domain in a result list.
  void RecordImpression(std::uint32_t domain);
  /// Implicit: the user clicked through to domain \p domain.
  void RecordClick(std::uint32_t domain);

  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& must_link()
      const {
    return must_link_;
  }
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& cannot_link()
      const {
    return cannot_link_;
  }
  std::size_t clicks(std::uint32_t domain) const;
  std::size_t impressions(std::uint32_t domain) const;
  bool has_explicit_feedback() const {
    return !must_link_.empty() || !cannot_link_.empty();
  }
  bool has_implicit_feedback() const { return !impressions_.empty(); }

 private:
  std::vector<std::pair<std::uint32_t, std::uint32_t>> must_link_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cannot_link_;
  std::map<std::uint32_t, std::size_t> clicks_;
  std::map<std::uint32_t, std::size_t> impressions_;
};

/// \brief Re-runs Algorithms 2+3 with the store's explicit constraints —
/// the refinement step of the pay-as-you-go loop.
Result<DomainModel> ReclusterWithFeedback(
    const std::vector<DynamicBitset>& features, const SimilarityMatrix& sims,
    HacOptions hac_options, const AssignmentOptions& assignment_options,
    const FeedbackStore& store);

/// \brief Options of the implicit-feedback prior adjustment.
struct ClickAdjustOptions {
  /// Laplace smoothing of the click-through rate: (clicks + alpha) /
  /// (impressions + 2 * alpha). Domains never shown keep CTR 0.5
  /// (no evidence either way).
  double alpha = 1.0;
  /// Blend exponent: prior' = prior * ctr^strength. 0 disables.
  double strength = 1.0;
};

/// \brief Returns a classifier whose priors are reweighted by observed
/// click-through rates. Conditionals are untouched — only the relevance
/// prior learns from interaction.
NaiveBayesClassifier AdjustClassifierWithClicks(
    const NaiveBayesClassifier& classifier, const FeedbackStore& store,
    const ClickAdjustOptions& options = {});

}  // namespace paygo

#endif  // PAYGO_FEEDBACK_FEEDBACK_H_
