#include "feedback/feedback.h"

#include <algorithm>
#include <cmath>

namespace paygo {
namespace {

Status ValidatePair(std::uint32_t a, std::uint32_t b) {
  if (a == b) {
    return Status::InvalidArgument(
        "feedback pair must involve two distinct schemas");
  }
  return Status::OK();
}

}  // namespace

Status FeedbackStore::RecordMustLink(std::uint32_t schema_a,
                                     std::uint32_t schema_b) {
  PAYGO_RETURN_NOT_OK(ValidatePair(schema_a, schema_b));
  must_link_.emplace_back(schema_a, schema_b);
  return Status::OK();
}

Status FeedbackStore::RecordCannotLink(std::uint32_t schema_a,
                                       std::uint32_t schema_b) {
  PAYGO_RETURN_NOT_OK(ValidatePair(schema_a, schema_b));
  cannot_link_.emplace_back(schema_a, schema_b);
  return Status::OK();
}

Status FeedbackStore::RecordCorrection(std::uint32_t schema,
                                       std::uint32_t wrong_exemplar,
                                       std::uint32_t right_exemplar) {
  if (wrong_exemplar == right_exemplar) {
    return Status::InvalidArgument(
        "correction exemplars must name different domains' schemas");
  }
  PAYGO_RETURN_NOT_OK(RecordCannotLink(schema, wrong_exemplar));
  PAYGO_RETURN_NOT_OK(RecordMustLink(schema, right_exemplar));
  return Status::OK();
}

void FeedbackStore::RecordImpression(std::uint32_t domain) {
  ++impressions_[domain];
}

void FeedbackStore::RecordClick(std::uint32_t domain) { ++clicks_[domain]; }

std::size_t FeedbackStore::clicks(std::uint32_t domain) const {
  const auto it = clicks_.find(domain);
  return it == clicks_.end() ? 0 : it->second;
}

std::size_t FeedbackStore::impressions(std::uint32_t domain) const {
  const auto it = impressions_.find(domain);
  return it == impressions_.end() ? 0 : it->second;
}

Result<DomainModel> ReclusterWithFeedback(
    const std::vector<DynamicBitset>& features, const SimilarityMatrix& sims,
    HacOptions hac_options, const AssignmentOptions& assignment_options,
    const FeedbackStore& store) {
  hac_options.must_link = store.must_link();
  hac_options.cannot_link = store.cannot_link();
  PAYGO_ASSIGN_OR_RETURN(HacResult clustering,
                         Hac::Run(features, sims, hac_options));
  PAYGO_ASSIGN_OR_RETURN(
      DomainModel model,
      AssignProbabilities(sims, clustering, assignment_options));

  // Explicit feedback overrides the probabilistic assignment for the
  // schemas it names: the user's word is ground truth, so corrected
  // schemas sit in their (constraint-satisfying) cluster with
  // probability 1.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> sd(
      model.num_schemas());
  for (std::uint32_t i = 0; i < model.num_schemas(); ++i) {
    sd[i] = model.DomainsOf(i);
  }
  auto pin = [&](std::uint32_t schema) {
    const std::uint32_t home = clustering.ClusterOf(schema);
    sd[schema] = {{home, 1.0}};
  };
  for (const auto& [a, b] : store.must_link()) {
    pin(a);
    pin(b);
  }
  for (const auto& [a, b] : store.cannot_link()) {
    pin(a);
    pin(b);
  }
  return DomainModel::Build(clustering.clusters, std::move(sd));
}

NaiveBayesClassifier AdjustClassifierWithClicks(
    const NaiveBayesClassifier& classifier, const FeedbackStore& store,
    const ClickAdjustOptions& options) {
  // Click feedback only reweights priors, so the WithPriors fast path
  // applies: conditionals and the O(#domains * dim) log-odds tables are
  // reused verbatim; only the prior-dependent base scores are refreshed.
  std::vector<double> priors;
  priors.reserve(classifier.num_domains());
  for (std::uint32_t r = 0; r < classifier.num_domains(); ++r) {
    const double c = static_cast<double>(store.clicks(r));
    const double imp = static_cast<double>(store.impressions(r));
    const double ctr =
        (c + options.alpha) / (imp + 2.0 * options.alpha);
    priors.push_back(classifier.Prior(r) * std::pow(ctr, options.strength));
  }
  return classifier.WithPriors(priors);
}

}  // namespace paygo
