#ifndef PAYGO_CLUSTER_INCREMENTAL_H_
#define PAYGO_CLUSTER_INCREMENTAL_H_

/// \file incremental.h
/// \brief Incremental schema arrival — the pay-as-you-go loop.
///
/// A pay-as-you-go system "starts providing services without having to
/// wait until full and precise integration takes place" (Section 1.1) and
/// is refined as it gets used. New data sources keep appearing; re-running
/// Algorithms 1-3 from scratch on every arrival is wasteful. The
/// IncrementalClusterer folds a new schema into an existing domain model:
///
///  * the schema is featurized against the frozen lexicon (terms never
///    seen before cannot contribute — their fraction is tracked as drift);
///  * its similarity to every existing cluster is computed exactly as in
///    Algorithm 3 (average s_sim to the cluster's members);
///  * it joins every cluster passing the tau/theta tests with normalized
///    probabilities, or opens a fresh singleton domain.
///
/// When accumulated drift is high the clusterer recommends a full rebuild
/// — the "refine later" half of the pay-as-you-go contract.

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/hac.h"
#include "cluster/linkage.h"
#include "cluster/probabilistic_assignment.h"
#include "schema/feature_vector.h"
#include "schema/schema.h"
#include "text/tokenizer.h"
#include "util/bitset.h"
#include "util/status.h"

namespace paygo {

/// \brief Options of incremental arrival.
struct IncrementalOptions {
  /// Same thresholds as Algorithm 3.
  double tau_c_sim = 0.25;
  double theta = 0.02;
  /// Recommend a full rebuild when the average fraction of unseen terms
  /// across added schemas exceeds this.
  double rebuild_drift_threshold = 0.3;
};

/// \brief Outcome of adding one schema.
struct IncrementalAddResult {
  /// Index the schema received (continues the corpus numbering).
  std::uint32_t schema_id = 0;
  /// (domain, probability) memberships, as Algorithm 3 would assign.
  std::vector<std::pair<std::uint32_t, double>> memberships;
  /// True when no existing cluster was similar enough and a new singleton
  /// domain was created.
  bool created_new_domain = false;
  /// Fraction of the schema's terms absent from the frozen lexicon.
  double unseen_term_fraction = 0.0;
};

/// \brief Folds newly arriving schemas into an existing clustering.
class IncrementalClusterer {
 public:
  /// Takes over a built model. \p vectorizer and \p tokenizer must outlive
  /// the clusterer; \p features are the existing schemas' vectors (copied).
  IncrementalClusterer(const Tokenizer& tokenizer,
                       const FeatureVectorizer& vectorizer,
                       std::vector<DynamicBitset> features,
                       const DomainModel& model,
                       IncrementalOptions options = {});

  /// Adds one schema; returns its assignment.
  Result<IncrementalAddResult> AddSchema(const Schema& schema);

  /// The current domain model (rebuilt lazily after additions).
  const DomainModel& model() const;

  /// Feature vectors including added schemas (corpus order).
  const std::vector<DynamicBitset>& features() const { return features_; }

  /// Moves the feature vectors out (corpus order), leaving the clusterer
  /// drained — the delta write path's way to adopt them without an
  /// O(#schemas * dim) copy. Call last.
  std::vector<DynamicBitset> TakeFeatures() { return std::move(features_); }

  /// Number of schemas added since construction.
  std::size_t num_added() const { return num_added_; }

  /// Average unseen-term fraction over added schemas (0 when none).
  double AverageDrift() const;

  /// True when AverageDrift() exceeds the rebuild threshold.
  bool RebuildRecommended() const {
    return num_added_ > 0 &&
           AverageDrift() > options_.rebuild_drift_threshold;
  }

 private:
  const Tokenizer& tokenizer_;
  const FeatureVectorizer& vectorizer_;
  IncrementalOptions options_;
  std::vector<DynamicBitset> features_;
  // Mutable clustering state.
  std::vector<std::vector<std::uint32_t>> clusters_;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> schema_domains_;
  mutable DomainModel cached_model_;
  mutable bool model_dirty_ = true;
  std::size_t num_added_ = 0;
  double drift_sum_ = 0.0;
};

}  // namespace paygo

#endif  // PAYGO_CLUSTER_INCREMENTAL_H_
