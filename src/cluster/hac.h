#ifndef PAYGO_CLUSTER_HAC_H_
#define PAYGO_CLUSTER_HAC_H_

/// \file hac.h
/// \brief Algorithm 2: agglomerative hierarchical clustering of schemas.
///
/// Starts from singleton clusters and repeatedly merges the most similar
/// pair until the best pair's similarity drops below tau_c_sim. The fast
/// engine keeps cluster similarities memoized (the thesis's O(|U|) update
/// per merge) and finds the best pair with a lazy-deletion max-heap, giving
/// O(n^2 log n) overall. A naive O(n^3) engine that recomputes linkage from
/// the raw schema-pair similarities each iteration is kept as a correctness
/// reference for tests.

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/linkage.h"
#include "util/bitset.h"
#include "util/status.h"

namespace paygo {

class NeighborGraph;

/// \brief Options of Algorithm 2.
struct HacOptions {
  /// Cluster-similarity measure (thesis default: Avg. Jaccard).
  LinkageKind linkage = LinkageKind::kAverage;
  /// Stop merging when the best pair's similarity is below this
  /// (thesis recommends 0.2-0.3). Ignored when max_clusters is set.
  double tau_c_sim = 0.25;
  /// Alternative termination (Section 2.1.1): merge until exactly this
  /// many clusters remain, regardless of similarity. 0 disables it. This
  /// is the stopping rule pre-specified-k baselines like [17] use.
  std::size_t max_clusters = 0;
  /// Use the O(n^3) reference engine (tests only).
  bool use_naive_engine = false;
  /// Use the sparse engine: candidate pairs come from an inverted feature
  /// index (schemas sharing no feature have Jaccard 0 and can never merge
  /// at tau > 0), and cluster similarities live in sparse per-cluster rows
  /// instead of the dense n x n matrix. Memory and initial-similarity work
  /// scale with the number of feature-sharing pairs rather than n^2 — the
  /// web-scale regime of the thesis's motivation. Candidate generation,
  /// row seeding, and per-merge row-combine re-evaluation all run on the
  /// shared ThreadPool (see num_threads), and the candidate pairs come
  /// from the NeighborGraph subsystem (exact mode), so the engine is
  /// bit-identical to its serial run at any thread count and
  /// merge-for-merge bitwise-identical to the dense fast engine. Supports
  /// the Lance-Williams-updatable linkages (Avg/Min/Max); Total Jaccard
  /// and max_clusters count mode (which needs all pairs) are rejected.
  bool use_sparse_engine = false;
  /// Worker threads for the O(n^2) phases of the fast engine (the initial
  /// pairwise candidate scan and per-merge candidate re-evaluation) and
  /// for the dense similarity-matrix build of the convenience overload.
  /// 0 = hardware_concurrency, 1 = the exact legacy serial path (default).
  /// The result is bit-identical to the serial path at every thread count
  /// and for every linkage: chunked work is combined in ascending chunk
  /// order over an ordered contiguous partition (reproducing the serial
  /// heap-push sequence exactly), and merge candidates tie-break on
  /// (similarity, slot_a, slot_b) — never on arrival order.
  std::size_t num_threads = 1;
  /// Instance-level constraints from user feedback (Chapter 7 future
  /// work): schema pairs that must end up in the same cluster — merged
  /// before agglomeration starts — and pairs that may never share a
  /// cluster — the best merge violating one is skipped. A pair appearing
  /// in both lists is an error.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> must_link;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cannot_link;
};

/// \brief One merge step of the dendrogram.
struct HacMerge {
  /// Indices (into the evolving cluster list; see HacResult::clusters for
  /// the final flat clusters) of the merged pair's member slots.
  std::uint32_t slot_a = 0;
  std::uint32_t slot_b = 0;
  /// Similarity at which the merge happened.
  double similarity = 0.0;
};

/// \brief Output of Algorithm 2: the final flat clustering plus the merge
/// history.
struct HacResult {
  /// C = {C_1..C_|C|}: each cluster is a sorted list of schema indices.
  /// Clusters partition the input schemas. Sorted by first member.
  std::vector<std::vector<std::uint32_t>> clusters;
  /// Merge history, in merge order (for inspection and tests).
  std::vector<HacMerge> merges;

  /// Cluster index containing schema \p schema_id.
  std::uint32_t ClusterOf(std::uint32_t schema_id) const;
  /// Number of singleton clusters (= unclustered schemas, Section 6.1.2).
  std::size_t NumSingletons() const;
};

/// \brief Runs Algorithm 2.
class Hac {
 public:
  /// Clusters schemas given their feature vectors. \p features and the
  /// precomputed \p sims must describe the same schemas. \p features is
  /// only consulted by the Total-Jaccard linkage (cluster AND/OR
  /// summaries); the other linkages work from \p sims alone.
  static Result<HacResult> Run(const std::vector<DynamicBitset>& features,
                               const SimilarityMatrix& sims,
                               const HacOptions& options);

  /// Convenience overload that computes the similarity matrix itself.
  static Result<HacResult> Run(const std::vector<DynamicBitset>& features,
                               const HacOptions& options);

  /// Sparse engine over a prebuilt NeighborGraph (use_sparse_engine is
  /// implied; use_naive_engine is ignored). With an exact all-nonzero
  /// graph this is merge-for-merge bitwise-identical to the dense fast
  /// engine; with an LSH graph it is an approximation whose candidate
  /// recall the graph's banding parameters bound.
  static Result<HacResult> RunOnGraph(const NeighborGraph& graph,
                               const HacOptions& options);
};

}  // namespace paygo

#endif  // PAYGO_CLUSTER_HAC_H_
