#include "cluster/probabilistic_assignment.h"

#include <algorithm>
#include <cassert>

namespace paygo {

double SchemaClusterSimilarity(const SimilarityMatrix& sims,
                               std::uint32_t schema_id,
                               const std::vector<std::uint32_t>& cluster) {
  assert(!cluster.empty());
  double total = 0.0;
  for (std::uint32_t j : cluster) total += sims.At(schema_id, j);
  return total / static_cast<double>(cluster.size());
}

DomainModel DomainModel::Build(
    std::vector<std::vector<std::uint32_t>> clusters,
    std::vector<std::vector<std::pair<std::uint32_t, double>>>
        schema_domains) {
  DomainModel model;
  model.clusters_ = std::move(clusters);
  model.schema_domains_ = std::move(schema_domains);
  model.domain_schemas_.assign(model.clusters_.size(), {});
  for (std::uint32_t i = 0; i < model.schema_domains_.size(); ++i) {
    for (const auto& [domain, prob] : model.schema_domains_[i]) {
      model.domain_schemas_[domain].emplace_back(i, prob);
    }
  }
  for (auto& ds : model.domain_schemas_) {
    std::sort(ds.begin(), ds.end());
  }
  return model;
}

double DomainModel::Membership(std::uint32_t schema_id,
                               std::uint32_t domain_id) const {
  for (const auto& [domain, prob] : schema_domains_[schema_id]) {
    if (domain == domain_id) return prob;
  }
  return 0.0;
}

std::vector<std::uint32_t> DomainModel::UncertainSchemas(
    std::uint32_t domain_id) const {
  std::vector<std::uint32_t> out;
  for (const auto& [schema, prob] : domain_schemas_[domain_id]) {
    if (prob > 0.0 && prob < 1.0) out.push_back(schema);
  }
  return out;
}

std::vector<std::uint32_t> DomainModel::CertainSchemas(
    std::uint32_t domain_id) const {
  std::vector<std::uint32_t> out;
  for (const auto& [schema, prob] : domain_schemas_[domain_id]) {
    if (prob >= 1.0) out.push_back(schema);
  }
  return out;
}

double DomainModel::TotalMembership(std::uint32_t schema_id) const {
  double total = 0.0;
  for (const auto& [domain, prob] : schema_domains_[schema_id]) {
    total += prob;
  }
  return total;
}

Result<DomainModel> AssignProbabilities(const SimilarityMatrix& sims,
                                        const HacResult& clustering,
                                        const AssignmentOptions& options) {
  if (options.theta < 0.0 || options.theta > 1.0) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  if (options.tau_c_sim < 0.0 || options.tau_c_sim > 1.0) {
    return Status::InvalidArgument("tau_c_sim must be in [0, 1]");
  }
  const auto& clusters = clustering.clusters;
  const std::size_t num_schemas = sims.size();

  std::vector<std::vector<std::pair<std::uint32_t, double>>> schema_domains(
      num_schemas);

  std::vector<double> sc(clusters.size());
  for (std::uint32_t i = 0; i < num_schemas; ++i) {
    double max_sim = 0.0;
    for (std::uint32_t r = 0; r < clusters.size(); ++r) {
      sc[r] = SchemaClusterSimilarity(sims, i, clusters[r]);
      max_sim = std::max(max_sim, sc[r]);
    }
    // D(S_i): domains passing both the absolute and the relative test.
    std::vector<std::uint32_t> qualifying;
    double norm = 0.0;
    for (std::uint32_t r = 0; r < clusters.size(); ++r) {
      if (sc[r] < options.tau_c_sim) continue;
      if (max_sim > 0.0 && sc[r] / max_sim < 1.0 - options.theta) continue;
      qualifying.push_back(r);
      norm += sc[r];
    }
    if (qualifying.empty()) {
      if (options.strict_thesis_semantics) continue;  // dropped schema
      // Fallback: full membership in the home cluster.
      schema_domains[i].emplace_back(clustering.ClusterOf(i), 1.0);
      continue;
    }
    for (std::uint32_t r : qualifying) {
      schema_domains[i].emplace_back(r, sc[r] / norm);
    }
  }
  return DomainModel::Build(clusters, std::move(schema_domains));
}

}  // namespace paygo
