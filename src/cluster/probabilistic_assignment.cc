#include "cluster/probabilistic_assignment.h"

#include <algorithm>
#include <cassert>

#include "util/thread_pool.h"

namespace paygo {

double SchemaClusterSimilarity(const SimilarityMatrix& sims,
                               std::uint32_t schema_id,
                               const std::vector<std::uint32_t>& cluster) {
  assert(!cluster.empty());
  double total = 0.0;
  for (std::uint32_t j : cluster) total += sims.At(schema_id, j);
  return total / static_cast<double>(cluster.size());
}

DomainModel DomainModel::Build(
    std::vector<std::vector<std::uint32_t>> clusters,
    std::vector<std::vector<std::pair<std::uint32_t, double>>>
        schema_domains) {
  DomainModel model;
  model.clusters_ = std::move(clusters);
  model.schema_domains_ = std::move(schema_domains);
  model.domain_schemas_.assign(model.clusters_.size(), {});
  for (std::uint32_t i = 0; i < model.schema_domains_.size(); ++i) {
    for (const auto& [domain, prob] : model.schema_domains_[i]) {
      model.domain_schemas_[domain].emplace_back(i, prob);
    }
  }
  for (auto& ds : model.domain_schemas_) {
    std::sort(ds.begin(), ds.end());
  }
  return model;
}

double DomainModel::Membership(std::uint32_t schema_id,
                               std::uint32_t domain_id) const {
  for (const auto& [domain, prob] : schema_domains_[schema_id]) {
    if (domain == domain_id) return prob;
  }
  return 0.0;
}

std::vector<std::uint32_t> DomainModel::UncertainSchemas(
    std::uint32_t domain_id) const {
  std::vector<std::uint32_t> out;
  for (const auto& [schema, prob] : domain_schemas_[domain_id]) {
    if (prob > 0.0 && prob < 1.0) out.push_back(schema);
  }
  return out;
}

std::vector<std::uint32_t> DomainModel::CertainSchemas(
    std::uint32_t domain_id) const {
  std::vector<std::uint32_t> out;
  for (const auto& [schema, prob] : domain_schemas_[domain_id]) {
    if (prob >= 1.0) out.push_back(schema);
  }
  return out;
}

double DomainModel::TotalMembership(std::uint32_t schema_id) const {
  double total = 0.0;
  for (const auto& [domain, prob] : schema_domains_[schema_id]) {
    total += prob;
  }
  return total;
}

Result<DomainModel> AssignProbabilities(const SimilarityMatrix& sims,
                                        const HacResult& clustering,
                                        const AssignmentOptions& options) {
  if (options.theta < 0.0 || options.theta > 1.0) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  if (options.tau_c_sim < 0.0 || options.tau_c_sim > 1.0) {
    return Status::InvalidArgument("tau_c_sim must be in [0, 1]");
  }
  const auto& clusters = clustering.clusters;
  const std::size_t num_schemas = sims.size();

  std::vector<std::vector<std::pair<std::uint32_t, double>>> schema_domains(
      num_schemas);

  std::vector<double> sc(clusters.size());
  for (std::uint32_t i = 0; i < num_schemas; ++i) {
    double max_sim = 0.0;
    for (std::uint32_t r = 0; r < clusters.size(); ++r) {
      sc[r] = SchemaClusterSimilarity(sims, i, clusters[r]);
      max_sim = std::max(max_sim, sc[r]);
    }
    // D(S_i): domains passing both the absolute and the relative test.
    std::vector<std::uint32_t> qualifying;
    double norm = 0.0;
    for (std::uint32_t r = 0; r < clusters.size(); ++r) {
      if (sc[r] < options.tau_c_sim) continue;
      if (max_sim > 0.0 && sc[r] / max_sim < 1.0 - options.theta) continue;
      qualifying.push_back(r);
      norm += sc[r];
    }
    if (qualifying.empty()) {
      if (options.strict_thesis_semantics) continue;  // dropped schema
      // Fallback: full membership in the home cluster.
      schema_domains[i].emplace_back(clustering.ClusterOf(i), 1.0);
      continue;
    }
    for (std::uint32_t r : qualifying) {
      schema_domains[i].emplace_back(r, sc[r] / norm);
    }
  }
  return DomainModel::Build(clusters, std::move(schema_domains));
}

Result<DomainModel> AssignProbabilities(const NeighborGraph& graph,
                                        const HacResult& clustering,
                                        const AssignmentOptions& options,
                                        std::size_t num_threads) {
  if (options.theta < 0.0 || options.theta > 1.0) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  if (options.tau_c_sim <= 0.0 || options.tau_c_sim > 1.0) {
    return Status::InvalidArgument(
        "the sparse assignment path requires tau_c_sim in (0, 1] "
        "(zero-similarity memberships are not materialized)");
  }
  const auto& clusters = clustering.clusters;
  const std::size_t n = graph.num_nodes();
  std::vector<std::uint32_t> cluster_of(n, 0);
  for (std::uint32_t r = 0; r < clusters.size(); ++r) {
    for (std::uint32_t j : clusters[r]) cluster_of[j] = r;
  }

  std::vector<std::vector<std::pair<std::uint32_t, double>>> schema_domains(
      n);
  ThreadPool pool(ThreadPool::ResolveThreadCount(num_threads));
  pool.ParallelFor(0, n, 64, [&](const ThreadPool::Chunk& chunk) {
    // Per-chunk scratch: a dense scatter of schema i's row (cleared via
    // the row entries after each schema) plus the candidate-domain list.
    std::vector<double> simval(n, 0.0);
    std::vector<std::uint32_t> cands;
    std::vector<double> sc;
    for (std::size_t ii = chunk.begin; ii < chunk.end; ++ii) {
      const std::uint32_t i = static_cast<std::uint32_t>(ii);
      auto [begin, end] = graph.Row(i);
      cands.clear();
      for (const NeighborEdge* e = begin; e != end; ++e) {
        simval[e->id] = static_cast<double>(e->sim);
        cands.push_back(cluster_of[e->id]);
      }
      cands.push_back(cluster_of[i]);
      std::sort(cands.begin(), cands.end());
      cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

      // Every non-candidate cluster has s_c_sim exactly 0 (< tau), so the
      // max and the qualifying set computed over candidates alone match
      // the dense sweep bit for bit: member sums walk the same ascending
      // order, and skipping an absent (zero) entry leaves an IEEE sum of
      // nonnegative terms unchanged.
      double max_sim = 0.0;
      sc.resize(cands.size());
      for (std::size_t k = 0; k < cands.size(); ++k) {
        const auto& cluster = clusters[cands[k]];
        double total = 0.0;
        for (std::uint32_t j : cluster) {
          if (j == i) {
            if (graph.NonEmpty(i)) total += 1.0;
          } else if (simval[j] != 0.0) {
            total += simval[j];
          }
        }
        sc[k] = total / static_cast<double>(cluster.size());
        max_sim = std::max(max_sim, sc[k]);
      }
      for (const NeighborEdge* e = begin; e != end; ++e) simval[e->id] = 0.0;

      std::vector<std::uint32_t> qualifying;
      double norm = 0.0;
      for (std::size_t k = 0; k < cands.size(); ++k) {
        if (sc[k] < options.tau_c_sim) continue;
        if (max_sim > 0.0 && sc[k] / max_sim < 1.0 - options.theta) continue;
        qualifying.push_back(static_cast<std::uint32_t>(k));
        norm += sc[k];
      }
      if (qualifying.empty()) {
        if (options.strict_thesis_semantics) continue;  // dropped schema
        schema_domains[i].emplace_back(cluster_of[i], 1.0);
        continue;
      }
      for (std::uint32_t k : qualifying) {
        schema_domains[i].emplace_back(cands[k], sc[k] / norm);
      }
    }
  });
  return DomainModel::Build(clusters, std::move(schema_domains));
}

}  // namespace paygo
