#include "cluster/dendrogram.h"

#include <algorithm>

#include "util/string_util.h"

namespace paygo {

Result<Dendrogram> Dendrogram::Build(std::size_t num_schemas,
                                     const HacResult& result) {
  Dendrogram d;
  d.nodes_.reserve(2 * num_schemas);
  // Leaves first; slot i currently roots node i.
  std::vector<int> root_of_slot(num_schemas);
  for (std::size_t i = 0; i < num_schemas; ++i) {
    DendrogramNode leaf;
    leaf.schema_id = static_cast<int>(i);
    d.nodes_.push_back(leaf);
    root_of_slot[i] = static_cast<int>(i);
  }
  // Replay merges: HacMerge records the slots whose current roots joined.
  std::vector<int> parent(num_schemas, -1);
  for (const HacMerge& m : result.merges) {
    if (m.slot_a >= num_schemas || m.slot_b >= num_schemas) {
      return Status::InvalidArgument("merge references an unknown slot");
    }
    const int left = root_of_slot[m.slot_a];
    const int right = root_of_slot[m.slot_b];
    if (left == right) {
      return Status::InvalidArgument("merge joins a slot with itself");
    }
    DendrogramNode node;
    node.left = left;
    node.right = right;
    node.similarity = m.similarity;
    node.size = d.nodes_[static_cast<std::size_t>(left)].size +
                d.nodes_[static_cast<std::size_t>(right)].size;
    const int id = static_cast<int>(d.nodes_.size());
    d.nodes_.push_back(node);
    parent.push_back(-1);
    parent[static_cast<std::size_t>(left)] = id;
    parent[static_cast<std::size_t>(right)] = id;
    root_of_slot[m.slot_a] = id;
    root_of_slot[m.slot_b] = id;  // slot b is dead, but keep it consistent
  }
  // Roots: exactly the nodes that never became a child.
  std::vector<int> roots;
  for (std::size_t i = 0; i < d.nodes_.size(); ++i) {
    if (parent[i] < 0) roots.push_back(static_cast<int>(i));
  }
  std::vector<std::pair<std::uint32_t, int>> ordered;
  for (int r : roots) {
    std::vector<std::uint32_t> leaves;
    d.CollectLeaves(r, &leaves);
    ordered.emplace_back(*std::min_element(leaves.begin(), leaves.end()), r);
  }
  std::sort(ordered.begin(), ordered.end());
  for (const auto& [first_leaf, r] : ordered) d.roots_.push_back(r);
  return d;
}

void Dendrogram::CollectLeaves(int node,
                               std::vector<std::uint32_t>* out) const {
  const DendrogramNode& n = nodes_[static_cast<std::size_t>(node)];
  if (n.schema_id >= 0) {
    out->push_back(static_cast<std::uint32_t>(n.schema_id));
    return;
  }
  CollectLeaves(n.left, out);
  CollectLeaves(n.right, out);
}

std::vector<std::vector<std::uint32_t>> Dendrogram::CutAt(double tau) const {
  std::vector<std::vector<std::uint32_t>> clusters;
  // DFS from each root; descend through merges below tau, emit subtrees
  // whose merges are all >= tau.
  std::vector<int> stack(roots_.rbegin(), roots_.rend());
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const DendrogramNode& n = nodes_[static_cast<std::size_t>(id)];
    if (n.schema_id >= 0 || n.similarity >= tau) {
      std::vector<std::uint32_t> leaves;
      CollectLeaves(id, &leaves);
      std::sort(leaves.begin(), leaves.end());
      clusters.push_back(std::move(leaves));
    } else {
      stack.push_back(n.right);
      stack.push_back(n.left);
    }
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return clusters;
}

namespace {

std::string LeafLabel(const SchemaCorpus* corpus, int schema_id) {
  if (corpus != nullptr &&
      static_cast<std::size_t>(schema_id) < corpus->size()) {
    // Newick-safe: replace structural characters.
    std::string label =
        corpus->schema(static_cast<std::size_t>(schema_id)).source_name;
    for (char& c : label) {
      if (c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
          c == ' ') {
        c = '_';
      }
    }
    return label;
  }
  return "s" + std::to_string(schema_id);
}

}  // namespace

void Dendrogram::AppendNewick(int node, const SchemaCorpus* corpus,
                              std::string* out) const {
  const DendrogramNode& n = nodes_[static_cast<std::size_t>(node)];
  if (n.schema_id >= 0) {
    out->append(LeafLabel(corpus, n.schema_id));
    return;
  }
  out->push_back('(');
  AppendNewick(n.left, corpus, out);
  out->push_back(',');
  AppendNewick(n.right, corpus, out);
  out->append("):");
  out->append(FormatDouble(n.similarity, 4));
}

std::string Dendrogram::ToNewick(const SchemaCorpus* corpus) const {
  std::string out;
  for (int root : roots_) {
    AppendNewick(root, corpus, &out);
    out.append(";\n");
  }
  return out;
}

void Dendrogram::AppendAscii(int node, const SchemaCorpus* corpus,
                             std::size_t depth, std::size_t max_depth,
                             std::string* out) const {
  const DendrogramNode& n = nodes_[static_cast<std::size_t>(node)];
  out->append(2 * depth, ' ');
  if (n.schema_id >= 0) {
    out->append(LeafLabel(corpus, n.schema_id));
    out->push_back('\n');
    return;
  }
  out->append("* sim=" + FormatDouble(n.similarity, 3) + " (" +
              std::to_string(n.size) + " schemas)\n");
  if (depth + 1 > max_depth) {
    out->append(2 * (depth + 1), ' ');
    out->append("...\n");
    return;
  }
  AppendAscii(n.left, corpus, depth + 1, max_depth, out);
  AppendAscii(n.right, corpus, depth + 1, max_depth, out);
}

std::string Dendrogram::ToAscii(const SchemaCorpus* corpus,
                                std::size_t max_depth) const {
  std::string out;
  for (int root : roots_) {
    AppendAscii(root, corpus, 0, max_depth, &out);
  }
  return out;
}

}  // namespace paygo
