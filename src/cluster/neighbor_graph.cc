#include "cluster/neighbor_graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "obs/stats.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace paygo {

namespace {

/// SplitMix64 finalizer: the avalanche mix both the per-hash seeds and the
/// per-feature MinHash values go through.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Flushes build telemetry to the global registry once per Build call.
void FlushStats(const NeighborGraphStats& s) {
  static Counter* generated =
      StatsRegistry::Global().GetCounter("paygo.hac.sparse.candidates_generated");
  static Counter* verified =
      StatsRegistry::Global().GetCounter("paygo.hac.sparse.candidates_verified");
  static Counter* pruned =
      StatsRegistry::Global().GetCounter("paygo.hac.sparse.candidates_pruned");
  static Counter* bands =
      StatsRegistry::Global().GetCounter("paygo.hac.sparse.bands_probed");
  static Counter* edges =
      StatsRegistry::Global().GetCounter("paygo.hac.sparse.graph_edges");
  static Counter* builds =
      StatsRegistry::Global().GetCounter("paygo.hac.sparse.graph_builds");
  generated->Add(s.candidates_generated);
  verified->Add(s.candidates_verified);
  pruned->Add(s.candidates_pruned);
  bands->Add(s.bands_probed);
  edges->Add(s.num_edges);
  builds->Increment();
}

Status ValidateInput(const std::vector<DynamicBitset>& features,
                     const NeighborGraphOptions& options) {
  if (options.edge_tau < 0.0 || options.edge_tau >= 1.0) {
    return Status::InvalidArgument("edge_tau must be in [0, 1)");
  }
  if (options.mode == NeighborGraphMode::kMinHashLsh) {
    if (options.num_hashes == 0) {
      return Status::InvalidArgument("num_hashes must be > 0 in LSH mode");
    }
    if (options.recall_tau <= 0.0 || options.recall_tau >= 1.0) {
      return Status::InvalidArgument("recall_tau must be in (0, 1)");
    }
    if (options.target_recall <= 0.0 || options.target_recall > 1.0) {
      return Status::InvalidArgument("target_recall must be in (0, 1]");
    }
  }
  if (!features.empty()) {
    const std::size_t dim = features.front().size();
    for (const auto& f : features) {
      if (f.size() != dim) {
        return Status::InvalidArgument(
            "all feature vectors must have the same dimensionality");
      }
    }
  }
  return Status::OK();
}

}  // namespace

double NeighborGraph::CollisionProbability(double sim, std::size_t bands,
                                           std::size_t rows) {
  const double per_band = std::pow(sim, static_cast<double>(rows));
  return 1.0 - std::pow(1.0 - per_band, static_cast<double>(bands));
}

void NeighborGraph::ChooseBanding(std::size_t num_hashes, double tau,
                                  double target_recall, std::size_t* bands,
                                  std::size_t* rows) {
  for (std::size_t r = num_hashes; r >= 1; --r) {
    const std::size_t b = num_hashes / r;
    if (CollisionProbability(tau, b, r) >= target_recall) {
      *bands = b;
      *rows = r;
      return;
    }
  }
  *bands = num_hashes;
  *rows = 1;
}

float NeighborGraph::Similarity(std::uint32_t a, std::uint32_t b) const {
  auto [begin, end] = Row(a);
  const NeighborEdge* it = std::lower_bound(
      begin, end, b,
      [](const NeighborEdge& e, std::uint32_t id) { return e.id < id; });
  if (it != end && it->id == b) return it->sim;
  return 0.0f;
}

NeighborGraph NeighborGraph::FromTriples(std::size_t n,
                                         const std::vector<Triple>& upper,
                                         std::vector<std::uint8_t> nonempty,
                                         NeighborGraphStats stats,
                                         std::size_t num_threads) {
  NeighborGraph g;
  g.nonempty_ = std::move(nonempty);
  g.offsets_.assign(n + 1, 0);
  for (const Triple& t : upper) {
    ++g.offsets_[t.a + 1];
    ++g.offsets_[t.b + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.edges_.resize(upper.size() * 2);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Triple& t : upper) {
    g.edges_[cursor[t.a]++] = NeighborEdge{t.b, t.sim};
    g.edges_[cursor[t.b]++] = NeighborEdge{t.a, t.sim};
  }
  // Each row was filled in triple order; normalize to id-ascending. Rows
  // are disjoint slots, so the parallel sort is trivially deterministic.
  ThreadPool pool(ThreadPool::ResolveThreadCount(num_threads));
  pool.ParallelFor(0, n, 64, [&](const ThreadPool::Chunk& chunk) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      std::sort(g.edges_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[i]),
                g.edges_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[i + 1]),
                [](const NeighborEdge& x, const NeighborEdge& y) {
                  return x.id < y.id;
                });
    }
  });
  stats.num_edges = upper.size();
  g.stats_ = stats;
  return g;
}

void NeighborGraph::PruneTopK(std::size_t top_k, std::size_t num_threads) {
  if (top_k == 0) return;
  const std::size_t n = num_nodes();
  // Mark the top-k entries of every row by (sim desc, id asc); an edge
  // survives when either direction is marked, which keeps symmetry.
  std::vector<std::uint8_t> keep(edges_.size(), 0);
  ThreadPool pool(ThreadPool::ResolveThreadCount(num_threads));
  pool.ParallelFor(0, n, 64, [&](const ThreadPool::Chunk& chunk) {
    std::vector<std::uint32_t> order;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      const std::size_t deg = Degree(static_cast<std::uint32_t>(i));
      const std::size_t base = offsets_[i];
      if (deg <= top_k) {
        for (std::size_t e = 0; e < deg; ++e) keep[base + e] = 1;
        continue;
      }
      order.resize(deg);
      for (std::size_t e = 0; e < deg; ++e)
        order[e] = static_cast<std::uint32_t>(e);
      std::partial_sort(order.begin(),
                        order.begin() + static_cast<std::ptrdiff_t>(top_k),
                        order.end(),
                        [&](std::uint32_t x, std::uint32_t y) {
                          const NeighborEdge& ex = edges_[base + x];
                          const NeighborEdge& ey = edges_[base + y];
                          if (ex.sim != ey.sim) return ex.sim > ey.sim;
                          return ex.id < ey.id;
                        });
      for (std::size_t e = 0; e < top_k; ++e) keep[base + order[e]] = 1;
    }
  });
  std::vector<Triple> upper;
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::size_t e = offsets_[a]; e < offsets_[a + 1]; ++e) {
      const NeighborEdge& edge = edges_[e];
      if (edge.id <= a) continue;
      bool kept = keep[e] != 0;
      if (!kept) {
        // Check the mirrored direction in the neighbor's row.
        auto [bb, be] = Row(edge.id);
        const NeighborEdge* it = std::lower_bound(
            bb, be, a,
            [](const NeighborEdge& x, std::uint32_t id) { return x.id < id; });
        kept = keep[static_cast<std::size_t>(it - edges_.data())] != 0;
      }
      if (kept) upper.push_back(Triple{a, edge.id, edge.sim});
    }
  }
  NeighborGraph pruned = FromTriples(n, upper, std::move(nonempty_),
                                     stats_, num_threads);
  pruned.mode_ = mode_;
  pruned.edge_tau_ = edge_tau_;
  *this = std::move(pruned);
}

Result<NeighborGraph> NeighborGraph::Build(
    const std::vector<DynamicBitset>& features,
    const NeighborGraphOptions& options) {
  PAYGO_TRACE_SPAN("hac.neighbor_graph");
  PAYGO_RETURN_NOT_OK(ValidateInput(features, options));
  const std::size_t n = features.size();
  const std::size_t width = ThreadPool::ResolveThreadCount(options.num_threads);
  ThreadPool pool(width);

  std::vector<std::uint8_t> nonempty(n, 0);
  std::vector<std::uint32_t> popcount(n, 0);
  pool.ParallelFor(0, n, 256, [&](const ThreadPool::Chunk& chunk) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      popcount[i] = static_cast<std::uint32_t>(features[i].Count());
      nonempty[i] = popcount[i] > 0 ? 1 : 0;
    }
  });

  NeighborGraphStats stats;
  std::vector<Triple> upper;

  if (options.mode == NeighborGraphMode::kExact) {
    // ---- Exact mode: inverted-index enumeration + heavy-set sweep. ----
    const std::size_t dim = n == 0 ? 0 : features.front().size();
    // Posting lists, CSR layout, schema ids ascending by construction.
    std::vector<std::uint32_t> posting_len(dim, 0);
    {
      std::vector<std::size_t> bits;
      for (std::size_t i = 0; i < n; ++i) {
        features[i].AppendSetBits(&bits);
        for (std::size_t b : bits) ++posting_len[b];
        bits.clear();
      }
    }
    const std::size_t hot_limit =
        options.hot_posting_limit > 0
            ? options.hot_posting_limit
            : std::max<std::size_t>(64, n / 8);
    std::vector<std::uint64_t> post_off(dim + 1, 0);
    for (std::size_t f = 0; f < dim; ++f) {
      const bool hot = posting_len[f] > hot_limit;
      post_off[f + 1] = post_off[f] + (hot ? 0 : posting_len[f]);
    }
    std::vector<std::uint32_t> post_ids(post_off.empty() ? 0 : post_off[dim]);
    std::vector<std::uint8_t> heavy(n, 0);
    std::vector<std::uint32_t> heavy_ids;
    {
      std::vector<std::uint64_t> cursor(post_off.begin(), post_off.end() - 1);
      std::vector<std::size_t> bits;
      for (std::size_t i = 0; i < n; ++i) {
        features[i].AppendSetBits(&bits);
        for (std::size_t b : bits) {
          if (posting_len[b] > hot_limit) {
            heavy[i] = 1;
          } else {
            post_ids[cursor[b]++] = static_cast<std::uint32_t>(i);
          }
        }
        bits.clear();
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        if (heavy[i]) heavy_ids.push_back(i);
      }
    }

    // Per-chunk candidate generation with flat scratch accumulators. Each
    // chunk owns its rows outright, so the only cross-chunk artifact is
    // the triple buffer, merged in ascending chunk order below — the
    // serial iteration order exactly, at any thread count.
    struct ChunkOut {
      std::vector<Triple> triples;
      std::uint64_t generated = 0;
      std::uint64_t verified = 0;
      std::uint64_t pruned = 0;
    };
    const std::size_t num_chunks = pool.NumChunks(n, 8);
    std::vector<ChunkOut> outs(num_chunks);
    pool.ParallelFor(0, n, 8, [&](const ThreadPool::Chunk& chunk) {
      ChunkOut& out = outs[chunk.index];
      std::vector<std::uint32_t> counts(n, 0);
      std::vector<std::uint32_t> touched;
      std::vector<std::size_t> bits;
      for (std::size_t ai = chunk.begin; ai < chunk.end; ++ai) {
        const std::uint32_t a = static_cast<std::uint32_t>(ai);
        touched.clear();
        bits.clear();
        features[a].AppendSetBits(&bits);
        for (std::size_t f : bits) {
          if (posting_len[f] > hot_limit) continue;
          const std::uint32_t* pb = post_ids.data() + post_off[f];
          const std::uint32_t* pe = post_ids.data() + post_off[f + 1];
          // Postings are ascending; skip to entries past `a`.
          const std::uint32_t* it = std::upper_bound(pb, pe, a);
          for (; it != pe; ++it) {
            const std::uint32_t b = *it;
            if (counts[b]++ == 0) touched.push_back(b);
          }
        }
        // Pairs whose shared features are all hot never appear in a
        // posting list; both endpoints are heavy, so the heavy sweep
        // restores them. A heavy row's counts are partial (hot features
        // skipped), so *all* of its candidates are re-verified with the
        // exact kernel instead of the count formula.
        if (heavy[a]) {
          for (std::uint32_t b : heavy_ids) {
            if (b <= a) continue;
            if (counts[b]++ == 0) touched.push_back(b);
          }
        }
        out.generated += touched.size();
        for (std::uint32_t b : touched) {
          double sim;
          if (heavy[a]) {
            sim = DynamicBitset::Jaccard(features[a], features[b]);
          } else {
            const std::uint64_t inter = counts[b];
            const std::uint64_t uni =
                static_cast<std::uint64_t>(popcount[a]) + popcount[b] - inter;
            sim = uni == 0
                      ? 0.0
                      : static_cast<double>(inter) / static_cast<double>(uni);
          }
          counts[b] = 0;
          ++out.verified;
          if (sim <= 0.0) continue;
          const float fsim = static_cast<float>(sim);
          if (options.edge_tau > 0.0 &&
              static_cast<double>(fsim) < options.edge_tau) {
            ++out.pruned;
            continue;
          }
          out.triples.push_back(Triple{a, b, fsim});
        }
      }
    });
    for (ChunkOut& out : outs) {
      upper.insert(upper.end(), out.triples.begin(), out.triples.end());
      stats.candidates_generated += out.generated;
      stats.candidates_verified += out.verified;
      stats.candidates_pruned += out.pruned;
    }
  } else {
    // ---- LSH mode: MinHash signatures, banding, exact verification. ----
    const std::size_t k = options.num_hashes;
    std::size_t bands = 0, rows = 0;
    ChooseBanding(k, options.recall_tau, options.target_recall, &bands, &rows);
    stats.lsh_bands = bands;
    stats.lsh_rows_per_band = rows;

    std::vector<std::uint64_t> hash_seed(k);
    for (std::size_t s = 0; s < k; ++s) {
      hash_seed[s] = Mix64(options.seed + 0x632be59bd9b4e019ull * (s + 1));
    }
    std::vector<std::uint64_t> sig(n * k, ~std::uint64_t{0});
    pool.ParallelFor(0, n, 32, [&](const ThreadPool::Chunk& chunk) {
      std::vector<std::size_t> bits;
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        bits.clear();
        features[i].AppendSetBits(&bits);
        std::uint64_t* row = sig.data() + i * k;
        for (std::size_t b : bits) {
          const std::uint64_t fb = static_cast<std::uint64_t>(b);
          for (std::size_t s = 0; s < k; ++s) {
            const std::uint64_t h = Mix64(fb * 0xff51afd7ed558ccdull ^
                                          hash_seed[s]);
            if (h < row[s]) row[s] = h;
          }
        }
      }
    });

    // Band by band: bucket identical band signatures, emit bucket pairs.
    // Bands are independent, so the per-band pair lists are concatenated
    // in ascending band order; the global sort + unique below makes the
    // final candidate set independent of bucket iteration order anyway.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        band_pairs(bands);
    std::vector<std::uint64_t> band_probes(bands, 0);
    {
      PAYGO_TRACE_SPAN("hac.lsh_band");
      pool.ParallelFor(0, bands, 1, [&](const ThreadPool::Chunk& chunk) {
        for (std::size_t t = chunk.begin; t < chunk.end; ++t) {
          std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
              buckets;
          buckets.reserve(n);
          for (std::size_t i = 0; i < n; ++i) {
            if (!nonempty[i]) continue;  // empty rows collide vacuously
            const std::uint64_t* s = sig.data() + i * k + t * rows;
            std::uint64_t key = 0x51ed270b9b4e0163ull ^ (t * 0x9e3779b9ull);
            for (std::size_t r = 0; r < rows; ++r) key = Mix64(key ^ s[r]);
            buckets[key].push_back(static_cast<std::uint32_t>(i));
            ++band_probes[t];
          }
          auto& out = band_pairs[t];
          for (const auto& [key, members] : buckets) {
            (void)key;
            if (members.size() < 2) continue;
            for (std::size_t x = 0; x + 1 < members.size(); ++x) {
              for (std::size_t y = x + 1; y < members.size(); ++y) {
                out.emplace_back(members[x], members[y]);
              }
            }
          }
        }
      });
    }
    std::vector<std::pair<std::uint32_t, std::uint32_t>> cands;
    for (std::size_t t = 0; t < bands; ++t) {
      cands.insert(cands.end(), band_pairs[t].begin(), band_pairs[t].end());
      stats.bands_probed += band_probes[t];
    }
    stats.candidates_generated = cands.size();
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

    // Exact verification of every unique candidate with the bitset
    // kernels; per-chunk triple buffers merged ascending keep the edge
    // order (and everything downstream) thread-count independent.
    struct VerifyOut {
      std::vector<Triple> triples;
      std::uint64_t pruned = 0;
    };
    const std::size_t num_chunks = pool.NumChunks(cands.size(), 256);
    std::vector<VerifyOut> outs(num_chunks);
    pool.ParallelFor(0, cands.size(), 256,
                     [&](const ThreadPool::Chunk& chunk) {
                       VerifyOut& out = outs[chunk.index];
                       for (std::size_t ci = chunk.begin; ci < chunk.end;
                            ++ci) {
                         const auto [a, b] = cands[ci];
                         const double sim =
                             DynamicBitset::Jaccard(features[a], features[b]);
                         if (sim <= 0.0) continue;
                         const float fsim = static_cast<float>(sim);
                         if (options.edge_tau > 0.0 &&
                             static_cast<double>(fsim) < options.edge_tau) {
                           ++out.pruned;
                           continue;
                         }
                         out.triples.push_back(Triple{a, b, fsim});
                       }
                     });
    stats.candidates_verified = cands.size();
    for (VerifyOut& out : outs) {
      upper.insert(upper.end(), out.triples.begin(), out.triples.end());
      stats.candidates_pruned += out.pruned;
    }
  }

  NeighborGraph g = FromTriples(n, upper, std::move(nonempty), stats,
                                options.num_threads);
  g.mode_ = options.mode;
  g.edge_tau_ = options.edge_tau;
  g.PruneTopK(options.top_k, options.num_threads);
  FlushStats(g.stats_);
  return g;
}

NeighborGraph::NeighborGraph(const NeighborGraph& base,
                             const std::vector<DynamicBitset>& features) {
  const std::size_t old_n = base.num_nodes();
  const std::size_t n = features.size();
  assert(n >= old_n);
  NeighborGraphStats stats = base.stats_;
  std::vector<std::uint8_t> nonempty(n, 0);
  for (std::size_t i = 0; i < old_n; ++i) nonempty[i] = base.nonempty_[i];
  for (std::size_t i = old_n; i < n; ++i) {
    nonempty[i] = features[i].None() ? 0 : 1;
  }
  std::vector<Triple> upper;
  upper.reserve(base.edges_.size() / 2);
  for (std::uint32_t a = 0; a < old_n; ++a) {
    auto [it, end] = base.Row(a);
    for (; it != end; ++it) {
      if (it->id > a) upper.push_back(Triple{a, it->id, it->sim});
    }
  }
  // New tail rows are exact regardless of the base graph's mode: the
  // incremental path trades O(n) kernel scans per added schema for not
  // having to retain posting lists or MinHash signatures.
  for (std::uint32_t b = static_cast<std::uint32_t>(old_n); b < n; ++b) {
    for (std::uint32_t a = 0; a < b; ++a) {
      const double sim = DynamicBitset::Jaccard(features[a], features[b]);
      ++stats.candidates_verified;
      if (sim <= 0.0) continue;
      const float fsim = static_cast<float>(sim);
      if (base.edge_tau_ > 0.0 &&
          static_cast<double>(fsim) < base.edge_tau_) {
        ++stats.candidates_pruned;
        continue;
      }
      upper.push_back(Triple{a, b, fsim});
    }
  }
  *this = FromTriples(n, upper, std::move(nonempty), stats, 1);
  mode_ = base.mode_;
  edge_tau_ = base.edge_tau_;
}

}  // namespace paygo
