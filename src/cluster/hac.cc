#include "cluster/hac.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "cluster/neighbor_graph.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace paygo {
namespace {

/// Per-run instrumentation accumulated in plain locals (the merge loops
/// are the hottest code in the library; no atomics inside them) and
/// flushed to the global registry once, on destruction.
struct HacRunStats {
  std::uint64_t pairs_evaluated = 0;  ///< Linkages computed from scratch.
  std::uint64_t memo_hits = 0;        ///< Memoized cluster-sim reads.
  std::uint64_t merges = 0;
  std::uint64_t heap_pushes = 0;
  std::uint64_t stale_skips = 0;      ///< Lazy-deletion heap discards.

  ~HacRunStats() {
    StatsRegistry& reg = StatsRegistry::Global();
    static Counter* runs = reg.GetCounter("paygo.hac.runs");
    static Counter* pairs = reg.GetCounter("paygo.hac.pairs_evaluated");
    static Counter* memo = reg.GetCounter("paygo.hac.memo_hits");
    static Counter* merged = reg.GetCounter("paygo.hac.merges");
    static Counter* pushes = reg.GetCounter("paygo.hac.heap_pushes");
    static Counter* stale = reg.GetCounter("paygo.hac.stale_skips");
    runs->Increment();
    pairs->Add(pairs_evaluated);
    memo->Add(memo_hits);
    merged->Add(merges);
    pushes->Add(heap_pushes);
    stale->Add(stale_skips);
  }
};

/// A candidate merge in the lazy-deletion heap. Entries become stale when
/// either endpoint is merged; staleness is detected via per-slot versions.
struct HeapEntry {
  double sim;
  std::uint32_t a, b;          // slot ids, a < b
  std::uint32_t va, vb;        // slot versions at push time

  bool operator<(const HeapEntry& other) const {
    // Max-heap on similarity; deterministic tie-break on slot ids.
    if (sim != other.sim) return sim < other.sim;
    if (a != other.a) return a > other.a;
    return b > other.b;
  }
};

inline std::uint64_t PairKey(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Cannot-link bookkeeping: the schemas of each slot that participate in
/// any constraint, plus the forbidden pair set.
struct ConstraintState {
  std::unordered_set<std::uint64_t> forbidden;
  std::vector<std::vector<std::uint32_t>> constrained;  // per slot

  bool Active() const { return !forbidden.empty(); }

  /// True when merging slots a and b would join a forbidden schema pair.
  bool Violates(std::uint32_t a, std::uint32_t b) const {
    if (!Active()) return false;
    const auto& ca = constrained[a];
    const auto& cb = constrained[b];
    for (std::uint32_t x : ca) {
      for (std::uint32_t y : cb) {
        if (forbidden.count(PairKey(x, y))) return true;
      }
    }
    return false;
  }

  void MergeInto(std::uint32_t a, std::uint32_t b) {
    if (!Active()) return;
    auto& ca = constrained[a];
    auto& cb = constrained[b];
    ca.insert(ca.end(), cb.begin(), cb.end());
    cb.clear();
  }
};

/// Shared cluster bookkeeping for both engines.
struct ClusterState {
  std::vector<std::vector<std::uint32_t>> members;  // per active slot
  std::vector<bool> active;
  std::vector<std::uint32_t> version;
  // Total-Jaccard summaries: AND / OR of member feature vectors.
  std::vector<DynamicBitset> and_bits;
  std::vector<DynamicBitset> or_bits;
  bool track_bits = false;

  void Init(std::size_t n, const std::vector<DynamicBitset>& features,
            bool need_bits) {
    members.resize(n);
    active.assign(n, true);
    version.assign(n, 0);
    track_bits = need_bits;
    for (std::uint32_t i = 0; i < n; ++i) members[i] = {i};
    if (need_bits) {
      and_bits = features;
      or_bits = features;
    }
  }

  /// Merges slot b into slot a.
  void Merge(std::uint32_t a, std::uint32_t b) {
    auto& ma = members[a];
    auto& mb = members[b];
    ma.insert(ma.end(), mb.begin(), mb.end());
    mb.clear();
    mb.shrink_to_fit();
    active[b] = false;
    ++version[a];
    ++version[b];
    if (track_bits) {
      and_bits[a] &= and_bits[b];
      or_bits[a] |= or_bits[b];
    }
  }

  HacResult Finish(std::vector<HacMerge> merges) const {
    HacResult result;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!active[i]) continue;
      std::vector<std::uint32_t> c = members[i];
      std::sort(c.begin(), c.end());
      result.clusters.push_back(std::move(c));
    }
    std::sort(result.clusters.begin(), result.clusters.end(),
              [](const auto& x, const auto& y) { return x[0] < y[0]; });
    result.merges = std::move(merges);
    return result;
  }
};

/// Cluster-to-cluster similarity recomputed from first principles — the
/// reference used by the naive engine and, for Total Jaccard, by both.
double LinkageFromScratch(const ClusterState& st, const SimilarityMatrix& sims,
                          LinkageKind kind, std::uint32_t a, std::uint32_t b) {
  switch (kind) {
    case LinkageKind::kAverage: {
      double total = 0.0;
      for (std::uint32_t x : st.members[a]) {
        for (std::uint32_t y : st.members[b]) total += sims.At(x, y);
      }
      return total / (static_cast<double>(st.members[a].size()) *
                      static_cast<double>(st.members[b].size()));
    }
    case LinkageKind::kMin: {
      double best = 1.0;
      for (std::uint32_t x : st.members[a]) {
        for (std::uint32_t y : st.members[b]) {
          best = std::min(best, sims.At(x, y));
        }
      }
      return best;
    }
    case LinkageKind::kMax: {
      double best = 0.0;
      for (std::uint32_t x : st.members[a]) {
        for (std::uint32_t y : st.members[b]) {
          best = std::max(best, sims.At(x, y));
        }
      }
      return best;
    }
    case LinkageKind::kTotal:
      return DynamicBitset::Jaccard(
          // Intersection of all features across both clusters ...
          [&] {
            DynamicBitset x = st.and_bits[a];
            x &= st.and_bits[b];
            return x;
          }(),
          // ... over the union of all features across both clusters.
          [&] {
            DynamicBitset x = st.or_bits[a];
            x |= st.or_bits[b];
            return x;
          }());
  }
  return 0.0;
}

/// Simple union-find for must-link preprocessing.
struct UnionFind {
  std::vector<std::uint32_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::uint32_t Find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(std::uint32_t a, std::uint32_t b) { parent[Find(a)] = Find(b); }
};

Status ValidateConstraints(std::size_t n, const HacOptions& options) {
  for (const auto& [a, b] : options.must_link) {
    if (a >= n || b >= n) {
      return Status::OutOfRange("must_link schema id out of range");
    }
    if (a == b) return Status::InvalidArgument("must_link pair of a schema with itself");
  }
  for (const auto& [a, b] : options.cannot_link) {
    if (a >= n || b >= n) {
      return Status::OutOfRange("cannot_link schema id out of range");
    }
    if (a == b) {
      return Status::InvalidArgument(
          "cannot_link pair of a schema with itself");
    }
  }
  // Must-link closure must not contain a cannot-link pair.
  UnionFind uf(n);
  for (const auto& [a, b] : options.must_link) uf.Union(a, b);
  for (const auto& [a, b] : options.cannot_link) {
    if (uf.Find(a) == uf.Find(b)) {
      return Status::InvalidArgument(
          "conflicting feedback: schemas " + std::to_string(a) + " and " +
          std::to_string(b) + " are both must-linked and cannot-linked");
    }
  }
  return Status::OK();
}

ConstraintState BuildConstraintState(std::size_t n,
                                     const HacOptions& options) {
  ConstraintState cs;
  if (options.cannot_link.empty()) return cs;
  cs.constrained.resize(n);
  for (const auto& [a, b] : options.cannot_link) {
    cs.forbidden.insert(PairKey(a, b));
    cs.constrained[a].push_back(a);
    cs.constrained[b].push_back(b);
  }
  for (auto& c : cs.constrained) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
  }
  return cs;
}

Result<HacResult> RunNaive(const std::vector<DynamicBitset>& features,
                           const SimilarityMatrix& sims,
                           const HacOptions& options) {
  PAYGO_TRACE_SPAN("hac.run");
  HacRunStats stats;
  const std::size_t n = features.size();
  ClusterState st;
  st.Init(n, features, options.linkage == LinkageKind::kTotal);
  ConstraintState cs = BuildConstraintState(n, options);
  std::vector<HacMerge> merges;
  const bool count_mode = options.max_clusters > 0;

  // Must-link preprocessing: merge each constraint component up front.
  {
    std::vector<std::uint32_t> slot_of(n);
    for (std::uint32_t i = 0; i < n; ++i) slot_of[i] = i;
    for (const auto& [x, y] : options.must_link) {
      const std::uint32_t a = slot_of[x];
      const std::uint32_t b = slot_of[y];
      if (a == b) continue;
      st.Merge(a, b);
      cs.MergeInto(a, b);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (slot_of[i] == b) slot_of[i] = a;
      }
      merges.push_back({a, b, 1.0});
      ++stats.merges;
    }
  }

  for (;;) {
    const std::size_t active_count = n - merges.size();
    if (count_mode && active_count <= options.max_clusters) break;
    double best_sim = -1.0;
    std::uint32_t best_a = 0, best_b = 0;
    for (std::uint32_t a = 0; a < n; ++a) {
      if (!st.active[a]) continue;
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (!st.active[b]) continue;
        if (cs.Violates(a, b)) continue;
        ++stats.pairs_evaluated;
        const double s = LinkageFromScratch(st, sims, options.linkage, a, b);
        if (s > best_sim) {
          best_sim = s;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_sim < 0.0) break;  // no admissible pair left
    if (!count_mode && best_sim < options.tau_c_sim) break;
    {
      PAYGO_TRACE_SPAN("hac.merge");
      st.Merge(best_a, best_b);
      cs.MergeInto(best_a, best_b);
      merges.push_back({best_a, best_b, best_sim});
      ++stats.merges;
    }
    if (merges.size() + 1 == n) break;  // single cluster left
  }
  return st.Finish(std::move(merges));
}

Result<HacResult> RunFast(const std::vector<DynamicBitset>& features,
                          const SimilarityMatrix& sims,
                          const HacOptions& options) {
  PAYGO_TRACE_SPAN("hac.run");
  HacRunStats stats;
  const std::size_t n = features.size();
  ClusterState st;
  st.Init(n, features, options.linkage == LinkageKind::kTotal);
  ConstraintState cs = BuildConstraintState(n, options);

  // Worker pool for the O(n^2) phases. Width 1 (the default) bypasses the
  // pool entirely — the exact legacy serial path. At any width the result
  // is bit-identical to serial: chunk outputs are applied in ascending
  // chunk order over an ordered contiguous partition, which reproduces the
  // serial heap-push sequence, and every float/double is computed from the
  // same inputs the serial path reads (no cross-chunk FP reductions).
  const std::size_t pool_width =
      ThreadPool::ResolveThreadCount(options.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (pool_width > 1 && n > 1) pool = std::make_unique<ThreadPool>(pool_width);

  // Memoized cluster-to-cluster similarities, indexed by slot pair. For the
  // Lance-Williams-updatable linkages this is required for the O(|U|)
  // per-merge update; for Total Jaccard similarities are recomputed from
  // the AND/OR summaries (O(dim L / 64) each), so the matrix is unused.
  const bool memoized = options.linkage != LinkageKind::kTotal;
  std::vector<float> csim;
  if (memoized) {
    csim.resize(n * n);
    auto fill_rows = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          csim[i * n + j] = static_cast<float>(sims.At(i, j));
        }
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(0, n, /*grain=*/64,
                        [&](const ThreadPool::Chunk& c) {
                          fill_rows(c.begin, c.end);
                        });
    } else {
      fill_rows(0, n);
    }
  }

  // In count mode (max_clusters set) the similarity threshold is ignored:
  // every pair is a candidate and merging stops at the target count.
  const bool count_mode = options.max_clusters > 0;
  const double push_threshold = count_mode ? -1.0 : options.tau_c_sim;

  std::priority_queue<HeapEntry> heap;
  std::vector<HacMerge> merges;

  // Candidates and instrumentation produced by one chunk of a parallel
  // scan. Buffered per chunk and flushed in ascending chunk order so heap
  // pushes land in the serial iteration order; counters are exact integers
  // so summation order is immaterial.
  struct ChunkEmit {
    std::vector<HeapEntry> entries;
    std::uint64_t pairs_evaluated = 0;
    std::uint64_t memo_hits = 0;
  };
  auto flush_emit = [&](const ChunkEmit& out) {
    stats.pairs_evaluated += out.pairs_evaluated;
    stats.memo_hits += out.memo_hits;
    for (const HeapEntry& e : out.entries) {
      heap.push(e);
      ++stats.heap_pushes;
    }
  };

  // Candidate re-evaluation against the freshly merged slot `a`: the
  // per-merge O(|U|) loop, over candidate range [lo, hi). Thread-safe for
  // disjoint ranges: iteration c reads csim rows c (its own) and column b
  // (untouched) and writes csim[a][c] / csim[c][a] (owned by c).
  auto reevaluate = [&](std::uint32_t a, std::uint32_t b, double size_a,
                        double size_b, std::size_t lo, std::size_t hi,
                        ChunkEmit& out) {
    for (std::uint32_t c = lo; c < hi; ++c) {
      if (!st.active[c] || c == a) continue;
      double s;
      if (memoized) {
        out.memo_hits += 2;
        const double sca = csim[static_cast<std::size_t>(c) * n + a];
        const double scb = csim[static_cast<std::size_t>(c) * n + b];
        switch (options.linkage) {
          case LinkageKind::kAverage:
            // The thesis's constant-time memoization update:
            // c_sim(c, ab) = (|a| c_sim(c,a) + |b| c_sim(c,b)) / (|a|+|b|).
            s = (size_a * sca + size_b * scb) / (size_a + size_b);
            break;
          case LinkageKind::kMin:
            s = std::min(sca, scb);
            break;
          case LinkageKind::kMax:
            s = std::max(sca, scb);
            break;
          default:
            s = 0.0;
            assert(false);
        }
        csim[static_cast<std::size_t>(a) * n + c] = static_cast<float>(s);
        csim[static_cast<std::size_t>(c) * n + a] = static_cast<float>(s);
      } else {
        ++out.pairs_evaluated;
        s = LinkageFromScratch(st, sims, options.linkage, a, c);
      }
      if (s >= push_threshold) {
        const std::uint32_t lo_id = std::min(a, c);
        const std::uint32_t hi_id = std::max(a, c);
        out.entries.push_back(
            {s, lo_id, hi_id, st.version[lo_id], st.version[hi_id]});
      }
    }
  };

  // Performs the merge of slot b into slot a at similarity `sim`,
  // updating memoized similarities and pushing refreshed heap entries.
  auto do_merge = [&](std::uint32_t a, std::uint32_t b, double sim) {
    PAYGO_TRACE_SPAN("hac.merge");
    ++stats.merges;
    const double size_a = static_cast<double>(st.members[a].size());
    const double size_b = static_cast<double>(st.members[b].size());
    st.Merge(a, b);
    cs.MergeInto(a, b);
    merges.push_back({a, b, sim});

    // Memoized re-evaluation is O(1) per candidate — only worth spreading
    // for very wide ranges; the Total-Jaccard recomputation is O(dim/64)
    // per candidate and parallelizes at much smaller n.
    const std::size_t grain = memoized ? 4096 : 256;
    const std::size_t chunks = pool != nullptr ? pool->NumChunks(n, grain) : 1;
    if (chunks > 1) {
      std::vector<ChunkEmit> outs(chunks);
      pool->ParallelFor(0, n, grain, [&](const ThreadPool::Chunk& c) {
        reevaluate(a, b, size_a, size_b, c.begin, c.end, outs[c.index]);
      });
      for (const ChunkEmit& out : outs) flush_emit(out);
    } else {
      ChunkEmit out;
      reevaluate(a, b, size_a, size_b, 0, n, out);
      flush_emit(out);
    }
  };

  // Must-link preprocessing.
  {
    std::vector<std::uint32_t> slot_of(n);
    for (std::uint32_t i = 0; i < n; ++i) slot_of[i] = i;
    for (const auto& [x, y] : options.must_link) {
      const std::uint32_t a = slot_of[x];
      const std::uint32_t b = slot_of[y];
      if (a == b) continue;
      do_merge(a, b, 1.0);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (slot_of[i] == b) slot_of[i] = a;
      }
    }
  }

  // Initial pairwise candidate scan over rows [lo, hi) x (row, n). Pure
  // reads of csim / cluster state, so chunks never interfere.
  auto scan_rows = [&](std::size_t lo, std::size_t hi, ChunkEmit& out) {
    for (std::uint32_t a = lo; a < hi; ++a) {
      if (!st.active[a]) continue;
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (!st.active[b]) continue;
        double s;
        if (memoized) {
          ++out.memo_hits;
          s = csim[static_cast<std::size_t>(a) * n + b];
        } else {
          ++out.pairs_evaluated;
          s = LinkageFromScratch(st, sims, options.linkage, a, b);
        }
        if (s >= push_threshold) {
          out.entries.push_back({s, a, b, st.version[a], st.version[b]});
        }
      }
    }
  };
  {
    PAYGO_TRACE_SPAN("hac.parallel_pairs");
    // Row a costs n - a pairs; small grain + chunk oversubscription keep
    // the triangular load balanced.
    const std::size_t grain = memoized ? 64 : 8;
    const std::size_t chunks = pool != nullptr ? pool->NumChunks(n, grain) : 1;
    if (chunks > 1) {
      std::vector<ChunkEmit> outs(chunks);
      pool->ParallelFor(0, n, grain, [&](const ThreadPool::Chunk& c) {
        scan_rows(c.begin, c.end, outs[c.index]);
      });
      for (const ChunkEmit& out : outs) flush_emit(out);
    } else {
      ChunkEmit out;
      scan_rows(0, n, out);
      flush_emit(out);
    }
  }

  while (!heap.empty()) {
    if (count_mode && n - merges.size() <= options.max_clusters) break;
    const HeapEntry top = heap.top();
    heap.pop();
    if (!st.active[top.a] || !st.active[top.b]) {
      ++stats.stale_skips;
      continue;
    }
    if (st.version[top.a] != top.va || st.version[top.b] != top.vb) {
      ++stats.stale_skips;
      continue;
    }
    if (!count_mode && top.sim < options.tau_c_sim) break;
    // Cannot-link: skip the violating merge; the pair stays apart (new
    // constraints only accumulate through merges, so dropping the entry
    // permanently is sound).
    if (cs.Violates(top.a, top.b)) continue;
    do_merge(top.a, top.b, top.sim);
  }
  return st.Finish(std::move(merges));
}

/// Sparse engine: cluster similarities as sorted per-cluster rows fed by
/// the NeighborGraph. Absent row entries mean similarity 0 — under
/// kAverage an absent entry contributes 0 to the Lance-Williams
/// combination, under kMin it forces 0 (some cross pair is disjoint),
/// under kMax it is simply not a maximum candidate. Row seeding and the
/// per-merge row-combine re-evaluation are parallel under the PR 3
/// discipline: every row is owned by exactly one chunk, and heap pushes /
/// row appends are buffered per chunk and flushed in ascending chunk
/// order, so the engine is bit-identical at any thread count.
Result<HacResult> RunSparseGraph(const NeighborGraph& graph,
                                 const HacOptions& options) {
  PAYGO_TRACE_SPAN("hac.run");
  HacRunStats stats;
  const std::size_t n = graph.num_nodes();
  ClusterState st;
  st.Init(n, /*features=*/{}, /*need_bits=*/false);
  ConstraintState cs = BuildConstraintState(n, options);
  ThreadPool pool(ThreadPool::ResolveThreadCount(options.num_threads));

  // Sparse symmetric similarity rows: sorted-by-id flat vectors, float
  // values matching the dense engine's rounding so the two engines
  // tie-break identically.
  std::vector<std::vector<NeighborEdge>> row(n);
  pool.ParallelFor(0, n, 64, [&](const ThreadPool::Chunk& chunk) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      auto [begin, end] = graph.Row(static_cast<std::uint32_t>(i));
      row[i].assign(begin, end);
    }
  });

  // Seed the heap with every edge at or above tau. Entries are buffered
  // per chunk and flushed ascending; heap order itself only depends on
  // (sim, a, b), never on push order.
  std::priority_queue<HeapEntry> heap;
  {
    struct SeedOut {
      std::vector<HeapEntry> entries;
      std::uint64_t pairs = 0;
    };
    const std::size_t chunks = pool.NumChunks(n, 64);
    std::vector<SeedOut> outs(chunks == 0 ? 1 : chunks);
    pool.ParallelFor(0, n, 64, [&](const ThreadPool::Chunk& chunk) {
      SeedOut& out = outs[chunk.index];
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        const std::uint32_t a = static_cast<std::uint32_t>(i);
        for (const NeighborEdge& e : row[i]) {
          if (e.id <= a) continue;
          ++out.pairs;
          if (e.sim >= options.tau_c_sim) {
            out.entries.push_back({e.sim, a, e.id, 0, 0});
          }
        }
      }
    });
    for (const SeedOut& out : outs) {
      stats.pairs_evaluated += out.pairs;
      for (const HeapEntry& e : out.entries) {
        heap.push(e);
        ++stats.heap_pushes;
      }
    }
  }

  // Reused per-merge scratch: the id-union of the two merged rows.
  struct CombineItem {
    std::uint32_t c;
    float s_a, s_b;       // stored similarities to the merged slots
    bool in_a, in_b;      // presence flags (absent means similarity 0)
  };
  std::vector<CombineItem> items;
  std::vector<NeighborEdge> new_row;

  std::vector<HacMerge> merges;
  auto do_merge = [&](std::uint32_t a, std::uint32_t b, double sim) {
    PAYGO_TRACE_SPAN("hac.merge");
    ++stats.merges;
    const double size_a = static_cast<double>(st.members[a].size());
    const double size_b = static_cast<double>(st.members[b].size());
    const double total = size_a + size_b;
    st.Merge(a, b);
    cs.MergeInto(a, b);
    merges.push_back({a, b, sim});

    // Id-ascending union of rows a and b (linear two-pointer walk).
    items.clear();
    {
      const auto& ra = row[a];
      const auto& rb = row[b];
      std::size_t x = 0, y = 0;
      while (x < ra.size() || y < rb.size()) {
        std::uint32_t c;
        CombineItem item{0, 0.0f, 0.0f, false, false};
        if (y >= rb.size() || (x < ra.size() && ra[x].id < rb[y].id)) {
          c = ra[x].id;
          item.s_a = ra[x].sim;
          item.in_a = true;
          ++x;
        } else if (x >= ra.size() || rb[y].id < ra[x].id) {
          c = rb[y].id;
          item.s_b = rb[y].sim;
          item.in_b = true;
          ++y;
        } else {
          c = ra[x].id;
          item.s_a = ra[x].sim;
          item.s_b = rb[y].sim;
          item.in_a = item.in_b = true;
          ++x;
          ++y;
        }
        if (c == a || c == b || !st.active[c]) continue;
        item.c = c;
        items.push_back(item);
      }
    }

    // Lance-Williams re-evaluation per union id. Values are computed per
    // slot from the same inputs the serial path reads (no cross-chunk FP
    // reduction), so parallelizing the sweep cannot perturb them.
    const std::size_t m = items.size();
    auto evaluate = [&](std::size_t i) {
      const CombineItem& it = items[i];
      const double s_a = static_cast<double>(it.s_a);
      const double s_b = static_cast<double>(it.s_b);
      switch (options.linkage) {
        case LinkageKind::kAverage:
          return (size_a * s_a + size_b * s_b) / total;
        case LinkageKind::kMin:
          // Absent partner entry means a fully disjoint cross pair.
          return (it.in_a && it.in_b) ? std::min(s_a, s_b) : 0.0;
        case LinkageKind::kMax:
          return std::max(s_a, s_b);
        default:
          assert(false);
          return 0.0;
      }
    };
    // Apply one union id: rewrite row[c] (erase the b entry, update or
    // insert the a entry). Distinct ids touch distinct rows, so the
    // parallel sweep below writes disjoint slots.
    auto apply = [&](std::size_t i, double value) {
      const std::uint32_t c = items[i].c;
      auto& rc = row[c];
      const auto pos_of = [&](std::uint32_t id) {
        return std::lower_bound(
            rc.begin(), rc.end(), id,
            [](const NeighborEdge& e, std::uint32_t key) {
              return e.id < key;
            });
      };
      if (items[i].in_b) {
        rc.erase(pos_of(b));
      }
      if (value > 0.0) {
        const float fvalue = static_cast<float>(value);
        auto it = pos_of(a);
        if (it != rc.end() && it->id == a) {
          it->sim = fvalue;
        } else {
          rc.insert(it, NeighborEdge{a, fvalue});
        }
      } else if (items[i].in_a) {
        rc.erase(pos_of(a));
      }
    };
    auto emit = [&](std::size_t i, double value,
                    std::vector<NeighborEdge>* row_out,
                    std::vector<HeapEntry>* heap_out) {
      if (value <= 0.0) return;
      row_out->push_back(NeighborEdge{items[i].c, static_cast<float>(value)});
      // Push with the unrounded double, matching the dense engine, which
      // also compares heap keys before the float store.
      if (value >= options.tau_c_sim) {
        const std::uint32_t lo = std::min(a, items[i].c);
        const std::uint32_t hi = std::max(a, items[i].c);
        heap_out->push_back({value, lo, hi, st.version[lo], st.version[hi]});
      }
    };

    new_row.clear();
    const std::size_t chunks = pool.NumChunks(m, 128);
    if (chunks > 1) {
      struct ChunkOut {
        std::vector<NeighborEdge> row_entries;
        std::vector<HeapEntry> heap_entries;
      };
      std::vector<ChunkOut> outs(chunks);
      pool.ParallelFor(0, m, 128, [&](const ThreadPool::Chunk& chunk) {
        ChunkOut& out = outs[chunk.index];
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const double value = evaluate(i);
          apply(i, value);
          emit(i, value, &out.row_entries, &out.heap_entries);
        }
      });
      for (ChunkOut& out : outs) {
        new_row.insert(new_row.end(), out.row_entries.begin(),
                       out.row_entries.end());
        for (const HeapEntry& e : out.heap_entries) {
          heap.push(e);
          ++stats.heap_pushes;
        }
      }
    } else {
      std::vector<HeapEntry> heap_entries;
      for (std::size_t i = 0; i < m; ++i) {
        const double value = evaluate(i);
        apply(i, value);
        emit(i, value, &new_row, &heap_entries);
      }
      for (const HeapEntry& e : heap_entries) {
        heap.push(e);
        ++stats.heap_pushes;
      }
    }
    row[a] = new_row;  // union walk emits ids ascending, so this is sorted
    row[b].clear();
    row[b].shrink_to_fit();
  };

  // Must-link preprocessing.
  {
    std::vector<std::uint32_t> slot_of(n);
    for (std::uint32_t i = 0; i < n; ++i) slot_of[i] = i;
    for (const auto& [x, y] : options.must_link) {
      const std::uint32_t a = slot_of[x];
      const std::uint32_t b = slot_of[y];
      if (a == b) continue;
      do_merge(a, b, 1.0);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (slot_of[i] == b) slot_of[i] = a;
      }
    }
  }

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (!st.active[top.a] || !st.active[top.b]) {
      ++stats.stale_skips;
      continue;
    }
    if (st.version[top.a] != top.va || st.version[top.b] != top.vb) {
      ++stats.stale_skips;
      continue;
    }
    if (top.sim < options.tau_c_sim) break;
    if (cs.Violates(top.a, top.b)) continue;
    do_merge(top.a, top.b, top.sim);
  }
  return st.Finish(std::move(merges));
}

/// Features-in sparse entry point: builds the exact all-nonzero neighbor
/// graph (the bitwise-equality contract; see neighbor_graph.h) and runs
/// the graph engine over it.
Result<HacResult> RunSparse(const std::vector<DynamicBitset>& features,
                            const HacOptions& options) {
  NeighborGraphOptions graph_options;
  graph_options.mode = NeighborGraphMode::kExact;
  graph_options.edge_tau = 0.0;
  graph_options.num_threads = options.num_threads;
  PAYGO_ASSIGN_OR_RETURN(NeighborGraph graph,
                         NeighborGraph::Build(features, graph_options));
  return RunSparseGraph(graph, options);
}

}  // namespace

std::uint32_t HacResult::ClusterOf(std::uint32_t schema_id) const {
  for (std::uint32_t r = 0; r < clusters.size(); ++r) {
    if (std::binary_search(clusters[r].begin(), clusters[r].end(),
                           schema_id)) {
      return r;
    }
  }
  assert(false && "schema not in any cluster");
  return static_cast<std::uint32_t>(clusters.size());
}

std::size_t HacResult::NumSingletons() const {
  std::size_t c = 0;
  for (const auto& cl : clusters) {
    if (cl.size() == 1) ++c;
  }
  return c;
}

Result<HacResult> Hac::Run(const std::vector<DynamicBitset>& features,
                           const SimilarityMatrix& sims,
                           const HacOptions& options) {
  if (features.size() != sims.size()) {
    return Status::InvalidArgument(
        "feature count does not match similarity matrix size");
  }
  if (options.tau_c_sim < 0.0 || options.tau_c_sim > 1.0) {
    return Status::InvalidArgument("tau_c_sim must be in [0, 1]");
  }
  if (features.empty()) return HacResult{};
  for (std::size_t i = 1; i < features.size(); ++i) {
    if (features[i].size() != features[0].size()) {
      return Status::InvalidArgument(
          "feature vectors have inconsistent dimensionality");
    }
  }
  PAYGO_RETURN_NOT_OK(ValidateConstraints(features.size(), options));
  if (options.use_sparse_engine) {
    if (options.linkage == LinkageKind::kTotal) {
      return Status::InvalidArgument(
          "the sparse engine does not support Total Jaccard (it needs "
          "cluster feature summaries, not pair similarities)");
    }
    if (options.max_clusters > 0) {
      return Status::InvalidArgument(
          "the sparse engine cannot merge feature-disjoint clusters and so "
          "does not support max_clusters count mode");
    }
    if (options.tau_c_sim <= 0.0) {
      return Status::InvalidArgument(
          "the sparse engine requires tau_c_sim > 0 (zero-similarity pairs "
          "are not materialized)");
    }
    return RunSparse(features, options);
  }
  if (options.use_naive_engine) return RunNaive(features, sims, options);
  return RunFast(features, sims, options);
}

Result<HacResult> Hac::Run(const std::vector<DynamicBitset>& features,
                           const HacOptions& options) {
  if (options.use_sparse_engine) {
    // The whole point of the sparse engine is skipping the dense O(n^2)
    // similarity matrix; a 1x1 placeholder satisfies the shared
    // validation path.
    if (features.empty()) return HacResult{};
    for (std::size_t i = 1; i < features.size(); ++i) {
      if (features[i].size() != features[0].size()) {
        return Status::InvalidArgument(
            "feature vectors have inconsistent dimensionality");
      }
    }
    if (options.tau_c_sim < 0.0 || options.tau_c_sim > 1.0) {
      return Status::InvalidArgument("tau_c_sim must be in [0, 1]");
    }
    HacOptions validated = options;
    PAYGO_RETURN_NOT_OK(ValidateConstraints(features.size(), validated));
    if (validated.linkage == LinkageKind::kTotal) {
      return Status::InvalidArgument(
          "the sparse engine does not support Total Jaccard");
    }
    if (validated.max_clusters > 0) {
      return Status::InvalidArgument(
          "the sparse engine does not support max_clusters count mode");
    }
    if (validated.tau_c_sim <= 0.0) {
      return Status::InvalidArgument(
          "the sparse engine requires tau_c_sim > 0");
    }
    return RunSparse(features, validated);
  }
  SimilarityMatrix sims(features, options.num_threads);
  return Run(features, sims, options);
}

Result<HacResult> Hac::RunOnGraph(const NeighborGraph& graph,
                           const HacOptions& options) {
  if (graph.num_nodes() == 0) return HacResult{};
  if (options.tau_c_sim < 0.0 || options.tau_c_sim > 1.0) {
    return Status::InvalidArgument("tau_c_sim must be in [0, 1]");
  }
  PAYGO_RETURN_NOT_OK(ValidateConstraints(graph.num_nodes(), options));
  if (options.linkage == LinkageKind::kTotal) {
    return Status::InvalidArgument(
        "the sparse engine does not support Total Jaccard (it needs "
        "cluster feature summaries, not pair similarities)");
  }
  if (options.max_clusters > 0) {
    return Status::InvalidArgument(
        "the sparse engine cannot merge feature-disjoint clusters and so "
        "does not support max_clusters count mode");
  }
  if (options.tau_c_sim <= 0.0) {
    return Status::InvalidArgument(
        "the sparse engine requires tau_c_sim > 0 (zero-similarity pairs "
        "are not materialized)");
  }
  return RunSparseGraph(graph, options);
}

}  // namespace paygo
