#ifndef PAYGO_CLUSTER_LINKAGE_H_
#define PAYGO_CLUSTER_LINKAGE_H_

/// \file linkage.h
/// \brief Schema and cluster similarity measures (Sections 4.2 and 6.1.2).
///
/// Schema-to-schema similarity is the Jaccard coefficient over binary
/// feature vectors. Cluster-to-cluster similarity comes in the four flavors
/// the thesis evaluates: Avg. Jaccard (the default; group-average linkage),
/// Min. Jaccard (complete-link analog on similarities), Max. Jaccard
/// (single-link analog), and Total Jaccard (set-based over cluster term
/// summaries).

#include <string>
#include <vector>

#include "util/bitset.h"

namespace paygo {

/// \brief The four cluster-to-cluster similarity measures of Section 6.1.2.
enum class LinkageKind {
  /// Average of all cross-cluster schema-pair similarities (thesis default).
  kAverage,
  /// Minimum cross-pair similarity.
  kMin,
  /// Maximum cross-pair similarity.
  kMax,
  /// |features common to ALL schemas of both clusters| /
  /// |features present in ANY schema of either cluster|.
  kTotal,
};

/// Human-readable name ("Avg. Jaccard", ...), matching the thesis figures.
std::string LinkageKindName(LinkageKind kind);

/// All four linkage kinds, in figure order.
const std::vector<LinkageKind>& AllLinkageKinds();

/// \brief Memoized schema-to-schema Jaccard similarities (s_sim).
///
/// The thesis notes all schema-to-schema similarities "should be computed
/// and memoized in advance so as to avoid recomputing them multiple times
/// during clustering"; this is that cache. Stored as a dense symmetric
/// float matrix: 2323 schemas (DDH) need ~21 MB.
class SimilarityMatrix {
 public:
  /// Computes Jaccard(F_i, F_j) for all pairs. \p num_threads spreads the
  /// O(n^2) fill over a worker pool (0 = hardware_concurrency, 1 = serial);
  /// every entry is written by exactly one row chunk, so the matrix is
  /// bit-identical at any thread count.
  explicit SimilarityMatrix(const std::vector<DynamicBitset>& features,
                            std::size_t num_threads = 1);

  /// Extends \p base (built over features[0..n-1]) to cover \p features
  /// (size n + 1, the last entry newly appended): old entries are copied
  /// verbatim and only the new row/column's n Jaccards are computed —
  /// O(n * dim) instead of the O(n^2 * dim) full fill. Jaccard is a pure
  /// function of the two bitsets, so the result is bit-identical to a
  /// from-scratch build over \p features. The delta write path's matrix
  /// refresh.
  SimilarityMatrix(const SimilarityMatrix& base,
                   const std::vector<DynamicBitset>& features);

  /// s_sim(S_i, S_j); symmetric, At(i, i) == 1 for non-empty vectors.
  double At(std::size_t i, std::size_t j) const {
    return values_[i * n_ + j];
  }

  /// Number of schemas.
  std::size_t size() const { return n_; }

 private:
  std::size_t n_;
  std::vector<float> values_;
};

}  // namespace paygo

#endif  // PAYGO_CLUSTER_LINKAGE_H_
