#ifndef PAYGO_CLUSTER_NEIGHBOR_GRAPH_H_
#define PAYGO_CLUSTER_NEIGHBOR_GRAPH_H_

/// \file neighbor_graph.h
/// \brief Sparse schema-similarity neighbor graph for web-scale clustering.
///
/// The dense SimilarityMatrix is O(n^2) in both time and memory, which caps
/// cluster builds at a few thousand schemas. The neighbor graph replaces it
/// with per-schema adjacency rows holding only the pairs that can matter:
///
///  * **Exact mode** enumerates candidate pairs from an inverted feature
///    index (schemas sharing no feature have Jaccard 0), accumulating
///    intersection counts in per-chunk flat scratch arrays instead of one
///    global hash map. Features whose posting list exceeds a hot limit are
///    excluded from enumeration; the schemas containing them form a "heavy"
///    set swept pairwise with the SIMD AndCount/Jaccard kernels, so hot
///    posting lists cannot blow enumeration up quadratically while every
///    edge stays exact. Rows hold `float(DynamicBitset::Jaccard(a, b))` —
///    bit-for-bit the values the dense matrix stores — and the build is
///    bit-identical at any thread count.
///
///  * **MinHash/LSH mode** builds k MinHash values per schema and an LSH
///    banding index; band collisions emit candidate pairs, each verified
///    with an exact bitset Jaccard, so every *surviving* edge is exact and
///    only recall is approximate. Band/row counts are chosen tau-aware:
///    the largest rows-per-band whose collision probability at
///    `recall_tau` still meets `target_recall`, minimizing false-positive
///    verification work subject to the recall floor. The result is
///    deterministic given the seed, at any thread count.
///
/// Edges are symmetric and stored CSR-style, each row sorted by neighbor
/// id. With `edge_tau == 0` (the default) the exact mode keeps *all*
/// nonzero edges, which is the contract the sparse HAC engine and the
/// sparse assignment path rely on for bitwise equality with the dense
/// oracle (sub-tau pairwise similarities still feed linkage combines).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitset.h"
#include "util/status.h"

namespace paygo {

/// \brief How the neighbor graph generates candidate pairs.
enum class NeighborGraphMode {
  kExact = 0,      ///< Inverted-index enumeration; every nonzero pair found.
  kMinHashLsh = 1  ///< MinHash + LSH banding; recall < 1, edges still exact.
};

/// \brief Knobs for NeighborGraph::Build.
struct NeighborGraphOptions {
  NeighborGraphMode mode = NeighborGraphMode::kExact;

  /// Drop verified edges with similarity below this. 0 keeps every nonzero
  /// edge — required for bitwise equality with the dense path (see file
  /// comment). Must be in [0, 1).
  double edge_tau = 0.0;

  /// When nonzero, prune each row to its top-k neighbors by (similarity
  /// desc, id asc); an edge survives when it is in the top-k of *either*
  /// endpoint, keeping the graph symmetric. 0 disables pruning.
  std::size_t top_k = 0;

  /// Worker threads (0 = hardware concurrency). Exact mode is
  /// bit-identical at any value; LSH mode is seed-deterministic.
  std::size_t num_threads = 1;

  /// Exact mode: posting lists longer than this are "hot" and handled by
  /// the heavy-set pairwise sweep instead of enumeration. 0 picks
  /// max(64, n / 8) automatically.
  std::size_t hot_posting_limit = 0;

  /// LSH mode: number of MinHash values per schema.
  std::size_t num_hashes = 128;

  /// LSH mode: the similarity at which the recall guarantee is evaluated
  /// (use the clustering tau_c_sim).
  double recall_tau = 0.25;

  /// LSH mode: required candidate recall for pairs at recall_tau.
  double target_recall = 0.95;

  /// LSH mode: MinHash seed. Same seed => same graph, any thread count.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// \brief Build-time telemetry, also flushed to paygo.hac.sparse.* counters.
struct NeighborGraphStats {
  std::uint64_t candidates_generated = 0;  ///< Pairs emitted (pre-dedup).
  std::uint64_t candidates_verified = 0;   ///< Unique pairs exactly scored.
  std::uint64_t candidates_pruned = 0;     ///< Verified pairs below edge_tau.
  std::uint64_t bands_probed = 0;          ///< LSH (node, band) insertions.
  std::uint64_t num_edges = 0;             ///< Undirected surviving edges.
  std::size_t lsh_bands = 0;               ///< Chosen band count (LSH mode).
  std::size_t lsh_rows_per_band = 0;       ///< Chosen rows per band.
};

/// \brief One directed adjacency entry.
struct NeighborEdge {
  std::uint32_t id;  ///< Neighbor schema index.
  float sim;         ///< float(DynamicBitset::Jaccard(a, b)), > 0.
};

/// \brief Immutable sparse similarity graph over a schema corpus.
class NeighborGraph {
 public:
  NeighborGraph() = default;

  /// Builds the graph over \p features (one bitset per schema, all the
  /// same dimensionality) according to \p options.
  static Result<NeighborGraph> Build(const std::vector<DynamicBitset>& features,
                                     const NeighborGraphOptions& options);

  /// Extension constructor, mirroring SimilarityMatrix(base, features):
  /// \p features is the full corpus whose prefix \p base was built over.
  /// Rows for the new tail schemas are computed exactly (brute-force
  /// kernel Jaccard against every earlier schema), so incremental adds do
  /// not depend on retained posting lists or signatures.
  NeighborGraph(const NeighborGraph& base,
                const std::vector<DynamicBitset>& features);

  std::size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_edges() const { return edges_.size() / 2; }

  /// Row \p i as a [begin, end) pointer pair, sorted by neighbor id.
  std::pair<const NeighborEdge*, const NeighborEdge*> Row(
      std::uint32_t i) const {
    return {edges_.data() + offsets_[i], edges_.data() + offsets_[i + 1]};
  }
  std::size_t Degree(std::uint32_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }

  /// Stored similarity of (a, b), or 0 when the edge is absent. O(log deg).
  float Similarity(std::uint32_t a, std::uint32_t b) const;

  /// True iff schema \p i has at least one feature bit set (its dense
  /// diagonal / self-similarity is 1 rather than 0).
  bool NonEmpty(std::uint32_t i) const { return nonempty_[i] != 0; }

  const NeighborGraphStats& stats() const { return stats_; }
  NeighborGraphMode mode() const { return mode_; }
  double edge_tau() const { return edge_tau_; }

  /// Tau-aware LSH parameter selection: the largest \p rows (and
  /// bands = num_hashes / rows) whose collision probability at \p tau
  /// meets \p target_recall; falls back to rows = 1, bands = num_hashes
  /// when even single-row banding misses the target.
  static void ChooseBanding(std::size_t num_hashes, double tau,
                            double target_recall, std::size_t* bands,
                            std::size_t* rows);

  /// 1 - (1 - sim^rows)^bands: probability a pair at Jaccard \p sim
  /// collides in at least one band.
  static double CollisionProbability(double sim, std::size_t bands,
                                     std::size_t rows);

 private:
  struct Triple {
    std::uint32_t a, b;
    float sim;
  };
  static NeighborGraph FromTriples(std::size_t n,
                                   const std::vector<Triple>& upper,
                                   std::vector<std::uint8_t> nonempty,
                                   NeighborGraphStats stats,
                                   std::size_t num_threads);
  void PruneTopK(std::size_t top_k, std::size_t num_threads);

  std::vector<std::uint64_t> offsets_;  ///< n + 1 row offsets into edges_.
  std::vector<NeighborEdge> edges_;     ///< Both directions of every edge.
  std::vector<std::uint8_t> nonempty_;  ///< Per-node "has any feature" flag.
  NeighborGraphStats stats_;
  NeighborGraphMode mode_ = NeighborGraphMode::kExact;
  double edge_tau_ = 0.0;
};

}  // namespace paygo

#endif  // PAYGO_CLUSTER_NEIGHBOR_GRAPH_H_
