#include "cluster/incremental.h"

#include <algorithm>

namespace paygo {

IncrementalClusterer::IncrementalClusterer(
    const Tokenizer& tokenizer, const FeatureVectorizer& vectorizer,
    std::vector<DynamicBitset> features, const DomainModel& model,
    IncrementalOptions options)
    : tokenizer_(tokenizer),
      vectorizer_(vectorizer),
      options_(options),
      features_(std::move(features)) {
  clusters_ = model.clusters();
  schema_domains_.resize(model.num_schemas());
  for (std::uint32_t i = 0; i < model.num_schemas(); ++i) {
    schema_domains_[i] = model.DomainsOf(i);
  }
}

const DomainModel& IncrementalClusterer::model() const {
  if (model_dirty_) {
    cached_model_ = DomainModel::Build(clusters_, schema_domains_);
    model_dirty_ = false;
  }
  return cached_model_;
}

double IncrementalClusterer::AverageDrift() const {
  return num_added_ > 0 ? drift_sum_ / static_cast<double>(num_added_) : 0.0;
}

Result<IncrementalAddResult> IncrementalClusterer::AddSchema(
    const Schema& schema) {
  if (schema.attributes.empty()) {
    return Status::InvalidArgument("schema has no attributes");
  }
  IncrementalAddResult out;
  out.schema_id = static_cast<std::uint32_t>(features_.size());

  // Featurize against the frozen lexicon; track unseen-term drift.
  const std::vector<std::string> terms =
      tokenizer_.TokenizeAll(schema.attributes);
  if (terms.empty()) {
    return Status::InvalidArgument(
        "no terms survived extraction for schema " + schema.source_name);
  }
  std::size_t unseen = 0;
  for (const std::string& t : terms) {
    if (vectorizer_.index().Match(t).empty()) ++unseen;
  }
  out.unseen_term_fraction =
      static_cast<double>(unseen) / static_cast<double>(terms.size());

  const DynamicBitset f = vectorizer_.VectorizeExternalTerms(terms);

  // s_sim against every existing schema, then s_c_sim per cluster — the
  // Algorithm 3 quantities for the newcomer.
  std::vector<double> sims(features_.size());
  for (std::size_t j = 0; j < features_.size(); ++j) {
    sims[j] = DynamicBitset::Jaccard(f, features_[j]);
  }
  double max_sim = 0.0;
  std::vector<double> sc(clusters_.size(), 0.0);
  for (std::uint32_t r = 0; r < clusters_.size(); ++r) {
    double total = 0.0;
    for (std::uint32_t j : clusters_[r]) total += sims[j];
    sc[r] = clusters_[r].empty()
                ? 0.0
                : total / static_cast<double>(clusters_[r].size());
    max_sim = std::max(max_sim, sc[r]);
  }

  std::vector<std::uint32_t> qualifying;
  double norm = 0.0;
  for (std::uint32_t r = 0; r < clusters_.size(); ++r) {
    if (sc[r] < options_.tau_c_sim) continue;
    if (max_sim > 0.0 && sc[r] / max_sim < 1.0 - options_.theta) continue;
    qualifying.push_back(r);
    norm += sc[r];
  }

  features_.push_back(f);
  schema_domains_.emplace_back();

  if (qualifying.empty()) {
    // Open a fresh singleton domain.
    const std::uint32_t new_domain =
        static_cast<std::uint32_t>(clusters_.size());
    clusters_.push_back({out.schema_id});
    schema_domains_.back() = {{new_domain, 1.0}};
    out.memberships = {{new_domain, 1.0}};
    out.created_new_domain = true;
  } else {
    // Home cluster: the most similar qualifying one.
    std::uint32_t home = qualifying[0];
    for (std::uint32_t r : qualifying) {
      if (sc[r] > sc[home]) home = r;
    }
    clusters_[home].push_back(out.schema_id);
    std::sort(clusters_[home].begin(), clusters_[home].end());
    for (std::uint32_t r : qualifying) {
      out.memberships.emplace_back(r, sc[r] / norm);
    }
    schema_domains_.back() = out.memberships;
  }

  model_dirty_ = true;
  ++num_added_;
  drift_sum_ += out.unseen_term_fraction;
  return out;
}

}  // namespace paygo
