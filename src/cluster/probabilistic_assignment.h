#ifndef PAYGO_CLUSTER_PROBABILISTIC_ASSIGNMENT_H_
#define PAYGO_CLUSTER_PROBABILISTIC_ASSIGNMENT_H_

/// \file probabilistic_assignment.h
/// \brief Algorithm 3: probabilistic schema-to-domain assignment.
///
/// Clusters partition the schema set; domains are probabilistic: a schema
/// may belong to several domains with probabilities that sum to 1. A schema
/// S_i is assigned to domain D_r (corresponding to cluster C_r) iff
///   (1) s_c_sim(S_i, C_r) >= tau_c_sim, and
///   (2) s_c_sim(S_i, C_r) / max_j s_c_sim(S_i, C_j) >= 1 - theta,
/// with probability proportional to s_c_sim(S_i, C_r) over the qualifying
/// domains D(S_i). theta quantifies the allowed uncertainty (thesis: 0.02).

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/hac.h"
#include "cluster/linkage.h"
#include "cluster/neighbor_graph.h"
#include "util/status.h"

namespace paygo {

/// \brief Options of Algorithm 3.
struct AssignmentOptions {
  /// Minimum schema-to-cluster similarity for membership; the thesis uses
  /// the same threshold as clustering.
  double tau_c_sim = 0.25;
  /// Uncertainty threshold theta in [0, 1] (thesis: 0.02). theta = 0 yields
  /// hard (single-domain) assignments wherever a unique maximum exists.
  double theta = 0.02;
  /// Algorithm 3 as written can leave D(S_i) empty when a schema's average
  /// similarity even to its own cluster is below tau_c_sim. Under strict
  /// semantics such a schema gets probability 0 everywhere (it contributes
  /// to no domain); otherwise it falls back to its home cluster with
  /// probability 1.
  bool strict_thesis_semantics = true;
};

/// \brief The probabilistic domain model: clusters plus membership
/// probabilities Pr(S_i in D_r).
class DomainModel {
 public:
  /// Number of domains (== number of clusters).
  std::size_t num_domains() const { return domain_schemas_.size(); }
  /// Number of schemas in the underlying corpus.
  std::size_t num_schemas() const { return schema_domains_.size(); }

  /// Pr(S_i in D_r); zero when S_i was not assigned to D_r.
  double Membership(std::uint32_t schema_id, std::uint32_t domain_id) const;

  /// The qualifying domains D(S_i) with their probabilities.
  const std::vector<std::pair<std::uint32_t, double>>& DomainsOf(
      std::uint32_t schema_id) const {
    return schema_domains_[schema_id];
  }

  /// S(D_r): schemas with non-zero membership in D_r, with probabilities.
  const std::vector<std::pair<std::uint32_t, double>>& SchemasOf(
      std::uint32_t domain_id) const {
    return domain_schemas_[domain_id];
  }

  /// Uncertain schemas of D_r: members with probability strictly in (0, 1)
  /// — the set S-hat(D_r) whose size drives classifier setup cost (§5.3).
  std::vector<std::uint32_t> UncertainSchemas(std::uint32_t domain_id) const;

  /// Certain schemas of D_r: members with probability exactly 1.
  std::vector<std::uint32_t> CertainSchemas(std::uint32_t domain_id) const;

  /// The hard cluster C_r the domain was derived from.
  const std::vector<std::uint32_t>& Cluster(std::uint32_t domain_id) const {
    return clusters_[domain_id];
  }
  const std::vector<std::vector<std::uint32_t>>& clusters() const {
    return clusters_;
  }

  /// True iff the domain's originating cluster is a singleton (an
  /// "unclustered" schema in the thesis's terminology).
  bool IsSingletonDomain(std::uint32_t domain_id) const {
    return clusters_[domain_id].size() == 1;
  }

  /// Sum over domains of Pr(S_i in D_r) for schema \p schema_id (1 for
  /// assigned schemas, 0 for dropped ones under strict semantics).
  double TotalMembership(std::uint32_t schema_id) const;

  /// Builds the model; exposed via AssignProbabilities().
  static DomainModel Build(
      std::vector<std::vector<std::uint32_t>> clusters,
      std::vector<std::vector<std::pair<std::uint32_t, double>>>
          schema_domains);

 private:
  std::vector<std::vector<std::uint32_t>> clusters_;
  // Per schema: sorted (domain, probability>0) pairs.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> schema_domains_;
  // Per domain: sorted (schema, probability>0) pairs.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> domain_schemas_;
};

/// \brief Runs Algorithm 3 on the clustering output.
///
/// \p sims must be the schema similarity matrix the clustering ran on.
Result<DomainModel> AssignProbabilities(const SimilarityMatrix& sims,
                                        const HacResult& clustering,
                                        const AssignmentOptions& options);

/// \brief Algorithm 3 over the sparse neighbor graph — the dense-matrix-free
/// build path.
///
/// Candidate domains for schema S_i are the clusters containing any of its
/// graph neighbors plus its home cluster; every other cluster has
/// s_c_sim = 0 < tau_c_sim and can never qualify. When \p graph is an exact
/// all-nonzero graph (edge_tau == 0) the result is bitwise identical to the
/// dense overload: per-cluster sums walk members in the same ascending order
/// and absent entries contribute exactly 0.0. Requires tau_c_sim > 0 (with
/// tau = 0 the dense semantics assign zero-similarity domains, which a
/// sparse walk cannot see). Schemas are processed in parallel on
/// \p num_threads (0 = hardware concurrency); each schema's output row is
/// written by exactly one chunk, so the result is thread-count independent.
Result<DomainModel> AssignProbabilities(const NeighborGraph& graph,
                                        const HacResult& clustering,
                                        const AssignmentOptions& options,
                                        std::size_t num_threads = 1);

/// s_c_sim(S_i, C_r): average similarity between schema \p schema_id and all
/// schemas of \p cluster (including itself when it is a member, per the
/// thesis's formula).
double SchemaClusterSimilarity(const SimilarityMatrix& sims,
                               std::uint32_t schema_id,
                               const std::vector<std::uint32_t>& cluster);

}  // namespace paygo

#endif  // PAYGO_CLUSTER_PROBABILISTIC_ASSIGNMENT_H_
