#include "cluster/fuzzy_assignment.h"

#include <algorithm>
#include <cmath>

namespace paygo {

Result<DomainModel> AssignFuzzyMemberships(
    const SimilarityMatrix& sims, const HacResult& clustering,
    const FuzzyAssignmentOptions& options) {
  if (options.fuzzifier <= 1.0) {
    return Status::InvalidArgument("fuzzifier must be > 1");
  }
  if (options.membership_cutoff < 0.0 || options.membership_cutoff >= 1.0) {
    return Status::InvalidArgument("membership_cutoff must be in [0, 1)");
  }
  const auto& clusters = clustering.clusters;
  const std::size_t num_schemas = sims.size();
  const double exponent = 2.0 / (options.fuzzifier - 1.0);
  constexpr double kEps = 1e-9;

  std::vector<std::vector<std::pair<std::uint32_t, double>>> schema_domains(
      num_schemas);
  std::vector<double> dist(clusters.size());
  for (std::uint32_t i = 0; i < num_schemas; ++i) {
    // Distances to every cluster; exact (distance ~0) memberships short-
    // circuit as in standard FCM.
    int exact = -1;
    for (std::uint32_t r = 0; r < clusters.size(); ++r) {
      dist[r] = 1.0 - SchemaClusterSimilarity(sims, i, clusters[r]);
      if (dist[r] < kEps && exact < 0) exact = static_cast<int>(r);
    }
    std::vector<double> memberships(clusters.size(), 0.0);
    if (exact >= 0) {
      memberships[static_cast<std::size_t>(exact)] = 1.0;
    } else {
      for (std::uint32_t r = 0; r < clusters.size(); ++r) {
        double denom = 0.0;
        for (std::uint32_t j = 0; j < clusters.size(); ++j) {
          denom += std::pow(dist[r] / dist[j], exponent);
        }
        memberships[r] = 1.0 / denom;
      }
    }
    // Truncate the tail and renormalize.
    double norm = 0.0;
    for (double m : memberships) {
      if (m >= options.membership_cutoff) norm += m;
    }
    if (norm <= 0.0) {
      // Everything below the cutoff: keep the single best membership.
      const std::size_t best = static_cast<std::size_t>(
          std::max_element(memberships.begin(), memberships.end()) -
          memberships.begin());
      schema_domains[i] = {{static_cast<std::uint32_t>(best), 1.0}};
      continue;
    }
    for (std::uint32_t r = 0; r < clusters.size(); ++r) {
      if (memberships[r] >= options.membership_cutoff) {
        schema_domains[i].emplace_back(r, memberships[r] / norm);
      }
    }
  }
  return DomainModel::Build(clusters, std::move(schema_domains));
}

}  // namespace paygo
