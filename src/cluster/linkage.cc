#include "cluster/linkage.h"

namespace paygo {

std::string LinkageKindName(LinkageKind kind) {
  switch (kind) {
    case LinkageKind::kAverage:
      return "Avg. Jaccard";
    case LinkageKind::kMin:
      return "Min. Jaccard";
    case LinkageKind::kMax:
      return "Max. Jaccard";
    case LinkageKind::kTotal:
      return "Total Jaccard";
  }
  return "Unknown";
}

const std::vector<LinkageKind>& AllLinkageKinds() {
  static const std::vector<LinkageKind> kAll = {
      LinkageKind::kAverage, LinkageKind::kMin, LinkageKind::kMax,
      LinkageKind::kTotal};
  return kAll;
}

SimilarityMatrix::SimilarityMatrix(const std::vector<DynamicBitset>& features)
    : n_(features.size()), values_(n_ * n_, 0.0f) {
  for (std::size_t i = 0; i < n_; ++i) {
    values_[i * n_ + i] = features[i].None() ? 0.0f : 1.0f;
    for (std::size_t j = i + 1; j < n_; ++j) {
      const float s =
          static_cast<float>(DynamicBitset::Jaccard(features[i], features[j]));
      values_[i * n_ + j] = s;
      values_[j * n_ + i] = s;
    }
  }
}

}  // namespace paygo
