#include "cluster/linkage.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "util/thread_pool.h"

namespace paygo {

std::string LinkageKindName(LinkageKind kind) {
  switch (kind) {
    case LinkageKind::kAverage:
      return "Avg. Jaccard";
    case LinkageKind::kMin:
      return "Min. Jaccard";
    case LinkageKind::kMax:
      return "Max. Jaccard";
    case LinkageKind::kTotal:
      return "Total Jaccard";
  }
  return "Unknown";
}

const std::vector<LinkageKind>& AllLinkageKinds() {
  static const std::vector<LinkageKind> kAll = {
      LinkageKind::kAverage, LinkageKind::kMin, LinkageKind::kMax,
      LinkageKind::kTotal};
  return kAll;
}

SimilarityMatrix::SimilarityMatrix(const std::vector<DynamicBitset>& features,
                                   std::size_t num_threads)
    : n_(features.size()), values_(n_ * n_, 0.0f) {
  // Row i owns entries (i, j >= i) and their mirrors (j, i): rows write
  // disjoint slots, so chunked rows race on nothing and the matrix is
  // bit-identical at any thread count.
  auto fill_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      values_[i * n_ + i] = features[i].None() ? 0.0f : 1.0f;
      for (std::size_t j = i + 1; j < n_; ++j) {
        const float s = static_cast<float>(
            DynamicBitset::Jaccard(features[i], features[j]));
        values_[i * n_ + j] = s;
        values_[j * n_ + i] = s;
      }
    }
  };
  const std::size_t width = ThreadPool::ResolveThreadCount(num_threads);
  if (width > 1 && n_ > 1) {
    ThreadPool pool(width);
    // Rows are heavy (n - i Jaccards over dim-L bitsets each); a small
    // grain plus chunk oversubscription balances the triangular load.
    pool.ParallelFor(0, n_, /*grain=*/8, [&](const ThreadPool::Chunk& c) {
      fill_rows(c.begin, c.end);
    });
  } else {
    fill_rows(0, n_);
  }
}

SimilarityMatrix::SimilarityMatrix(const SimilarityMatrix& base,
                                   const std::vector<DynamicBitset>& features)
    : n_(features.size()), values_(n_ * n_, 0.0f) {
  const std::size_t old_n = base.n_;
  assert(n_ == old_n + 1);
  // Old block row by row (the stride changed from old_n to n_), then the
  // single new row/column.
  for (std::size_t i = 0; i < old_n; ++i) {
    const float* src = base.values_.data() + i * old_n;
    std::copy(src, src + old_n, values_.data() + i * n_);
  }
  const std::size_t k = n_ - 1;
  values_[k * n_ + k] = features[k].None() ? 0.0f : 1.0f;
  for (std::size_t j = 0; j < k; ++j) {
    const float s =
        static_cast<float>(DynamicBitset::Jaccard(features[k], features[j]));
    values_[k * n_ + j] = s;
    values_[j * n_ + k] = s;
  }
}

}  // namespace paygo
