#include "cluster/linkage.h"

#include <memory>

#include "util/thread_pool.h"

namespace paygo {

std::string LinkageKindName(LinkageKind kind) {
  switch (kind) {
    case LinkageKind::kAverage:
      return "Avg. Jaccard";
    case LinkageKind::kMin:
      return "Min. Jaccard";
    case LinkageKind::kMax:
      return "Max. Jaccard";
    case LinkageKind::kTotal:
      return "Total Jaccard";
  }
  return "Unknown";
}

const std::vector<LinkageKind>& AllLinkageKinds() {
  static const std::vector<LinkageKind> kAll = {
      LinkageKind::kAverage, LinkageKind::kMin, LinkageKind::kMax,
      LinkageKind::kTotal};
  return kAll;
}

SimilarityMatrix::SimilarityMatrix(const std::vector<DynamicBitset>& features,
                                   std::size_t num_threads)
    : n_(features.size()), values_(n_ * n_, 0.0f) {
  // Row i owns entries (i, j >= i) and their mirrors (j, i): rows write
  // disjoint slots, so chunked rows race on nothing and the matrix is
  // bit-identical at any thread count.
  auto fill_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      values_[i * n_ + i] = features[i].None() ? 0.0f : 1.0f;
      for (std::size_t j = i + 1; j < n_; ++j) {
        const float s = static_cast<float>(
            DynamicBitset::Jaccard(features[i], features[j]));
        values_[i * n_ + j] = s;
        values_[j * n_ + i] = s;
      }
    }
  };
  const std::size_t width = ThreadPool::ResolveThreadCount(num_threads);
  if (width > 1 && n_ > 1) {
    ThreadPool pool(width);
    // Rows are heavy (n - i Jaccards over dim-L bitsets each); a small
    // grain plus chunk oversubscription balances the triangular load.
    pool.ParallelFor(0, n_, /*grain=*/8, [&](const ThreadPool::Chunk& c) {
      fill_rows(c.begin, c.end);
    });
  } else {
    fill_rows(0, n_);
  }
}

}  // namespace paygo
