#ifndef PAYGO_CLUSTER_DENDROGRAM_H_
#define PAYGO_CLUSTER_DENDROGRAM_H_

/// \file dendrogram.h
/// \brief The cluster tree behind Algorithm 2 (Section 2.1.1).
///
/// Hierarchical clustering "views the dataset as a tree of clusters";
/// Algorithm 2 stops partway up that tree at tau_c_sim. HacResult records
/// the merge history, and this module reconstructs the explicit tree —
/// useful for inspecting WHY two schemas merged (at what similarity), for
/// exporting to standard tools (Newick), and for cutting the tree at a
/// different threshold without re-running the algorithm.

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/hac.h"
#include "schema/corpus.h"
#include "util/status.h"

namespace paygo {

/// \brief One node of the merge forest.
struct DendrogramNode {
  /// Child node ids, or -1/-1 for a leaf.
  int left = -1;
  int right = -1;
  /// For leaves: the schema index; -1 for internal nodes.
  int schema_id = -1;
  /// For internal nodes: the similarity at which the merge happened.
  double similarity = 0.0;
  /// Number of schemas under this node.
  std::size_t size = 1;
};

/// \brief The merge forest of one clustering run (one tree per final
/// cluster; singletons are leaf-only trees).
class Dendrogram {
 public:
  /// Reconstructs the forest by replaying \p result's merge history over
  /// \p num_schemas leaves.
  static Result<Dendrogram> Build(std::size_t num_schemas,
                                  const HacResult& result);

  const std::vector<DendrogramNode>& nodes() const { return nodes_; }
  /// Root node ids, one per tree, ordered by smallest contained schema.
  const std::vector<int>& roots() const { return roots_; }

  /// Cuts the forest at \p tau: subtrees whose merge similarity is >= tau
  /// stay together. Cutting at the clustering's own tau reproduces its
  /// clusters; any higher tau refines them without re-running Algorithm 2.
  std::vector<std::vector<std::uint32_t>> CutAt(double tau) const;

  /// Newick serialization of the forest (one tree per line); leaf labels
  /// are schema source names when \p corpus is given, else indices.
  /// Branch annotations carry the merge similarity.
  std::string ToNewick(const SchemaCorpus* corpus = nullptr) const;

  /// Indented ASCII rendering (for CLI/debugging), depth-capped.
  std::string ToAscii(const SchemaCorpus* corpus = nullptr,
                      std::size_t max_depth = 6) const;

 private:
  void CollectLeaves(int node, std::vector<std::uint32_t>* out) const;
  void AppendNewick(int node, const SchemaCorpus* corpus,
                    std::string* out) const;
  void AppendAscii(int node, const SchemaCorpus* corpus, std::size_t depth,
                   std::size_t max_depth, std::string* out) const;

  std::vector<DendrogramNode> nodes_;
  std::vector<int> roots_;
};

}  // namespace paygo

#endif  // PAYGO_CLUSTER_DENDROGRAM_H_
