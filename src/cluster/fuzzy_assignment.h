#ifndef PAYGO_CLUSTER_FUZZY_ASSIGNMENT_H_
#define PAYGO_CLUSTER_FUZZY_ASSIGNMENT_H_

/// \file fuzzy_assignment.h
/// \brief Fuzzy-membership alternative to Algorithm 3 (Section 2.1.1).
///
/// The thesis weighs two ways to express uncertain schema-to-domain
/// membership: fuzzy set theory (fuzzy c-means-style membership degrees)
/// and probability theory, choosing the latter because it composes with
/// probabilistic mediation. This module implements the road not taken so
/// the choice can be ablated: memberships follow the FCM formula
///
///   u_ir = 1 / sum_j (d_ir / d_ij)^(2/(m-1))
///
/// over distances d_ir = 1 - s_c_sim(S_i, C_r), with fuzzifier m > 1.
/// Small-membership tails are truncated at a cutoff and the remainder is
/// renormalized, yielding a DomainModel directly comparable to
/// AssignProbabilities' output.

#include "cluster/hac.h"
#include "cluster/linkage.h"
#include "cluster/probabilistic_assignment.h"
#include "util/status.h"

namespace paygo {

/// \brief Options of the fuzzy assignment.
struct FuzzyAssignmentOptions {
  /// Fuzzifier m (> 1): larger means softer memberships. The FCM
  /// literature default is 2.
  double fuzzifier = 2.0;
  /// Memberships below this are dropped and the rest renormalized —
  /// without a cutoff every schema belongs a little to every domain,
  /// which the probabilistic machinery downstream cannot afford.
  double membership_cutoff = 0.1;
};

/// \brief Computes fuzzy memberships of schemas in the clusters of
/// \p clustering; the clusters themselves are untouched.
Result<DomainModel> AssignFuzzyMemberships(
    const SimilarityMatrix& sims, const HacResult& clustering,
    const FuzzyAssignmentOptions& options = {});

}  // namespace paygo

#endif  // PAYGO_CLUSTER_FUZZY_ASSIGNMENT_H_
