#include "mediate/mediator.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "obs/trace.h"

namespace paygo {
namespace {

/// Union-find over attribute indices for single-link attribute clustering.
struct UnionFind {
  std::vector<std::uint32_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::uint32_t Find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(std::uint32_t a, std::uint32_t b) { parent[Find(a)] = Find(b); }
};

}  // namespace

double AttributeNameSimilarity(const std::vector<std::string>& terms_a,
                               const std::vector<std::string>& terms_b,
                               const TermSimilarity& sim, double tau_t_sim) {
  if (terms_a.empty() || terms_b.empty()) return 0.0;
  // Soft Dice: each term contributes its best-partner t_sim, but only when
  // that similarity clears tau_t_sim — sub-threshold matches count zero so
  // a single shared sub-word cannot chain unrelated attribute names (e.g.
  // "year of publish" vs "publisher" share only publish~publisher).
  auto matched_weight = [&](const std::vector<std::string>& from,
                            const std::vector<std::string>& to) {
    double total = 0.0;
    for (const std::string& t : from) {
      double best = 0.0;
      for (const std::string& u : to) {
        best = std::max(best, sim.Compute(t, u));
      }
      if (best >= tau_t_sim) total += best;
    }
    return total;
  };
  return (matched_weight(terms_a, terms_b) + matched_weight(terms_b, terms_a)) /
         static_cast<double>(terms_a.size() + terms_b.size());
}

Result<std::vector<DomainAttribute>> CollectFrequentAttributes(
    const SchemaCorpus& corpus, const Tokenizer& tokenizer,
    const std::vector<std::pair<std::uint32_t, double>>& members,
    double attr_freq_threshold) {
  PAYGO_TRACE_SPAN("mediate.collect_attributes");
  if (attr_freq_threshold < 0.0 || attr_freq_threshold > 1.0) {
    return Status::InvalidArgument("attr_freq_threshold must be in [0, 1]");
  }
  if (members.empty()) {
    return Status::InvalidArgument("domain has no member schemas");
  }
  for (const auto& [schema_id, prob] : members) {
    if (schema_id >= corpus.size()) {
      return Status::OutOfRange("member schema id out of range");
    }
    if (prob <= 0.0 || prob > 1.0) {
      return Status::InvalidArgument(
          "membership probability must be in (0, 1]");
    }
  }

  // Collect canonical attribute names with their weighted schema
  // frequencies; a name counts once per schema containing it. std::map
  // keeps the output sorted by canonical name (determinism).
  std::map<std::string, DomainAttribute> attrs;
  double total_weight = 0.0;
  for (const auto& [schema_id, prob] : members) {
    total_weight += prob;
    std::vector<std::string> seen;
    for (const std::string& raw : corpus.schema(schema_id).attributes) {
      const std::string canon = CanonicalAttributeName(raw);
      if (canon.empty()) continue;
      if (std::find(seen.begin(), seen.end(), canon) != seen.end()) continue;
      seen.push_back(canon);
      DomainAttribute& info = attrs[canon];
      info.weight += prob;
      if (info.display.empty()) {
        info.canonical = canon;
        info.display = raw;
        info.terms = tokenizer.Tokenize(raw);
      }
    }
  }

  std::vector<DomainAttribute> kept;
  for (auto& [canon, info] : attrs) {
    if (total_weight <= 0.0) continue;
    if (info.weight / total_weight >= attr_freq_threshold) {
      kept.push_back(std::move(info));
    }
  }
  return kept;
}

Result<DomainMediation> Mediator::BuildForDomain(
    const SchemaCorpus& corpus, const Tokenizer& tokenizer,
    std::vector<std::pair<std::uint32_t, double>> members,
    const MediatorOptions& options) {
  PAYGO_TRACE_SPAN("mediate.build_domain");
  PAYGO_ASSIGN_OR_RETURN(
      const std::vector<DomainAttribute> kept,
      CollectFrequentAttributes(corpus, tokenizer, members,
                                options.attr_freq_threshold));
  DomainMediation out;
  out.members = members;
  const TermSimilarity sim(options.similarity_kind);

  // Single-link clustering of the kept attribute names.
  UnionFind uf(kept.size());
  {
    PAYGO_TRACE_SPAN("mediate.cluster_attributes");
    for (std::uint32_t i = 0; i < kept.size(); ++i) {
      for (std::uint32_t j = i + 1; j < kept.size(); ++j) {
        const double s = AttributeNameSimilarity(kept[i].terms, kept[j].terms,
                                                 sim, options.tau_t_sim);
        if (s >= options.attr_sim_threshold) uf.Union(i, j);
      }
    }
  }
  std::vector<std::vector<std::string>> mediated_terms;
  {
    PAYGO_TRACE_SPAN("mediate.mediated_attributes");
    std::map<std::uint32_t, std::vector<std::uint32_t>> groups;
    for (std::uint32_t i = 0; i < kept.size(); ++i) {
      groups[uf.Find(i)].push_back(i);
    }
    for (const auto& [root, group] : groups) {
      MediatedAttribute ma;
      double best_weight = -1.0;
      for (std::uint32_t i : group) {
        const DomainAttribute& info = kept[i];
        ma.members.push_back(info.canonical);
        ma.weight += info.weight;
        if (info.weight > best_weight) {
          best_weight = info.weight;
          ma.name = info.display;
        }
      }
      std::sort(ma.members.begin(), ma.members.end());
      out.mediated.attributes.push_back(std::move(ma));
    }
    // Deterministic order: heaviest mediated attribute first.
    std::sort(out.mediated.attributes.begin(), out.mediated.attributes.end(),
              [](const MediatedAttribute& a, const MediatedAttribute& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.name < b.name;
              });

    // Precompute mediated-attribute term sets for candidate matching.
    mediated_terms.reserve(out.mediated.size());
    for (const MediatedAttribute& ma : out.mediated.attributes) {
      mediated_terms.push_back(tokenizer.Tokenize(ma.name));
    }
  }

  // 4. Probabilistic mappings per member schema.
  PAYGO_TRACE_SPAN("mediate.mappings");
  for (const auto& [schema_id, prob] : members) {
    (void)prob;
    const Schema& schema = corpus.schema(schema_id);
    ProbabilisticMapping pm;
    pm.schema_id = schema_id;

    // Candidate mediated attributes per source attribute, with weights.
    struct Candidate {
      int mediated;
      double weight;
    };
    std::vector<std::vector<Candidate>> candidates(schema.attributes.size());
    for (std::size_t a = 0; a < schema.attributes.size(); ++a) {
      const std::string canon = CanonicalAttributeName(schema.attributes[a]);
      const int direct = out.mediated.FindByMember(canon);
      if (direct >= 0) {
        // Exact member: the correspondence is certain.
        candidates[a].push_back({direct, 1.0});
        continue;
      }
      const std::vector<std::string> terms =
          tokenizer.Tokenize(schema.attributes[a]);
      double best = 0.0;
      std::vector<Candidate> cands;
      for (std::size_t m = 0; m < out.mediated.size(); ++m) {
        const double s = AttributeNameSimilarity(terms, mediated_terms[m], sim,
                                                 options.tau_t_sim);
        if (s >= options.attr_sim_threshold) {
          cands.push_back({static_cast<int>(m), s});
          best = std::max(best, s);
        }
      }
      for (const Candidate& c : cands) {
        if (c.weight >= best * options.ambiguity_ratio) {
          candidates[a].push_back(c);
        }
      }
      // No candidate -> the attribute stays unmapped in every alternative.
    }

    // Trim candidate lists (best-first) until the mapping count fits.
    for (auto& cl : candidates) {
      std::sort(cl.begin(), cl.end(), [](const Candidate& x, const Candidate& y) {
        if (x.weight != y.weight) return x.weight > y.weight;
        return x.mediated < y.mediated;
      });
    }
    for (;;) {
      std::size_t product = 1;
      std::size_t widest = 0;
      std::size_t widest_size = 1;
      for (std::size_t a = 0; a < candidates.size(); ++a) {
        const std::size_t k = std::max<std::size_t>(candidates[a].size(), 1);
        product *= k;
        if (k > widest_size) {
          widest_size = k;
          widest = a;
        }
        if (product > options.max_mappings_per_schema) break;
      }
      if (product <= options.max_mappings_per_schema) break;
      candidates[widest].pop_back();
    }

    // Enumerate the cartesian product of candidate choices.
    std::vector<AttributeMapping> alts;
    alts.push_back({std::vector<int>(schema.attributes.size(), -1), 1.0});
    for (std::size_t a = 0; a < candidates.size(); ++a) {
      if (candidates[a].empty()) continue;
      double norm = 0.0;
      for (const Candidate& c : candidates[a]) norm += c.weight;
      std::vector<AttributeMapping> next;
      next.reserve(alts.size() * candidates[a].size());
      for (const AttributeMapping& base : alts) {
        for (const Candidate& c : candidates[a]) {
          AttributeMapping ext = base;
          ext.target[a] = c.mediated;
          ext.probability *= c.weight / norm;
          next.push_back(std::move(ext));
        }
      }
      alts = std::move(next);
    }
    std::sort(alts.begin(), alts.end(),
              [](const AttributeMapping& x, const AttributeMapping& y) {
                if (x.probability != y.probability) {
                  return x.probability > y.probability;
                }
                return x.target < y.target;
              });
    pm.alternatives = std::move(alts);
    out.mappings.push_back(std::move(pm));
  }
  return out;
}

}  // namespace paygo
