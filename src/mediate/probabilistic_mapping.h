#ifndef PAYGO_MEDIATE_PROBABILISTIC_MAPPING_H_
#define PAYGO_MEDIATE_PROBABILISTIC_MAPPING_H_

/// \file probabilistic_mapping.h
/// \brief Probabilistic schema mappings Phi(S_i, M_r) of Section 4.4.
///
/// A probabilistic mapping from a source schema to a mediated schema is a
/// set of possible mappings, each assigned a probability; the probabilities
/// sum to 1. One possible mapping assigns each source attribute either a
/// mediated attribute or "unmapped".

#include <cstdint>
#include <vector>

namespace paygo {

/// \brief One possible mapping phi: source attribute -> mediated attribute.
struct AttributeMapping {
  /// For each source-attribute position: the mediated attribute index it
  /// maps to, or -1 when unmapped.
  std::vector<int> target;
  /// Pr(phi): probability this mapping is the correct one.
  double probability = 0.0;
};

/// \brief The probabilistic mapping of one source schema: a distribution
/// over possible mappings.
struct ProbabilisticMapping {
  /// Corpus index of the source schema.
  std::uint32_t schema_id = 0;
  /// The possible mappings, descending by probability; probabilities sum
  /// to 1 (up to rounding).
  std::vector<AttributeMapping> alternatives;

  /// Marginal probability that source attribute \p attr maps to mediated
  /// attribute \p mediated (summed over alternatives).
  double MarginalCorrespondence(std::size_t attr, int mediated) const;
};

}  // namespace paygo

#endif  // PAYGO_MEDIATE_PROBABILISTIC_MAPPING_H_
