#ifndef PAYGO_MEDIATE_MEDIATED_SCHEMA_H_
#define PAYGO_MEDIATE_MEDIATED_SCHEMA_H_

/// \file mediated_schema.h
/// \brief Mediated schemas (Section 4.4).
///
/// A mediated schema M_r = {A_1 .. A_|Mr|} where each mediated attribute is
/// a cluster of similar source-attribute names drawn from the schemas of a
/// domain — the structure produced by the probabilistic mediation approach
/// of Das Sarma et al. [8], which this module reimplements as a substrate.

#include <cstdint>
#include <string>
#include <vector>

namespace paygo {

/// \brief One mediated attribute: a cluster of similar source attributes.
struct MediatedAttribute {
  /// Display name — the most frequent member attribute.
  std::string name;
  /// Canonicalized source-attribute names grouped into this mediated
  /// attribute, sorted.
  std::vector<std::string> members;
  /// Sum of membership-weighted schema counts of the members (how well the
  /// attribute is represented in the domain).
  double weight = 0.0;
};

/// \brief A mediated schema for one domain.
struct MediatedSchema {
  std::vector<MediatedAttribute> attributes;

  std::size_t size() const { return attributes.size(); }

  /// Index of the mediated attribute containing the canonicalized source
  /// attribute \p canonical_attr, or -1.
  int FindByMember(const std::string& canonical_attr) const;

  /// Index of the mediated attribute whose display name is \p name, or -1.
  int FindByName(const std::string& name) const;
};

/// Canonical form of a raw attribute name used as the clustering/mapping
/// key: lower-cased, terms joined by single spaces.
std::string CanonicalAttributeName(const std::string& raw);

}  // namespace paygo

#endif  // PAYGO_MEDIATE_MEDIATED_SCHEMA_H_
