#include "mediate/probabilistic_mediated_schema.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace paygo {
namespace {

struct UnionFind {
  std::vector<std::uint32_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::uint32_t Find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(std::uint32_t a, std::uint32_t b) { parent[Find(a)] = Find(b); }
};

/// Builds a MediatedSchema from a resolved clustering of the attributes.
MediatedSchema CloseToSchema(const std::vector<DomainAttribute>& attrs,
                             UnionFind& uf) {
  std::map<std::uint32_t, std::vector<std::uint32_t>> groups;
  for (std::uint32_t i = 0; i < attrs.size(); ++i) {
    groups[uf.Find(i)].push_back(i);
  }
  MediatedSchema schema;
  for (const auto& [root, group] : groups) {
    MediatedAttribute ma;
    double best_weight = -1.0;
    for (std::uint32_t i : group) {
      ma.members.push_back(attrs[i].canonical);
      ma.weight += attrs[i].weight;
      if (attrs[i].weight > best_weight) {
        best_weight = attrs[i].weight;
        ma.name = attrs[i].display;
      }
    }
    std::sort(ma.members.begin(), ma.members.end());
    schema.attributes.push_back(std::move(ma));
  }
  std::sort(schema.attributes.begin(), schema.attributes.end(),
            [](const MediatedAttribute& a, const MediatedAttribute& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.name < b.name;
            });
  return schema;
}

/// Canonical serialization of a clustering for deduplication.
std::vector<std::vector<std::string>> SchemaKey(const MediatedSchema& s) {
  std::vector<std::vector<std::string>> key;
  for (const MediatedAttribute& a : s.attributes) key.push_back(a.members);
  std::sort(key.begin(), key.end());
  return key;
}

}  // namespace

double ProbabilisticMediatedSchema::CoMediationProbability(
    const std::string& canonical_a, const std::string& canonical_b) const {
  double total = 0.0;
  for (const MediatedSchemaAlternative& alt : alternatives) {
    for (const MediatedAttribute& ma : alt.schema.attributes) {
      const bool has_a = std::binary_search(ma.members.begin(),
                                            ma.members.end(), canonical_a);
      if (!has_a) continue;
      if (std::binary_search(ma.members.begin(), ma.members.end(),
                             canonical_b)) {
        total += alt.probability;
      }
      break;
    }
  }
  return total;
}

Result<ProbabilisticMediatedSchema> BuildProbabilisticMediatedSchema(
    const SchemaCorpus& corpus, const Tokenizer& tokenizer,
    const std::vector<std::pair<std::uint32_t, double>>& members,
    const PMedSchemaOptions& options) {
  if (options.uncertainty_band < 0.0 || options.uncertainty_band >= 0.5) {
    return Status::InvalidArgument("uncertainty_band must be in [0, 0.5)");
  }
  if (options.max_alternatives == 0 ||
      options.max_borderline_pairs > 20) {
    return Status::InvalidArgument(
        "max_alternatives must be positive and max_borderline_pairs <= 20");
  }
  PAYGO_ASSIGN_OR_RETURN(
      const std::vector<DomainAttribute> attrs,
      CollectFrequentAttributes(corpus, tokenizer, members,
                                options.base.attr_freq_threshold));
  const TermSimilarity sim(options.base.similarity_kind);
  const double thr = options.base.attr_sim_threshold;
  const double band = options.uncertainty_band;

  // Classify attribute pairs: certain merges, and borderline pairs with a
  // merge probability linear across the uncertainty band (0.5 exactly at
  // the threshold).
  struct Borderline {
    std::uint32_t i, j;
    double merge_prob;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> certain_edges;
  std::vector<Borderline> borderline;
  for (std::uint32_t i = 0; i < attrs.size(); ++i) {
    for (std::uint32_t j = i + 1; j < attrs.size(); ++j) {
      const double s = AttributeNameSimilarity(attrs[i].terms, attrs[j].terms,
                                               sim, options.base.tau_t_sim);
      if (s >= thr + band) {
        certain_edges.emplace_back(i, j);
      } else if (s > thr - band) {
        const double p =
            std::min(0.95, std::max(0.05, (s - (thr - band)) / (2.0 * band)));
        borderline.push_back({i, j, p});
      }
    }
  }

  // Keep the most ambiguous pairs; resolve the overflow deterministically.
  std::sort(borderline.begin(), borderline.end(),
            [](const Borderline& a, const Borderline& b) {
              const double da = std::abs(a.merge_prob - 0.5);
              const double db = std::abs(b.merge_prob - 0.5);
              if (da != db) return da < db;
              if (a.i != b.i) return a.i < b.i;
              return a.j < b.j;
            });
  while (borderline.size() > options.max_borderline_pairs) {
    const Borderline& overflow = borderline.back();
    if (overflow.merge_prob >= 0.5) {
      certain_edges.emplace_back(overflow.i, overflow.j);
    }
    borderline.pop_back();
  }

  ProbabilisticMediatedSchema out;
  for (const Borderline& b : borderline) {
    out.borderline_pairs.emplace_back(attrs[b.i].canonical,
                                      attrs[b.j].canonical);
  }

  // Enumerate resolutions; deduplicate clusterings that coincide after the
  // single-link closure.
  const std::size_t num_b = borderline.size();
  std::map<std::vector<std::vector<std::string>>,
           std::pair<double, MediatedSchema>>
      dedup;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << num_b); ++mask) {
    double prob = 1.0;
    UnionFind uf(attrs.size());
    for (const auto& [i, j] : certain_edges) uf.Union(i, j);
    for (std::size_t k = 0; k < num_b; ++k) {
      if ((mask >> k) & 1) {
        uf.Union(borderline[k].i, borderline[k].j);
        prob *= borderline[k].merge_prob;
      } else {
        prob *= 1.0 - borderline[k].merge_prob;
      }
    }
    MediatedSchema schema = CloseToSchema(attrs, uf);
    auto key = SchemaKey(schema);
    auto it = dedup.find(key);
    if (it == dedup.end()) {
      dedup.emplace(std::move(key), std::make_pair(prob, std::move(schema)));
    } else {
      it->second.first += prob;
    }
  }

  for (auto& [key, entry] : dedup) {
    out.alternatives.push_back({std::move(entry.second), entry.first});
  }
  std::sort(out.alternatives.begin(), out.alternatives.end(),
            [](const MediatedSchemaAlternative& a,
               const MediatedSchemaAlternative& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.schema.size() < b.schema.size();
            });
  if (out.alternatives.size() > options.max_alternatives) {
    out.alternatives.resize(options.max_alternatives);
  }
  double norm = 0.0;
  for (const auto& alt : out.alternatives) norm += alt.probability;
  if (norm > 0.0) {
    for (auto& alt : out.alternatives) alt.probability /= norm;
  }
  return out;
}

}  // namespace paygo
