#ifndef PAYGO_MEDIATE_MEDIATOR_H_
#define PAYGO_MEDIATE_MEDIATOR_H_

/// \file mediator.h
/// \brief Automatic probabilistic schema mediation and mapping.
///
/// Reimplements the substrate of Das Sarma et al. [8] that the thesis plugs
/// its clustering into (Section 4.4):
///
///  1. collect the attribute names of a domain's schemas, weighted by the
///     schemas' membership probabilities;
///  2. drop attributes whose (weighted) schema frequency is below a
///     frequency threshold (the tractability device Section 6.3 studies);
///  3. cluster the surviving attribute names by t_sim-based name similarity
///     — each cluster is one mediated attribute;
///  4. for every member schema, emit a probabilistic mapping: ambiguous
///     source attributes (similar to several mediated attributes) fan out
///     into alternative mappings with probabilities proportional to name
///     similarity.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mediate/mediated_schema.h"
#include "mediate/probabilistic_mapping.h"
#include "schema/corpus.h"
#include "text/term_similarity.h"
#include "text/tokenizer.h"
#include "util/status.h"

namespace paygo {

/// \brief Options of schema mediation.
struct MediatorOptions {
  /// Attributes must appear in at least this fraction of the domain's
  /// (membership-weighted) schemas to enter the mediated schema ([8] uses
  /// 0.1; Section 6.3 sweeps this).
  double attr_freq_threshold = 0.1;
  /// Two attribute names belong to the same mediated attribute when their
  /// name similarity reaches this (single-link over attribute names).
  double attr_sim_threshold = 0.65;
  /// Term-similarity threshold used inside attribute-name similarity
  /// (same role as tau_t_sim in Algorithm 1).
  double tau_t_sim = 0.8;
  /// Which t_sim to use for attribute-name similarity.
  TermSimilarityKind similarity_kind = TermSimilarityKind::kLcs;
  /// Ambiguity threshold: a source attribute is also considered for a
  /// mediated attribute when its similarity is within this factor of its
  /// best match (mirrors theta of Algorithm 3).
  double ambiguity_ratio = 0.9;
  /// Cap on the number of alternative mappings kept per schema (candidate
  /// lists are trimmed, best-first, until the product fits).
  std::size_t max_mappings_per_schema = 8;
};

/// \brief The mediation output for one domain.
struct DomainMediation {
  MediatedSchema mediated;
  /// One probabilistic mapping per member schema, in member order.
  std::vector<ProbabilisticMapping> mappings;
  /// The members (schema id, membership probability) the mediation was
  /// built for, mirroring DomainModel::SchemasOf.
  std::vector<std::pair<std::uint32_t, double>> members;
};

/// \brief Attribute-name similarity: Dice coefficient over term sets with
/// t_sim-based soft matching (terms count as shared when t_sim >= tau).
double AttributeNameSimilarity(const std::vector<std::string>& terms_a,
                               const std::vector<std::string>& terms_b,
                               const TermSimilarity& sim, double tau_t_sim);

/// \brief One frequent attribute of a domain, as collected by the first
/// two mediation steps (shared by the deterministic and probabilistic
/// mediated-schema builders).
struct DomainAttribute {
  /// Canonical name (the clustering/mapping key).
  std::string canonical;
  /// First raw spelling seen (the display name).
  std::string display;
  /// Tokenized display name.
  std::vector<std::string> terms;
  /// Membership-weighted count of schemas containing the attribute.
  double weight = 0.0;
};

/// Collects the domain's attributes with membership-weighted frequencies
/// and applies the frequency threshold; sorted by canonical name. Validates
/// \p members against \p corpus.
Result<std::vector<DomainAttribute>> CollectFrequentAttributes(
    const SchemaCorpus& corpus, const Tokenizer& tokenizer,
    const std::vector<std::pair<std::uint32_t, double>>& members,
    double attr_freq_threshold);

/// \brief Builds mediated schemas and probabilistic mappings.
class Mediator {
 public:
  /// Mediation for one domain given its members (schema id, probability).
  static Result<DomainMediation> BuildForDomain(
      const SchemaCorpus& corpus, const Tokenizer& tokenizer,
      std::vector<std::pair<std::uint32_t, double>> members,
      const MediatorOptions& options = {});
};

}  // namespace paygo

#endif  // PAYGO_MEDIATE_MEDIATOR_H_
