#include "mediate/probabilistic_mapping.h"

namespace paygo {

double ProbabilisticMapping::MarginalCorrespondence(std::size_t attr,
                                                    int mediated) const {
  double total = 0.0;
  for (const AttributeMapping& m : alternatives) {
    if (attr < m.target.size() && m.target[attr] == mediated) {
      total += m.probability;
    }
  }
  return total;
}

}  // namespace paygo
