#ifndef PAYGO_MEDIATE_PROBABILISTIC_MEDIATED_SCHEMA_H_
#define PAYGO_MEDIATE_PROBABILISTIC_MEDIATED_SCHEMA_H_

/// \file probabilistic_mediated_schema.h
/// \brief Probabilistic mediated schemas — the full generality of Das Sarma
/// et al. [8].
///
/// Mediator (mediator.h) builds one deterministic mediated schema per
/// domain, which is all the thesis's pipeline needs. [8]'s bootstrapping
/// approach goes further: when it is *uncertain whether two source
/// attributes mean the same thing*, it emits SEVERAL mediated schemas —
/// one per way of resolving the borderline attribute pairs — each with a
/// probability. This module implements that construction on top of the
/// deterministic mediator:
///
///  1. run the frequency filter as usual;
///  2. compute attribute-pair name similarities; pairs comfortably above
///     the clustering threshold are certain merges, comfortably below are
///     certain non-merges, and pairs within an uncertainty band around the
///     threshold are BORDERLINE;
///  3. enumerate the 2^b resolutions of the b borderline pairs (capped,
///     most probable first), single-link-close each resolution into a
///     mediated schema, and weight it by the product of per-pair
///     probabilities (sim-calibrated);
///  4. deduplicate resolutions that close to the same clustering.
///
/// The result is a distribution over mediated schemas whose modal element
/// is exactly the deterministic mediator's output.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mediate/mediator.h"
#include "schema/corpus.h"
#include "util/status.h"

namespace paygo {

/// \brief Options of the probabilistic construction.
struct PMedSchemaOptions {
  /// Base mediation options (frequency threshold, name-similarity
  /// threshold, t_sim settings).
  MediatorOptions base;
  /// Pairs with |sim - attr_sim_threshold| <= band are borderline.
  double uncertainty_band = 0.1;
  /// Cap on borderline pairs considered (most ambiguous kept); beyond it
  /// the remaining pairs are resolved deterministically.
  std::size_t max_borderline_pairs = 10;
  /// Cap on emitted mediated schemas (most probable kept, probabilities
  /// renormalized).
  std::size_t max_alternatives = 16;
};

/// \brief One alternative mediated schema with its probability.
struct MediatedSchemaAlternative {
  MediatedSchema schema;
  double probability = 0.0;
};

/// \brief The probabilistic mediated schema of one domain.
struct ProbabilisticMediatedSchema {
  /// Alternatives, descending by probability; probabilities sum to 1.
  std::vector<MediatedSchemaAlternative> alternatives;
  /// The borderline attribute pairs that generated the uncertainty
  /// (canonical names), for inspection.
  std::vector<std::pair<std::string, std::string>> borderline_pairs;

  /// The modal (most probable) mediated schema.
  const MediatedSchema& Modal() const { return alternatives.front().schema; }

  /// Marginal probability that the two canonical attributes share a
  /// mediated attribute.
  double CoMediationProbability(const std::string& canonical_a,
                                const std::string& canonical_b) const;
};

/// Builds the probabilistic mediated schema for a domain's members.
Result<ProbabilisticMediatedSchema> BuildProbabilisticMediatedSchema(
    const SchemaCorpus& corpus, const Tokenizer& tokenizer,
    const std::vector<std::pair<std::uint32_t, double>>& members,
    const PMedSchemaOptions& options = {});

}  // namespace paygo

#endif  // PAYGO_MEDIATE_PROBABILISTIC_MEDIATED_SCHEMA_H_
