#include "mediate/mediated_schema.h"

#include "util/string_util.h"

namespace paygo {

int MediatedSchema::FindByMember(const std::string& canonical_attr) const {
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    const auto& members = attributes[i].members;
    for (const std::string& m : members) {
      if (m == canonical_attr) return static_cast<int>(i);
    }
  }
  return -1;
}

int MediatedSchema::FindByName(const std::string& name) const {
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string CanonicalAttributeName(const std::string& raw) {
  const std::vector<std::string> parts =
      SplitAny(ToLowerAscii(raw), " \t\r\n/_-.,:;()[]{}");
  return Join(parts, " ");
}

}  // namespace paygo
