#ifndef PAYGO_EVAL_CLASSIFICATION_METRICS_H_
#define PAYGO_EVAL_CLASSIFICATION_METRICS_H_

/// \file classification_metrics.h
/// \brief Section 6.4: top-k query classification quality.
///
/// A query generated with target label B_rand counts as a top-k hit when at
/// least one of the classifier's top k domains is dominated by B_rand.

#include <cstdint>
#include <string>
#include <vector>

#include "classify/naive_bayes.h"

namespace paygo {

/// \brief Accumulates top-1/top-3 hit fractions over a query stream.
class TopKAccumulator {
 public:
  /// Records one classified query. \p ranking is the classifier output;
  /// \p domain_labels maps domain id -> dominant labels; \p target is the
  /// query's intended label.
  void Record(const std::vector<DomainScore>& ranking,
              const std::vector<std::vector<std::string>>& domain_labels,
              const std::string& target);

  double Top1Fraction() const;
  double Top3Fraction() const;
  std::size_t num_queries() const { return total_; }

  /// True when \p target dominates one of the first \p k ranked domains.
  static bool HitAtK(const std::vector<DomainScore>& ranking,
                     const std::vector<std::vector<std::string>>& domain_labels,
                     const std::string& target, std::size_t k);

 private:
  std::size_t total_ = 0;
  std::size_t top1_hits_ = 0;
  std::size_t top3_hits_ = 0;
};

}  // namespace paygo

#endif  // PAYGO_EVAL_CLASSIFICATION_METRICS_H_
