#ifndef PAYGO_EVAL_CLUSTERING_METRICS_H_
#define PAYGO_EVAL_CLUSTERING_METRICS_H_

/// \file clustering_metrics.h
/// \brief Section 6.1.2: evaluating schema clustering against ground-truth
/// labels.
///
/// Each schema carries a label set B(S_i); each domain D_r is labeled with
/// its dominant labels B(D_r) = argmax over labels of the
/// membership-weighted count of the label's schemas in the domain (weighted
/// counting, not a probabilistic statement). Special cases follow the
/// thesis:
///  * a domain whose dominant label lacks an absolute majority is
///    non-homogeneous: B(D_r) = {} and its schemas count as false
///    negatives;
///  * singleton domains are "unclustered" schemas, reported as a fraction
///    and excluded from precision/recall/fragmentation;
///  * fragmentation is the average number of domains dominated by each
///    label, over labels that dominate at least one domain (Table 6.2's
///    values are >= 1, which pins down this reading).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/probabilistic_assignment.h"
#include "schema/corpus.h"

namespace paygo {

/// \brief The Section 6.1.2 metric suite for one clustering run.
struct ClusteringEvaluation {
  /// Average over homogeneous non-singleton domains of TP/(TP+FP).
  double avg_precision = 0.0;
  /// Average over labels of TP/(TP+FN).
  double avg_recall = 0.0;
  /// Average |D(B_j)| over labels dominating at least one domain.
  double fragmentation = 0.0;
  /// Membership-weighted fraction of schemas in non-homogeneous domains.
  double frac_non_homogeneous = 0.0;
  /// Fraction of schemas left in singleton clusters.
  double frac_unclustered = 0.0;

  std::size_t num_domains = 0;
  std::size_t num_singleton_domains = 0;
  std::size_t num_non_homogeneous_domains = 0;
  /// B(D_r) per domain (empty for non-homogeneous or unlabeled domains).
  std::vector<std::vector<std::string>> dominant_labels;
};

/// \brief Computes the metric suite. \p corpus supplies the label sets
/// B(S_i); schemas with empty label sets never contribute true positives.
ClusteringEvaluation EvaluateClustering(const DomainModel& model,
                                        const SchemaCorpus& corpus);

/// Dominant labels of one domain (exposed for classification evaluation
/// and tests). Returns an empty set for non-homogeneous domains.
std::vector<std::string> DominantLabels(const DomainModel& model,
                                        std::uint32_t domain,
                                        const SchemaCorpus& corpus);

}  // namespace paygo

#endif  // PAYGO_EVAL_CLUSTERING_METRICS_H_
