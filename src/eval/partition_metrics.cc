#include "eval/partition_metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace paygo {

std::vector<int> PartitionFromModel(const DomainModel& model) {
  std::vector<int> out(model.num_schemas(), -1);
  for (std::uint32_t i = 0; i < model.num_schemas(); ++i) {
    double best = 0.0;
    for (const auto& [domain, prob] : model.DomainsOf(i)) {
      if (prob > best) {
        best = prob;
        out[i] = static_cast<int>(domain);
      }
    }
  }
  return out;
}

std::vector<int> PartitionFromPrimaryLabels(const SchemaCorpus& corpus) {
  // Labels are stored sorted, so labels(i)[0] is the lexicographic primary.
  std::map<std::string, int> ids;
  std::vector<int> out(corpus.size(), -1);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto& labels = corpus.labels(i);
    if (labels.empty()) continue;
    const auto [it, inserted] =
        ids.emplace(labels[0], static_cast<int>(ids.size()));
    out[i] = it->second;
  }
  return out;
}

PairwiseScores PairwiseLabelScores(const DomainModel& model,
                                   const SchemaCorpus& corpus) {
  const std::vector<int> predicted = PartitionFromModel(model);
  PairwiseScores scores;
  std::size_t tp = 0, fp = 0, fn = 0;
  const std::size_t n = corpus.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (predicted[i] < 0 || corpus.labels(i).empty()) continue;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (predicted[j] < 0 || corpus.labels(j).empty()) continue;
      ++scores.pairs;
      const bool same_cluster = predicted[i] == predicted[j];
      // Truth: do the label sets intersect? (both sorted)
      const auto& a = corpus.labels(i);
      const auto& b = corpus.labels(j);
      bool same_class = false;
      for (std::size_t x = 0, y = 0; x < a.size() && y < b.size();) {
        if (a[x] == b[y]) {
          same_class = true;
          break;
        }
        (a[x] < b[y]) ? ++x : ++y;
      }
      if (same_cluster && same_class) ++tp;
      if (same_cluster && !same_class) ++fp;
      if (!same_cluster && same_class) ++fn;
    }
  }
  scores.precision =
      tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                  : 0.0;
  scores.recall =
      tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                  : 0.0;
  scores.f1 = scores.precision + scores.recall > 0.0
                  ? 2.0 * scores.precision * scores.recall /
                        (scores.precision + scores.recall)
                  : 0.0;
  return scores;
}

namespace {

/// Contingency table of two partitions over their shared valid entries.
struct Contingency {
  std::map<std::pair<int, int>, std::size_t> cells;
  std::map<int, std::size_t> row_sums, col_sums;
  std::size_t total = 0;
};

Contingency BuildContingency(const std::vector<int>& a,
                             const std::vector<int>& b) {
  Contingency c;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] < 0 || b[i] < 0) continue;
    ++c.cells[{a[i], b[i]}];
    ++c.row_sums[a[i]];
    ++c.col_sums[b[i]];
    ++c.total;
  }
  return c;
}

double Choose2(std::size_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

}  // namespace

double AdjustedRandIndex(const std::vector<int>& a,
                         const std::vector<int>& b) {
  const Contingency c = BuildContingency(a, b);
  if (c.total < 2) return 0.0;
  double sum_cells = 0.0;
  for (const auto& [cell, count] : c.cells) sum_cells += Choose2(count);
  double sum_rows = 0.0;
  for (const auto& [row, count] : c.row_sums) sum_rows += Choose2(count);
  double sum_cols = 0.0;
  for (const auto& [col, count] : c.col_sums) sum_cols += Choose2(count);
  const double total_pairs = Choose2(c.total);
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (std::abs(max_index - expected) < 1e-12) {
    // Degenerate (e.g. both partitions trivial): identical -> 1.
    return sum_cells == max_index ? 1.0 : 0.0;
  }
  return (sum_cells - expected) / (max_index - expected);
}

double NormalizedMutualInformation(const std::vector<int>& a,
                                   const std::vector<int>& b) {
  const Contingency c = BuildContingency(a, b);
  if (c.total == 0) return 0.0;
  const double n = static_cast<double>(c.total);
  double mi = 0.0;
  for (const auto& [cell, count] : c.cells) {
    const double pij = static_cast<double>(count) / n;
    const double pi = static_cast<double>(c.row_sums.at(cell.first)) / n;
    const double pj = static_cast<double>(c.col_sums.at(cell.second)) / n;
    mi += pij * std::log(pij / (pi * pj));
  }
  double ha = 0.0;
  for (const auto& [row, count] : c.row_sums) {
    const double p = static_cast<double>(count) / n;
    ha -= p * std::log(p);
  }
  double hb = 0.0;
  for (const auto& [col, count] : c.col_sums) {
    const double p = static_cast<double>(count) / n;
    hb -= p * std::log(p);
  }
  if (ha + hb < 1e-12) return 1.0;  // both partitions trivial and equal
  return std::max(0.0, 2.0 * mi / (ha + hb));
}

}  // namespace paygo
