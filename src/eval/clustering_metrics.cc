#include "eval/clustering_metrics.h"

#include <algorithm>

namespace paygo {
namespace {

/// Membership-weighted count of each label's schemas inside one domain.
std::map<std::string, double> LabelWeights(const DomainModel& model,
                                           std::uint32_t domain,
                                           const SchemaCorpus& corpus) {
  std::map<std::string, double> weights;
  for (const auto& [schema, prob] : model.SchemasOf(domain)) {
    for (const std::string& label : corpus.labels(schema)) {
      weights[label] += prob;
    }
  }
  return weights;
}

double DomainTotalMembership(const DomainModel& model, std::uint32_t domain) {
  double total = 0.0;
  for (const auto& [schema, prob] : model.SchemasOf(domain)) total += prob;
  return total;
}

}  // namespace

std::vector<std::string> DominantLabels(const DomainModel& model,
                                        std::uint32_t domain,
                                        const SchemaCorpus& corpus) {
  const std::map<std::string, double> weights =
      LabelWeights(model, domain, corpus);
  if (weights.empty()) return {};
  double best = 0.0;
  for (const auto& [label, w] : weights) best = std::max(best, w);
  // Non-homogeneous: the dominant label lacks an absolute majority of the
  // domain's membership-weighted schema count.
  constexpr double kTieEps = 1e-9;
  if (best < 0.5 * DomainTotalMembership(model, domain)) return {};
  std::vector<std::string> dominant;
  for (const auto& [label, w] : weights) {
    if (w >= best - kTieEps) dominant.push_back(label);
  }
  return dominant;
}

ClusteringEvaluation EvaluateClustering(const DomainModel& model,
                                        const SchemaCorpus& corpus) {
  ClusteringEvaluation eval;
  const std::size_t num_domains = model.num_domains();
  eval.num_domains = num_domains;
  eval.dominant_labels.resize(num_domains);

  std::vector<bool> singleton(num_domains);
  std::vector<bool> non_homogeneous(num_domains, false);
  double non_homog_weight = 0.0;

  for (std::uint32_t r = 0; r < num_domains; ++r) {
    singleton[r] = model.IsSingletonDomain(r);
    if (singleton[r]) {
      ++eval.num_singleton_domains;
      continue;
    }
    eval.dominant_labels[r] = DominantLabels(model, r, corpus);
    if (eval.dominant_labels[r].empty()) {
      non_homogeneous[r] = true;
      ++eval.num_non_homogeneous_domains;
      non_homog_weight += DomainTotalMembership(model, r);
    }
  }

  const double num_schemas = static_cast<double>(corpus.size());
  eval.frac_unclustered =
      num_schemas > 0
          ? static_cast<double>(eval.num_singleton_domains) / num_schemas
          : 0.0;
  eval.frac_non_homogeneous =
      num_schemas > 0 ? non_homog_weight / num_schemas : 0.0;

  // --- Precision: averaged over homogeneous, non-singleton domains. ---
  double precision_sum = 0.0;
  std::size_t precision_domains = 0;
  for (std::uint32_t r = 0; r < num_domains; ++r) {
    if (singleton[r] || non_homogeneous[r]) continue;
    const auto& dom_labels = eval.dominant_labels[r];
    if (dom_labels.empty()) continue;  // unlabeled corpus
    double tp = 0.0, fp = 0.0;
    for (const auto& [schema, prob] : model.SchemasOf(r)) {
      const auto& schema_labels = corpus.labels(schema);
      bool hit = false;
      for (const std::string& l : schema_labels) {
        if (std::find(dom_labels.begin(), dom_labels.end(), l) !=
            dom_labels.end()) {
          hit = true;
          break;
        }
      }
      (hit ? tp : fp) += prob;
    }
    if (tp + fp > 0.0) {
      precision_sum += tp / (tp + fp);
      ++precision_domains;
    }
  }
  eval.avg_precision =
      precision_domains > 0
          ? precision_sum / static_cast<double>(precision_domains)
          : 0.0;

  // --- Recall: averaged over labels. D(B_j) is the set of homogeneous
  // non-singleton domains dominated by B_j; a label's schemas assigned to
  // other (incl. non-homogeneous) domains are false negatives; memberships
  // in singleton domains are excluded entirely (unclustered). ---
  const std::vector<std::string> all_labels = corpus.AllLabels();
  std::map<std::string, std::vector<std::uint32_t>> domains_of_label;
  for (std::uint32_t r = 0; r < num_domains; ++r) {
    if (singleton[r] || non_homogeneous[r]) continue;
    for (const std::string& l : eval.dominant_labels[r]) {
      domains_of_label[l].push_back(r);
    }
  }

  double recall_sum = 0.0;
  std::size_t recall_labels = 0;
  for (const std::string& label : all_labels) {
    double tp = 0.0, fn = 0.0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const auto& ls = corpus.labels(i);
      if (std::find(ls.begin(), ls.end(), label) == ls.end()) continue;
      for (const auto& [domain, prob] :
           model.DomainsOf(static_cast<std::uint32_t>(i))) {
        if (singleton[domain]) continue;  // unclustered: excluded
        const auto it = domains_of_label.find(label);
        const bool dominated =
            it != domains_of_label.end() &&
            std::find(it->second.begin(), it->second.end(), domain) !=
                it->second.end();
        (dominated ? tp : fn) += prob;
      }
    }
    if (tp + fn > 0.0) {
      recall_sum += tp / (tp + fn);
      ++recall_labels;
    }
  }
  eval.avg_recall =
      recall_labels > 0 ? recall_sum / static_cast<double>(recall_labels)
                        : 0.0;

  // --- Fragmentation: avg |D(B_j)| over labels dominating >= 1 domain. ---
  if (!domains_of_label.empty()) {
    double total = 0.0;
    for (const auto& [label, domains] : domains_of_label) {
      total += static_cast<double>(domains.size());
    }
    eval.fragmentation = total / static_cast<double>(domains_of_label.size());
  }
  return eval;
}

}  // namespace paygo
