#include "eval/classification_metrics.h"

#include <algorithm>

namespace paygo {

bool TopKAccumulator::HitAtK(
    const std::vector<DomainScore>& ranking,
    const std::vector<std::vector<std::string>>& domain_labels,
    const std::string& target, std::size_t k) {
  const std::size_t limit = std::min(k, ranking.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const std::uint32_t d = ranking[i].domain;
    if (d >= domain_labels.size()) continue;
    const auto& labels = domain_labels[d];
    if (std::find(labels.begin(), labels.end(), target) != labels.end()) {
      return true;
    }
  }
  return false;
}

void TopKAccumulator::Record(
    const std::vector<DomainScore>& ranking,
    const std::vector<std::vector<std::string>>& domain_labels,
    const std::string& target) {
  ++total_;
  if (HitAtK(ranking, domain_labels, target, 1)) ++top1_hits_;
  if (HitAtK(ranking, domain_labels, target, 3)) ++top3_hits_;
}

double TopKAccumulator::Top1Fraction() const {
  return total_ > 0 ? static_cast<double>(top1_hits_) /
                          static_cast<double>(total_)
                    : 0.0;
}

double TopKAccumulator::Top3Fraction() const {
  return total_ > 0 ? static_cast<double>(top3_hits_) /
                          static_cast<double>(total_)
                    : 0.0;
}

}  // namespace paygo
