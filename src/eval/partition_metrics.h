#ifndef PAYGO_EVAL_PARTITION_METRICS_H_
#define PAYGO_EVAL_PARTITION_METRICS_H_

/// \file partition_metrics.h
/// \brief Standard external clustering indices (pairwise F1, Adjusted Rand
/// Index, Normalized Mutual Information).
///
/// The thesis evaluates with label-dominance metrics (Section 6.1.2,
/// eval/clustering_metrics.h), which are tailored to probabilistic,
/// multi-label domains but non-standard. For apples-to-apples comparisons
/// against the [17]-style baseline — and against any external clustering
/// literature — this module provides the textbook indices over hard
/// partitions. Probabilistic models are hardened by arg-max membership;
/// multi-label ground truth becomes a pair relation ("the two schemas share
/// at least one label") for pairwise scores and a primary-label partition
/// for ARI/NMI.

#include <cstdint>
#include <vector>

#include "cluster/probabilistic_assignment.h"
#include "schema/corpus.h"

namespace paygo {

/// \brief Pairwise precision / recall / F1 over schema pairs.
struct PairwiseScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Pairs counted (both schemas labeled and assigned).
  std::size_t pairs = 0;
};

/// Hardened partition from a DomainModel: each schema's arg-max-membership
/// domain; -1 for schemas with no membership (dropped under strict
/// Algorithm 3 semantics).
std::vector<int> PartitionFromModel(const DomainModel& model);

/// Partition from the corpus's primary (lexicographically first) label;
/// -1 for unlabeled schemas.
std::vector<int> PartitionFromPrimaryLabels(const SchemaCorpus& corpus);

/// Pairwise scores of \p model against the corpus labels: a pair is
/// predicted-positive when both schemas share an arg-max domain and
/// truth-positive when their label sets intersect. Pairs involving an
/// unassigned or unlabeled schema are skipped.
PairwiseScores PairwiseLabelScores(const DomainModel& model,
                                   const SchemaCorpus& corpus);

/// Adjusted Rand Index of two partitions (entries with -1 in either are
/// skipped). 1 = identical; ~0 = chance level; can be negative.
double AdjustedRandIndex(const std::vector<int>& a, const std::vector<int>& b);

/// Normalized Mutual Information (arithmetic-mean normalization) of two
/// partitions; entries with -1 in either are skipped. In [0, 1].
double NormalizedMutualInformation(const std::vector<int>& a,
                                   const std::vector<int>& b);

}  // namespace paygo

#endif  // PAYGO_EVAL_PARTITION_METRICS_H_
