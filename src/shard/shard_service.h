#ifndef PAYGO_SHARD_SHARD_SERVICE_H_
#define PAYGO_SHARD_SHARD_SERVICE_H_

/// \file shard_service.h
/// \brief The wire-protocol server of one shard node.
///
/// Serves the shard/wire.h protocol over a PaygoServer: classification
/// reads fan in from the router (kClassify), replicas pull state
/// (kSnapshotPull — full snapshot, delta records, or up-to-date; see
/// replication.h), the router routes writes (kAddSchema), and kPing
/// answers with the serving generation for health probes.
///
/// The threading shape mirrors the admin HTTP endpoint deliberately: a
/// poll-driven accept thread feeding a bounded handler pool through a
/// BoundedQueue, shedding with kError when saturated. One request frame,
/// one response frame, connection closed — no protocol state survives a
/// connection.
///
/// Distributed tracing: a connection may open with a kTraceContext
/// preamble frame (see wire.h). The handler adopts the originating trace
/// id under a ScopedTraceContext guard — restored before the pooled thread
/// picks up its next connection — so every span this request produces
/// (including PaygoServer worker spans, which inherit the submitting
/// thread's id) lands in this node's TraceRing tagged with the fleet-wide
/// id. kTraceFetch returns the retained events matching an id together
/// with this node's current trace-clock reading, which the router uses for
/// RTT-midpoint clock alignment when merging fleet timelines.
///
/// Snapshot-pull labeling reads the generation BEFORE the snapshot
/// pointer: a mutation publishing in between makes the label conservative
/// (the shipped snapshot is at least as new as its label), so a replica
/// may re-pull a generation it already has but can never believe it is
/// fresher than it is.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/paygo_server.h"
#include "shard/replication.h"
#include "shard/wire.h"
#include "util/bounded_queue.h"
#include "util/status.h"

namespace paygo {

struct ShardServiceOptions {
  /// 0 binds an ephemeral port; read it back from Start().
  int port = 0;
  std::string bind_address = "127.0.0.1";
  std::size_t handler_threads = 4;
  std::size_t pending_connections = 32;
  std::uint64_t io_timeout_ms = 5000;
  /// Replicas reject kAddSchema — writes go to the primary, state arrives
  /// via replication.
  bool read_only = false;
};

class ShardService {
 public:
  /// \p server must outlive this object and be Start()ed first.
  explicit ShardService(PaygoServer& server, ShardServiceOptions options = {});
  ~ShardService();

  ShardService(const ShardService&) = delete;
  ShardService& operator=(const ShardService&) = delete;

  /// Binds, listens, spawns the accept/handler threads. Returns the bound
  /// port (kernel-chosen when options.port == 0). Idempotent.
  Result<std::uint16_t> Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return bound_port_; }

  /// The AddSchema delta log replicas pull from.
  ReplicationLog& log() { return log_; }

 private:
  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(int fd);
  Frame Handle(const Frame& request);
  Frame HandleClassify(const std::string& payload) const;
  Frame HandleSnapshotPull(const std::string& payload);
  Frame HandleAddSchema(const std::string& payload);
  Frame HandleTraceFetch(const std::string& payload) const;

  PaygoServer& server_;
  ShardServiceOptions options_;
  ReplicationLog log_;

  /// Serializes kAddSchema handling so each appended log record provably
  /// maps to the generation its mutation published (see HandleAddSchema).
  std::mutex write_mu_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::unique_ptr<BoundedQueue<int>> connections_;
  std::thread acceptor_;
  std::vector<std::thread> pool_;
};

}  // namespace paygo

#endif  // PAYGO_SHARD_SHARD_SERVICE_H_
