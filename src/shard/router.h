#ifndef PAYGO_SHARD_ROUTER_H_
#define PAYGO_SHARD_ROUTER_H_

/// \file router.h
/// \brief Cross-domain scatter/gather over the shard fleet.
///
/// A keyword query cannot be routed: the querying user does not know the
/// domain (that is the whole classification problem), so the router fans
/// the query out to every shard and merges the per-shard rankings. The
/// merge is sound because each shard's naive-Bayes classifier scores its
/// own domains independently — a domain's log posterior depends only on
/// that domain's conditionals and prior, not on which other domains share
/// the process — so concatenating per-shard rankings and re-sorting by
/// log posterior is exactly the ranking a single unsharded classifier
/// would produce over the same per-shard priors.
///
/// Failure handling is graceful degradation: shards that cannot be
/// reached within the request timeout are skipped and the merge proceeds
/// over the survivors (shards_ok / shards_total report the coverage); the
/// call fails only when every shard is down. Writes (AddSchema) route to
/// the single owner shard via the consistent-hash ring.
///
/// Distributed tracing: when the router's Tracer is enabled, every
/// scatter adopts (or mints) a fleet-wide trace id and sends it ahead of
/// each request as a kTraceContext preamble, so shard-side spans land in
/// the remote TraceRings tagged with the same id as the router's
/// client-side spans. FleetTraceJson() reassembles the distributed
/// timeline: it pulls matching events from every shard via kTraceFetch,
/// assigns one synthetic Chrome pid per process (router = 1, shard s =
/// s + 2), and aligns each shard's trace clock to the router's using the
/// RTT midpoint of the fetch itself — offset = server_now − (t0 + t1) / 2
/// — the classic NTP-style estimate whose error is bounded by half the
/// round trip. Scatters slower than the slow threshold are retained in a
/// bounded slow log carrying the per-shard latency breakdown plus the
/// trace id, so a p99 outlier resolves to its merged timeline.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "schema/corpus.h"
#include "shard/hash_ring.h"
#include "util/status.h"

namespace paygo {

struct ShardAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "host:port" (or bare "port", defaulting the host to loopback).
Result<ShardAddress> ParseShardAddress(std::string_view text);

struct RouterOptions {
  /// Per-shard scatter deadline; a shard that misses it is degraded, not
  /// waited for.
  std::uint64_t request_timeout_ms = 2000;
  /// Ring geometry — must match the partitioner's (see hash_ring.h).
  std::size_t vnodes = 64;
  /// Scatters at least this slow enter the router slow log (0 logs all).
  std::uint64_t slow_query_threshold_us = 10000;
  /// Bounded slow-log size; the oldest entry is evicted first.
  std::size_t slow_log_capacity = 16;
};

/// One merged ranking entry, tagged with the shard that produced it.
struct RoutedDomain {
  std::uint32_t shard = 0;
  std::uint32_t domain = 0;  ///< domain id local to that shard
  double log_posterior = 0.0;
  std::vector<std::string> mediated_attributes;
};

struct ScatterResult {
  /// Descending by log posterior; ties broken by (shard, domain) so the
  /// merge is deterministic regardless of reply arrival order.
  std::vector<RoutedDomain> ranked;
  std::size_t shards_ok = 0;
  std::size_t shards_total = 0;
  /// Per shard, the generation its reply carried; 0 for failed shards.
  std::vector<std::uint64_t> shard_generations;
  /// Fleet-wide trace id this scatter ran (and was propagated) under;
  /// 0 when the router's Tracer was disabled.
  std::uint64_t trace_id = 0;
  /// Per-shard round-trip latency in µs (timeouts included for failed
  /// shards — that IS their contribution to tail latency).
  std::vector<std::uint64_t> shard_latency_us;
};

/// One retained slow scatter: where the time went, shard by shard, and
/// the trace id to fetch the merged timeline with.
struct RouterSlowEntry {
  std::uint64_t trace_id = 0;
  std::string query;
  std::uint64_t total_us = 0;
  std::size_t shards_ok = 0;
  std::size_t shards_total = 0;
  std::vector<std::uint64_t> shard_latency_us;
};

class ShardRouter {
 public:
  explicit ShardRouter(std::vector<ShardAddress> shards,
                       RouterOptions options = {});

  /// Scatter the query to every shard, gather and merge the top \p k.
  /// Partial coverage is success; Unavailable only when ALL shards fail.
  Result<ScatterResult> Classify(std::string_view query,
                                 std::size_t k = 5) const;

  /// Routes the write to the ring owner of the schema's shard key.
  /// Returns the owner's generation after the mutation.
  Result<std::uint64_t> AddSchema(const Schema& schema,
                                  const std::vector<std::string>& labels) const;

  struct ShardHealth {
    ShardAddress address;
    bool up = false;  ///< last contact succeeded
    std::uint64_t generation = 0;
    std::uint64_t consecutive_failures = 0;
  };
  /// Last-contact view (updated by Classify/AddSchema/Ping calls).
  std::vector<ShardHealth> Health() const;

  /// Probes every shard with kPing, updating Health().
  void PingAll() const;

  /// The Health() view as a JSON array (the router's shardz section).
  std::string ShardzJson() const;

  /// Pulls every shard's retained TraceEvents matching \p trace_id (0 =
  /// all) via kTraceFetch and merges them with the router's own events
  /// into one Chrome trace-event JSON: pid 1 = router, pid s + 2 = shard
  /// s, remote timestamps shifted onto the router's trace clock by the
  /// RTT-midpoint offset estimate. Unreachable shards degrade (their
  /// events are simply absent); fails only with no shards configured.
  Result<std::string> FleetTraceJson(std::uint64_t trace_id = 0) const;

  /// Slow scatters, oldest first (bounded; see RouterOptions).
  std::vector<RouterSlowEntry> SlowEntries() const;
  /// SlowEntries() as a JSON array (the router's slowz section).
  std::string SlowLogJson() const;

  const HashRing& ring() const { return ring_; }
  std::size_t num_shards() const { return shards_.size(); }

 private:
  void RecordOutcome(std::size_t shard, bool ok,
                     std::uint64_t generation) const;
  void MaybeRecordSlow(std::string_view query, std::uint64_t total_us,
                       const ScatterResult& result) const;

  std::vector<ShardAddress> shards_;
  RouterOptions options_;
  HashRing ring_;

  struct HealthSlot {
    bool up = false;
    std::uint64_t generation = 0;
    std::uint64_t consecutive_failures = 0;
  };
  mutable std::mutex health_mu_;
  mutable std::vector<HealthSlot> health_;

  mutable std::mutex slow_mu_;
  mutable std::deque<RouterSlowEntry> slow_log_;
};

}  // namespace paygo

#endif  // PAYGO_SHARD_ROUTER_H_
