#ifndef PAYGO_SHARD_ROUTER_H_
#define PAYGO_SHARD_ROUTER_H_

/// \file router.h
/// \brief Cross-domain scatter/gather over the shard fleet.
///
/// A keyword query cannot be routed: the querying user does not know the
/// domain (that is the whole classification problem), so the router fans
/// the query out to every shard and merges the per-shard rankings. The
/// merge is sound because each shard's naive-Bayes classifier scores its
/// own domains independently — a domain's log posterior depends only on
/// that domain's conditionals and prior, not on which other domains share
/// the process — so concatenating per-shard rankings and re-sorting by
/// log posterior is exactly the ranking a single unsharded classifier
/// would produce over the same per-shard priors.
///
/// Failure handling is graceful degradation: shards that cannot be
/// reached within the request timeout are skipped and the merge proceeds
/// over the survivors (shards_ok / shards_total report the coverage); the
/// call fails only when every shard is down. Writes (AddSchema) route to
/// the single owner shard via the consistent-hash ring.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "schema/corpus.h"
#include "shard/hash_ring.h"
#include "util/status.h"

namespace paygo {

struct ShardAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "host:port" (or bare "port", defaulting the host to loopback).
Result<ShardAddress> ParseShardAddress(std::string_view text);

struct RouterOptions {
  /// Per-shard scatter deadline; a shard that misses it is degraded, not
  /// waited for.
  std::uint64_t request_timeout_ms = 2000;
  /// Ring geometry — must match the partitioner's (see hash_ring.h).
  std::size_t vnodes = 64;
};

/// One merged ranking entry, tagged with the shard that produced it.
struct RoutedDomain {
  std::uint32_t shard = 0;
  std::uint32_t domain = 0;  ///< domain id local to that shard
  double log_posterior = 0.0;
  std::vector<std::string> mediated_attributes;
};

struct ScatterResult {
  /// Descending by log posterior; ties broken by (shard, domain) so the
  /// merge is deterministic regardless of reply arrival order.
  std::vector<RoutedDomain> ranked;
  std::size_t shards_ok = 0;
  std::size_t shards_total = 0;
  /// Per shard, the generation its reply carried; 0 for failed shards.
  std::vector<std::uint64_t> shard_generations;
};

class ShardRouter {
 public:
  explicit ShardRouter(std::vector<ShardAddress> shards,
                       RouterOptions options = {});

  /// Scatter the query to every shard, gather and merge the top \p k.
  /// Partial coverage is success; Unavailable only when ALL shards fail.
  Result<ScatterResult> Classify(std::string_view query,
                                 std::size_t k = 5) const;

  /// Routes the write to the ring owner of the schema's shard key.
  /// Returns the owner's generation after the mutation.
  Result<std::uint64_t> AddSchema(const Schema& schema,
                                  const std::vector<std::string>& labels) const;

  struct ShardHealth {
    ShardAddress address;
    bool up = false;  ///< last contact succeeded
    std::uint64_t generation = 0;
    std::uint64_t consecutive_failures = 0;
  };
  /// Last-contact view (updated by Classify/AddSchema/Ping calls).
  std::vector<ShardHealth> Health() const;

  /// Probes every shard with kPing, updating Health().
  void PingAll() const;

  /// The Health() view as a JSON array (the router's shardz section).
  std::string ShardzJson() const;

  const HashRing& ring() const { return ring_; }
  std::size_t num_shards() const { return shards_.size(); }

 private:
  void RecordOutcome(std::size_t shard, bool ok,
                     std::uint64_t generation) const;

  std::vector<ShardAddress> shards_;
  RouterOptions options_;
  HashRing ring_;

  struct HealthSlot {
    bool up = false;
    std::uint64_t generation = 0;
    std::uint64_t consecutive_failures = 0;
  };
  mutable std::mutex health_mu_;
  mutable std::vector<HealthSlot> health_;
};

}  // namespace paygo

#endif  // PAYGO_SHARD_ROUTER_H_
