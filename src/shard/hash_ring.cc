#include "shard/hash_ring.h"

#include <algorithm>

namespace paygo {

std::uint64_t HashRing::Hash64(std::string_view data) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  // Raw FNV-1a of short similar keys ("domain17", "domain18") clusters in
  // a narrow band of the upper bits, and ring placement is ordered by the
  // FULL 64-bit value — so without a finalizer whole key families land on
  // one arc. The murmur3 fmix64 avalanche spreads them uniformly.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

HashRing::HashRing(std::size_t num_shards, std::size_t vnodes)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      vnodes_(vnodes == 0 ? 1 : vnodes) {
  ring_.reserve(num_shards_ * vnodes_);
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    for (std::size_t v = 0; v < vnodes_; ++v) {
      const std::string point = "shard-" + std::to_string(s) + "-vnode-" +
                                std::to_string(v);
      ring_.emplace_back(Hash64(point), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::uint32_t HashRing::ShardFor(std::string_view key) const {
  const std::uint64_t h = Hash64(key);
  // First ring point at or after h, wrapping to the start past the end.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& p, std::uint64_t v) {
        return p.first < v;
      });
  return it == ring_.end() ? ring_.front().second : it->second;
}

std::string ShardKeyOf(const SchemaCorpus& corpus, std::size_t i) {
  const auto& labels = corpus.labels(i);
  if (!labels.empty()) return labels[0];
  return corpus.schema(i).source_name;
}

std::vector<SchemaCorpus> PartitionCorpus(const SchemaCorpus& corpus,
                                          const HashRing& ring) {
  std::vector<SchemaCorpus> parts(ring.num_shards());
  for (std::size_t s = 0; s < parts.size(); ++s) {
    parts[s].set_name(corpus.name() + "-shard" + std::to_string(s));
  }
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::uint32_t s = ring.ShardFor(ShardKeyOf(corpus, i));
    parts[s].Add(corpus.schema(i), corpus.labels(i));
  }
  return parts;
}

}  // namespace paygo
