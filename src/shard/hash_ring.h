#ifndef PAYGO_SHARD_HASH_RING_H_
#define PAYGO_SHARD_HASH_RING_H_

/// \file hash_ring.h
/// \brief Consistent hashing of domains onto shards.
///
/// Domain-sharded serving splits a multi-domain corpus across N shard
/// servers, each owning the schemas of the domains hashed to it. A
/// consistent-hash ring (virtual nodes per shard, binary search over ring
/// points) keeps the assignment stable when shards are added: only the
/// keys landing on the moved arcs change owners, instead of the wholesale
/// reshuffle a modulo assignment causes.
///
/// The shard key of a schema is its first domain label when labels are
/// present (the synthetic generators label every schema), otherwise its
/// source name — so labeled corpora shard whole domains, which is what
/// makes per-shard NB posteriors meaningful: a domain's member schemas all
/// live on one shard, and the scatter/gather merge (see router.h) ranks
/// disjoint domain sets.
///
/// Everything here is deterministic: FNV-1a hashing, no seeds, so every
/// process — router, shards, bench harness — derives the same assignment
/// from (num_shards, vnodes) alone.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "schema/corpus.h"
#include "util/status.h"

namespace paygo {

/// \brief Consistent-hash ring mapping string keys to shard indices.
class HashRing {
 public:
  /// \p vnodes ring points per shard smooth the load split; 64 keeps the
  /// max/min shard-size ratio under ~1.3 for uniform keys.
  explicit HashRing(std::size_t num_shards, std::size_t vnodes = 64);

  /// The shard owning \p key: the first ring point clockwise of its hash.
  std::uint32_t ShardFor(std::string_view key) const;

  std::size_t num_shards() const { return num_shards_; }
  std::size_t vnodes() const { return vnodes_; }

  /// FNV-1a 64-bit with a murmur3-style avalanche finalizer:
  /// deterministic, dependency-free, and well-mixed across the full word
  /// even for short near-identical keys (domain labels).
  static std::uint64_t Hash64(std::string_view data);

 private:
  std::size_t num_shards_;
  std::size_t vnodes_;
  /// (ring point, shard) sorted by point.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

/// The ring key of schema \p i of \p corpus: first label if labeled, else
/// the source name.
std::string ShardKeyOf(const SchemaCorpus& corpus, std::size_t i);

/// Splits \p corpus into ring.num_shards() per-shard corpora (schema order
/// preserved within each shard, labels carried along). Shards a ring arc
/// assigns no schemas come back empty — the caller decides whether an
/// empty shard is an error (IntegrationSystem::Build rejects empty
/// corpora, so benches pick shard counts well below the domain count).
std::vector<SchemaCorpus> PartitionCorpus(const SchemaCorpus& corpus,
                                          const HashRing& ring);

}  // namespace paygo

#endif  // PAYGO_SHARD_HASH_RING_H_
