#include "shard/router.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "obs/stats.h"
#include "schema/corpus_io.h"
#include "shard/wire.h"

namespace paygo {

namespace {

struct RouterCounters {
  Counter* scatters;
  Counter* shard_failures;
  Counter* degraded_scatters;  ///< served with at least one shard down

  static RouterCounters& Get() {
    static RouterCounters counters = [] {
      StatsRegistry& reg = StatsRegistry::Global();
      return RouterCounters{
          reg.GetCounter("paygo.shard.router.scatters"),
          reg.GetCounter("paygo.shard.router.shard_failures"),
          reg.GetCounter("paygo.shard.router.degraded_scatters")};
    }();
    return counters;
  }
};

/// One shard's kClassifyResult payload:
///   "ok <gen> <n>\n" then n lines "<domain> <log_posterior> <attrs>",
/// attrs comma-joined (attribute names contain spaces, never commas).
Status ParseClassifyReply(const std::string& payload, std::uint32_t shard,
                          std::uint64_t* generation,
                          std::vector<RoutedDomain>* out) {
  std::istringstream is(payload);
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("empty classify reply");
  }
  std::istringstream head(line);
  std::string ok;
  std::size_t n = 0;
  if (!(head >> ok >> *generation >> n) || ok != "ok") {
    return Status::InvalidArgument("malformed classify reply header");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("truncated classify reply");
    }
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      return Status::InvalidArgument("malformed classify result line");
    }
    RoutedDomain d;
    d.shard = shard;
    d.domain =
        static_cast<std::uint32_t>(std::strtoul(line.c_str(), nullptr, 10));
    d.log_posterior = std::strtod(line.c_str() + sp1 + 1, nullptr);
    const std::string attrs = line.substr(sp2 + 1);
    std::size_t pos = 0;
    while (pos < attrs.size()) {
      const std::size_t comma = attrs.find(',', pos);
      const std::string attr =
          attrs.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
      if (!attr.empty()) d.mediated_attributes.push_back(attr);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    out->push_back(std::move(d));
  }
  return Status::OK();
}

}  // namespace

Result<ShardAddress> ParseShardAddress(std::string_view text) {
  ShardAddress address;
  const std::size_t colon = text.rfind(':');
  std::string_view port_part = text;
  if (colon != std::string_view::npos) {
    address.host = std::string(text.substr(0, colon));
    port_part = text.substr(colon + 1);
  }
  const std::string port_str(port_part);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("bad shard address '" + std::string(text) +
                                   "' (want host:port)");
  }
  address.port = static_cast<std::uint16_t>(port);
  return address;
}

ShardRouter::ShardRouter(std::vector<ShardAddress> shards,
                         RouterOptions options)
    : shards_(std::move(shards)),
      options_(options),
      ring_(shards_.empty() ? 1 : shards_.size(), options.vnodes),
      health_(shards_.size()) {}

void ShardRouter::RecordOutcome(std::size_t shard, bool ok,
                                std::uint64_t generation) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  HealthSlot& slot = health_[shard];
  slot.up = ok;
  if (ok) {
    slot.generation = generation;
    slot.consecutive_failures = 0;
  } else {
    ++slot.consecutive_failures;
  }
}

Result<ScatterResult> ShardRouter::Classify(std::string_view query,
                                            std::size_t k) const {
  if (shards_.empty()) {
    return Status::FailedPrecondition("router has no shards configured");
  }
  if (k == 0) k = 1;
  RouterCounters::Get().scatters->Increment();

  const std::string payload =
      std::to_string(k) + "\n" + std::string(query);
  struct ShardReply {
    Status status = Status::OK();
    std::uint64_t generation = 0;
    std::vector<RoutedDomain> ranked;
  };
  std::vector<ShardReply> replies(shards_.size());

  // Thread-per-shard scatter: N is the shard count (single digits), and a
  // slow shard must not delay the others — each thread owns its own
  // connect/read deadline.
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    threads.emplace_back([this, s, &payload, &replies] {
      ShardReply& reply = replies[s];
      Result<Frame> frame =
          CallOnce(shards_[s].host, shards_[s].port, FrameType::kClassify,
                   payload, options_.request_timeout_ms);
      if (!frame.ok()) {
        reply.status = frame.status();
        return;
      }
      if (frame->type != FrameType::kClassifyResult) {
        reply.status = Status::IoError(
            "shard " + std::to_string(s) + ": " +
            (frame->type == FrameType::kError ? frame->payload
                                              : "unexpected frame type"));
        return;
      }
      reply.status =
          ParseClassifyReply(frame->payload, static_cast<std::uint32_t>(s),
                             &reply.generation, &reply.ranked);
    });
  }
  for (std::thread& t : threads) t.join();

  ScatterResult result;
  result.shards_total = shards_.size();
  result.shard_generations.assign(shards_.size(), 0);
  Status first_error = Status::OK();
  for (std::size_t s = 0; s < replies.size(); ++s) {
    const bool ok = replies[s].status.ok();
    RecordOutcome(s, ok, replies[s].generation);
    if (!ok) {
      RouterCounters::Get().shard_failures->Increment();
      if (first_error.ok()) first_error = replies[s].status;
      continue;
    }
    ++result.shards_ok;
    result.shard_generations[s] = replies[s].generation;
    for (RoutedDomain& d : replies[s].ranked) {
      result.ranked.push_back(std::move(d));
    }
  }
  if (result.shards_ok == 0) {
    return Status::IoError("all " + std::to_string(shards_.size()) +
                           " shards failed; first error: " +
                           first_error.message());
  }
  if (result.shards_ok < result.shards_total) {
    RouterCounters::Get().degraded_scatters->Increment();
  }

  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const RoutedDomain& a, const RoutedDomain& b) {
              if (a.log_posterior != b.log_posterior) {
                return a.log_posterior > b.log_posterior;
              }
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.domain < b.domain;
            });
  if (result.ranked.size() > k) result.ranked.resize(k);
  return result;
}

Result<std::uint64_t> ShardRouter::AddSchema(
    const Schema& schema, const std::vector<std::string>& labels) const {
  if (shards_.empty()) {
    return Status::FailedPrecondition("router has no shards configured");
  }
  const std::string key =
      labels.empty() ? schema.source_name : labels[0];
  const std::uint32_t s = ring_.ShardFor(key);
  SchemaCorpus one;
  one.set_name("routed");
  one.Add(schema, labels);
  Result<Frame> frame =
      CallOnce(shards_[s].host, shards_[s].port, FrameType::kAddSchema,
               SerializeCorpus(one), options_.request_timeout_ms);
  if (!frame.ok()) {
    RecordOutcome(s, false, 0);
    return frame.status();
  }
  if (frame->type != FrameType::kAck) {
    return Status::IoError(
        "shard " + std::to_string(s) + ": " +
        (frame->type == FrameType::kError ? frame->payload
                                          : "unexpected frame type"));
  }
  const std::uint64_t gen = std::strtoull(frame->payload.c_str(), nullptr, 10);
  RecordOutcome(s, true, gen);
  return gen;
}

void ShardRouter::PingAll() const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Result<Frame> frame =
        CallOnce(shards_[s].host, shards_[s].port, FrameType::kPing, "",
                 options_.request_timeout_ms);
    if (frame.ok() && frame->type == FrameType::kPong) {
      RecordOutcome(s, true,
                    std::strtoull(frame->payload.c_str(), nullptr, 10));
    } else {
      RecordOutcome(s, false, 0);
    }
  }
}

std::vector<ShardRouter::ShardHealth> ShardRouter::Health() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  std::vector<ShardHealth> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardHealth h;
    h.address = shards_[s];
    h.up = health_[s].up;
    h.generation = health_[s].generation;
    h.consecutive_failures = health_[s].consecutive_failures;
    out.push_back(std::move(h));
  }
  return out;
}

std::string ShardRouter::ShardzJson() const {
  const std::vector<ShardHealth> health = Health();
  std::ostringstream os;
  os << "[";
  for (std::size_t s = 0; s < health.size(); ++s) {
    if (s > 0) os << ", ";
    os << "{\"shard\": " << s << ", \"host\": \"" << health[s].address.host
       << "\", \"port\": " << health[s].address.port
       << ", \"up\": " << (health[s].up ? "true" : "false")
       << ", \"generation\": " << health[s].generation
       << ", \"consecutive_failures\": " << health[s].consecutive_failures
       << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace paygo
