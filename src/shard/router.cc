#include "shard/router.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "obs/stats.h"
#include "obs/trace.h"
#include "schema/corpus_io.h"
#include "shard/wire.h"

namespace paygo {

namespace {

struct RouterCounters {
  Counter* scatters;
  Counter* shard_failures;
  Counter* degraded_scatters;  ///< served with at least one shard down
  Counter* fleet_trace_fetches;
  Counter* fleet_trace_fetch_failures;
  LatencyHistogram* scatter_latency;

  static RouterCounters& Get() {
    static RouterCounters counters = [] {
      StatsRegistry& reg = StatsRegistry::Global();
      return RouterCounters{
          reg.GetCounter("paygo.shard.router.scatters"),
          reg.GetCounter("paygo.shard.router.shard_failures"),
          reg.GetCounter("paygo.shard.router.degraded_scatters"),
          reg.GetCounter("paygo.shard.router.fleet_trace_fetches"),
          reg.GetCounter("paygo.shard.router.fleet_trace_fetch_failures"),
          reg.GetHistogram("paygo.shard.router.scatter_us")};
    }();
    return counters;
  }
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One event of the merged fleet timeline: a TraceEvent plus the process
/// it came from and its timestamp re-expressed on the router's clock.
struct FleetEvent {
  std::string name;
  std::int64_t ts = 0;  ///< router-clock µs; may go negative for events
                        ///< that predate the router's trace epoch
  std::uint64_t dur = 0;
  std::uint64_t trace_id = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
};

/// Parses one kTraceEvents payload: "now <server_now_us> <n>\n" then n
/// lines "<start_us> <dur_us> <trace_id> <tid> <depth> <name>".
Status ParseTraceEvents(const std::string& payload,
                        std::uint64_t* server_now_us,
                        std::vector<FleetEvent>* out) {
  std::istringstream is(payload);
  std::string word;
  std::size_t n = 0;
  if (!(is >> word >> *server_now_us >> n) || word != "now") {
    return Status::InvalidArgument("malformed trace events header");
  }
  std::string line;
  std::getline(is, line);  // consume the header's newline
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("truncated trace events payload");
    }
    std::istringstream ls(line);
    FleetEvent e;
    std::uint64_t start = 0;
    if (!(ls >> start >> e.dur >> e.trace_id >> e.tid >> e.depth)) {
      return Status::InvalidArgument("malformed trace event line");
    }
    e.ts = static_cast<std::int64_t>(start);
    std::getline(ls, e.name);
    if (!e.name.empty() && e.name[0] == ' ') e.name.erase(0, 1);
    if (e.name.empty()) {
      return Status::InvalidArgument("trace event without a name");
    }
    out->push_back(std::move(e));
  }
  return Status::OK();
}

/// One shard's kClassifyResult payload:
///   "ok <gen> <n>\n" then n lines "<domain> <log_posterior> <attrs>",
/// attrs comma-joined (attribute names contain spaces, never commas).
Status ParseClassifyReply(const std::string& payload, std::uint32_t shard,
                          std::uint64_t* generation,
                          std::vector<RoutedDomain>* out) {
  std::istringstream is(payload);
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("empty classify reply");
  }
  std::istringstream head(line);
  std::string ok;
  std::size_t n = 0;
  if (!(head >> ok >> *generation >> n) || ok != "ok") {
    return Status::InvalidArgument("malformed classify reply header");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("truncated classify reply");
    }
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      return Status::InvalidArgument("malformed classify result line");
    }
    RoutedDomain d;
    d.shard = shard;
    d.domain =
        static_cast<std::uint32_t>(std::strtoul(line.c_str(), nullptr, 10));
    d.log_posterior = std::strtod(line.c_str() + sp1 + 1, nullptr);
    const std::string attrs = line.substr(sp2 + 1);
    std::size_t pos = 0;
    while (pos < attrs.size()) {
      const std::size_t comma = attrs.find(',', pos);
      const std::string attr =
          attrs.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
      if (!attr.empty()) d.mediated_attributes.push_back(attr);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    out->push_back(std::move(d));
  }
  return Status::OK();
}

}  // namespace

Result<ShardAddress> ParseShardAddress(std::string_view text) {
  ShardAddress address;
  const std::size_t colon = text.rfind(':');
  std::string_view port_part = text;
  if (colon != std::string_view::npos) {
    address.host = std::string(text.substr(0, colon));
    port_part = text.substr(colon + 1);
  }
  const std::string port_str(port_part);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("bad shard address '" + std::string(text) +
                                   "' (want host:port)");
  }
  address.port = static_cast<std::uint16_t>(port);
  return address;
}

ShardRouter::ShardRouter(std::vector<ShardAddress> shards,
                         RouterOptions options)
    : shards_(std::move(shards)),
      options_(options),
      ring_(shards_.empty() ? 1 : shards_.size(), options.vnodes),
      health_(shards_.size()) {}

void ShardRouter::RecordOutcome(std::size_t shard, bool ok,
                                std::uint64_t generation) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  HealthSlot& slot = health_[shard];
  slot.up = ok;
  if (ok) {
    slot.generation = generation;
    slot.consecutive_failures = 0;
  } else {
    ++slot.consecutive_failures;
  }
}

Result<ScatterResult> ShardRouter::Classify(std::string_view query,
                                            std::size_t k) const {
  if (shards_.empty()) {
    return Status::FailedPrecondition("router has no shards configured");
  }
  if (k == 0) k = 1;
  RouterCounters::Get().scatters->Increment();

  // Adopt the caller's trace id (a traced admin request, say) or mint a
  // fresh fleet-wide one; propagate it to every shard as a kTraceContext
  // preamble. With tracing disabled no preamble is sent at all — the wire
  // bytes are identical to the untraced protocol.
  const bool sampled = Tracer::enabled();
  std::uint64_t trace_id = 0;
  WireTraceContext ctx;
  const WireTraceContext* ctx_ptr = nullptr;
  if (sampled) {
    trace_id = Tracer::CurrentTraceId();
    if (trace_id == 0) trace_id = Tracer::NextTraceId();
    ctx.trace_id = trace_id;
    // The scatter acts as the remote spans' parent; we mint a span id for
    // it from the same sequence so it is unique fleet-wide.
    ctx.parent_span_id = Tracer::NextTraceId();
    ctx.sampled = true;
    ctx.deadline_us = options_.request_timeout_ms * 1000;
    ctx_ptr = &ctx;
  }
  ScopedTraceContext trace_guard(trace_id);
  const std::uint64_t scatter_start_us = Tracer::NowMicros();
  PAYGO_TRACE_SPAN("router.scatter");

  const std::string payload =
      std::to_string(k) + "\n" + std::string(query);
  struct ShardReply {
    Status status = Status::OK();
    std::uint64_t generation = 0;
    std::uint64_t latency_us = 0;
    std::vector<RoutedDomain> ranked;
  };
  std::vector<ShardReply> replies(shards_.size());

  // Thread-per-shard scatter: N is the shard count (single digits), and a
  // slow shard must not delay the others — each thread owns its own
  // connect/read deadline.
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    threads.emplace_back([this, s, &payload, &replies, ctx_ptr, trace_id] {
      ScopedTraceContext shard_guard(trace_id);
      PAYGO_TRACE_SPAN("router.shard_call");
      ShardReply& reply = replies[s];
      const std::uint64_t t0 = Tracer::NowMicros();
      Result<Frame> frame = CallOnceTraced(
          shards_[s].host, shards_[s].port, FrameType::kClassify, payload,
          options_.request_timeout_ms, ctx_ptr);
      reply.latency_us = Tracer::NowMicros() - t0;
      if (!frame.ok()) {
        reply.status = frame.status();
        return;
      }
      if (frame->type != FrameType::kClassifyResult) {
        reply.status = Status::IoError(
            "shard " + std::to_string(s) + ": " +
            (frame->type == FrameType::kError ? frame->payload
                                              : "unexpected frame type"));
        return;
      }
      reply.status =
          ParseClassifyReply(frame->payload, static_cast<std::uint32_t>(s),
                             &reply.generation, &reply.ranked);
    });
  }
  for (std::thread& t : threads) t.join();

  ScatterResult result;
  result.trace_id = trace_id;
  result.shards_total = shards_.size();
  result.shard_generations.assign(shards_.size(), 0);
  result.shard_latency_us.assign(shards_.size(), 0);
  Status first_error = Status::OK();
  for (std::size_t s = 0; s < replies.size(); ++s) {
    const bool ok = replies[s].status.ok();
    RecordOutcome(s, ok, replies[s].generation);
    result.shard_latency_us[s] = replies[s].latency_us;
    if (!ok) {
      RouterCounters::Get().shard_failures->Increment();
      if (first_error.ok()) first_error = replies[s].status;
      continue;
    }
    ++result.shards_ok;
    result.shard_generations[s] = replies[s].generation;
    for (RoutedDomain& d : replies[s].ranked) {
      result.ranked.push_back(std::move(d));
    }
  }
  const std::uint64_t total_us = Tracer::NowMicros() - scatter_start_us;
  RouterCounters::Get().scatter_latency->Record(total_us, trace_id);
  MaybeRecordSlow(query, total_us, result);
  if (result.shards_ok == 0) {
    return Status::IoError("all " + std::to_string(shards_.size()) +
                           " shards failed; first error: " +
                           first_error.message());
  }
  if (result.shards_ok < result.shards_total) {
    RouterCounters::Get().degraded_scatters->Increment();
  }

  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const RoutedDomain& a, const RoutedDomain& b) {
              if (a.log_posterior != b.log_posterior) {
                return a.log_posterior > b.log_posterior;
              }
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.domain < b.domain;
            });
  if (result.ranked.size() > k) result.ranked.resize(k);
  return result;
}

void ShardRouter::MaybeRecordSlow(std::string_view query,
                                  std::uint64_t total_us,
                                  const ScatterResult& result) const {
  if (total_us < options_.slow_query_threshold_us) return;
  if (options_.slow_log_capacity == 0) return;
  RouterSlowEntry entry;
  entry.trace_id = result.trace_id;
  entry.query = std::string(query);
  entry.total_us = total_us;
  entry.shards_ok = result.shards_ok;
  entry.shards_total = result.shards_total;
  entry.shard_latency_us = result.shard_latency_us;
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_log_.push_back(std::move(entry));
  while (slow_log_.size() > options_.slow_log_capacity) {
    slow_log_.pop_front();
  }
}

std::vector<RouterSlowEntry> ShardRouter::SlowEntries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return {slow_log_.begin(), slow_log_.end()};
}

std::string ShardRouter::SlowLogJson() const {
  const std::vector<RouterSlowEntry> entries = SlowEntries();
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const RouterSlowEntry& e = entries[i];
    if (i > 0) os << ", ";
    os << "{\"trace_id\": " << e.trace_id << ", \"query\": \""
       << JsonEscape(e.query) << "\", \"total_us\": " << e.total_us
       << ", \"shards_ok\": " << e.shards_ok
       << ", \"shards_total\": " << e.shards_total
       << ", \"shard_latency_us\": [";
    for (std::size_t s = 0; s < e.shard_latency_us.size(); ++s) {
      if (s > 0) os << ", ";
      os << e.shard_latency_us[s];
    }
    os << "]}";
  }
  os << "]";
  return os.str();
}

Result<std::string> ShardRouter::FleetTraceJson(
    std::uint64_t trace_id) const {
  if (shards_.empty()) {
    return Status::FailedPrecondition("router has no shards configured");
  }
  std::vector<FleetEvent> events;

  // The router's own client-side spans, already on the reference clock.
  for (const TraceEvent& e : Tracer::SnapshotEvents(trace_id)) {
    FleetEvent f;
    f.name = e.name;
    f.ts = static_cast<std::int64_t>(e.start_us);
    f.dur = e.dur_us;
    f.trace_id = e.trace_id;
    f.pid = 1;
    f.tid = e.tid;
    f.depth = e.depth;
    events.push_back(std::move(f));
  }

  // Pull each shard's matching events; degrade on per-shard failure.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    RouterCounters::Get().fleet_trace_fetches->Increment();
    const std::uint64_t t0 = Tracer::NowMicros();
    Result<Frame> frame = CallOnce(shards_[s].host, shards_[s].port,
                                   FrameType::kTraceFetch,
                                   std::to_string(trace_id),
                                   options_.request_timeout_ms);
    const std::uint64_t t1 = Tracer::NowMicros();
    if (!frame.ok() || frame->type != FrameType::kTraceEvents) {
      RouterCounters::Get().fleet_trace_fetch_failures->Increment();
      continue;
    }
    std::uint64_t server_now_us = 0;
    std::vector<FleetEvent> remote;
    Status parsed = ParseTraceEvents(frame->payload, &server_now_us, &remote);
    if (!parsed.ok()) {
      RouterCounters::Get().fleet_trace_fetch_failures->Increment();
      continue;
    }
    // RTT-midpoint clock alignment: the fetch reply was stamped at
    // server_now_us on the shard's trace clock, at approximately the
    // midpoint (t0 + t1) / 2 of the round trip on ours. The difference is
    // the offset estimate (error ≤ RTT / 2); subtracting it re-expresses
    // the shard's timestamps on the router's clock.
    const std::int64_t offset =
        static_cast<std::int64_t>(server_now_us) -
        static_cast<std::int64_t>((t0 + t1) / 2);
    for (FleetEvent& e : remote) {
      e.ts -= offset;
      e.pid = static_cast<std::uint32_t>(s) + 2;
      events.push_back(std::move(e));
    }
  }

  std::sort(events.begin(), events.end(),
            [](const FleetEvent& a, const FleetEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.pid != b.pid) return a.pid < b.pid;
              return a.tid < b.tid;
            });

  std::ostringstream os;
  os << "[";
  bool first = true;
  // Process-name metadata events label the tracks in Perfetto.
  os << "\n{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"name\": \"router\"}}";
  first = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    os << ",\n{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << (s + 2) << ", \"tid\": 0, \"args\": {\"name\": \"shard " << s
       << " (" << JsonEscape(shards_[s].host) << ":" << shards_[s].port
       << ")\"}}";
  }
  for (const FleetEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\": \"" << JsonEscape(e.name)
       << "\", \"ph\": \"X\", \"pid\": " << e.pid << ", \"tid\": " << e.tid
       << ", \"ts\": " << e.ts << ", \"dur\": " << e.dur
       << ", \"args\": {\"trace_id\": " << e.trace_id
       << ", \"depth\": " << e.depth << "}}";
  }
  os << "\n]\n";
  return os.str();
}

Result<std::uint64_t> ShardRouter::AddSchema(
    const Schema& schema, const std::vector<std::string>& labels) const {
  if (shards_.empty()) {
    return Status::FailedPrecondition("router has no shards configured");
  }
  const std::string key =
      labels.empty() ? schema.source_name : labels[0];
  const std::uint32_t s = ring_.ShardFor(key);
  SchemaCorpus one;
  one.set_name("routed");
  one.Add(schema, labels);
  Result<Frame> frame =
      CallOnce(shards_[s].host, shards_[s].port, FrameType::kAddSchema,
               SerializeCorpus(one), options_.request_timeout_ms);
  if (!frame.ok()) {
    RecordOutcome(s, false, 0);
    return frame.status();
  }
  if (frame->type != FrameType::kAck) {
    return Status::IoError(
        "shard " + std::to_string(s) + ": " +
        (frame->type == FrameType::kError ? frame->payload
                                          : "unexpected frame type"));
  }
  const std::uint64_t gen = std::strtoull(frame->payload.c_str(), nullptr, 10);
  RecordOutcome(s, true, gen);
  return gen;
}

void ShardRouter::PingAll() const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Result<Frame> frame =
        CallOnce(shards_[s].host, shards_[s].port, FrameType::kPing, "",
                 options_.request_timeout_ms);
    if (frame.ok() && frame->type == FrameType::kPong) {
      RecordOutcome(s, true,
                    std::strtoull(frame->payload.c_str(), nullptr, 10));
    } else {
      RecordOutcome(s, false, 0);
    }
  }
}

std::vector<ShardRouter::ShardHealth> ShardRouter::Health() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  std::vector<ShardHealth> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardHealth h;
    h.address = shards_[s];
    h.up = health_[s].up;
    h.generation = health_[s].generation;
    h.consecutive_failures = health_[s].consecutive_failures;
    out.push_back(std::move(h));
  }
  return out;
}

std::string ShardRouter::ShardzJson() const {
  const std::vector<ShardHealth> health = Health();
  std::ostringstream os;
  os << "[";
  for (std::size_t s = 0; s < health.size(); ++s) {
    if (s > 0) os << ", ";
    os << "{\"shard\": " << s << ", \"host\": \"" << health[s].address.host
       << "\", \"port\": " << health[s].address.port
       << ", \"up\": " << (health[s].up ? "true" : "false")
       << ", \"generation\": " << health[s].generation
       << ", \"consecutive_failures\": " << health[s].consecutive_failures
       << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace paygo
