#ifndef PAYGO_SHARD_SHARD_NODE_H_
#define PAYGO_SHARD_SHARD_NODE_H_

/// \file shard_node.h
/// \brief One process-worth of domain-sharded serving.
///
/// A ShardNode composes the pieces one fleet member runs:
///
///   * a PaygoServer (deferred bootstrap — replicas start empty and go
///     ready exactly when the first replicated snapshot installs),
///   * a ShardService speaking the wire protocol on its own port,
///   * optionally a ReplicaSync pulling from a primary,
///   * optionally an embedded AdminServer whose /statusz carries a
///     "shardz" section (role, shard port, replication staleness).
///
/// The bench harness runs several ShardNodes in-process on ephemeral
/// ports; the CLI's shard-node subcommand runs one per process for the
/// multi-process CI smoke.

#include <cstdint>
#include <memory>
#include <string>

#include "core/integration_system.h"
#include "obs/admin_server.h"
#include "serve/paygo_server.h"
#include "shard/replication.h"
#include "shard/shard_service.h"
#include "util/status.h"

namespace paygo {

struct ShardNodeOptions {
  /// Serving runtime knobs. admin_port is overridden to -1: the node owns
  /// the admin endpoint so it can splice in the shardz section.
  ServeOptions serve;
  ShardServiceOptions service;
  /// -1 disables the admin endpoint, 0 binds ephemeral, >0 that port.
  int admin_port = 0;
  /// Present when this node is a replica; service.read_only is forced on.
  bool replica = false;
  ReplicaSyncOptions replica_sync;
};

class ShardNode {
 public:
  explicit ShardNode(ShardNodeOptions options);
  ~ShardNode();

  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  /// Starts the serving stack. Primaries pass their built system (it is
  /// installed before the wire port opens, so the node never serves
  /// not-ready to the router); replicas pass nullptr and fill via
  /// replication — /readyz flips 200 when the first snapshot lands.
  Status Start(std::unique_ptr<IntegrationSystem> system);
  void Stop();

  PaygoServer& server() { return *server_; }
  const PaygoServer& server() const { return *server_; }
  ShardService& service() { return *service_; }
  std::uint16_t shard_port() const { return service_->port(); }
  /// 0 when the admin endpoint is disabled.
  std::uint16_t admin_port() const {
    return admin_ != nullptr ? admin_->port() : 0;
  }
  const ReplicaSync* replica() const { return replica_.get(); }

  /// The /statusz "shardz" member value for this node.
  std::string ShardzJson() const;

 private:
  ShardNodeOptions options_;
  std::unique_ptr<PaygoServer> server_;
  std::unique_ptr<ShardService> service_;
  std::unique_ptr<ReplicaSync> replica_;
  std::unique_ptr<AdminServer> admin_;
};

}  // namespace paygo

#endif  // PAYGO_SHARD_SHARD_NODE_H_
