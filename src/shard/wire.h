#ifndef PAYGO_SHARD_WIRE_H_
#define PAYGO_SHARD_WIRE_H_

/// \file wire.h
/// \brief The minimal length-prefixed binary protocol between shard nodes.
///
/// Every message is one frame:
///
///     u32 LE payload length | u8 frame type | payload bytes
///
/// and every connection carries exactly one request frame and one response
/// frame (connection-per-request, mirroring the admin endpoint's
/// Connection: close HTTP). That trades connection setup cost for zero
/// protocol state — no pipelining, no message boundaries to resync after
/// an error, and a replica that dies mid-frame costs the peer one read
/// timeout, nothing more.
///
/// Payloads are the repo's existing text formats (corpus_io, model_io
/// snapshot v2): the wire layer frames bytes, it does not define a second
/// serialization.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace paygo {

/// Frame types. Values are wire-visible; append, never renumber.
enum class FrameType : std::uint8_t {
  kPing = 1,           ///< empty payload
  kPong = 2,           ///< payload: decimal serving generation
  kClassify = 3,       ///< payload: "<k>\n<query>"
  kClassifyResult = 4, ///< payload: "ok <gen> <n>\n" + n result lines
  kSnapshotPull = 5,   ///< payload: decimal synced primary generation
  kSnapshotFull = 6,   ///< payload: "gen <g>\n" + snapshot v2 text
  kSnapshotDelta = 7,  ///< payload: "gen <g>\n" + replication records
  kUpToDate = 8,       ///< payload: decimal current generation
  kError = 9,          ///< payload: human-readable reason
  kAddSchema = 10,     ///< payload: one-schema corpus_io text
  kAck = 11,           ///< payload: decimal generation after the write
  kTraceContext = 12,  ///< payload: "<trace_id> <parent_span_id> <sampled>
                       ///< <deadline_us>"; optional preamble preceding the
                       ///< request frame on the same connection
  kTraceFetch = 13,    ///< payload: decimal trace id filter (0 = all)
  kTraceEvents = 14,   ///< payload: "now <server_now_us> <n>\n" + n lines
                       ///< "<start_us> <dur_us> <trace_id> <tid> <depth>
                       ///< <name>"
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Writes one frame; tolerates short writes, never raises SIGPIPE.
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame. Frames longer than \p max_bytes are rejected without
/// reading the payload (a garbage length prefix must not allocate 4 GB).
/// Snapshots of big corpora are the largest legitimate frames; 64 MB
/// clears the thesis-scale DDH corpus by two orders of magnitude.
Result<Frame> ReadFrame(int fd, std::size_t max_bytes = 64u << 20);

/// Connects to host:port with connect + IO timeouts applied. Returns the
/// connected fd; the caller owns (and closes) it.
Result<int> TcpConnect(const std::string& host, std::uint16_t port,
                       std::uint64_t timeout_ms);

/// TcpConnect with linear retry-backoff: \p attempts tries, sleeping
/// attempt * \p backoff_ms between failures. Replica bootstrap uses this
/// to ride out the primary starting a beat later than the replica.
Result<int> ConnectWithRetry(const std::string& host, std::uint16_t port,
                             std::uint64_t timeout_ms, std::size_t attempts,
                             std::uint64_t backoff_ms);

/// One round trip on a fresh connection: connect, send \p request, read
/// the response frame, close.
Result<Frame> CallOnce(const std::string& host, std::uint16_t port,
                       FrameType type, std::string_view payload,
                       std::uint64_t timeout_ms);

/// \brief Trace context carried across a hop as a kTraceContext preamble.
///
/// The preamble is a *separate frame* written before the request frame on
/// the same connection, so the request payloads themselves stay
/// byte-identical to the untraced protocol — an old server reading an
/// unexpected kTraceContext frame fails one request loudly instead of
/// misparsing every payload, and a router with tracing disabled emits no
/// preamble at all (zero idle wire cost).
struct WireTraceContext {
  std::uint64_t trace_id = 0;        ///< Originating request id (nonzero).
  std::uint64_t parent_span_id = 0;  ///< Caller-side span id; 0 = root.
  bool sampled = false;              ///< Record spans server-side?
  std::uint64_t deadline_us = 0;     ///< Remaining budget in µs; 0 = none.
};

/// Space-separated decimal encoding: "<trace_id> <parent_span_id>
/// <sampled:0|1> <deadline_us>".
std::string EncodeTraceContext(const WireTraceContext& ctx);
Result<WireTraceContext> ParseTraceContext(std::string_view payload);

/// CallOnce that, when \p ctx is non-null, writes a kTraceContext preamble
/// frame before the request frame. A null \p ctx is exactly CallOnce — the
/// idle cost of propagation is this one pointer test.
Result<Frame> CallOnceTraced(const std::string& host, std::uint16_t port,
                             FrameType type, std::string_view payload,
                             std::uint64_t timeout_ms,
                             const WireTraceContext* ctx);

}  // namespace paygo

#endif  // PAYGO_SHARD_WIRE_H_
