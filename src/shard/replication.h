#ifndef PAYGO_SHARD_REPLICATION_H_
#define PAYGO_SHARD_REPLICATION_H_

/// \file replication.h
/// \brief Snapshot replication from a primary shard to read replicas.
///
/// Replication is PULL-based: each replica polls its primary with the last
/// primary generation it has applied (kSnapshotPull), and the primary
/// answers one of
///
///   kUpToDate       nothing newer — the common steady-state round trip,
///                   a few bytes each way;
///   kSnapshotDelta  the AddSchema records covering (synced, current] —
///                   the replica replays them through its own write path,
///                   which PR-5's delta machinery makes bit-identical to
///                   the primary's application;
///   kSnapshotFull   a complete v2 snapshot (persist/model_io) — the
///                   bootstrap path, and the fallback whenever the delta
///                   log cannot prove it covers the gap.
///
/// The primary's ReplicationLog only records AddSchema mutations. Any
/// other published mutation (feedback, rebuild, tuple attachment, a raw
/// UpdateAsync) leaves a generation gap, which the log detects and answers
/// by clearing itself — forcing the next pull to full-sync. That is the
/// safety story in one line: deltas are served only when the log covers
/// every generation of the gap, otherwise the replica gets the whole
/// state. Replicas apply full snapshots with the existing generation-
/// tagged SnapshotHolder cutover (InstallSystemAsync), so readers on the
/// replica never see a torn state.
///
/// Staleness is tracked two ways, both exported as gauges and on
/// /statusz: generation lag (primary generation minus synced generation)
/// and wall-clock milliseconds since the last successful sync.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/integration_system.h"
#include "schema/corpus.h"
#include "serve/paygo_server.h"
#include "util/status.h"

namespace paygo {

/// One replayable AddSchema mutation.
struct DeltaRecord {
  std::uint64_t generation = 0;
  Schema schema;
  std::vector<std::string> labels;
};

/// Serializes one record: "record <gen> <len>\n" + a one-schema corpus in
/// corpus_io text (length-prefixed because corpus text is multi-line).
std::string MakeDeltaRecord(std::uint64_t generation, const Schema& schema,
                            const std::vector<std::string>& labels);

/// Parses a kSnapshotDelta payload: "gen <g>\n" + concatenated records.
/// \p through receives g.
Result<std::vector<DeltaRecord>> ParseDeltaPayload(std::string_view payload,
                                                   std::uint64_t* through);

/// \brief Primary-side log of AddSchema mutations, contiguous by
/// generation.
///
/// Thread-safe. Append detects generation gaps (an unlogged mutation
/// published in between) and clears the log: a log that cannot prove
/// contiguity must not serve deltas.
class ReplicationLog {
 public:
  explicit ReplicationLog(std::size_t capacity = 1024);

  /// Appends the record published at \p generation. A generation that is
  /// not exactly one past the previous entry clears the log first.
  void Append(std::uint64_t generation, std::string record);

  /// Drops all entries (the next pull full-syncs).
  void Clear();

  /// The concatenated records covering exactly (\p since, \p through], or
  /// nullopt when the log cannot prove contiguous coverage of that range
  /// (trimmed, cleared, or interleaved with unlogged mutations).
  std::optional<std::string> RecordsCovering(std::uint64_t since,
                                             std::uint64_t through) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  /// (generation, serialized record), contiguous ascending generations.
  std::deque<std::pair<std::uint64_t, std::string>> entries_;
};

/// \brief Replica-side sync loop: poll, apply, report staleness.
struct ReplicaSyncOptions {
  std::string primary_host = "127.0.0.1";
  std::uint16_t primary_port = 0;
  /// Steady-state poll cadence. Staleness floors at roughly this value.
  std::uint64_t poll_interval_ms = 200;
  std::uint64_t io_timeout_ms = 5000;
  /// Connect retry-with-backoff per poll (rides out primary restarts).
  std::size_t connect_attempts = 3;
  std::uint64_t connect_backoff_ms = 100;
  /// Options full snapshots are restored under; must match the primary's
  /// mediator/classifier settings.
  SystemOptions system;
};

class ReplicaSync {
 public:
  /// Applies pulled state to \p server (InstallSystemAsync for full
  /// snapshots, AddSchemaAsync replay for deltas). \p server must outlive
  /// this object and be Start()ed before Start() is called here.
  ReplicaSync(PaygoServer& server, ReplicaSyncOptions options);
  ~ReplicaSync();

  Status Start();
  void Stop();

  /// One synchronous pull-and-apply round trip — the test seam, and what
  /// the background loop runs per tick.
  Status PollOnce();

  struct Stats {
    std::uint64_t synced_generation = 0;   ///< last applied primary gen
    std::uint64_t primary_generation = 0;  ///< as of the last contact
    std::uint64_t generation_lag = 0;
    std::uint64_t staleness_ms = 0;  ///< since the last successful sync
    std::uint64_t full_syncs = 0;
    std::uint64_t delta_syncs = 0;
    std::uint64_t sync_failures = 0;
    bool connected = false;  ///< last poll reached the primary
  };
  Stats GetStats() const;

  /// The Stats fields as JSON members (for the /statusz shardz section).
  std::string StatsJson() const;

 private:
  void SyncLoop();
  void RecordSuccess(std::uint64_t primary_generation);
  void UpdateGauges() const;

  PaygoServer& server_;
  ReplicaSyncOptions options_;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::thread loop_;

  std::atomic<std::uint64_t> synced_{0};
  /// False until the first successful full-snapshot install; while false
  /// the pull payload is "none" so the primary full-syncs even when its
  /// own generation is 0 (constructor-seeded servers publish at 0).
  std::atomic<bool> has_synced_{false};
  std::atomic<std::uint64_t> primary_gen_{0};
  std::atomic<std::uint64_t> full_syncs_{0};
  std::atomic<std::uint64_t> delta_syncs_{0};
  std::atomic<std::uint64_t> sync_failures_{0};
  std::atomic<bool> connected_{false};
  std::atomic<std::int64_t> last_success_ms_{-1};  ///< steady-clock ms
};

}  // namespace paygo

#endif  // PAYGO_SHARD_REPLICATION_H_
