#include "shard/shard_node.h"

#include <sstream>

#include "serve/admin_endpoints.h"

namespace paygo {

ShardNode::ShardNode(ShardNodeOptions options)
    : options_(std::move(options)) {
  options_.serve.admin_port = -1;  // the node owns the admin endpoint
  if (options_.replica) options_.service.read_only = true;
  server_ = std::make_unique<PaygoServer>(options_.serve);
  service_ = std::make_unique<ShardService>(*server_, options_.service);
}

ShardNode::~ShardNode() { Stop(); }

Status ShardNode::Start(std::unique_ptr<IntegrationSystem> system) {
  PAYGO_RETURN_NOT_OK(server_->Start());
  if (system != nullptr) {
    PAYGO_RETURN_NOT_OK(server_->InstallSystemAsync(std::move(system)).get());
  }
  Result<std::uint16_t> shard_port = service_->Start();
  if (!shard_port.ok()) {
    Stop();
    return shard_port.status();
  }
  if (options_.replica) {
    replica_ = std::make_unique<ReplicaSync>(*server_, options_.replica_sync);
    Status started = replica_->Start();
    if (!started.ok()) {
      Stop();
      return started;
    }
  }
  if (options_.admin_port >= 0) {
    AdminServerOptions admin_options;
    admin_options.port = options_.admin_port;
    admin_ = std::make_unique<AdminServer>(admin_options);
    RegisterObsEndpoints(*admin_);
    RegisterServerEndpoints(*admin_, *server_,
                            [this] { return "\"shardz\": " + ShardzJson(); });
    Result<std::uint16_t> admin_port = admin_->Start();
    if (!admin_port.ok()) {
      Stop();
      return admin_port.status();
    }
  }
  return Status::OK();
}

void ShardNode::Stop() {
  if (admin_ != nullptr) admin_->Stop();
  if (replica_ != nullptr) replica_->Stop();
  if (service_ != nullptr) service_->Stop();
  if (server_ != nullptr) server_->Stop();
}

std::string ShardNode::ShardzJson() const {
  std::ostringstream os;
  os << "{\"role\": \"" << (options_.replica ? "replica" : "primary")
     << "\", \"shard_port\": " << service_->port()
     << ", \"generation\": " << server_->generation();
  if (replica_ != nullptr) {
    os << ", \"replication\": " << replica_->StatsJson();
  }
  os << "}";
  return os.str();
}

}  // namespace paygo
