#include "shard/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace paygo {

namespace {

void SetSocketTimeouts(int fd, std::uint64_t timeout_ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Status SendAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::IoError(std::string("send: ") +
                             (n == 0 ? "peer closed" : std::strerror(errno)));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status RecvAll(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n <= 0) {
      return Status::IoError(std::string("recv: ") +
                             (n == 0 ? "peer closed" : std::strerror(errno)));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  char header[5];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<char>(len & 0xff);
  header[1] = static_cast<char>((len >> 8) & 0xff);
  header[2] = static_cast<char>((len >> 16) & 0xff);
  header[3] = static_cast<char>((len >> 24) & 0xff);
  header[4] = static_cast<char>(type);
  PAYGO_RETURN_NOT_OK(SendAll(fd, header, sizeof(header)));
  return SendAll(fd, payload.data(), payload.size());
}

Result<Frame> ReadFrame(int fd, std::size_t max_bytes) {
  char header[5];
  PAYGO_RETURN_NOT_OK(RecvAll(fd, header, sizeof(header)));
  const std::uint32_t len =
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[0])) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[3]))
       << 24);
  if (len > max_bytes) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds the " +
                                   std::to_string(max_bytes) + " byte limit");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<std::uint8_t>(header[4]));
  frame.payload.resize(len);
  if (len > 0) {
    PAYGO_RETURN_NOT_OK(RecvAll(fd, frame.payload.data(), len));
  }
  return frame;
}

Result<int> TcpConnect(const std::string& host, std::uint16_t port,
                       std::uint64_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  // SO_SNDTIMEO bounds connect() as well as later sends on Linux, so one
  // knob covers the whole round trip.
  SetSocketTimeouts(fd, timeout_ms);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad shard address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }
  return fd;
}

Result<int> ConnectWithRetry(const std::string& host, std::uint16_t port,
                             std::uint64_t timeout_ms, std::size_t attempts,
                             std::uint64_t backoff_ms) {
  if (attempts == 0) attempts = 1;
  Status last = Status::OK();
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    Result<int> fd = TcpConnect(host, port, timeout_ms);
    if (fd.ok()) return fd;
    last = fd.status();
    if (attempt < attempts) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(attempt * backoff_ms));
    }
  }
  return last;
}

Result<Frame> CallOnce(const std::string& host, std::uint16_t port,
                       FrameType type, std::string_view payload,
                       std::uint64_t timeout_ms) {
  return CallOnceTraced(host, port, type, payload, timeout_ms, nullptr);
}

std::string EncodeTraceContext(const WireTraceContext& ctx) {
  return std::to_string(ctx.trace_id) + " " +
         std::to_string(ctx.parent_span_id) + " " +
         (ctx.sampled ? "1" : "0") + " " + std::to_string(ctx.deadline_us);
}

Result<WireTraceContext> ParseTraceContext(std::string_view payload) {
  const std::string text(payload);
  WireTraceContext ctx;
  char* cursor = nullptr;
  ctx.trace_id = std::strtoull(text.c_str(), &cursor, 10);
  if (cursor == text.c_str() || *cursor != ' ') {
    return Status::InvalidArgument("bad trace context '" + text + "'");
  }
  char* next = nullptr;
  ctx.parent_span_id = std::strtoull(cursor + 1, &next, 10);
  if (next == cursor + 1 || *next != ' ') {
    return Status::InvalidArgument("bad trace context '" + text + "'");
  }
  cursor = next;
  const unsigned long long sampled = std::strtoull(cursor + 1, &next, 10);
  if (next == cursor + 1 || *next != ' ' || sampled > 1) {
    return Status::InvalidArgument("bad trace context '" + text + "'");
  }
  ctx.sampled = sampled == 1;
  cursor = next;
  ctx.deadline_us = std::strtoull(cursor + 1, &next, 10);
  if (next == cursor + 1 || *next != '\0') {
    return Status::InvalidArgument("bad trace context '" + text + "'");
  }
  if (ctx.trace_id == 0) {
    return Status::InvalidArgument("trace context requires a nonzero id");
  }
  return ctx;
}

Result<Frame> CallOnceTraced(const std::string& host, std::uint16_t port,
                             FrameType type, std::string_view payload,
                             std::uint64_t timeout_ms,
                             const WireTraceContext* ctx) {
  PAYGO_ASSIGN_OR_RETURN(const int fd, TcpConnect(host, port, timeout_ms));
  Status sent = Status::OK();
  if (ctx != nullptr) {
    sent = WriteFrame(fd, FrameType::kTraceContext, EncodeTraceContext(*ctx));
  }
  if (sent.ok()) sent = WriteFrame(fd, type, payload);
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  Result<Frame> reply = ReadFrame(fd);
  ::close(fd);
  return reply;
}

}  // namespace paygo
