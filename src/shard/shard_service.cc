#include "shard/shard_service.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/stats.h"
#include "obs/trace.h"
#include "persist/model_io.h"
#include "schema/corpus_io.h"

namespace paygo {

namespace {

void SetSocketTimeouts(int fd, std::uint64_t timeout_ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// %.17g, matching model_io: the router re-ranks merged posteriors, so the
/// wire must not round them.
std::string FmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Frame ErrorFrame(std::string reason) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.payload = std::move(reason);
  return frame;
}

struct ShardServiceCounters {
  Counter* requests;
  Counter* errors;
  Counter* sheds;
  Counter* full_pulls;
  Counter* delta_pulls;
  Counter* uptodate_pulls;
  Counter* traced_requests;
  Counter* trace_fetches;

  static ShardServiceCounters& Get() {
    static ShardServiceCounters counters = [] {
      StatsRegistry& reg = StatsRegistry::Global();
      return ShardServiceCounters{
          reg.GetCounter("paygo.shard.service.requests"),
          reg.GetCounter("paygo.shard.service.errors"),
          reg.GetCounter("paygo.shard.service.sheds"),
          reg.GetCounter("paygo.shard.service.full_pulls"),
          reg.GetCounter("paygo.shard.service.delta_pulls"),
          reg.GetCounter("paygo.shard.service.uptodate_pulls"),
          reg.GetCounter("paygo.shard.service.traced_requests"),
          reg.GetCounter("paygo.shard.service.trace_fetches")};
    }();
    return counters;
  }
};

}  // namespace

ShardService::ShardService(PaygoServer& server, ShardServiceOptions options)
    : server_(server), options_(std::move(options)) {
  if (options_.handler_threads == 0) options_.handler_threads = 1;
  connections_ =
      std::make_unique<BoundedQueue<int>>(options_.pending_connections);
}

ShardService::~ShardService() { Stop(); }

Result<std::uint16_t> ShardService::Start() {
  if (running()) return bound_port_;
  if (stopping_.load(std::memory_order_acquire) || connections_->closed()) {
    return Status::FailedPrecondition(
        "shard service was stopped; construct a new one");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("shard port out of range");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad shard bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + err);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  pool_.reserve(options_.handler_threads);
  for (std::size_t i = 0; i < options_.handler_threads; ++i) {
    pool_.emplace_back([this] { HandlerLoop(); });
  }
  return bound_port_;
}

void ShardService::Stop() {
  if (!acceptor_.joinable() && pool_.empty()) return;
  stopping_.store(true, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  connections_->Close();
  for (std::thread& t : pool_) {
    if (t.joinable()) t.join();
  }
  pool_.clear();
  for (int fd : connections_->DrainNow()) ::close(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ShardService::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetSocketTimeouts(fd, options_.io_timeout_ms);
    int local = fd;
    if (!connections_->TryPush(std::move(local))) {
      ShardServiceCounters::Get().sheds->Increment();
      WriteFrame(fd, FrameType::kError, "shard handler pool saturated");
      ::close(fd);
    }
  }
}

void ShardService::HandlerLoop() {
  while (true) {
    std::optional<int> fd = connections_->Pop();
    if (!fd.has_value()) return;
    ServeConnection(*fd);
    ::close(*fd);
  }
}

void ShardService::ServeConnection(int fd) {
  ShardServiceCounters::Get().requests->Increment();
  Result<Frame> request = ReadFrame(fd);
  if (!request.ok()) {
    ShardServiceCounters::Get().errors->Increment();
    return;  // peer gone or garbage framing; nothing to answer
  }

  // Optional kTraceContext preamble: adopt the originating trace id for
  // the duration of this request, then read the actual request frame from
  // the same connection.
  WireTraceContext ctx;
  bool sampled = false;
  if (request->type == FrameType::kTraceContext) {
    Result<WireTraceContext> parsed = ParseTraceContext(request->payload);
    if (!parsed.ok()) {
      ShardServiceCounters::Get().errors->Increment();
      WriteFrame(fd, FrameType::kError,
                 "trace context: " + parsed.status().message());
      return;
    }
    ctx = *parsed;
    sampled = ctx.sampled;
    ShardServiceCounters::Get().traced_requests->Increment();
    // The caller's remaining deadline budget bounds our IO too: no point
    // writing a reply the router has already given up on.
    if (ctx.deadline_us != 0) {
      const std::uint64_t budget_ms =
          std::max<std::uint64_t>(1, ctx.deadline_us / 1000);
      SetSocketTimeouts(fd,
                        std::min<std::uint64_t>(options_.io_timeout_ms,
                                                budget_ms));
    }
    request = ReadFrame(fd);
    if (!request.ok()) {
      ShardServiceCounters::Get().errors->Increment();
      return;
    }
  }

  // RAII guard: a pooled thread must never leak this request's trace id
  // into the next connection it serves.
  ScopedTraceContext trace_guard(sampled ? ctx.trace_id : 0);
  PAYGO_TRACE_SPAN("shard.handle");
  const Frame reply = Handle(*request);
  if (reply.type == FrameType::kError) {
    ShardServiceCounters::Get().errors->Increment();
  }
  WriteFrame(fd, reply.type, reply.payload);
}

Frame ShardService::Handle(const Frame& request) {
  switch (request.type) {
    case FrameType::kPing: {
      Frame reply;
      reply.type = FrameType::kPong;
      reply.payload = std::to_string(server_.generation());
      return reply;
    }
    case FrameType::kClassify:
      return HandleClassify(request.payload);
    case FrameType::kSnapshotPull:
      return HandleSnapshotPull(request.payload);
    case FrameType::kAddSchema:
      return HandleAddSchema(request.payload);
    case FrameType::kTraceFetch:
      return HandleTraceFetch(request.payload);
    default:
      return ErrorFrame("unsupported frame type " +
                        std::to_string(static_cast<int>(request.type)));
  }
}

Frame ShardService::HandleClassify(const std::string& payload) const {
  const std::size_t eol = payload.find('\n');
  if (eol == std::string::npos) {
    return ErrorFrame("classify payload must be '<k>\\n<query>'");
  }
  char* end = nullptr;
  const unsigned long long k =
      std::strtoull(payload.c_str(), &end, 10);
  if (end == payload.c_str() || k == 0) {
    return ErrorFrame("bad classify k");
  }
  const std::string query = payload.substr(eol + 1);

  // Read the snapshot first: classification may race a swap, so the
  // mediation enrichment below bounds-checks every domain id against this
  // (possibly one-generation-older) snapshot and degrades to no
  // attributes on mismatch.
  const PaygoServer::Snapshot snap = server_.snapshot();
  if (snap == nullptr) {
    return ErrorFrame("shard has no snapshot installed");
  }
  Result<std::vector<DomainScore>> scores = server_.Classify(query);
  if (!scores.ok()) {
    return ErrorFrame("classify: " + scores.status().message());
  }
  const std::size_t n = std::min<std::size_t>(k, scores->size());
  std::ostringstream os;
  os << "ok " << server_.generation() << " " << n << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    const DomainScore& s = (*scores)[i];
    os << s.domain << " " << FmtDouble(s.log_posterior) << " ";
    if (snap->has_mediation() && s.domain < snap->domains().num_domains()) {
      const auto& attrs = snap->mediation(s.domain).mediated.attributes;
      for (std::size_t a = 0; a < attrs.size(); ++a) {
        if (a > 0) os << ",";
        os << attrs[a].name;
      }
    }
    os << "\n";
  }
  Frame reply;
  reply.type = FrameType::kClassifyResult;
  reply.payload = os.str();
  return reply;
}

Frame ShardService::HandleSnapshotPull(const std::string& payload) {
  // "none" marks a replica that has never applied anything — it must get
  // the full snapshot even when this primary still publishes at
  // generation 0, where a numeric pull would read as already caught up.
  const bool bootstrap = payload == "none";
  std::uint64_t since = 0;
  if (!bootstrap) {
    char* end = nullptr;
    const unsigned long long since_raw =
        std::strtoull(payload.c_str(), &end, 10);
    if (end == payload.c_str() || *end != '\0') {
      return ErrorFrame("bad snapshot pull generation");
    }
    since = since_raw;
  }

  // Generation BEFORE snapshot: a concurrent publish makes the label
  // conservative (snapshot >= label), never optimistic.
  const std::uint64_t gen = server_.generation();
  const PaygoServer::Snapshot snap = server_.snapshot();
  if (snap == nullptr) {
    return ErrorFrame("primary has no snapshot installed");
  }
  if (!bootstrap && since == gen) {
    ShardServiceCounters::Get().uptodate_pulls->Increment();
    Frame reply;
    reply.type = FrameType::kUpToDate;
    reply.payload = std::to_string(gen);
    return reply;
  }
  if (!bootstrap && since < gen) {
    std::optional<std::string> records = log_.RecordsCovering(since, gen);
    if (records.has_value()) {
      ShardServiceCounters::Get().delta_pulls->Increment();
      Frame reply;
      reply.type = FrameType::kSnapshotDelta;
      reply.payload = "gen " + std::to_string(gen) + "\n" + *records;
      return reply;
    }
  }
  // Bootstrap, log gap, or a replica from a different history (since >
  // gen after a primary restart): ship the whole state.
  Result<std::string> text = SerializeSnapshot(*snap);
  if (!text.ok()) {
    return ErrorFrame("serialize snapshot: " + text.status().message());
  }
  ShardServiceCounters::Get().full_pulls->Increment();
  Frame reply;
  reply.type = FrameType::kSnapshotFull;
  reply.payload = "gen " + std::to_string(gen) + "\n" + *text;
  return reply;
}

Frame ShardService::HandleTraceFetch(const std::string& payload) const {
  char* end = nullptr;
  const unsigned long long id = std::strtoull(payload.c_str(), &end, 10);
  if (end == payload.c_str() || *end != '\0') {
    return ErrorFrame("bad trace fetch id '" + payload + "'");
  }
  ShardServiceCounters::Get().trace_fetches->Increment();
  const std::vector<TraceEvent> events = Tracer::SnapshotEvents(id);
  std::ostringstream os;
  // The current trace-clock reading rides in the header: the fetching
  // router timestamps the round trip and estimates this node's clock
  // offset as now - (t0 + t1) / 2 (RTT midpoint).
  os << "now " << Tracer::NowMicros() << " " << events.size() << "\n";
  for (const TraceEvent& e : events) {
    os << e.start_us << " " << e.dur_us << " " << e.trace_id << " " << e.tid
       << " " << e.depth << " " << e.name << "\n";
  }
  Frame reply;
  reply.type = FrameType::kTraceEvents;
  reply.payload = os.str();
  return reply;
}

Frame ShardService::HandleAddSchema(const std::string& payload) {
  if (options_.read_only) {
    return ErrorFrame("replica is read-only; route writes to the primary");
  }
  Result<SchemaCorpus> one = ParseCorpus(payload);
  if (!one.ok()) {
    return ErrorFrame("add-schema: " + one.status().message());
  }
  if (one->size() != 1) {
    return ErrorFrame("add-schema payload must hold exactly one schema");
  }
  Schema schema = one->schema(0);
  std::vector<std::string> labels = one->labels(0);

  // Serialize wire writes so the generation we log provably belongs to
  // THIS mutation: if anything else published in the window, the +1 check
  // fails and we clear the log (next pull full-syncs) instead of logging
  // a record under a generation that covers someone else's mutation.
  std::lock_guard<std::mutex> lock(write_mu_);
  const std::uint64_t before = server_.generation();
  Status added = server_.AddSchemaAsync(schema, labels).get();
  if (!added.ok()) {
    return ErrorFrame("add-schema: " + added.message());
  }
  const std::uint64_t after = server_.generation();
  if (after == before + 1) {
    log_.Append(after, MakeDeltaRecord(after, schema, labels));
  } else {
    log_.Clear();
  }
  Frame reply;
  reply.type = FrameType::kAck;
  reply.payload = std::to_string(after);
  return reply;
}

}  // namespace paygo
