#include "shard/replication.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "obs/stats.h"
#include "persist/model_io.h"
#include "schema/corpus_io.h"
#include "shard/wire.h"

namespace paygo {

namespace {

std::int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<std::uint64_t> ParseGen(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed generation '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::string MakeDeltaRecord(std::uint64_t generation, const Schema& schema,
                            const std::vector<std::string>& labels) {
  SchemaCorpus one;
  one.set_name("delta");
  one.Add(schema, labels);
  const std::string body = SerializeCorpus(one);
  std::ostringstream os;
  os << "record " << generation << " " << body.size() << "\n" << body;
  return os.str();
}

Result<std::vector<DeltaRecord>> ParseDeltaPayload(std::string_view payload,
                                                   std::uint64_t* through) {
  const std::string text(payload);
  std::size_t pos = text.find('\n');
  if (pos == std::string::npos || text.rfind("gen ", 0) != 0) {
    return Status::InvalidArgument("delta payload missing 'gen' header");
  }
  PAYGO_ASSIGN_OR_RETURN(const std::uint64_t g,
                         ParseGen(text.substr(4, pos - 4)));
  if (through != nullptr) *through = g;
  ++pos;
  std::vector<DeltaRecord> out;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos || text.compare(pos, 7, "record ") != 0) {
      return Status::InvalidArgument("malformed delta record header");
    }
    std::istringstream head(text.substr(pos + 7, eol - pos - 7));
    std::uint64_t gen = 0;
    std::size_t len = 0;
    if (!(head >> gen >> len)) {
      return Status::InvalidArgument("malformed delta record header");
    }
    pos = eol + 1;
    if (pos + len > text.size()) {
      return Status::InvalidArgument("truncated delta record body");
    }
    PAYGO_ASSIGN_OR_RETURN(SchemaCorpus one,
                           ParseCorpus(text.substr(pos, len)));
    if (one.size() != 1) {
      return Status::InvalidArgument("delta record must hold one schema");
    }
    DeltaRecord record;
    record.generation = gen;
    record.schema = one.schema(0);
    record.labels = one.labels(0);
    out.push_back(std::move(record));
    pos += len;
  }
  return out;
}

// --------------------------------------------------------- ReplicationLog

ReplicationLog::ReplicationLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void ReplicationLog::Append(std::uint64_t generation, std::string record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.empty() && generation != entries_.back().first + 1) {
    // A mutation this log does not record published in between; serving
    // deltas across that gap would silently skip it.
    entries_.clear();
  }
  entries_.emplace_back(generation, std::move(record));
  while (entries_.size() > capacity_) entries_.pop_front();
}

void ReplicationLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::optional<std::string> ReplicationLog::RecordsCovering(
    std::uint64_t since, std::uint64_t through) const {
  if (through <= since) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty() || entries_.front().first > since + 1) {
    return std::nullopt;  // trimmed or cleared past the replica's position
  }
  std::string out;
  std::size_t covered = 0;
  for (const auto& [gen, record] : entries_) {
    if (gen <= since) continue;
    if (gen > through) break;
    out += record;
    ++covered;
  }
  // Entries are contiguous by construction, so covering the whole range
  // means exactly through - since records.
  if (covered != through - since) return std::nullopt;
  return out;
}

std::size_t ReplicationLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

// ------------------------------------------------------------ ReplicaSync

ReplicaSync::ReplicaSync(PaygoServer& server, ReplicaSyncOptions options)
    : server_(server), options_(std::move(options)) {}

ReplicaSync::~ReplicaSync() { Stop(); }

Status ReplicaSync::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (loop_.joinable()) return Status::OK();
  if (options_.primary_port == 0) {
    return Status::InvalidArgument("replica sync needs a primary port");
  }
  stopping_ = false;
  loop_ = std::thread([this] { SyncLoop(); });
  return Status::OK();
}

void ReplicaSync::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (loop_.joinable()) loop_.join();
}

void ReplicaSync::SyncLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    PollOnce();  // failures are counted and retried next tick
    std::unique_lock<std::mutex> lock(mu_);
    wake_.wait_for(lock,
                   std::chrono::milliseconds(options_.poll_interval_ms),
                   [this] { return stopping_; });
    if (stopping_) return;
  }
}

Status ReplicaSync::PollOnce() {
  auto fail = [this](Status status) {
    sync_failures_.fetch_add(1, std::memory_order_relaxed);
    connected_.store(false, std::memory_order_relaxed);
    UpdateGauges();
    return status;
  };

  Result<int> fd = ConnectWithRetry(
      options_.primary_host, options_.primary_port, options_.io_timeout_ms,
      options_.connect_attempts, options_.connect_backoff_ms);
  if (!fd.ok()) return fail(fd.status());

  // "none" until the first successful apply: a fresh replica's synced
  // counter of 0 must not be mistaken for "caught up with a generation-0
  // primary" (servers seeded through the constructor publish at 0).
  const std::uint64_t synced = synced_.load(std::memory_order_relaxed);
  const std::string pull = has_synced_.load(std::memory_order_relaxed)
                               ? std::to_string(synced)
                               : std::string("none");
  Status sent = WriteFrame(*fd, FrameType::kSnapshotPull, pull);
  if (!sent.ok()) {
    ::close(*fd);
    return fail(sent);
  }
  Result<Frame> reply = ReadFrame(*fd);
  ::close(*fd);
  if (!reply.ok()) return fail(reply.status());

  switch (reply->type) {
    case FrameType::kUpToDate: {
      Result<std::uint64_t> gen = ParseGen(reply->payload);
      if (!gen.ok()) return fail(gen.status());
      RecordSuccess(*gen);
      return Status::OK();
    }
    case FrameType::kSnapshotFull: {
      const std::size_t eol = reply->payload.find('\n');
      if (eol == std::string::npos ||
          reply->payload.rfind("gen ", 0) != 0) {
        return fail(
            Status::InvalidArgument("snapshot payload missing 'gen'"));
      }
      Result<std::uint64_t> gen =
          ParseGen(reply->payload.substr(4, eol - 4));
      if (!gen.ok()) return fail(gen.status());
      auto restored = ParseSnapshot(
          std::string_view(reply->payload).substr(eol + 1), options_.system);
      if (!restored.ok()) return fail(restored.status());
      Status installed =
          server_.InstallSystemAsync(std::move(*restored)).get();
      if (!installed.ok()) return fail(installed);
      synced_.store(*gen, std::memory_order_relaxed);
      has_synced_.store(true, std::memory_order_relaxed);
      full_syncs_.fetch_add(1, std::memory_order_relaxed);
      RecordSuccess(*gen);
      return Status::OK();
    }
    case FrameType::kSnapshotDelta: {
      std::uint64_t through = 0;
      auto records = ParseDeltaPayload(reply->payload, &through);
      if (!records.ok()) return fail(records.status());
      for (DeltaRecord& record : *records) {
        Status applied =
            server_
                .AddSchemaAsync(std::move(record.schema),
                                std::move(record.labels))
                .get();
        if (!applied.ok()) return fail(applied);
        synced_.store(record.generation, std::memory_order_relaxed);
      }
      synced_.store(through, std::memory_order_relaxed);
      delta_syncs_.fetch_add(1, std::memory_order_relaxed);
      RecordSuccess(through);
      return Status::OK();
    }
    case FrameType::kError:
      return fail(Status::IoError("primary: " + reply->payload));
    default:
      return fail(Status::IoError("unexpected reply frame type"));
  }
}

void ReplicaSync::RecordSuccess(std::uint64_t primary_generation) {
  primary_gen_.store(primary_generation, std::memory_order_relaxed);
  connected_.store(true, std::memory_order_relaxed);
  last_success_ms_.store(SteadyNowMs(), std::memory_order_relaxed);
  UpdateGauges();
}

void ReplicaSync::UpdateGauges() const {
  StatsRegistry& reg = StatsRegistry::Global();
  const Stats stats = GetStats();
  reg.GetGauge("paygo.shard.replica.generation_lag")
      ->Set(static_cast<std::int64_t>(stats.generation_lag));
  reg.GetGauge("paygo.shard.replica.staleness_ms")
      ->Set(static_cast<std::int64_t>(stats.staleness_ms));
}

ReplicaSync::Stats ReplicaSync::GetStats() const {
  Stats stats;
  stats.synced_generation = synced_.load(std::memory_order_relaxed);
  stats.primary_generation = primary_gen_.load(std::memory_order_relaxed);
  stats.generation_lag =
      stats.primary_generation > stats.synced_generation
          ? stats.primary_generation - stats.synced_generation
          : 0;
  const std::int64_t last = last_success_ms_.load(std::memory_order_relaxed);
  stats.staleness_ms =
      last < 0 ? 0
               : static_cast<std::uint64_t>(
                     std::max<std::int64_t>(0, SteadyNowMs() - last));
  stats.full_syncs = full_syncs_.load(std::memory_order_relaxed);
  stats.delta_syncs = delta_syncs_.load(std::memory_order_relaxed);
  stats.sync_failures = sync_failures_.load(std::memory_order_relaxed);
  stats.connected = connected_.load(std::memory_order_relaxed);
  return stats;
}

std::string ReplicaSync::StatsJson() const {
  const Stats stats = GetStats();
  std::ostringstream os;
  os << "{\"synced_generation\": " << stats.synced_generation
     << ", \"primary_generation\": " << stats.primary_generation
     << ", \"generation_lag\": " << stats.generation_lag
     << ", \"staleness_ms\": " << stats.staleness_ms
     << ", \"full_syncs\": " << stats.full_syncs
     << ", \"delta_syncs\": " << stats.delta_syncs
     << ", \"sync_failures\": " << stats.sync_failures
     << ", \"connected\": " << (stats.connected ? "true" : "false") << "}";
  return os.str();
}

}  // namespace paygo
