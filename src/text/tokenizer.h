#ifndef PAYGO_TEXT_TOKENIZER_H_
#define PAYGO_TEXT_TOKENIZER_H_

/// \file tokenizer.h
/// \brief Attribute-name term extraction (Section 4.1, Algorithm 1 steps 4-7).
///
/// An attribute name such as "Day/Time" or "MaxNumberOfStudents" is split
/// into terms over a set of delimiters and at lower-to-upper CamelCase
/// boundaries, canonicalized to lower case, and filtered against stop words
/// and a minimum term length.

#include <string>
#include <string_view>
#include <vector>

namespace paygo {

/// \brief Options controlling term extraction.
struct TokenizerOptions {
  /// Characters treated as term delimiters (thesis: "white spaces, slashes,
  /// and underscores"; we include the common punctuation found in web-form
  /// labels as well).
  std::string delimiters = " \t\r\n/_-.,:;()[]{}'\"?!&*#+=|\\<>";
  /// Split "MaxNumberOfStudents" into {max, number, of, students}.
  bool split_camel_case = true;
  /// Terms shorter than this many characters are dropped ("terms with less
  /// than three letters").
  std::size_t min_term_length = 3;
  /// Drop stop words ("of", "the", ...).
  bool remove_stop_words = true;
  /// Drop terms that contain no ASCII letter at all (pure numbers such as a
  /// year column header carry no lexical signal for t_sim).
  bool drop_non_alphabetic = true;
};

/// \brief Splits attribute names into canonicalized terms.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Extracts the canonical terms of one attribute name, in order of
  /// appearance (duplicates preserved; callers needing a set deduplicate).
  std::vector<std::string> Tokenize(std::string_view attribute_name) const;

  /// Extracts the union of terms over several attribute names, deduplicated
  /// and sorted — this is the set T_i of Algorithm 1 for a schema.
  std::vector<std::string> TokenizeAll(
      const std::vector<std::string>& attribute_names) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  /// Splits one delimiter-free chunk at CamelCase boundaries.
  void SplitCamel(std::string_view chunk,
                  std::vector<std::string>* out) const;

  TokenizerOptions options_;
};

}  // namespace paygo

#endif  // PAYGO_TEXT_TOKENIZER_H_
