#ifndef PAYGO_TEXT_LCS_H_
#define PAYGO_TEXT_LCS_H_

/// \file lcs.h
/// \brief Longest common substring computation (Section 4.1).
///
/// The thesis's term-similarity function is based on the longest common
/// substring: t_sim(t1, t2) = 2*len(LCS(t1,t2)) / (len(t1)+len(t2)). Two
/// implementations are provided: a simple O(n*m) dynamic program and a
/// suffix-automaton-based variant that runs in O(n+m) time after an O(n)
/// build, mirroring the thesis's remark that "the longest common substring
/// can be computed efficiently in linear time using suffix trees".

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace paygo {

/// Length of the longest common substring of \p a and \p b (O(|a|*|b|) DP).
std::size_t LcsLengthDp(std::string_view a, std::string_view b);

/// \brief Suffix automaton over one string; answers LCS-length queries
/// against other strings in linear time per query.
///
/// Build once per term, then call LcsLengthWith() for each comparison — the
/// similarity index uses this to amortize the build across the many
/// candidate pairs a term participates in.
class SuffixAutomaton {
 public:
  /// Builds the automaton of \p text (lower-case ASCII expected; any bytes
  /// work, transitions are per-byte).
  explicit SuffixAutomaton(std::string_view text);

  /// Length of the longest common substring between the built text and \p s.
  std::size_t LcsLengthWith(std::string_view s) const;

  /// Number of automaton states (for tests).
  std::size_t num_states() const { return states_.size(); }

 private:
  struct State {
    int len = 0;
    int link = -1;
    std::array<int, 26> next;  // 'a'..'z'; other bytes mapped to 26-bucket -1
    std::vector<std::pair<unsigned char, int>> other;  // rare non-letter bytes
    State() { next.fill(-1); }
  };

  int Transition(int state, unsigned char c) const;
  void SetTransition(int state, unsigned char c, int to);

  std::vector<State> states_;
  int last_;
};

/// Length of the longest common substring via a suffix automaton of \p a.
std::size_t LcsLengthAutomaton(std::string_view a, std::string_view b);

}  // namespace paygo

#endif  // PAYGO_TEXT_LCS_H_
