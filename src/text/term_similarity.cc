#include "text/term_similarity.h"

#include <algorithm>
#include <vector>

#include "text/lcs.h"
#include "text/porter_stemmer.h"

namespace paygo {

double LcsTermSimilarity(std::string_view t1, std::string_view t2) {
  if (t1.empty() || t2.empty()) return 0.0;
  const std::size_t lcs = LcsLengthDp(t1, t2);
  return 2.0 * static_cast<double>(lcs) /
         static_cast<double>(t1.size() + t2.size());
}

std::size_t LevenshteinDistance(std::string_view t1, std::string_view t2) {
  if (t1.empty()) return t2.size();
  if (t2.empty()) return t1.size();
  std::vector<std::size_t> row(t2.size() + 1);
  for (std::size_t j = 0; j <= t2.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= t1.size(); ++i) {
    std::size_t diag = row[0];  // dp[i-1][j-1]
    row[0] = i;
    for (std::size_t j = 1; j <= t2.size(); ++j) {
      const std::size_t up = row[j];  // dp[i-1][j]
      const std::size_t subst = diag + (t1[i - 1] == t2[j - 1] ? 0 : 1);
      row[j] = std::min({subst, up + 1, row[j - 1] + 1});
      diag = up;
    }
  }
  return row[t2.size()];
}

double LevenshteinSimilarity(std::string_view t1, std::string_view t2) {
  const std::size_t longer = std::max(t1.size(), t2.size());
  if (longer == 0) return 0.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(t1, t2)) /
                   static_cast<double>(longer);
}

double JaroSimilarity(std::string_view t1, std::string_view t2) {
  if (t1.empty() || t2.empty()) return 0.0;
  if (t1 == t2) return 1.0;
  const std::size_t len1 = t1.size(), len2 = t2.size();
  const std::size_t window =
      std::max<std::size_t>(1, std::max(len1, len2) / 2) - 1;

  std::vector<bool> matched1(len1, false), matched2(len2, false);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < len1; ++i) {
    const std::size_t lo = i > window ? i - window : 0;
    const std::size_t hi = std::min(len2, i + window + 1);
    for (std::size_t j = lo; j < hi; ++j) {
      if (matched2[j] || t1[i] != t2[j]) continue;
      matched1[i] = true;
      matched2[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Transpositions: matched characters out of order.
  std::size_t transpositions = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < len1; ++i) {
    if (!matched1[i]) continue;
    while (!matched2[k]) ++k;
    if (t1[i] != t2[k]) ++transpositions;
    ++k;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(len1) + m / static_cast<double>(len2) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view t1, std::string_view t2,
                             double prefix_scale) {
  const double jaro = JaroSimilarity(t1, t2);
  std::size_t prefix = 0;
  const std::size_t limit = std::min({t1.size(), t2.size(),
                                      static_cast<std::size_t>(4)});
  while (prefix < limit && t1[prefix] == t2[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

double TermSimilarity::Compute(std::string_view t1, std::string_view t2) const {
  switch (kind_) {
    case TermSimilarityKind::kLcs:
      return LcsTermSimilarity(t1, t2);
    case TermSimilarityKind::kStem:
      if (t1.empty() || t2.empty()) return 0.0;
      return PorterStem(t1) == PorterStem(t2) ? 1.0 : 0.0;
    case TermSimilarityKind::kExact:
      if (t1.empty()) return 0.0;
      return t1 == t2 ? 1.0 : 0.0;
    case TermSimilarityKind::kLevenshtein:
      return LevenshteinSimilarity(t1, t2);
    case TermSimilarityKind::kJaroWinkler:
      return JaroWinklerSimilarity(t1, t2);
  }
  return 0.0;
}

double TermSimilarity::UpperBound(std::size_t len1, std::size_t len2) const {
  if (len1 == 0 || len2 == 0) return 0.0;
  switch (kind_) {
    case TermSimilarityKind::kLcs: {
      const std::size_t shorter = len1 < len2 ? len1 : len2;
      return 2.0 * static_cast<double>(shorter) /
             static_cast<double>(len1 + len2);
    }
    case TermSimilarityKind::kLevenshtein: {
      // At least |len1 - len2| edits are required.
      const std::size_t longer = std::max(len1, len2);
      const std::size_t diff = longer - std::min(len1, len2);
      return 1.0 - static_cast<double>(diff) / static_cast<double>(longer);
    }
    case TermSimilarityKind::kStem:
    case TermSimilarityKind::kExact:
    case TermSimilarityKind::kJaroWinkler:
      return 1.0;
  }
  return 1.0;
}

}  // namespace paygo
