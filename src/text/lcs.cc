#include "text/lcs.h"

#include <algorithm>

namespace paygo {

std::size_t LcsLengthDp(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  // Rolling single-row DP: dp[j] = length of common suffix of a[..i], b[..j].
  std::vector<std::size_t> dp(b.size() + 1, 0);
  std::size_t best = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev_diag = 0;  // dp[i-1][j-1]
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t saved = dp[j];
      if (a[i - 1] == b[j - 1]) {
        dp[j] = prev_diag + 1;
        best = std::max(best, dp[j]);
      } else {
        dp[j] = 0;
      }
      prev_diag = saved;
    }
  }
  return best;
}

int SuffixAutomaton::Transition(int state, unsigned char c) const {
  const State& st = states_[static_cast<std::size_t>(state)];
  if (c >= 'a' && c <= 'z') return st.next[c - 'a'];
  for (const auto& [ch, to] : st.other) {
    if (ch == c) return to;
  }
  return -1;
}

void SuffixAutomaton::SetTransition(int state, unsigned char c, int to) {
  State& st = states_[static_cast<std::size_t>(state)];
  if (c >= 'a' && c <= 'z') {
    st.next[c - 'a'] = to;
    return;
  }
  for (auto& [ch, existing] : st.other) {
    if (ch == c) {
      existing = to;
      return;
    }
  }
  st.other.emplace_back(c, to);
}

SuffixAutomaton::SuffixAutomaton(std::string_view text) {
  states_.reserve(2 * text.size() + 2);
  states_.emplace_back();  // initial state 0
  last_ = 0;
  for (char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    const int cur = static_cast<int>(states_.size());
    states_.emplace_back();
    states_[static_cast<std::size_t>(cur)].len =
        states_[static_cast<std::size_t>(last_)].len + 1;
    int p = last_;
    while (p != -1 && Transition(p, c) == -1) {
      SetTransition(p, c, cur);
      p = states_[static_cast<std::size_t>(p)].link;
    }
    if (p == -1) {
      states_[static_cast<std::size_t>(cur)].link = 0;
    } else {
      const int q = Transition(p, c);
      if (states_[static_cast<std::size_t>(p)].len + 1 ==
          states_[static_cast<std::size_t>(q)].len) {
        states_[static_cast<std::size_t>(cur)].link = q;
      } else {
        const int clone = static_cast<int>(states_.size());
        states_.push_back(states_[static_cast<std::size_t>(q)]);
        states_[static_cast<std::size_t>(clone)].len =
            states_[static_cast<std::size_t>(p)].len + 1;
        while (p != -1 && Transition(p, c) == q) {
          SetTransition(p, c, clone);
          p = states_[static_cast<std::size_t>(p)].link;
        }
        states_[static_cast<std::size_t>(q)].link = clone;
        states_[static_cast<std::size_t>(cur)].link = clone;
      }
    }
    last_ = cur;
  }
}

std::size_t SuffixAutomaton::LcsLengthWith(std::string_view s) const {
  int v = 0;
  int length = 0;
  std::size_t best = 0;
  for (char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    while (v != 0 && Transition(v, c) == -1) {
      v = states_[static_cast<std::size_t>(v)].link;
      length = states_[static_cast<std::size_t>(v)].len;
    }
    const int to = Transition(v, c);
    if (to != -1) {
      v = to;
      ++length;
    } else {
      v = 0;
      length = 0;
    }
    best = std::max(best, static_cast<std::size_t>(length));
  }
  return best;
}

std::size_t LcsLengthAutomaton(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  SuffixAutomaton sam(a);
  return sam.LcsLengthWith(b);
}

}  // namespace paygo
