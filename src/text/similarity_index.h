#ifndef PAYGO_TEXT_SIMILARITY_INDEX_H_
#define PAYGO_TEXT_SIMILARITY_INDEX_H_

/// \file similarity_index.h
/// \brief Term-similarity neighborhoods over a term lexicon.
///
/// Algorithm 1 needs, for every lexicon term L_j and every schema term t,
/// whether t_sim(L_j, t) >= tau_t_sim. Computing this naively is
/// O(|L| * total terms) LCS evaluations, which is infeasible at DDH scale
/// (2323 schemas). SimilarityIndex precomputes, for each lexicon term, the
/// set of lexicon terms similar to it, using two sound prunes for the LCS
/// similarity:
///
///  * a length bound — t_sim <= 2*min(l1,l2)/(l1+l2), so pairs whose length
///    ratio is too skewed can never reach the threshold; and
///  * a character-bigram inverted index — whenever the threshold forces the
///    common substring to have length >= 2, similar terms must share a
///    bigram, so only posting-list collisions are evaluated.
///
/// Both prunes are exact (no false negatives) under the documented
/// conditions; when the threshold is too low for the bigram prune to be
/// sound, the index transparently falls back to the exhaustive scan.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "text/term_similarity.h"

namespace paygo {

/// \brief Precomputed tau-neighborhoods of a term lexicon.
class SimilarityIndex {
 public:
  /// Builds neighborhoods for \p terms under \p sim with threshold
  /// \p threshold. \p terms must be deduplicated; neighborhoods always
  /// include the term itself. \p num_threads spreads the pair scan over a
  /// worker pool (0 = hardware_concurrency, 1 = serial, the default);
  /// qualifying pairs are buffered per chunk and applied in ascending
  /// chunk order, and every row is sorted afterwards, so the neighborhoods
  /// are identical at any thread count. Build statistics are aggregated
  /// per chunk and flushed to the registry once, so parallel builds never
  /// tear or double-count.
  SimilarityIndex(std::vector<std::string> terms, TermSimilarity sim,
                  double threshold, std::size_t num_threads = 1);

  /// Lexicon terms similar to term \p i (sorted indices, includes i).
  const std::vector<std::uint32_t>& Neighbors(std::size_t i) const {
    return neighbors_[i];
  }

  /// Lexicon indices of all terms with t_sim(term, L_j) >= threshold, for an
  /// arbitrary (possibly out-of-lexicon) \p term — used to featurize keyword
  /// queries. Sorted ascending.
  std::vector<std::uint32_t> Match(std::string_view term) const;

  /// The lexicon the index was built over.
  const std::vector<std::string>& terms() const { return terms_; }
  double threshold() const { return threshold_; }
  const TermSimilarity& similarity() const { return sim_; }

 private:
  void BuildBigramIndex();
  void BuildNeighborhoods();
  /// True when the bigram prune is sound for the current threshold and the
  /// shortest term in play (any common substring must have length >= 2).
  bool BigramPruneSound(std::size_t min_len) const;
  /// Candidate lexicon indices sharing a bigram with \p term.
  std::vector<std::uint32_t> BigramCandidates(std::string_view term) const;

  std::vector<std::string> terms_;
  TermSimilarity sim_;
  double threshold_;
  std::size_t num_threads_ = 1;
  std::size_t min_term_len_ = 0;

  // bigram (c1*256+c2) -> sorted list of term indices containing it.
  std::vector<std::vector<std::uint32_t>> bigram_postings_;
  std::vector<std::vector<std::uint32_t>> neighbors_;
};

}  // namespace paygo

#endif  // PAYGO_TEXT_SIMILARITY_INDEX_H_
