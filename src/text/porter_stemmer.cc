#include "text/porter_stemmer.h"

#include <cctype>

namespace paygo {
namespace {

// Implementation of the classic Porter (1980) algorithm, steps 1a-5b,
// operating on lower-case ASCII words.

bool IsVowelAt(const std::string& w, std::size_t i) {
  const char c = w[i];
  if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') return true;
  // 'y' is a vowel when preceded by a consonant.
  if (c == 'y') {
    if (i == 0) return false;
    return !IsVowelAt(w, i - 1);
  }
  return false;
}

/// Measure m of the word prefix w[0..end): number of VC sequences.
int Measure(const std::string& w, std::size_t end) {
  int m = 0;
  std::size_t i = 0;
  // Skip initial consonants.
  while (i < end && !IsVowelAt(w, i)) ++i;
  while (i < end) {
    // In a vowel run.
    while (i < end && IsVowelAt(w, i)) ++i;
    if (i >= end) break;
    // Consonant run -> one VC.
    ++m;
    while (i < end && !IsVowelAt(w, i)) ++i;
  }
  return m;
}

bool ContainsVowel(const std::string& w, std::size_t end) {
  for (std::size_t i = 0; i < end; ++i) {
    if (IsVowelAt(w, i)) return true;
  }
  return false;
}

bool EndsWithDoubleConsonant(const std::string& w) {
  const std::size_t n = w.size();
  if (n < 2) return false;
  if (w[n - 1] != w[n - 2]) return false;
  return !IsVowelAt(w, n - 1);
}

/// *o condition: stem ends cvc where the final c is not w, x or y.
bool EndsCvc(const std::string& w, std::size_t end) {
  if (end < 3) return false;
  if (IsVowelAt(w, end - 1) || !IsVowelAt(w, end - 2) ||
      IsVowelAt(w, end - 3)) {
    return false;
  }
  const char c = w[end - 1];
  return c != 'w' && c != 'x' && c != 'y';
}

bool EndsWith(const std::string& w, std::string_view suffix) {
  return w.size() >= suffix.size() &&
         w.compare(w.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// If w ends with `suffix` and the measure of the remaining stem is > m_min,
/// replaces the suffix with `repl` and returns true.
bool ReplaceIfMeasure(std::string& w, std::string_view suffix,
                      std::string_view repl, int m_min) {
  if (!EndsWith(w, suffix)) return false;
  const std::size_t stem_len = w.size() - suffix.size();
  if (Measure(w, stem_len) <= m_min) return true;  // matched but unchanged
  w.resize(stem_len);
  w.append(repl);
  return true;
}

void Step1a(std::string& w) {
  if (EndsWith(w, "sses")) {
    w.resize(w.size() - 2);
  } else if (EndsWith(w, "ies")) {
    w.resize(w.size() - 2);
  } else if (EndsWith(w, "ss")) {
    // unchanged
  } else if (EndsWith(w, "s") && w.size() > 1) {
    w.resize(w.size() - 1);
  }
}

void Step1bTail(std::string& w) {
  // Called after removing -ed / -ing.
  if (EndsWith(w, "at") || EndsWith(w, "bl") || EndsWith(w, "iz")) {
    w.push_back('e');
  } else if (EndsWithDoubleConsonant(w)) {
    const char c = w.back();
    if (c != 'l' && c != 's' && c != 'z') w.resize(w.size() - 1);
  } else if (Measure(w, w.size()) == 1 && EndsCvc(w, w.size())) {
    w.push_back('e');
  }
}

void Step1b(std::string& w) {
  if (EndsWith(w, "eed")) {
    if (Measure(w, w.size() - 3) > 0) w.resize(w.size() - 1);
    return;
  }
  if (EndsWith(w, "ed") && ContainsVowel(w, w.size() - 2)) {
    w.resize(w.size() - 2);
    Step1bTail(w);
    return;
  }
  if (EndsWith(w, "ing") && ContainsVowel(w, w.size() - 3)) {
    w.resize(w.size() - 3);
    Step1bTail(w);
  }
}

void Step1c(std::string& w) {
  if (EndsWith(w, "y") && ContainsVowel(w, w.size() - 1)) {
    w.back() = 'i';
  }
}

void Step2(std::string& w) {
  struct Rule {
    std::string_view suffix, repl;
  };
  static const Rule kRules[] = {
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
      {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
      {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
      {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
      {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
      {"iviti", "ive"},   {"biliti", "ble"},
  };
  for (const Rule& r : kRules) {
    if (ReplaceIfMeasure(w, r.suffix, r.repl, 0)) return;
  }
}

void Step3(std::string& w) {
  struct Rule {
    std::string_view suffix, repl;
  };
  static const Rule kRules[] = {
      {"icate", "ic"}, {"ative", ""},  {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},    {"ness", ""},
  };
  for (const Rule& r : kRules) {
    if (ReplaceIfMeasure(w, r.suffix, r.repl, 0)) return;
  }
}

void Step4(std::string& w) {
  static const std::string_view kSuffixes[] = {
      "al",  "ance", "ence", "er",  "ic",   "able", "ible", "ant",
      "ement", "ment", "ent", "ou", "ism",  "ate",  "iti",  "ous",
      "ive", "ize",
  };
  for (std::string_view s : kSuffixes) {
    if (!EndsWith(w, s)) continue;
    const std::size_t stem_len = w.size() - s.size();
    if (Measure(w, stem_len) > 1) w.resize(stem_len);
    return;
  }
  // Special case: -(s|t)ion
  if (EndsWith(w, "ion")) {
    const std::size_t stem_len = w.size() - 3;
    if (stem_len > 0 && (w[stem_len - 1] == 's' || w[stem_len - 1] == 't') &&
        Measure(w, stem_len) > 1) {
      w.resize(stem_len);
    }
  }
}

void Step5a(std::string& w) {
  if (!EndsWith(w, "e")) return;
  const std::size_t stem_len = w.size() - 1;
  const int m = Measure(w, stem_len);
  if (m > 1 || (m == 1 && !EndsCvc(w, stem_len))) w.resize(stem_len);
}

void Step5b(std::string& w) {
  if (EndsWith(w, "ll") && Measure(w, w.size() - 1) > 1) {
    w.resize(w.size() - 1);
  }
}

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  for (char c : word) {
    if (!std::islower(static_cast<unsigned char>(c))) {
      return std::string(word);
    }
  }
  std::string w(word);
  Step1a(w);
  Step1b(w);
  Step1c(w);
  Step2(w);
  Step3(w);
  Step4(w);
  Step5a(w);
  Step5b(w);
  return w;
}

}  // namespace paygo
