#include "text/stopwords.h"

#include <unordered_set>

namespace paygo {
namespace {

// A compact English stop-word list tuned for attribute-name text. Terms
// shorter than three characters are already removed by the tokenizer's
// minimum-length filter, so words like "of", "by", "to" need not appear.
const std::vector<std::string_view>* MakeList() {
  static const std::vector<std::string_view> kList = {
      "the", "and", "for", "are", "was", "were", "been", "being",
      "has", "had", "have", "does", "did", "doing", "will", "would",
      "shall", "should", "can", "could", "may", "might", "must",
      "this", "that", "these", "those", "there", "here", "where",
      "when", "which", "while", "with", "within", "without",
      "from", "into", "onto", "upon", "about", "above", "below",
      "between", "among", "through", "during", "before", "after",
      "under", "over", "per", "via", "than", "then", "them", "they",
      "their", "theirs", "its", "his", "her", "hers", "him", "she",
      "our", "ours", "your", "yours", "who", "whom", "whose", "what",
      "why", "how", "all", "any", "both", "each", "few", "more",
      "most", "other", "some", "such", "only", "own", "same", "not",
      "nor", "too", "very", "just", "but", "etc", "e.g", "i.e",
      "also", "please", "enter", "choose",
  };
  return &kList;
}

const std::unordered_set<std::string_view>* MakeSet() {
  static const std::unordered_set<std::string_view> kSet(MakeList()->begin(),
                                                         MakeList()->end());
  return &kSet;
}

}  // namespace

bool IsStopWord(std::string_view term) {
  return MakeSet()->count(term) != 0;
}

const std::vector<std::string_view>& StopWordList() { return *MakeList(); }

}  // namespace paygo
