#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "text/stopwords.h"
#include "util/string_util.h"

namespace paygo {
namespace {

bool HasLetter(std::string_view s) {
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(std::move(options)) {}

void Tokenizer::SplitCamel(std::string_view chunk,
                           std::vector<std::string>* out) const {
  if (!options_.split_camel_case) {
    out->emplace_back(chunk);
    return;
  }
  std::string current;
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(chunk[i]);
    const bool upper = std::isupper(c) != 0;
    const bool prev_lower =
        i > 0 && std::islower(static_cast<unsigned char>(chunk[i - 1])) != 0;
    const bool prev_digit =
        i > 0 && std::isdigit(static_cast<unsigned char>(chunk[i - 1])) != 0;
    // Boundary at lower->Upper ("maxNumber") and digit->Upper ("2Day"), and
    // at Upper followed by lower when preceded by Upper ("HTMLPage" ->
    // "HTML", "Page").
    bool boundary = upper && (prev_lower || prev_digit);
    if (!boundary && upper && i + 1 < chunk.size() && i > 0) {
      const bool prev_upper =
          std::isupper(static_cast<unsigned char>(chunk[i - 1])) != 0;
      const bool next_lower =
          std::islower(static_cast<unsigned char>(chunk[i + 1])) != 0;
      boundary = prev_upper && next_lower;
    }
    if (boundary && !current.empty()) {
      out->push_back(std::move(current));
      current.clear();
    }
    current.push_back(static_cast<char>(c));
  }
  if (!current.empty()) out->push_back(std::move(current));
}

std::vector<std::string> Tokenizer::Tokenize(
    std::string_view attribute_name) const {
  std::vector<std::string> chunks =
      SplitAny(attribute_name, options_.delimiters);
  std::vector<std::string> raw;
  raw.reserve(chunks.size());
  for (const std::string& chunk : chunks) SplitCamel(chunk, &raw);

  std::vector<std::string> terms;
  terms.reserve(raw.size());
  for (const std::string& t : raw) {
    std::string canon = ToLowerAscii(t);
    if (canon.size() < options_.min_term_length) continue;
    if (options_.drop_non_alphabetic && !HasLetter(canon)) continue;
    if (options_.remove_stop_words && IsStopWord(canon)) continue;
    terms.push_back(std::move(canon));
  }
  return terms;
}

std::vector<std::string> Tokenizer::TokenizeAll(
    const std::vector<std::string>& attribute_names) const {
  std::vector<std::string> all;
  for (const std::string& name : attribute_names) {
    std::vector<std::string> terms = Tokenize(name);
    all.insert(all.end(), std::make_move_iterator(terms.begin()),
               std::make_move_iterator(terms.end()));
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

}  // namespace paygo
