#ifndef PAYGO_TEXT_PORTER_STEMMER_H_
#define PAYGO_TEXT_PORTER_STEMMER_H_

/// \file porter_stemmer.h
/// \brief Porter stemming algorithm (Porter, 1980).
///
/// Section 4.1 of the thesis notes that an alternative to the LCS-based term
/// similarity is "a function that recognizes two terms to be similar if and
/// only if they have the same stem". This is that alternative; see
/// TermSimilarityKind::kStem in term_similarity.h.

#include <string>
#include <string_view>

namespace paygo {

/// Returns the Porter stem of \p word (expects lower-case ASCII input;
/// non-alphabetic input is returned unchanged).
std::string PorterStem(std::string_view word);

}  // namespace paygo

#endif  // PAYGO_TEXT_PORTER_STEMMER_H_
