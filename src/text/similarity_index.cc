#include "text/similarity_index.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "obs/stats.h"
#include "obs/trace.h"
#include "text/porter_stemmer.h"
#include "util/thread_pool.h"

namespace paygo {
namespace {

constexpr std::size_t kBigramSpace = 256 * 256;

inline std::size_t BigramKey(unsigned char a, unsigned char b) {
  return static_cast<std::size_t>(a) * 256 + b;
}

}  // namespace

SimilarityIndex::SimilarityIndex(std::vector<std::string> terms,
                                 TermSimilarity sim, double threshold,
                                 std::size_t num_threads)
    : terms_(std::move(terms)),
      sim_(sim),
      threshold_(threshold),
      num_threads_(ThreadPool::ResolveThreadCount(num_threads)) {
  min_term_len_ = terms_.empty() ? 0 : terms_[0].size();
  for (const auto& t : terms_) min_term_len_ = std::min(min_term_len_, t.size());
  if (sim_.kind() == TermSimilarityKind::kLcs) BuildBigramIndex();
  BuildNeighborhoods();
}

bool SimilarityIndex::BigramPruneSound(std::size_t min_len) const {
  // t_sim >= threshold forces LCS >= threshold*(l1+l2)/2 >= threshold*min_len
  // (taking l1 = l2 = min_len as the worst case is wrong: the smallest forced
  // LCS over all admissible pairs is threshold * (min_len + min_len) / 2 =
  // threshold * min_len). The prune is sound when that forced length is >= 2.
  return threshold_ * static_cast<double>(min_len) >= 2.0 - 1e-12;
}

void SimilarityIndex::BuildBigramIndex() {
  bigram_postings_.assign(kBigramSpace, {});
  for (std::uint32_t i = 0; i < terms_.size(); ++i) {
    const std::string& t = terms_[i];
    for (std::size_t k = 0; k + 1 < t.size(); ++k) {
      auto& postings = bigram_postings_[BigramKey(
          static_cast<unsigned char>(t[k]),
          static_cast<unsigned char>(t[k + 1]))];
      if (postings.empty() || postings.back() != i) postings.push_back(i);
    }
  }
}

std::vector<std::uint32_t> SimilarityIndex::BigramCandidates(
    std::string_view term) const {
  std::vector<std::uint32_t> candidates;
  for (std::size_t k = 0; k + 1 < term.size(); ++k) {
    const auto& postings = bigram_postings_[BigramKey(
        static_cast<unsigned char>(term[k]),
        static_cast<unsigned char>(term[k + 1]))];
    candidates.insert(candidates.end(), postings.begin(), postings.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

void SimilarityIndex::BuildNeighborhoods() {
  PAYGO_TRACE_SPAN("simindex.build");
  // Build instrumentation is accumulated per scan chunk in plain locals
  // (never shared between workers, so parallel builds cannot tear or
  // double-count), summed into these totals on the single build thread,
  // and flushed to the registry once at the end of the build.
  std::uint64_t evaluated = 0;
  std::uint64_t pruned = 0;
  StatsRegistry& reg = StatsRegistry::Global();
  static Counter* builds = reg.GetCounter("paygo.simindex.builds");
  static Counter* evaluated_total =
      reg.GetCounter("paygo.simindex.pairs_evaluated");
  static Counter* pruned_total = reg.GetCounter("paygo.simindex.pairs_pruned");
  builds->Increment();
  struct Flush {
    std::uint64_t& evaluated;
    std::uint64_t& pruned;
    Counter* evaluated_total;
    Counter* pruned_total;
    ~Flush() {
      evaluated_total->Add(evaluated);
      pruned_total->Add(pruned);
    }
  } flush{evaluated, pruned, evaluated_total, pruned_total};

  const std::size_t n = terms_.size();
  neighbors_.assign(n, {});
  for (std::uint32_t i = 0; i < n; ++i) neighbors_[i].push_back(i);

  std::unique_ptr<ThreadPool> pool;
  if (num_threads_ > 1 && n > 1) {
    pool = std::make_unique<ThreadPool>(num_threads_);
  }

  switch (sim_.kind()) {
    case TermSimilarityKind::kExact:
      // Identity only (terms_ is deduplicated).
      return;
    case TermSimilarityKind::kStem: {
      // Bucket terms by Porter stem; all terms in a bucket are mutually
      // similar with similarity 1 (>= any threshold in (0,1]). The
      // stemming map parallelizes (slot per term); bucketing and the
      // neighbor fan-out stay serial — bucket traversal order does not
      // matter because every row is sorted afterwards.
      if (threshold_ > 1.0) return;
      std::vector<std::string> stems(n);
      auto stem_range = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) stems[i] = PorterStem(terms_[i]);
      };
      if (pool != nullptr) {
        pool->ParallelFor(0, n, /*grain=*/256,
                          [&](const ThreadPool::Chunk& c) {
                            stem_range(c.begin, c.end);
                          });
      } else {
        stem_range(0, n);
      }
      std::unordered_map<std::string, std::vector<std::uint32_t>> buckets;
      for (std::uint32_t i = 0; i < n; ++i) {
        buckets[stems[i]].push_back(i);
      }
      for (const auto& [stem, members] : buckets) {
        if (members.size() < 2) continue;
        for (std::uint32_t a : members) {
          for (std::uint32_t b : members) {
            if (a != b) neighbors_[a].push_back(b);
          }
        }
      }
      for (auto& nb : neighbors_) std::sort(nb.begin(), nb.end());
      return;
    }
    case TermSimilarityKind::kLcs:
    case TermSimilarityKind::kLevenshtein:
    case TermSimilarityKind::kJaroWinkler:
      break;
  }

  // The bigram prune is only sound for the LCS kind (a qualifying pair is
  // forced to share a substring); the edit-distance-style kinds fall back
  // to the exhaustive scan with the length upper bound.
  //
  // Each chunk of rows i scans candidates j > i and buffers the qualifying
  // (i, j) pairs locally; chunks are applied to the symmetric neighbor
  // lists serially in ascending chunk order, and every row is sorted at
  // the end, so the result is identical at any thread count.
  const bool use_bigrams =
      sim_.kind() == TermSimilarityKind::kLcs && BigramPruneSound(min_term_len_);
  struct ChunkOut {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    std::uint64_t evaluated = 0;
    std::uint64_t pruned = 0;
  };
  auto scan_rows = [&](std::size_t lo, std::size_t hi, ChunkOut& out) {
    for (std::uint32_t i = lo; i < hi; ++i) {
      const std::string& ti = terms_[i];
      std::vector<std::uint32_t> candidates;
      if (use_bigrams) {
        candidates = BigramCandidates(ti);
      } else {
        candidates.resize(n);
        for (std::uint32_t j = 0; j < n; ++j) candidates[j] = j;
      }
      for (std::uint32_t j : candidates) {
        if (j <= i) continue;  // each unordered pair evaluated once
        const std::string& tj = terms_[j];
        if (sim_.UpperBound(ti.size(), tj.size()) < threshold_) {
          ++out.pruned;
          continue;
        }
        ++out.evaluated;
        if (sim_.Compute(ti, tj) >= threshold_) {
          out.pairs.emplace_back(i, j);
        }
      }
    }
  };
  auto apply = [&](const ChunkOut& out) {
    evaluated += out.evaluated;
    pruned += out.pruned;
    for (const auto& [i, j] : out.pairs) {
      neighbors_[i].push_back(j);
      neighbors_[j].push_back(i);
    }
  };
  const std::size_t grain = 16;
  const std::size_t chunks = pool != nullptr ? pool->NumChunks(n, grain) : 1;
  if (chunks > 1) {
    std::vector<ChunkOut> outs(chunks);
    pool->ParallelFor(0, n, grain, [&](const ThreadPool::Chunk& c) {
      scan_rows(c.begin, c.end, outs[c.index]);
    });
    for (const ChunkOut& out : outs) apply(out);
  } else {
    ChunkOut out;
    scan_rows(0, n, out);
    apply(out);
  }
  for (auto& nb : neighbors_) std::sort(nb.begin(), nb.end());
}

std::vector<std::uint32_t> SimilarityIndex::Match(std::string_view term) const {
  // Lookup hit rate: hits / lookups across every index in the process.
  StatsRegistry& reg = StatsRegistry::Global();
  static Counter* lookups = reg.GetCounter("paygo.simindex.lookups");
  static Counter* hits = reg.GetCounter("paygo.simindex.lookup_hits");
  lookups->Increment();
  std::vector<std::uint32_t> out;
  struct HitFlush {  // counts on every return path
    const std::vector<std::uint32_t>& out;
    Counter* hits;
    ~HitFlush() {
      if (!out.empty()) hits->Increment();
    }
  } hit_flush{out, hits};
  if (term.empty() || terms_.empty()) return out;

  switch (sim_.kind()) {
    case TermSimilarityKind::kExact: {
      for (std::uint32_t i = 0; i < terms_.size(); ++i) {
        if (terms_[i] == term) {
          out.push_back(i);
          break;
        }
      }
      return out;
    }
    case TermSimilarityKind::kStem: {
      const std::string stem = PorterStem(term);
      for (std::uint32_t i = 0; i < terms_.size(); ++i) {
        if (PorterStem(terms_[i]) == stem) out.push_back(i);
      }
      return out;
    }
    case TermSimilarityKind::kLcs:
    case TermSimilarityKind::kLevenshtein:
    case TermSimilarityKind::kJaroWinkler:
      break;
  }

  // Soundness of the bigram prune for an external term also requires the
  // LCS kind and the external term's forced LCS length to be >= 2.
  const std::size_t effective_min = std::min(min_term_len_, term.size());
  if (sim_.kind() == TermSimilarityKind::kLcs &&
      BigramPruneSound(effective_min)) {
    for (std::uint32_t j : BigramCandidates(term)) {
      if (sim_.UpperBound(term.size(), terms_[j].size()) < threshold_) continue;
      if (sim_.Compute(term, terms_[j]) >= threshold_) out.push_back(j);
    }
  } else {
    for (std::uint32_t j = 0; j < terms_.size(); ++j) {
      if (sim_.UpperBound(term.size(), terms_[j].size()) < threshold_) continue;
      if (sim_.Compute(term, terms_[j]) >= threshold_) out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace paygo
