#ifndef PAYGO_TEXT_TERM_SIMILARITY_H_
#define PAYGO_TEXT_TERM_SIMILARITY_H_

/// \file term_similarity.h
/// \brief The t_sim term-similarity function of Section 4.1.
///
/// t_sim(t1, t2) = 2 * len(LCS(t1, t2)) / (len(t1) + len(t2)), i.e. the
/// length of the longest common substring divided by the average of the two
/// term lengths; values are in [0, 1]. The thesis also mentions a stem-based
/// alternative (two terms are similar iff they share a Porter stem), exposed
/// here as TermSimilarityKind::kStem. kExact is provided for ablation.

#include <string_view>

namespace paygo {

/// \brief Which t_sim definition to use.
///
/// The thesis uses kLcs and proposes kStem as an alternative; kLevenshtein
/// and kJaroWinkler come from the string-metric survey it cites ([7],
/// Cohen et al.) and are provided for ablation; kExact is the trivial
/// baseline.
enum class TermSimilarityKind {
  /// 2*LCS / (len1+len2) — the thesis default.
  kLcs,
  /// 1.0 when PorterStem(t1) == PorterStem(t2), else 0.0.
  kStem,
  /// 1.0 when t1 == t2, else 0.0 (ablation baseline).
  kExact,
  /// 1 - EditDistance / max(len1, len2).
  kLevenshtein,
  /// Jaro-Winkler similarity (prefix-boosted Jaro).
  kJaroWinkler,
};

/// \brief Computes t_sim between term pairs.
class TermSimilarity {
 public:
  explicit TermSimilarity(TermSimilarityKind kind = TermSimilarityKind::kLcs)
      : kind_(kind) {}

  /// Similarity in [0, 1]; symmetric; 1.0 for identical non-empty terms.
  double Compute(std::string_view t1, std::string_view t2) const;

  /// Cheap upper bound on Compute(t1, t2) from lengths alone: for the LCS
  /// kind this is 2*min(l1,l2)/(l1+l2) (LCS length is at most the shorter
  /// term), letting callers skip pairs that can never reach a threshold.
  double UpperBound(std::size_t len1, std::size_t len2) const;

  TermSimilarityKind kind() const { return kind_; }

 private:
  TermSimilarityKind kind_;
};

/// Standalone LCS-based t_sim (the formula from Section 4.1).
double LcsTermSimilarity(std::string_view t1, std::string_view t2);

/// Levenshtein edit distance (unit costs).
std::size_t LevenshteinDistance(std::string_view t1, std::string_view t2);

/// 1 - LevenshteinDistance / max(len1, len2); 0 when both empty.
double LevenshteinSimilarity(std::string_view t1, std::string_view t2);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view t1, std::string_view t2);

/// Jaro-Winkler: Jaro boosted by up to 4 characters of common prefix with
/// scaling factor \p prefix_scale (standard 0.1).
double JaroWinklerSimilarity(std::string_view t1, std::string_view t2,
                             double prefix_scale = 0.1);

}  // namespace paygo

#endif  // PAYGO_TEXT_TERM_SIMILARITY_H_
