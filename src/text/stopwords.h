#ifndef PAYGO_TEXT_STOPWORDS_H_
#define PAYGO_TEXT_STOPWORDS_H_

/// \file stopwords.h
/// \brief English stop-word list used by term extraction (Section 4.1).

#include <string_view>
#include <vector>

namespace paygo {

/// True iff \p term (already lower-cased) is a stop word.
bool IsStopWord(std::string_view term);

/// The full stop-word list (for tests and documentation).
const std::vector<std::string_view>& StopWordList();

}  // namespace paygo

#endif  // PAYGO_TEXT_STOPWORDS_H_
