#ifndef PAYGO_PERSIST_MODEL_IO_H_
#define PAYGO_PERSIST_MODEL_IO_H_

/// \file model_io.h
/// \brief Persistence of built integration systems.
///
/// A pay-as-you-go system is built once and then serves queries for a long
/// time; re-running Algorithms 1-3 and the classifier setup on every
/// process start is wasted work (the thesis's DDH classifier took minutes
/// to construct). A snapshot stores the corpus, the probabilistic domain
/// model, and the classifier conditionals in one plain-text file;
/// restoring rebuilds the cheap derived state (mediation) and reuses the
/// expensive parts verbatim.
///
/// Snapshot format v2 additionally persists the frozen lexicon terms and
/// the per-schema feature bitsets (as sparse set-bit index lists). v1
/// re-derived both from the corpus, which is wrong once the corpus has
/// grown through AddSchema: added schemas were featurized against the
/// lexicon frozen at Build time (VectorizeExternalTerms), so a re-derived
/// lexicon has a different dimension — the restore fails its dim check —
/// or, worse, the same dimension with different bits. v2 restores the
/// feature space the system actually served with, making
/// serialize -> deserialize bitwise-exact even after incremental churn.
/// v1 snapshots still load (legacy rebuild path, valid for never-mutated
/// systems).
///
/// Structural sharing (IntegrationSystem::Clone) is invisible here by
/// construction: SaveSnapshot reads each component once through the
/// system's accessors, so a component shared by many live snapshots is
/// serialized exactly once, and LoadSnapshot materializes fresh shared
/// components the restored system owns outright.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "classify/naive_bayes.h"
#include "cluster/probabilistic_assignment.h"
#include "core/integration_system.h"
#include "util/status.h"

namespace paygo {

/// Serializes a domain model (clusters + membership probabilities).
std::string SerializeDomainModel(const DomainModel& model);

/// Parses a domain model serialized by SerializeDomainModel.
Result<DomainModel> ParseDomainModel(std::string_view text);

/// Serializes classifier conditionals (priors + per-feature q1 vectors).
std::string SerializeConditionals(
    const std::vector<DomainConditionals>& conditionals);

/// Parses conditionals serialized by SerializeConditionals.
Result<std::vector<DomainConditionals>> ParseConditionals(
    std::string_view text);

/// Serializes a full v2 system snapshot (corpus + lexicon + features +
/// model + conditionals) to a string. The system must have been built with
/// a classifier. This is the in-memory half of SaveSnapshot; the shard
/// replication channel ships the same bytes over the wire.
Result<std::string> SerializeSnapshot(const IntegrationSystem& system);

/// Restores a system from snapshot text (v1 or v2). \p options must carry
/// the same tokenizer/feature/mediator settings the system was built with
/// (they drive the derived state that is rebuilt); clustering and
/// classifier settings are not re-applied — the persisted model and
/// conditionals are used as-is.
Result<std::unique_ptr<IntegrationSystem>> ParseSnapshot(
    std::string_view text, SystemOptions options = {});

/// Writes a full system snapshot to \p path (SerializeSnapshot + file IO).
Status SaveSnapshot(const IntegrationSystem& system, const std::string& path);

/// Restores a system from the snapshot file at \p path (file IO +
/// ParseSnapshot).
Result<std::unique_ptr<IntegrationSystem>> LoadSnapshot(
    const std::string& path, SystemOptions options = {});

}  // namespace paygo

#endif  // PAYGO_PERSIST_MODEL_IO_H_
