#include "persist/model_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "schema/corpus_io.h"
#include "util/bitset.h"
#include "util/string_util.h"

namespace paygo {
namespace {

constexpr std::string_view kModelHeader = "paygo-model v1";
constexpr std::string_view kConditionalsHeader = "paygo-classifier v1";
constexpr std::string_view kSnapshotHeader = "paygo-snapshot v1";
constexpr std::string_view kSnapshotHeaderV2 = "paygo-snapshot v2";

/// Round-trip-exact double formatting.
std::string Fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed number '" + s + "'");
  }
  return v;
}

Result<std::uint64_t> ParseUint(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed integer '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::string SerializeDomainModel(const DomainModel& model) {
  std::ostringstream os;
  os << kModelHeader << "\n";
  os << "counts " << model.num_domains() << " " << model.num_schemas()
     << "\n";
  for (std::uint32_t r = 0; r < model.num_domains(); ++r) {
    os << "cluster " << r;
    for (std::uint32_t i : model.Cluster(r)) os << " " << i;
    os << "\n";
  }
  for (std::uint32_t i = 0; i < model.num_schemas(); ++i) {
    const auto& ds = model.DomainsOf(i);
    if (ds.empty()) continue;
    os << "membership " << i;
    for (const auto& [domain, prob] : ds) {
      os << " " << domain << ":" << Fmt(prob);
    }
    os << "\n";
  }
  return os.str();
}

Result<DomainModel> ParseDomainModel(std::string_view text) {
  const std::vector<std::string> lines = Split(text, '\n');
  std::size_t ln = 0;
  auto fail = [&](const std::string& msg) {
    return Status::InvalidArgument("model line " + std::to_string(ln + 1) +
                                   ": " + msg);
  };
  if (lines.empty() || Trim(lines[0]) != kModelHeader) {
    return Status::InvalidArgument("missing paygo-model header");
  }
  std::size_t num_domains = 0, num_schemas = 0;
  std::vector<std::vector<std::uint32_t>> clusters;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> schema_domains;
  for (ln = 1; ln < lines.size(); ++ln) {
    const std::string line = Trim(lines[ln]);
    if (line.empty()) continue;
    const std::vector<std::string> tok = SplitAny(line, " ");
    if (tok[0] == "counts") {
      if (tok.size() != 3) return fail("counts needs two integers");
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t d, ParseUint(tok[1]));
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t s, ParseUint(tok[2]));
      num_domains = d;
      num_schemas = s;
      clusters.assign(num_domains, {});
      schema_domains.assign(num_schemas, {});
    } else if (tok[0] == "cluster") {
      if (tok.size() < 2) return fail("cluster needs an id");
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t r, ParseUint(tok[1]));
      if (r >= clusters.size()) return fail("cluster id out of range");
      for (std::size_t k = 2; k < tok.size(); ++k) {
        PAYGO_ASSIGN_OR_RETURN(const std::uint64_t i, ParseUint(tok[k]));
        if (i >= num_schemas) return fail("schema id out of range");
        clusters[r].push_back(static_cast<std::uint32_t>(i));
      }
    } else if (tok[0] == "membership") {
      if (tok.size() < 2) return fail("membership needs a schema id");
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t i, ParseUint(tok[1]));
      if (i >= num_schemas) return fail("schema id out of range");
      for (std::size_t k = 2; k < tok.size(); ++k) {
        const std::vector<std::string> pair = Split(tok[k], ':');
        if (pair.size() != 2) return fail("membership entry needs d:p");
        PAYGO_ASSIGN_OR_RETURN(const std::uint64_t d, ParseUint(pair[0]));
        PAYGO_ASSIGN_OR_RETURN(const double p, ParseDouble(pair[1]));
        if (d >= num_domains) return fail("domain id out of range");
        schema_domains[i].emplace_back(static_cast<std::uint32_t>(d), p);
      }
    } else {
      return fail("unknown directive '" + tok[0] + "'");
    }
  }
  return DomainModel::Build(std::move(clusters), std::move(schema_domains));
}

std::string SerializeConditionals(
    const std::vector<DomainConditionals>& conditionals) {
  std::ostringstream os;
  os << kConditionalsHeader << "\n";
  const std::size_t dim =
      conditionals.empty() ? 0 : conditionals[0].q1.size();
  os << "counts " << conditionals.size() << " " << dim << "\n";
  for (std::size_t r = 0; r < conditionals.size(); ++r) {
    os << "prior " << r << " " << Fmt(conditionals[r].prior) << "\n";
    os << "q1 " << r;
    for (double q : conditionals[r].q1) os << " " << Fmt(q);
    os << "\n";
  }
  return os.str();
}

Result<std::vector<DomainConditionals>> ParseConditionals(
    std::string_view text) {
  const std::vector<std::string> lines = Split(text, '\n');
  std::size_t ln = 0;
  auto fail = [&](const std::string& msg) {
    return Status::InvalidArgument("classifier line " +
                                   std::to_string(ln + 1) + ": " + msg);
  };
  if (lines.empty() || Trim(lines[0]) != kConditionalsHeader) {
    return Status::InvalidArgument("missing paygo-classifier header");
  }
  std::vector<DomainConditionals> out;
  std::size_t dim = 0;
  for (ln = 1; ln < lines.size(); ++ln) {
    const std::string line = Trim(lines[ln]);
    if (line.empty()) continue;
    const std::vector<std::string> tok = SplitAny(line, " ");
    if (tok[0] == "counts") {
      if (tok.size() != 3) return fail("counts needs two integers");
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t d, ParseUint(tok[1]));
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t dd, ParseUint(tok[2]));
      out.assign(d, DomainConditionals{});
      dim = dd;
    } else if (tok[0] == "prior") {
      if (tok.size() != 3) return fail("prior needs id and value");
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t r, ParseUint(tok[1]));
      if (r >= out.size()) return fail("domain id out of range");
      PAYGO_ASSIGN_OR_RETURN(out[r].prior, ParseDouble(tok[2]));
    } else if (tok[0] == "q1") {
      if (tok.size() < 2) return fail("q1 needs a domain id");
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t r, ParseUint(tok[1]));
      if (r >= out.size()) return fail("domain id out of range");
      if (tok.size() - 2 != dim) return fail("q1 vector has wrong length");
      out[r].q1.reserve(dim);
      for (std::size_t k = 2; k < tok.size(); ++k) {
        PAYGO_ASSIGN_OR_RETURN(const double q, ParseDouble(tok[k]));
        out[r].q1.push_back(q);
      }
    } else {
      return fail("unknown directive '" + tok[0] + "'");
    }
  }
  for (const DomainConditionals& c : out) {
    if (c.q1.size() != dim) {
      return Status::InvalidArgument("classifier: missing q1 vector");
    }
  }
  return out;
}

namespace {

/// The v2 lexicon section: the sorted frozen term vector, one term per
/// line (tokenizer output never contains newlines), count first so the
/// parser pre-sizes and validates.
std::string SerializeLexiconSection(const Lexicon& lexicon) {
  std::ostringstream os;
  os << "terms " << lexicon.dim() << "\n";
  for (const std::string& t : lexicon.terms()) os << t << "\n";
  return os.str();
}

Result<std::vector<std::string>> ParseLexiconSection(std::string_view text) {
  const std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty()) {
    return Status::InvalidArgument("lexicon section is empty");
  }
  const std::vector<std::string> head = SplitAny(Trim(lines[0]), " ");
  if (head.size() != 2 || head[0] != "terms") {
    return Status::InvalidArgument("lexicon section must start with 'terms'");
  }
  PAYGO_ASSIGN_OR_RETURN(const std::uint64_t dim, ParseUint(head[1]));
  std::vector<std::string> terms;
  terms.reserve(dim);
  for (std::size_t ln = 1; ln < lines.size(); ++ln) {
    if (lines[ln].empty()) continue;
    terms.push_back(lines[ln]);
  }
  if (terms.size() != dim) {
    return Status::InvalidArgument(
        "lexicon section declares " + std::to_string(dim) + " terms but has " +
        std::to_string(terms.size()));
  }
  return terms;
}

/// The v2 features section: per-schema sparse set-bit index lists.
/// "f <schema> <count> j1 j2 ..." — bitsets are sparse (a schema's terms
/// plus similar lexicon terms), so indices beat raw words.
std::string SerializeFeaturesSection(const std::vector<DynamicBitset>& features,
                                     std::size_t dim) {
  std::ostringstream os;
  os << "counts " << features.size() << " " << dim << "\n";
  for (std::size_t i = 0; i < features.size(); ++i) {
    os << "f " << i << " " << features[i].Count();
    for (std::size_t j = 0; j < features[i].size(); ++j) {
      if (features[i].Test(j)) os << " " << j;
    }
    os << "\n";
  }
  return os.str();
}

Result<std::vector<DynamicBitset>> ParseFeaturesSection(
    std::string_view text) {
  const std::vector<std::string> lines = Split(text, '\n');
  std::size_t ln = 0;
  auto fail = [&](const std::string& msg) {
    return Status::InvalidArgument("features line " + std::to_string(ln + 1) +
                                   ": " + msg);
  };
  std::vector<DynamicBitset> out;
  std::size_t dim = 0;
  bool have_counts = false;
  for (ln = 0; ln < lines.size(); ++ln) {
    const std::string line = Trim(lines[ln]);
    if (line.empty()) continue;
    const std::vector<std::string> tok = SplitAny(line, " ");
    if (tok[0] == "counts") {
      if (tok.size() != 3) return fail("counts needs two integers");
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t n, ParseUint(tok[1]));
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t d, ParseUint(tok[2]));
      out.assign(n, DynamicBitset(d));
      dim = d;
      have_counts = true;
    } else if (tok[0] == "f") {
      if (!have_counts) return fail("'f' before 'counts'");
      if (tok.size() < 3) return fail("f needs schema id and bit count");
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t i, ParseUint(tok[1]));
      if (i >= out.size()) return fail("schema id out of range");
      PAYGO_ASSIGN_OR_RETURN(const std::uint64_t count, ParseUint(tok[2]));
      if (tok.size() - 3 != count) return fail("set-bit count mismatch");
      for (std::size_t k = 3; k < tok.size(); ++k) {
        PAYGO_ASSIGN_OR_RETURN(const std::uint64_t j, ParseUint(tok[k]));
        if (j >= dim) return fail("bit index out of range");
        out[i].Set(j);
      }
    } else {
      return fail("unknown directive '" + tok[0] + "'");
    }
  }
  if (!have_counts) {
    return Status::InvalidArgument("features section missing 'counts'");
  }
  return out;
}

}  // namespace

Result<std::string> SerializeSnapshot(const IntegrationSystem& system) {
  if (!system.has_classifier()) {
    return Status::FailedPrecondition(
        "snapshotting requires a built classifier");
  }
  std::ostringstream out;
  out << kSnapshotHeaderV2 << "\n";
  out << "=== corpus ===\n" << SerializeCorpus(system.corpus());
  out << "=== lexicon ===\n" << SerializeLexiconSection(system.lexicon());
  out << "=== features ===\n"
      << SerializeFeaturesSection(system.features(), system.lexicon().dim());
  out << "=== model ===\n" << SerializeDomainModel(system.domains());
  out << "=== classifier ===\n"
      << SerializeConditionals(system.classifier().conditionals());
  out << "=== end ===\n";
  return out.str();
}

Result<std::unique_ptr<IntegrationSystem>> ParseSnapshot(
    std::string_view text_view, SystemOptions options) {
  const std::string text(text_view);
  auto section = [&](std::string_view name) -> Result<std::string> {
    const std::string marker = "=== " + std::string(name) + " ===\n";
    const std::size_t begin = text.find(marker);
    if (begin == std::string::npos) {
      return Status::InvalidArgument("snapshot missing section '" +
                                     std::string(name) + "'");
    }
    const std::size_t content = begin + marker.size();
    const std::size_t next = text.find("\n=== ", content - 1);
    return text.substr(content, next == std::string::npos
                                    ? std::string::npos
                                    : next + 1 - content);
  };

  const bool v2 = text.rfind(kSnapshotHeaderV2, 0) == 0;
  if (!v2 && text.rfind(kSnapshotHeader, 0) != 0) {
    return Status::InvalidArgument("missing paygo-snapshot header");
  }
  PAYGO_ASSIGN_OR_RETURN(const std::string corpus_text, section("corpus"));
  PAYGO_ASSIGN_OR_RETURN(const std::string model_text, section("model"));
  PAYGO_ASSIGN_OR_RETURN(const std::string clf_text, section("classifier"));
  PAYGO_ASSIGN_OR_RETURN(SchemaCorpus corpus, ParseCorpus(corpus_text));
  PAYGO_ASSIGN_OR_RETURN(DomainModel model, ParseDomainModel(model_text));
  PAYGO_ASSIGN_OR_RETURN(std::vector<DomainConditionals> conditionals,
                         ParseConditionals(clf_text));
  std::vector<std::string> lexicon_terms;
  std::vector<DynamicBitset> features;
  if (v2) {
    PAYGO_ASSIGN_OR_RETURN(const std::string lex_text, section("lexicon"));
    PAYGO_ASSIGN_OR_RETURN(const std::string feat_text, section("features"));
    PAYGO_ASSIGN_OR_RETURN(lexicon_terms, ParseLexiconSection(lex_text));
    PAYGO_ASSIGN_OR_RETURN(features, ParseFeaturesSection(feat_text));
  }
  return IntegrationSystem::Restore(std::move(corpus), std::move(options),
                                    std::move(model), std::move(conditionals),
                                    std::move(lexicon_terms),
                                    std::move(features));
}

Status SaveSnapshot(const IntegrationSystem& system, const std::string& path) {
  PAYGO_ASSIGN_OR_RETURN(const std::string text, SerializeSnapshot(system));
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << text;
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<std::unique_ptr<IntegrationSystem>> LoadSnapshot(
    const std::string& path, SystemOptions options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseSnapshot(buf.str(), std::move(options));
}

}  // namespace paygo
