#ifndef PAYGO_SERVE_RESULT_CACHE_H_
#define PAYGO_SERVE_RESULT_CACHE_H_

/// \file result_cache.h
/// \brief Sharded LRU cache for keyword-query classification results.
///
/// Classification is the hot read path of the server (every keyword search
/// starts with it) and is fully determined by (normalized query, model
/// snapshot). The cache is sharded by key hash so concurrent workers rarely
/// contend on one mutex, and every entry is tagged with the snapshot
/// generation it was computed against: when the writer publishes a new
/// snapshot it bumps the cache's generation, which logically invalidates
/// all older entries at once (they are treated as misses and evicted on
/// touch). This closes the insert-after-swap race — a worker that computed
/// a result against generation G can never poison the cache after the swap
/// to G+1, because its insert carries G and lookups compare generations.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "classify/naive_bayes.h"

namespace paygo {

/// Canonical cache key of a raw keyword query: lower-cased, whitespace
/// runs collapsed to single spaces, leading/trailing whitespace dropped.
/// "  Departure   TORONTO " and "departure toronto" share one entry.
std::string NormalizeQueryKey(std::string_view raw_query);

/// \brief Sharded, generation-tagged LRU cache. All methods thread-safe.
class QueryResultCache {
 public:
  using Value = std::shared_ptr<const std::vector<DomainScore>>;

  /// \p capacity is the total entry budget, split evenly across
  /// \p num_shards (each shard gets at least one slot).
  QueryResultCache(std::size_t capacity, std::size_t num_shards = 8);
  ~QueryResultCache();

  QueryResultCache(const QueryResultCache&) = delete;
  QueryResultCache& operator=(const QueryResultCache&) = delete;

  /// The cached value for \p key computed at the current generation, or
  /// nullptr on miss (including generation-stale hits, which are evicted).
  Value Lookup(const std::string& key);

  /// Inserts \p value for \p key, tagged with \p generation. A stale
  /// insert (generation older than the cache's current one) is dropped.
  void Insert(const std::string& key, Value value, std::uint64_t generation);

  /// Invalidates every entry of generations < \p new_generation and makes
  /// \p new_generation current. Called by the writer on snapshot swap.
  void AdvanceGeneration(std::uint64_t new_generation);

  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Live entries across all shards (stale-but-unevicted entries count).
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Shard;
  Shard& ShardFor(const std::string& key);

  const std::size_t capacity_;
  // Monotone snapshot generation; entries from older generations are dead.
  std::atomic<std::uint64_t> generation_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace paygo

#endif  // PAYGO_SERVE_RESULT_CACHE_H_
