#ifndef PAYGO_SERVE_SLOW_QUERY_LOG_H_
#define PAYGO_SERVE_SLOW_QUERY_LOG_H_

/// \file slow_query_log.h
/// \brief Bounded log of the worst-latency requests the server handled.
///
/// The server offers every completed request; the log keeps the N slowest
/// whose end-to-end latency exceeded a configurable threshold. Each entry
/// carries the request's span breakdown (captured by a `SpanCollector`
/// while the handler ran, so it is only populated when tracing is
/// enabled), which is what turns "this request took 40 ms" into "38 ms of
/// it was the naive-Bayes subset enumeration".
///
/// Admission uses an atomic floor so the common case — a fast request
/// under the current N-th-worst latency — is one relaxed load and no lock.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace paygo {

/// \brief One slow request retained by the log.
struct SlowQueryEntry {
  std::uint64_t trace_id = 0;          ///< Correlation id for the trace file.
  const char* kind = "";               ///< "classify" etc.; static string.
  std::string query;                   ///< Query text (may be truncated).
  std::uint64_t total_us = 0;          ///< End-to-end latency.
  std::uint64_t snapshot_generation = 0;
  std::vector<CollectedSpan> spans;    ///< Breakdown; empty if tracing off.
};

/// \brief Keeps the `capacity` slowest requests over `threshold_us`.
/// Thread-safe.
class SlowQueryLog {
 public:
  SlowQueryLog(std::size_t capacity, std::uint64_t threshold_us)
      : capacity_(capacity), threshold_us_(threshold_us) {}

  /// Offers a completed request. Keeps it iff total_us > threshold and it
  /// ranks among the `capacity` slowest seen so far (evicting the current
  /// fastest retained entry when full). Fast path when it cannot qualify:
  /// one relaxed atomic load.
  void MaybeRecord(SlowQueryEntry entry);

  /// Retained entries, slowest first.
  std::vector<SlowQueryEntry> Entries() const;

  /// Total requests that cleared the threshold (admitted or not).
  std::uint64_t OverThresholdCount() const {
    return over_threshold_.load(std::memory_order_relaxed);
  }

  std::uint64_t threshold_us() const { return threshold_us_; }
  std::size_t capacity() const { return capacity_; }

  /// Human-readable dump: one block per entry, slowest first, each span
  /// indented by nesting depth.
  std::string DebugString() const;
  /// JSON array of entries, slowest first, spans inlined.
  std::string ToJson() const;

  void Clear();

 private:
  const std::size_t capacity_;
  const std::uint64_t threshold_us_;

  /// Latency a request must beat to possibly be admitted: threshold while
  /// the log has room, then the fastest retained entry's latency.
  std::atomic<std::uint64_t> admission_floor_us_{0};
  std::atomic<std::uint64_t> over_threshold_{0};

  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> entries_;  // sorted slowest -> fastest
};

}  // namespace paygo

#endif  // PAYGO_SERVE_SLOW_QUERY_LOG_H_
