#ifndef PAYGO_SERVE_BOUNDED_QUEUE_H_
#define PAYGO_SERVE_BOUNDED_QUEUE_H_

/// \file bounded_queue.h
/// \brief Moved to `util/bounded_queue.h` so layers below `src/serve` (the
/// obs admin endpoint's handler pool) can use it; this shim keeps existing
/// includes compiling.

#include "util/bounded_queue.h"

#endif  // PAYGO_SERVE_BOUNDED_QUEUE_H_
