#include "serve/admin_endpoints.h"

#include <sstream>

#include "obs/admin_server.h"
#include "obs/build_info.h"
#include "obs/stats.h"
#include "serve/paygo_server.h"

namespace paygo {

void RegisterServerEndpoints(AdminServer& admin, const PaygoServer& server,
                             std::function<std::string()> extra_status) {
  const PaygoServer* srv = &server;

  // /metrics and /varz replace the obs-level registrations: the operator
  // wants one scrape target, so the server's own counters ride along with
  // the global registry.
  admin.Handle("/metrics", [srv](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body =
        StatsRegistry::Global().ToPrometheus() + srv->metrics().ToPrometheus();
    return response;
  });
  admin.Handle("/varz", [srv](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = "{\"stats\": " + StatsRegistry::Global().ToJson() +
                    ", \"server\": " + srv->metrics().ToJson() + "}\n";
    return response;
  });

  admin.Handle("/readyz", [srv](const HttpRequest&) {
    const HealthState health = srv->Health();
    HttpResponse response;
    response.status = health.ready() ? 200 : 503;
    response.body = health.Describe() + "\n";
    return response;
  });

  admin.Handle("/statusz", [srv, extra_status](const HttpRequest&) {
    const HealthState health = srv->Health();
    const ServerMetrics& m = srv->metrics();
    const ServeOptions& opts = srv->options();
    std::ostringstream os;
    os << "{\"uptime_s\": " << health.uptime_seconds
       << ", \"running\": " << (health.started ? "true" : "false")
       << ", \"ready\": " << (health.ready() ? "true" : "false")
       << ", \"snapshot_installed\": "
       << (health.snapshot_installed ? "true" : "false")
       << ", \"generation\": " << health.generation
       << ", \"queue_depth\": " << health.queue_depth
       << ", \"queue_capacity\": " << health.queue_capacity
       << ", \"queue_watermark\": " << health.queue_watermark
       << ", \"queue_saturated\": "
       << (health.queue_saturated ? "true" : "false")
       << ", \"rebuild_in_progress\": "
       << (health.rebuild_in_progress ? "true" : "false")
       << ", \"workers\": " << opts.num_workers
       << ", \"rebuild_threads\": " << opts.rebuild_threads
       << ", \"cache_size\": " << srv->cache_size()
       << ", \"cache_hit_rate\": " << m.CacheHitRate()
       << ", \"requests_submitted\": " << m.requests_submitted.load()
       << ", \"requests_completed\": " << m.requests_completed.load()
       << ", \"requests_rejected\": " << m.requests_rejected.load()
       << ", \"requests_timed_out\": " << m.requests_timed_out.load()
       << ", \"requests_failed\": " << m.requests_failed.load()
       << ", \"slow_queries\": " << srv->slow_query_log().OverThresholdCount()
       << ", \"write_path\": {\"delta_updates\": " << m.delta_updates.load()
       << ", \"rebuild_updates\": " << m.rebuild_updates.load()
       << ", \"updates_failed\": " << m.updates_failed.load()
       << ", \"clone_us\": " << HistogramSummaryJson(m.clone_latency)
       << ", \"delta_rebuild_us\": "
       << HistogramSummaryJson(m.delta_update_latency)
       << ", \"full_rebuild_us\": "
       << HistogramSummaryJson(m.rebuild_update_latency) << "}"
       << ", \"build_info\": " << BuildInfoJson();
    if (extra_status) {
      const std::string extra = extra_status();
      if (!extra.empty()) os << ", " << extra;
    }
    os << "}\n";
    HttpResponse response;
    response.content_type = "application/json";
    response.body = os.str();
    return response;
  });

  admin.Handle("/slowz", [srv](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = srv->slow_query_log().ToJson() + "\n";
    return response;
  });
}

}  // namespace paygo
