#ifndef PAYGO_SERVE_ADMIN_ENDPOINTS_H_
#define PAYGO_SERVE_ADMIN_ENDPOINTS_H_

/// \file admin_endpoints.h
/// \brief Serving-runtime endpoints for the embedded admin HTTP server.
///
/// The obs layer registers the library-wide pages (`/metrics`, `/varz`,
/// `/healthz`, `/tracez` — see obs/admin_server.h); this header layers the
/// PaygoServer-specific surface on top:
///
///   /readyz   200 "ready" when Health().ready(), else 503 with the
///             failing conditions — the load-balancer routing signal.
///   /statusz  One JSON object: uptime, generation, queue occupancy,
///             cache hit ratio, rebuild-in-progress, pool widths.
///   /slowz    The slow-query log as JSON.
///
/// It also upgrades /metrics and /varz to include the server's own
/// counters and latency histograms alongside the global registry.

#include <functional>
#include <string>

namespace paygo {

class AdminServer;
class PaygoServer;

/// Registers /readyz, /statusz, /slowz and re-registers /metrics + /varz
/// to merge in \p server's metrics. Call after RegisterObsEndpoints and
/// before admin.Start(). \p server must outlive \p admin's serving life
/// (PaygoServer guarantees this by stopping the admin endpoint first).
///
/// \p extra_status, when set, is called per /statusz request and must
/// return zero or more additional `"key": value` JSON members (comma-
/// separated, no leading/trailing comma); they are spliced into the
/// /statusz object. The shard layer uses this to append its "shardz"
/// section without the serve layer knowing about shards.
void RegisterServerEndpoints(
    AdminServer& admin, const PaygoServer& server,
    std::function<std::string()> extra_status = nullptr);

}  // namespace paygo

#endif  // PAYGO_SERVE_ADMIN_ENDPOINTS_H_
