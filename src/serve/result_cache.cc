#include "serve/result_cache.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace paygo {

std::string NormalizeQueryKey(std::string_view raw_query) {
  std::string out;
  out.reserve(raw_query.size());
  bool pending_space = false;
  for (char c : raw_query) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

struct QueryResultCache::Shard {
  struct Entry {
    std::string key;
    Value value;
    std::uint64_t generation = 0;
  };

  std::mutex mu;
  // Front = most recently used; the map indexes into the list.
  std::list<Entry> lru;
  std::unordered_map<std::string, std::list<Entry>::iterator> index;
  std::size_t capacity = 1;
};

QueryResultCache::QueryResultCache(std::size_t capacity,
                                   std::size_t num_shards)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  num_shards = std::max<std::size_t>(num_shards, 1);
  const std::size_t per_shard =
      std::max<std::size_t>(capacity_ / num_shards, 1);
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = per_shard;
  }
}

QueryResultCache::~QueryResultCache() = default;

QueryResultCache::Shard& QueryResultCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

QueryResultCache::Value QueryResultCache::Lookup(const std::string& key) {
  const std::uint64_t current = generation();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  if (it->second->generation != current) {
    // Stale entry from before a snapshot swap: evict on touch.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return nullptr;
  }
  // Move to MRU position.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void QueryResultCache::Insert(const std::string& key, Value value,
                              std::uint64_t insert_generation) {
  if (insert_generation != generation()) return;  // computed pre-swap
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    it->second->generation = insert_generation;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(
      Shard::Entry{key, std::move(value), insert_generation});
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

void QueryResultCache::AdvanceGeneration(std::uint64_t new_generation) {
  generation_.store(new_generation, std::memory_order_release);
  // Proactively drop dead entries so memory is reclaimed without waiting
  // for lookups to touch them.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->generation != new_generation) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::size_t QueryResultCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace paygo
