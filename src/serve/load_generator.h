#ifndef PAYGO_SERVE_LOAD_GENERATOR_H_
#define PAYGO_SERVE_LOAD_GENERATOR_H_

/// \file load_generator.h
/// \brief Closed-loop load generation against a PaygoServer.
///
/// The measurement harness behind `bench/serve_throughput` and
/// `paygo_cli serve-bench`. N client threads issue keyword-classification
/// requests back-to-back (closed loop: one outstanding request per
/// client), each recording end-to-end latency client-side; the report
/// aggregates exact percentiles over all samples plus the server's own
/// metrics (cache hit rate, rejections). A separate saturation probe
/// floods the admission queue with async submissions to demonstrate
/// rejection under overload.

#include <cstdint>
#include <string>
#include <vector>

#include "core/integration_system.h"
#include "serve/paygo_server.h"
#include "util/status.h"

namespace paygo {

/// \brief Options of the closed-loop run.
struct LoadGenOptions {
  std::size_t client_threads = 4;
  std::uint64_t duration_ms = 2000;
  std::uint64_t seed = 42;
};

/// \brief Aggregated result of one load run.
struct LoadReport {
  std::size_t client_threads = 0;
  std::uint64_t duration_ms = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t ok_requests = 0;
  std::uint64_t error_requests = 0;  // rejected, timed out, or failed
  double qps = 0.0;
  // Exact sample percentiles (client-observed end-to-end), microseconds.
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
  double mean_us = 0.0;
  // Server-side counters sampled at the end of the run.
  double cache_hit_rate = 0.0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t snapshot_generation = 0;

  /// One JSON object (the `bench/serve_throughput` output schema; see
  /// bench/README.md).
  std::string ToJson() const;
};

/// Builds a pool of keyword queries for load generation: label-targeted
/// generated queries when the corpus is labeled, otherwise queries drawn
/// from schema attribute names. Always returns at least one query.
std::vector<std::string> BuildQueryPool(const IntegrationSystem& system,
                                        std::size_t pool_size,
                                        std::uint64_t seed);

/// Runs the closed loop: each client thread round-robins through
/// \p queries (offset by thread id) for options.duration_ms, issuing
/// synchronous classifications. The server must be running.
LoadReport RunClosedLoopLoad(PaygoServer& server,
                             const std::vector<std::string>& queries,
                             const LoadGenOptions& options);

/// \brief One wire-protocol target of the multi-endpoint closed loop.
struct WireEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Relative share of requests (weighted round-robin). A router fronting
  /// N shards typically gets weight N next to weight-1 replicas.
  std::size_t weight = 1;
};

/// The multi-endpoint closed loop: like RunClosedLoopLoad, but requests go
/// over the shard wire protocol (kClassify round trips on fresh
/// connections), spread across \p endpoints by weighted round-robin. One
/// driver process loads a whole fleet — router plus replicas — which is
/// how `bench/serve_throughput --shards=N` measures aggregate read QPS.
/// Server-side fields of the report (cache hit rate, rejections) stay 0:
/// there is no single server to sample.
LoadReport RunClosedLoopWireLoad(const std::vector<WireEndpoint>& endpoints,
                                 const std::vector<std::string>& queries,
                                 const LoadGenOptions& options,
                                 std::size_t classify_k = 3);

/// Fires \p burst async classifications without waiting in between, then
/// collects them all; returns how many were rejected by admission control.
/// With burst > queue depth + workers, some rejections are guaranteed.
std::uint64_t RunSaturationProbe(PaygoServer& server,
                                 const std::string& query,
                                 std::size_t burst);

}  // namespace paygo

#endif  // PAYGO_SERVE_LOAD_GENERATOR_H_
