#include "serve/paygo_server.h"

#include <optional>
#include <sstream>
#include <type_traits>
#include <utility>

#include "serve/admin_endpoints.h"

namespace paygo {

namespace {

/// Per-request tracing scope, used inside the worker-side handler. When
/// tracing is enabled it installs a SpanCollector, tags the worker thread
/// with the request's trace id, opens the root "serve.request" span, and
/// records the already-elapsed queue wait as a "serve.queue_wait" child.
/// Finish() closes the root span and returns the request's full span
/// breakdown for the slow-query log. When tracing is disabled the whole
/// scope is one branch.
class RequestTraceScope {
 public:
  RequestTraceScope(std::uint64_t trace_id, std::uint64_t queued_us)
      : tracing_(Tracer::enabled()) {
    if (!tracing_) return;
    collector_.emplace();
    // ScopedTraceContext (not a bare Set) so a worker thread reused across
    // requests restores whatever id it carried before this request.
    context_.emplace(trace_id);
    root_.emplace("serve.request");
    const std::uint64_t now = Tracer::NowMicros();
    Tracer::RecordComplete("serve.queue_wait",
                           now >= queued_us ? now - queued_us : 0, queued_us);
  }

  ~RequestTraceScope() = default;

  RequestTraceScope(const RequestTraceScope&) = delete;
  RequestTraceScope& operator=(const RequestTraceScope&) = delete;

  /// Closes the root span and hands back everything recorded in scope
  /// (empty when tracing was disabled).
  std::vector<CollectedSpan> Finish() {
    if (!tracing_) return {};
    root_.reset();  // record "serve.request" into the collector
    return collector_->TakeSpans();
  }

 private:
  bool tracing_;
  std::optional<SpanCollector> collector_;
  std::optional<ScopedTraceContext> context_;
  std::optional<ScopedSpan> root_;
};

std::string TruncateForLog(const std::string& s) {
  constexpr std::size_t kMaxChars = 256;
  return s.size() <= kMaxChars ? s : s.substr(0, kMaxChars) + "...";
}

}  // namespace

PaygoServer::PaygoServer(ServeOptions options) : options_(options) {
  requests_ = std::make_unique<BoundedQueue<QueuedRequest>>(
      options_.queue_depth);
  updates_ = std::make_unique<BoundedQueue<QueuedUpdate>>(
      options_.update_queue_depth);
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<QueryResultCache>(options_.cache_capacity,
                                                options_.cache_shards);
  }
  slow_log_ = std::make_unique<SlowQueryLog>(
      options_.slow_query_log_size, options_.slow_query_threshold_us);
}

PaygoServer::PaygoServer(std::unique_ptr<IntegrationSystem> system,
                         ServeOptions options)
    : PaygoServer(options) {
  snapshot_.store(Snapshot(std::move(system)));
}

PaygoServer::~PaygoServer() { Stop(); }

Status PaygoServer::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  if (requests_->closed()) {
    // A stopped server's queues are closed for good; constructing a fresh
    // server is cheaper than making queue reopening race-safe.
    return Status::FailedPrecondition(
        "server was stopped; construct a new one");
  }
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  writer_ = std::thread([this] { WriterLoop(); });
  uptime_.Restart();
  running_.store(true, std::memory_order_release);

  // Optional operational surface. Failures here unwind the whole Start so
  // the caller never gets a half-started server.
  if (options_.admin_port >= 0) {
    AdminServerOptions admin_options;
    admin_options.port = options_.admin_port;
    admin_ = std::make_unique<AdminServer>(admin_options);
    RegisterObsEndpoints(*admin_);
    RegisterServerEndpoints(*admin_, *this);
    Result<std::uint16_t> bound = admin_->Start();
    if (!bound.ok()) {
      Stop();
      return bound.status();
    }
  }
  if (!options_.export_path.empty()) {
    MetricsSnapshotterOptions export_options;
    export_options.path = options_.export_path;
    export_options.interval_ms = options_.export_interval_ms;
    exporter_ = std::make_unique<MetricsSnapshotter>(StatsRegistry::Global(),
                                                     export_options);
    Status status = exporter_->Start();
    if (!status.ok()) {
      Stop();
      return status;
    }
  }
  return Status::OK();
}

void PaygoServer::Stop() {
  // The operational surface goes first: admin handlers read server state,
  // so they must be joined before the queues and threads wind down.
  if (admin_ != nullptr) admin_->Stop();
  if (exporter_ != nullptr) exporter_->Stop();
  if (workers_.empty() && !writer_.joinable()) return;
  running_.store(false, std::memory_order_release);
  requests_->Close();
  updates_->Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (writer_.joinable()) writer_.join();
}

void PaygoServer::SubmitOrReject(QueuedRequest request) {
  metrics_.requests_submitted.fetch_add(1, std::memory_order_relaxed);
  if (!running_.load(std::memory_order_acquire)) {
    request.run(nullptr,
                Status::FailedPrecondition("server is not running"));
    return;
  }
  // Move into a local so a failed push can still fail the promise (TryPush
  // leaves the argument intact on rejection).
  QueuedRequest local = std::move(request);
  if (!requests_->TryPush(std::move(local))) {
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    local.run(nullptr, Status::ResourceExhausted(
                           "request queue is full (admission control)"));
  }
}

void PaygoServer::WorkerLoop() {
  while (true) {
    std::optional<QueuedRequest> request = requests_->Pop();
    if (!request.has_value()) return;  // closed and drained
    if (request->batch != nullptr && options_.classify_batch_max > 1) {
      RunClassifyBatch(std::move(*request));
      continue;
    }
    ExecuteRequest(std::move(*request));
  }
}

void PaygoServer::ExecuteRequest(QueuedRequest request) {
  if (options_.queue_timeout_ms > 0) {
    const std::uint64_t waited_ms = request.queued.ElapsedMicros() / 1000;
    if (waited_ms > options_.queue_timeout_ms) {
      metrics_.requests_timed_out.fetch_add(1, std::memory_order_relaxed);
      request.run(nullptr,
                  Status::DeadlineExceeded(
                      "request spent " + std::to_string(waited_ms) +
                      "ms in queue (limit " +
                      std::to_string(options_.queue_timeout_ms) + "ms)"));
      return;
    }
  }
  if (options_.artificial_request_delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.artificial_request_delay_us));
  }
  Snapshot current = snapshot();
  if (current == nullptr) {
    // Deferred-bootstrap server with no system installed yet.
    metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    request.run(nullptr,
                Status::FailedPrecondition(
                    "no system installed; call InstallSystemAsync first"));
    return;
  }
  request.run(current, Status::OK());
}

void PaygoServer::CompleteBatchItem(QueuedRequest request,
                                    Result<std::vector<DomainScore>> outcome) {
  if (outcome.ok()) {
    metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t total_us = request.queued.ElapsedMicros();
  metrics_.classify_latency.Record(total_us, request.trace_id);
  if (total_us > options_.slow_query_threshold_us) {
    // Coalesced requests carry no per-request span breakdown (the sweep is
    // shared); the slow-query log still gets the identity and timing.
    slow_log_->MaybeRecord(SlowQueryEntry{
        request.trace_id, "classify", std::move(request.batch->description),
        total_us, generation(), {}});
  }
  request.batch->done->set_value(std::move(outcome));
}

void PaygoServer::RunClassifyBatch(QueuedRequest first) {
  PAYGO_TRACE_SPAN("serve.classify_batch");
  StatsRegistry& reg = StatsRegistry::Global();
  static Counter* sweeps = reg.GetCounter("paygo.serve.batch_sweeps");
  static Counter* swept = reg.GetCounter("paygo.serve.batched_requests");

  // Drain without waiting: coalescing only ever batches work that is
  // ALREADY queued — an idle server keeps single-query latency.
  std::vector<QueuedRequest> batch;
  batch.reserve(options_.classify_batch_max);
  batch.push_back(std::move(first));
  std::vector<QueuedRequest> deferred;
  while (batch.size() < options_.classify_batch_max) {
    std::optional<QueuedRequest> more = requests_->TryPop();
    if (!more.has_value()) break;
    if (more->batch != nullptr) {
      batch.push_back(std::move(*more));
    } else {
      // Popped a non-batchable request while draining; run it after the
      // sweep through the classic path (its deadline is re-checked there).
      deferred.push_back(std::move(*more));
    }
  }

  // Per-request queue-wait deadlines apply exactly as on the single path.
  std::vector<QueuedRequest> live;
  live.reserve(batch.size());
  for (QueuedRequest& r : batch) {
    if (options_.queue_timeout_ms > 0) {
      const std::uint64_t waited_ms = r.queued.ElapsedMicros() / 1000;
      if (waited_ms > options_.queue_timeout_ms) {
        metrics_.requests_timed_out.fetch_add(1, std::memory_order_relaxed);
        r.run(nullptr,
              Status::DeadlineExceeded(
                  "request spent " + std::to_string(waited_ms) +
                  "ms in queue (limit " +
                  std::to_string(options_.queue_timeout_ms) + "ms)"));
        continue;
      }
    }
    live.push_back(std::move(r));
  }
  if (options_.artificial_request_delay_us > 0 && !live.empty()) {
    // The artificial delay models per-HANDLER cost, and the sweep is one
    // handler execution — one delay per sweep, not per request.
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.artificial_request_delay_us));
  }

  if (!live.empty()) {
    // Generation BEFORE snapshot, same discipline as the single path: if a
    // swap lands in between, the inserts below carry a stale tag and are
    // dropped, never poisoning the new generation (see result_cache.h).
    const std::uint64_t gen = cache_ != nullptr ? cache_->generation() : 0;
    Snapshot current = snapshot();
    if (current == nullptr) {
      for (QueuedRequest& r : live) {
        metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
        r.run(nullptr,
              Status::FailedPrecondition(
                  "no system installed; call InstallSystemAsync first"));
      }
      live.clear();
    }

    // Cache hits are answered inline; misses collect for the shared sweep.
    std::vector<QueuedRequest> misses;
    misses.reserve(live.size());
    std::vector<std::string> miss_keys;  // parallel to misses (cache on)
    for (QueuedRequest& r : live) {
      if (cache_ != nullptr) {
        std::string key = NormalizeQueryKey(r.batch->query);
        QueryResultCache::Value hit = cache_->Lookup(key);
        if (hit) {
          metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
          CompleteBatchItem(std::move(r),
                            Result<std::vector<DomainScore>>(*hit));
          continue;
        }
        metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
        miss_keys.push_back(std::move(key));
      }
      misses.push_back(std::move(r));
    }

    if (!misses.empty()) {
      std::vector<std::string> queries;
      queries.reserve(misses.size());
      for (const QueuedRequest& r : misses) {
        queries.push_back(r.batch->query);
      }
      sweeps->Increment();
      swept->Add(misses.size());
      metrics_.batch_sweeps.fetch_add(1, std::memory_order_relaxed);
      metrics_.batched_requests.fetch_add(misses.size(),
                                          std::memory_order_relaxed);
      Result<std::vector<std::vector<DomainScore>>> scores =
          current->ClassifyKeywordQueryBatch(queries);
      for (std::size_t i = 0; i < misses.size(); ++i) {
        if (!scores.ok()) {
          CompleteBatchItem(std::move(misses[i]), scores.status());
          continue;
        }
        if (cache_ != nullptr) {
          cache_->Insert(miss_keys[i],
                         std::make_shared<const std::vector<DomainScore>>(
                             (*scores)[i]),
                         gen);
        }
        CompleteBatchItem(std::move(misses[i]), std::move((*scores)[i]));
      }
    }
  }

  for (QueuedRequest& r : deferred) ExecuteRequest(std::move(r));
}

template <typename T, typename Handler>
std::future<Result<T>> PaygoServer::SubmitRequest(
    const char* kind, std::string description, LatencyHistogram& latency,
    Handler handler, std::shared_ptr<BatchClassifyState> batch) {
  auto done = std::make_shared<std::promise<Result<T>>>();
  std::future<Result<T>> result = done->get_future();
  QueuedRequest request;
  // Inherit the submitting thread's trace id when it has one — a shard
  // handler that adopted a wire-propagated kTraceContext, say — so the
  // worker's spans carry the fleet-wide originating id; mint a fresh local
  // id otherwise.
  request.trace_id = Tracer::CurrentTraceId();
  if (request.trace_id == 0) request.trace_id = Tracer::NextTraceId();
  if constexpr (std::is_same_v<T, std::vector<DomainScore>>) {
    if (batch != nullptr) {
      batch->done = done;
      request.batch = std::move(batch);
    }
  }
  request.run = [this, done, kind, description = std::move(description),
                 &latency, handler = std::move(handler),
                 timer = request.queued,
                 trace_id = request.trace_id](const Snapshot& sys,
                                              Status admission) mutable {
    if (!admission.ok()) {
      done->set_value(std::move(admission));
      return;
    }
    RequestTraceScope trace(trace_id, timer.ElapsedMicros());
    Result<T> out = handler(sys);
    if (out.ok()) {
      metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t total_us = timer.ElapsedMicros();
    latency.Record(total_us, trace_id);
    if (total_us > options_.slow_query_threshold_us) {
      slow_log_->MaybeRecord(SlowQueryEntry{trace_id, kind,
                                            std::move(description), total_us,
                                            generation(), trace.Finish()});
    }
    done->set_value(std::move(out));
  };
  SubmitOrReject(std::move(request));
  return result;
}

std::future<Result<std::vector<DomainScore>>> PaygoServer::ClassifyAsync(
    std::string keyword_query) {
  std::string description = TruncateForLog(keyword_query);
  // With coalescing enabled every classify request is batchable, so ANY
  // queue buildup — not just SubmitBatch bursts — amortizes into sweeps.
  std::shared_ptr<BatchClassifyState> batch;
  if (options_.classify_batch_max > 1) {
    batch = std::make_shared<BatchClassifyState>();
    batch->query = keyword_query;
    batch->description = description;
  }
  return SubmitRequest<std::vector<DomainScore>>(
      "classify", std::move(description), metrics_.classify_latency,
      [this, query = std::move(keyword_query)](const Snapshot& sys)
          -> Result<std::vector<DomainScore>> {
        auto evaluate = [&] {
          PAYGO_TRACE_SPAN("serve.handler");
          return sys->ClassifyKeywordQuery(query);
        };
        if (cache_ == nullptr) return evaluate();
        const std::string key = NormalizeQueryKey(query);
        // Generation BEFORE snapshot: if a swap lands in between, the
        // insert below carries a stale tag and is dropped, never poisoning
        // the new generation (see result_cache.h).
        const std::uint64_t gen = cache_->generation();
        QueryResultCache::Value hit;
        {
          PAYGO_TRACE_SPAN("serve.cache_lookup");
          hit = cache_->Lookup(key);
        }
        if (hit) {
          metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
          return *hit;
        }
        metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
        Result<std::vector<DomainScore>> scores = evaluate();
        if (scores.ok()) {
          cache_->Insert(
              key, std::make_shared<const std::vector<DomainScore>>(*scores),
              gen);
        }
        return scores;
      },
      std::move(batch));
}

std::vector<std::future<Result<std::vector<DomainScore>>>>
PaygoServer::SubmitBatch(std::vector<std::string> keyword_queries) {
  std::vector<std::future<Result<std::vector<DomainScore>>>> futures;
  futures.reserve(keyword_queries.size());
  for (std::string& query : keyword_queries) {
    futures.push_back(ClassifyAsync(std::move(query)));
  }
  return futures;
}

std::future<Result<IntegrationSystem::KeywordSearchAnswer>>
PaygoServer::KeywordSearchAsync(std::string keyword_query,
                                KeywordSearchOptions options) {
  std::string description = TruncateForLog(keyword_query);
  return SubmitRequest<IntegrationSystem::KeywordSearchAnswer>(
      "keyword_search", std::move(description),
      metrics_.keyword_search_latency,
      [query = std::move(keyword_query), options](const Snapshot& sys)
          -> Result<IntegrationSystem::KeywordSearchAnswer> {
        PAYGO_TRACE_SPAN("serve.handler");
        return sys->AnswerKeywordQuery(query, options);
      });
}

std::future<Result<std::vector<RankedTuple>>>
PaygoServer::StructuredQueryAsync(std::uint32_t domain,
                                  StructuredQuery query) {
  return SubmitRequest<std::vector<RankedTuple>>(
      "structured", "domain " + std::to_string(domain),
      metrics_.structured_latency,
      [domain, query = std::move(query)](const Snapshot& sys)
          -> Result<std::vector<RankedTuple>> {
        PAYGO_TRACE_SPAN("serve.handler");
        return sys->AnswerStructuredQuery(domain, query);
      });
}

void PaygoServer::WriterLoop() {
  // Registry histograms mirror the ServerMetrics ones so /metrics and the
  // JSONL exporter see the write path without holding a server reference.
  StatsRegistry& reg = StatsRegistry::Global();
  static LatencyHistogram* clone_us =
      reg.GetHistogram("paygo.serve.clone_us");
  static LatencyHistogram* delta_us =
      reg.GetHistogram("paygo.serve.delta_rebuild_us");
  static LatencyHistogram* full_us =
      reg.GetHistogram("paygo.serve.full_rebuild_us");
  while (true) {
    std::optional<QueuedUpdate> update = updates_->Pop();
    if (!update.has_value()) return;
    rebuild_in_progress_.store(true, std::memory_order_release);
    std::unique_ptr<IntegrationSystem> draft;
    Status status = Status::OK();
    bool mutated = false;
    if (update->install != nullptr) {
      // Install: publish the given system as-is. No clone, no mutation —
      // this is how a deferred-bootstrap server gets its first snapshot
      // (and how an operator swaps in a wholesale replacement).
      draft = std::move(update->install);
    } else if (snapshot() == nullptr) {
      status = Status::FailedPrecondition(
          "no system installed; call InstallSystemAsync first");
    } else {
      // Copy-on-write: mutate a private clone, publish on success. The
      // writer is the only thread that ever touches a mutable
      // IntegrationSystem, so the clone (structurally shared — pointer
      // copies, no data copies) needs no locking.
      WallTimer clone_timer;
      draft = snapshot()->Clone();
      const std::uint64_t cloned_us = clone_timer.ElapsedMicros();
      metrics_.clone_latency.Record(cloned_us);
      clone_us->Record(cloned_us);
      if (!update->delta) {
        // Rebuild-style mutations may recluster the whole corpus; let them
        // use the configured pool width. Delta mutations never touch the
        // recluster machinery, so their clone keeps the published options
        // untouched. The knob is set on the private clone either way, and
        // clustering is bit-identical at any width regardless.
        draft->set_num_threads(options_.rebuild_threads);
      }
      WallTimer mutate_timer;
      status = update->mutation(*draft);
      const std::uint64_t mutate_us = mutate_timer.ElapsedMicros();
      if (update->delta) {
        metrics_.delta_update_latency.Record(mutate_us);
        delta_us->Record(mutate_us);
      } else {
        metrics_.rebuild_update_latency.Record(mutate_us);
        full_us->Record(mutate_us);
      }
      mutated = true;
    }
    if (status.ok() && draft != nullptr) {
      snapshot_.store(Snapshot(std::move(draft)));
      const std::uint64_t gen =
          generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
      metrics_.snapshot_generation.store(gen, std::memory_order_relaxed);
      metrics_.snapshot_swaps.fetch_add(1, std::memory_order_relaxed);
      if (mutated) {
        (update->delta ? metrics_.delta_updates : metrics_.rebuild_updates)
            .fetch_add(1, std::memory_order_relaxed);
      }
      // Invalidate AFTER publishing: a racing reader that tags a result
      // with the old generation merely loses a cache slot (dropped or
      // evicted), it can never serve pre-swap data under the new
      // generation.
      if (cache_ != nullptr) cache_->AdvanceGeneration(gen);
    } else if (!status.ok()) {
      metrics_.updates_failed.fetch_add(1, std::memory_order_relaxed);
    }
    rebuild_in_progress_.store(false, std::memory_order_release);
    update->done.set_value(std::move(status));
  }
}

std::future<Status> PaygoServer::EnqueueUpdate(QueuedUpdate update) {
  std::future<Status> result = update.done.get_future();
  if (!running_.load(std::memory_order_acquire)) {
    update.done.set_value(
        Status::FailedPrecondition("server is not running"));
    return result;
  }
  QueuedUpdate local = std::move(update);
  if (!updates_->TryPush(std::move(local))) {
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    local.done.set_value(Status::ResourceExhausted(
        "update queue is full (admission control)"));
  }
  return result;
}

std::future<Status> PaygoServer::InstallSystemAsync(
    std::unique_ptr<IntegrationSystem> system) {
  if (system == nullptr) {
    QueuedUpdate update;
    std::future<Status> result = update.done.get_future();
    update.done.set_value(Status::InvalidArgument("system is null"));
    return result;
  }
  QueuedUpdate update;
  update.install = std::move(system);
  return EnqueueUpdate(std::move(update));
}

std::future<Status> PaygoServer::SubmitMutation(
    std::function<Status(IntegrationSystem&)> mutation, bool delta) {
  QueuedUpdate update;
  update.mutation = std::move(mutation);
  update.delta = delta;
  return EnqueueUpdate(std::move(update));
}

std::future<Status> PaygoServer::UpdateAsync(
    std::function<Status(IntegrationSystem&)> mutation) {
  // Arbitrary mutations are opaque; assume the worst (rebuild-style).
  return SubmitMutation(std::move(mutation), /*delta=*/false);
}

std::future<Status> PaygoServer::AddSchemaAsync(
    Schema schema, std::vector<std::string> labels) {
  return SubmitMutation(
      [schema = std::move(schema),
       labels = std::move(labels)](IntegrationSystem& sys) mutable -> Status {
        auto added = sys.AddSchema(std::move(schema), std::move(labels));
        return added.status();
      },
      /*delta=*/true);
}

std::future<Status> PaygoServer::ApplyFeedbackAsync(FeedbackStore store) {
  // Click-only feedback reweights classifier priors (a WithPriors copy);
  // explicit corrections recluster the corpus — only the former is a
  // delta.
  const bool delta = !store.has_explicit_feedback();
  return SubmitMutation(
      [store = std::move(store)](IntegrationSystem& sys) -> Status {
        return sys.ApplyFeedback(store);
      },
      delta);
}

std::future<Status> PaygoServer::AttachTuplesAsync(
    std::uint32_t schema_id, std::vector<Tuple> tuples) {
  return SubmitMutation(
      [schema_id, tuples = std::move(tuples)](
          IntegrationSystem& sys) mutable -> Status {
        return sys.AttachTuples(schema_id, std::move(tuples));
      },
      /*delta=*/true);
}

std::future<Status> PaygoServer::RebuildFromScratchAsync() {
  return SubmitMutation(
      [](IntegrationSystem& sys) { return sys.RebuildFromScratch(); },
      /*delta=*/false);
}

std::string HealthState::Describe() const {
  if (ready()) return "ready";
  std::string out = "not ready:";
  if (!started) out += " server-not-started";
  if (!snapshot_installed) out += " no-snapshot-installed";
  if (queue_saturated) {
    out += " queue-saturated(" + std::to_string(queue_depth) + "/" +
           std::to_string(queue_capacity) + ")";
  }
  return out;
}

HealthState PaygoServer::Health() const {
  HealthState health;
  health.started = running();
  health.snapshot_installed = snapshot() != nullptr;
  health.generation = generation();
  health.queue_depth = requests_->size();
  health.queue_capacity = requests_->capacity();
  health.queue_watermark = options_.ready_queue_watermark;
  health.queue_saturated =
      static_cast<double>(health.queue_depth) >
      options_.ready_queue_watermark *
          static_cast<double>(health.queue_capacity);
  health.rebuild_in_progress =
      rebuild_in_progress_.load(std::memory_order_acquire);
  health.uptime_seconds = health.started ? uptime_.ElapsedSeconds() : 0.0;
  return health;
}

std::string PaygoServer::DebugString() const {
  std::ostringstream os;
  os << "PaygoServer{running=" << (running() ? "yes" : "no")
     << " workers=" << options_.num_workers
     << " queue=" << requests_->size() << "/" << requests_->capacity()
     << " cache=" << (cache_ != nullptr ? cache_->size() : 0)
     << " generation=" << generation() << "}\n";
  os << metrics_.DebugString();
  if (options_.slow_query_log_size > 0) os << slow_log_->DebugString();
  return os.str();
}

}  // namespace paygo
