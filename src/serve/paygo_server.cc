#include "serve/paygo_server.h"

#include <sstream>
#include <utility>

namespace paygo {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

}  // namespace

PaygoServer::PaygoServer(std::unique_ptr<IntegrationSystem> system,
                         ServeOptions options)
    : options_(options) {
  snapshot_.store(Snapshot(std::move(system)));
  requests_ = std::make_unique<BoundedQueue<QueuedRequest>>(
      options_.queue_depth);
  updates_ = std::make_unique<BoundedQueue<QueuedUpdate>>(
      options_.update_queue_depth);
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<QueryResultCache>(options_.cache_capacity,
                                                options_.cache_shards);
  }
}

PaygoServer::~PaygoServer() { Stop(); }

Status PaygoServer::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  if (requests_->closed()) {
    // A stopped server's queues are closed for good; constructing a fresh
    // server is cheaper than making queue reopening race-safe.
    return Status::FailedPrecondition(
        "server was stopped; construct a new one");
  }
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  writer_ = std::thread([this] { WriterLoop(); });
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void PaygoServer::Stop() {
  if (workers_.empty() && !writer_.joinable()) return;
  running_.store(false, std::memory_order_release);
  requests_->Close();
  updates_->Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (writer_.joinable()) writer_.join();
}

void PaygoServer::SubmitOrReject(QueuedRequest request) {
  metrics_.requests_submitted.fetch_add(1, std::memory_order_relaxed);
  if (!running_.load(std::memory_order_acquire)) {
    request.run(nullptr,
                Status::FailedPrecondition("server is not running"));
    return;
  }
  // Move into a local so a failed push can still fail the promise (TryPush
  // leaves the argument intact on rejection).
  QueuedRequest local = std::move(request);
  if (!requests_->TryPush(std::move(local))) {
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    local.run(nullptr, Status::ResourceExhausted(
                           "request queue is full (admission control)"));
  }
}

void PaygoServer::WorkerLoop() {
  while (true) {
    std::optional<QueuedRequest> request = requests_->Pop();
    if (!request.has_value()) return;  // closed and drained
    if (options_.queue_timeout_ms > 0) {
      const std::uint64_t waited_ms = MicrosSince(request->enqueued) / 1000;
      if (waited_ms > options_.queue_timeout_ms) {
        metrics_.requests_timed_out.fetch_add(1, std::memory_order_relaxed);
        request->run(nullptr,
                     Status::DeadlineExceeded(
                         "request spent " + std::to_string(waited_ms) +
                         "ms in queue (limit " +
                         std::to_string(options_.queue_timeout_ms) + "ms)"));
        continue;
      }
    }
    if (options_.artificial_request_delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          options_.artificial_request_delay_us));
    }
    request->run(snapshot(), Status::OK());
  }
}

std::future<Result<std::vector<DomainScore>>> PaygoServer::ClassifyAsync(
    std::string keyword_query) {
  auto done =
      std::make_shared<std::promise<Result<std::vector<DomainScore>>>>();
  std::future<Result<std::vector<DomainScore>>> result = done->get_future();
  QueuedRequest request;
  request.enqueued = Clock::now();
  request.run = [this, done, query = std::move(keyword_query),
                 enqueued = request.enqueued](const Snapshot& sys,
                                              Status admission) {
    if (!admission.ok()) {
      done->set_value(std::move(admission));
      return;
    }
    if (cache_ != nullptr) {
      const std::string key = NormalizeQueryKey(query);
      // Generation BEFORE snapshot: if a swap lands in between, the insert
      // below carries a stale tag and is dropped, never poisoning the new
      // generation (see result_cache.h).
      const std::uint64_t gen = cache_->generation();
      if (QueryResultCache::Value hit = cache_->Lookup(key)) {
        metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
        metrics_.classify_latency.Record(MicrosSince(enqueued));
        done->set_value(*hit);
        return;
      }
      metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      Result<std::vector<DomainScore>> scores =
          sys->ClassifyKeywordQuery(query);
      if (scores.ok()) {
        cache_->Insert(
            key, std::make_shared<const std::vector<DomainScore>>(*scores),
            gen);
        metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
      }
      metrics_.classify_latency.Record(MicrosSince(enqueued));
      done->set_value(std::move(scores));
      return;
    }
    Result<std::vector<DomainScore>> scores =
        sys->ClassifyKeywordQuery(query);
    if (scores.ok()) {
      metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    }
    metrics_.classify_latency.Record(MicrosSince(enqueued));
    done->set_value(std::move(scores));
  };
  SubmitOrReject(std::move(request));
  return result;
}

std::future<Result<IntegrationSystem::KeywordSearchAnswer>>
PaygoServer::KeywordSearchAsync(std::string keyword_query,
                                KeywordSearchOptions options) {
  auto done = std::make_shared<
      std::promise<Result<IntegrationSystem::KeywordSearchAnswer>>>();
  auto result = done->get_future();
  QueuedRequest request;
  request.enqueued = Clock::now();
  request.run = [this, done, query = std::move(keyword_query), options,
                 enqueued = request.enqueued](const Snapshot& sys,
                                              Status admission) {
    if (!admission.ok()) {
      done->set_value(std::move(admission));
      return;
    }
    Result<IntegrationSystem::KeywordSearchAnswer> answer =
        sys->AnswerKeywordQuery(query, options);
    if (answer.ok()) {
      metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    }
    metrics_.keyword_search_latency.Record(MicrosSince(enqueued));
    done->set_value(std::move(answer));
  };
  SubmitOrReject(std::move(request));
  return result;
}

std::future<Result<std::vector<RankedTuple>>>
PaygoServer::StructuredQueryAsync(std::uint32_t domain,
                                  StructuredQuery query) {
  auto done =
      std::make_shared<std::promise<Result<std::vector<RankedTuple>>>>();
  auto result = done->get_future();
  QueuedRequest request;
  request.enqueued = Clock::now();
  request.run = [this, done, domain, query = std::move(query),
                 enqueued = request.enqueued](const Snapshot& sys,
                                              Status admission) {
    if (!admission.ok()) {
      done->set_value(std::move(admission));
      return;
    }
    Result<std::vector<RankedTuple>> tuples =
        sys->AnswerStructuredQuery(domain, query);
    if (tuples.ok()) {
      metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    }
    metrics_.structured_latency.Record(MicrosSince(enqueued));
    done->set_value(std::move(tuples));
  };
  SubmitOrReject(std::move(request));
  return result;
}

void PaygoServer::WriterLoop() {
  while (true) {
    std::optional<QueuedUpdate> update = updates_->Pop();
    if (!update.has_value()) return;
    // Copy-on-write: mutate a private clone, publish on success. The
    // writer is the only thread that ever touches a mutable
    // IntegrationSystem, so the clone needs no locking.
    std::unique_ptr<IntegrationSystem> draft = snapshot()->Clone();
    Status status = update->mutation(*draft);
    if (status.ok()) {
      snapshot_.store(Snapshot(std::move(draft)));
      const std::uint64_t gen =
          generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
      metrics_.snapshot_generation.store(gen, std::memory_order_relaxed);
      metrics_.snapshot_swaps.fetch_add(1, std::memory_order_relaxed);
      // Invalidate AFTER publishing: a racing reader that tags a result
      // with the old generation merely loses a cache slot (dropped or
      // evicted), it can never serve pre-swap data under the new
      // generation.
      if (cache_ != nullptr) cache_->AdvanceGeneration(gen);
    } else {
      metrics_.updates_failed.fetch_add(1, std::memory_order_relaxed);
    }
    update->done.set_value(std::move(status));
  }
}

std::future<Status> PaygoServer::UpdateAsync(
    std::function<Status(IntegrationSystem&)> mutation) {
  QueuedUpdate update;
  update.mutation = std::move(mutation);
  std::future<Status> result = update.done.get_future();
  if (!running_.load(std::memory_order_acquire)) {
    update.done.set_value(
        Status::FailedPrecondition("server is not running"));
    return result;
  }
  QueuedUpdate local = std::move(update);
  if (!updates_->TryPush(std::move(local))) {
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    local.done.set_value(Status::ResourceExhausted(
        "update queue is full (admission control)"));
  }
  return result;
}

std::future<Status> PaygoServer::AddSchemaAsync(
    Schema schema, std::vector<std::string> labels) {
  return UpdateAsync(
      [schema = std::move(schema),
       labels = std::move(labels)](IntegrationSystem& sys) mutable -> Status {
        auto added = sys.AddSchema(std::move(schema), std::move(labels));
        return added.status();
      });
}

std::future<Status> PaygoServer::ApplyFeedbackAsync(FeedbackStore store) {
  return UpdateAsync(
      [store = std::move(store)](IntegrationSystem& sys) -> Status {
        return sys.ApplyFeedback(store);
      });
}

std::future<Status> PaygoServer::AttachTuplesAsync(
    std::uint32_t schema_id, std::vector<Tuple> tuples) {
  return UpdateAsync([schema_id, tuples = std::move(tuples)](
                         IntegrationSystem& sys) mutable -> Status {
    return sys.AttachTuples(schema_id, std::move(tuples));
  });
}

std::future<Status> PaygoServer::RebuildFromScratchAsync() {
  return UpdateAsync(
      [](IntegrationSystem& sys) { return sys.RebuildFromScratch(); });
}

std::string PaygoServer::DebugString() const {
  std::ostringstream os;
  os << "PaygoServer{running=" << (running() ? "yes" : "no")
     << " workers=" << options_.num_workers
     << " queue=" << requests_->size() << "/" << requests_->capacity()
     << " cache=" << (cache_ != nullptr ? cache_->size() : 0)
     << " generation=" << generation() << "}\n";
  os << metrics_.DebugString();
  return os.str();
}

}  // namespace paygo
