#ifndef PAYGO_SERVE_SNAPSHOT_HOLDER_H_
#define PAYGO_SERVE_SNAPSHOT_HOLDER_H_

/// \file snapshot_holder.h
/// \brief Atomically swappable shared_ptr with TSan-clean happens-before.
///
/// Why not `std::atomic<std::shared_ptr<T>>`? libstdc++ (GCC 12) implements
/// it with a pointer-tag spinlock whose reader-side unlock is relaxed
/// (`_Sp_atomic::load` ends with `unlock(memory_order_relaxed)`). Mutual
/// exclusion still holds through the lock word's RMW modification order, so
/// the code is correct on real hardware — but the formal happens-before
/// edge from a reader's pointer read to the next writer's pointer write is
/// missing, and ThreadSanitizer (correctly, per the abstract machine)
/// reports a data race on the stored pointer. This holder implements the
/// same protocol with acquire/release on both ends of the critical section,
/// so the serving runtime is sanitizer-clean without suppressions.
///
/// Progress guarantees are identical: `std::atomic<shared_ptr>` is not
/// lock-free either (`is_always_lock_free` is false; it spins on the same
/// kind of embedded lock). The critical section here is a handful of
/// instructions — copy or swap one shared_ptr — so readers never wait on a
/// writer's long mutation; mutations run entirely outside the holder, on a
/// private clone, and only the final publish touches the lock.

#include <atomic>
#include <memory>
#include <thread>

namespace paygo {

/// \brief A spinlock-guarded `std::shared_ptr<T>` slot: `load()` returns a
/// shared copy, `store()` publishes a replacement. Safe for any number of
/// concurrent readers and writers.
template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;
  explicit AtomicSharedPtr(std::shared_ptr<T> initial)
      : value_(std::move(initial)) {}

  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

  /// Returns a shared copy of the current value. Never blocks for longer
  /// than a concurrent load/store's pointer copy.
  std::shared_ptr<T> load() const {
    Lock();
    std::shared_ptr<T> copy = value_;
    Unlock();
    return copy;
  }

  /// Publishes \p desired. The displaced value is released after the
  /// critical section, so an expensive destruction (the last reference to
  /// an old snapshot) never runs under the lock.
  void store(std::shared_ptr<T> desired) {
    Lock();
    value_.swap(desired);
    Unlock();
  }

 private:
  void Lock() const {
    bool expected = false;
    while (!locked_.compare_exchange_weak(expected, true,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
      expected = false;
      std::this_thread::yield();  // single-core friendliness
    }
  }
  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<T> value_;  // guarded by locked_
};

}  // namespace paygo

#endif  // PAYGO_SERVE_SNAPSHOT_HOLDER_H_
