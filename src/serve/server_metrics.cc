#include "serve/server_metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace paygo {

namespace {

std::size_t BucketIndexFor(std::uint64_t micros) {
  if (micros <= 1) return 0;
  // Bucket i covers (2^(i-1), 2^i]: index = ceil(log2(micros)).
  const int bits = 64 - __builtin_clzll(micros - 1);
  return std::min<std::size_t>(static_cast<std::size_t>(bits),
                               LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

void LatencyHistogram::Record(std::uint64_t micros) {
  buckets_[BucketIndexFor(micros)].fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::MeanMicros() const {
  const std::uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(SumMicros()) / n;
}

std::uint64_t LatencyHistogram::BucketUpperMicros(std::size_t i) {
  return i == 0 ? 1 : (std::uint64_t{1} << i);
}

std::uint64_t LatencyHistogram::PercentileMicros(double p) const {
  const std::uint64_t total = Count();
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperMicros(i);
  }
  return BucketUpperMicros(kNumBuckets - 1);
}

double ServerMetrics::CacheHitRate() const {
  const std::uint64_t hits = cache_hits.load(std::memory_order_relaxed);
  const std::uint64_t misses = cache_misses.load(std::memory_order_relaxed);
  const std::uint64_t lookups = hits + misses;
  return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
}

namespace {

void AppendHistogramJson(std::ostringstream& os, const char* name,
                         const LatencyHistogram& h) {
  os << "\"" << name << "\": {\"count\": " << h.Count()
     << ", \"mean_us\": " << h.MeanMicros()
     << ", \"p50_us\": " << h.PercentileMicros(0.50)
     << ", \"p95_us\": " << h.PercentileMicros(0.95)
     << ", \"p99_us\": " << h.PercentileMicros(0.99) << "}";
}

}  // namespace

std::string ServerMetrics::DebugString() const {
  std::ostringstream os;
  os << "requests: submitted=" << requests_submitted.load()
     << " completed=" << requests_completed.load()
     << " rejected=" << requests_rejected.load()
     << " timed_out=" << requests_timed_out.load()
     << " failed=" << requests_failed.load() << "\n";
  os << "cache: hits=" << cache_hits.load()
     << " misses=" << cache_misses.load() << " hit_rate=" << CacheHitRate()
     << "\n";
  os << "snapshot: generation=" << snapshot_generation.load()
     << " swaps=" << snapshot_swaps.load()
     << " updates_failed=" << updates_failed.load() << "\n";
  const struct {
    const char* name;
    const LatencyHistogram& h;
  } paths[] = {{"classify", classify_latency},
               {"keyword_search", keyword_search_latency},
               {"structured", structured_latency}};
  for (const auto& p : paths) {
    os << p.name << ": n=" << p.h.Count() << " mean=" << p.h.MeanMicros()
       << "us p50=" << p.h.PercentileMicros(0.5)
       << "us p95=" << p.h.PercentileMicros(0.95)
       << "us p99=" << p.h.PercentileMicros(0.99) << "us\n";
  }
  return os.str();
}

std::string ServerMetrics::ToJson() const {
  std::ostringstream os;
  os << "{\"requests_submitted\": " << requests_submitted.load()
     << ", \"requests_completed\": " << requests_completed.load()
     << ", \"requests_rejected\": " << requests_rejected.load()
     << ", \"requests_timed_out\": " << requests_timed_out.load()
     << ", \"requests_failed\": " << requests_failed.load()
     << ", \"cache_hits\": " << cache_hits.load()
     << ", \"cache_misses\": " << cache_misses.load()
     << ", \"cache_hit_rate\": " << CacheHitRate()
     << ", \"snapshot_generation\": " << snapshot_generation.load()
     << ", \"snapshot_swaps\": " << snapshot_swaps.load()
     << ", \"updates_failed\": " << updates_failed.load() << ", ";
  AppendHistogramJson(os, "classify_latency", classify_latency);
  os << ", ";
  AppendHistogramJson(os, "keyword_search_latency", keyword_search_latency);
  os << ", ";
  AppendHistogramJson(os, "structured_latency", structured_latency);
  os << "}";
  return os.str();
}

}  // namespace paygo
