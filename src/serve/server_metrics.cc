#include "serve/server_metrics.h"

#include <sstream>

namespace paygo {

double ServerMetrics::CacheHitRate() const {
  const std::uint64_t hits = cache_hits.load(std::memory_order_relaxed);
  const std::uint64_t misses = cache_misses.load(std::memory_order_relaxed);
  const std::uint64_t lookups = hits + misses;
  return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
}

namespace {

void AppendHistogramJson(std::ostringstream& os, const char* name,
                         const LatencyHistogram& h) {
  os << "\"" << name << "\": {\"count\": " << h.Count()
     << ", \"mean_us\": " << h.MeanMicros()
     << ", \"p50_us\": " << h.PercentileMicros(0.50)
     << ", \"p95_us\": " << h.PercentileMicros(0.95)
     << ", \"p99_us\": " << h.PercentileMicros(0.99) << "}";
}

}  // namespace

std::string ServerMetrics::DebugString() const {
  std::ostringstream os;
  os << "requests: submitted=" << requests_submitted.load()
     << " completed=" << requests_completed.load()
     << " rejected=" << requests_rejected.load()
     << " timed_out=" << requests_timed_out.load()
     << " failed=" << requests_failed.load() << "\n";
  os << "cache: hits=" << cache_hits.load()
     << " misses=" << cache_misses.load() << " hit_rate=" << CacheHitRate()
     << "\n";
  os << "snapshot: generation=" << snapshot_generation.load()
     << " swaps=" << snapshot_swaps.load()
     << " updates_failed=" << updates_failed.load() << "\n";
  const struct {
    const char* name;
    const LatencyHistogram& h;
  } paths[] = {{"classify", classify_latency},
               {"keyword_search", keyword_search_latency},
               {"structured", structured_latency}};
  for (const auto& p : paths) {
    os << p.name << ": n=" << p.h.Count() << " mean=" << p.h.MeanMicros()
       << "us p50=" << p.h.PercentileMicros(0.5)
       << "us p95=" << p.h.PercentileMicros(0.95)
       << "us p99=" << p.h.PercentileMicros(0.99) << "us\n";
  }
  return os.str();
}

std::string ServerMetrics::ToJson() const {
  std::ostringstream os;
  os << "{\"requests_submitted\": " << requests_submitted.load()
     << ", \"requests_completed\": " << requests_completed.load()
     << ", \"requests_rejected\": " << requests_rejected.load()
     << ", \"requests_timed_out\": " << requests_timed_out.load()
     << ", \"requests_failed\": " << requests_failed.load()
     << ", \"cache_hits\": " << cache_hits.load()
     << ", \"cache_misses\": " << cache_misses.load()
     << ", \"cache_hit_rate\": " << CacheHitRate()
     << ", \"snapshot_generation\": " << snapshot_generation.load()
     << ", \"snapshot_swaps\": " << snapshot_swaps.load()
     << ", \"updates_failed\": " << updates_failed.load() << ", ";
  AppendHistogramJson(os, "classify_latency", classify_latency);
  os << ", ";
  AppendHistogramJson(os, "keyword_search_latency", keyword_search_latency);
  os << ", ";
  AppendHistogramJson(os, "structured_latency", structured_latency);
  os << "}";
  return os.str();
}

}  // namespace paygo
