#include "serve/server_metrics.h"

#include <sstream>

namespace paygo {

double ServerMetrics::CacheHitRate() const {
  const std::uint64_t hits = cache_hits.load(std::memory_order_relaxed);
  const std::uint64_t misses = cache_misses.load(std::memory_order_relaxed);
  const std::uint64_t lookups = hits + misses;
  return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
}

namespace {

/// The three per-path histograms, iterated identically by every dump.
struct PathHistogram {
  const char* name;
  const LatencyHistogram& h;
};

}  // namespace

std::string ServerMetrics::DebugString() const {
  std::ostringstream os;
  os << "requests: submitted=" << requests_submitted.load()
     << " completed=" << requests_completed.load()
     << " rejected=" << requests_rejected.load()
     << " timed_out=" << requests_timed_out.load()
     << " failed=" << requests_failed.load() << "\n";
  os << "cache: hits=" << cache_hits.load()
     << " misses=" << cache_misses.load() << " hit_rate=" << CacheHitRate()
     << "\n";
  os << "batch: sweeps=" << batch_sweeps.load()
     << " requests=" << batched_requests.load() << "\n";
  os << "snapshot: generation=" << snapshot_generation.load()
     << " swaps=" << snapshot_swaps.load()
     << " updates_failed=" << updates_failed.load() << "\n";
  os << "generation: " << snapshot_generation.load() << "\n";
  os << "write_path: delta=" << delta_updates.load()
     << " rebuild=" << rebuild_updates.load() << "\n";
  const PathHistogram paths[] = {{"classify", classify_latency},
                                 {"keyword_search", keyword_search_latency},
                                 {"structured", structured_latency},
                                 {"clone", clone_latency},
                                 {"delta_update", delta_update_latency},
                                 {"rebuild_update", rebuild_update_latency}};
  for (const auto& p : paths) {
    os << p.name << ": " << HistogramSummaryText(p.h) << "\n";
  }
  return os.str();
}

std::string ServerMetrics::ToJson() const {
  std::ostringstream os;
  os << "{\"requests_submitted\": " << requests_submitted.load()
     << ", \"requests_completed\": " << requests_completed.load()
     << ", \"requests_rejected\": " << requests_rejected.load()
     << ", \"requests_timed_out\": " << requests_timed_out.load()
     << ", \"requests_failed\": " << requests_failed.load()
     << ", \"cache_hits\": " << cache_hits.load()
     << ", \"cache_misses\": " << cache_misses.load()
     << ", \"cache_hit_rate\": " << CacheHitRate()
     << ", \"batch_sweeps\": " << batch_sweeps.load()
     << ", \"batched_requests\": " << batched_requests.load()
     << ", \"snapshot_generation\": " << snapshot_generation.load()
     << ", \"generation\": " << snapshot_generation.load()
     << ", \"snapshot_swaps\": " << snapshot_swaps.load()
     << ", \"updates_failed\": " << updates_failed.load()
     << ", \"delta_updates\": " << delta_updates.load()
     << ", \"rebuild_updates\": " << rebuild_updates.load();
  const PathHistogram paths[] = {
      {"classify_latency", classify_latency},
      {"keyword_search_latency", keyword_search_latency},
      {"structured_latency", structured_latency},
      {"clone_latency", clone_latency},
      {"delta_update_latency", delta_update_latency},
      {"rebuild_update_latency", rebuild_update_latency}};
  for (const auto& p : paths) {
    os << ", \"" << p.name << "\": " << HistogramSummaryJson(p.h);
  }
  os << "}";
  return os.str();
}

std::string ServerMetrics::ToPrometheus() const {
  std::ostringstream os;
  const struct {
    const char* name;
    std::uint64_t value;
  } counters[] = {
      {"paygo_serve_requests_submitted", requests_submitted.load()},
      {"paygo_serve_requests_completed", requests_completed.load()},
      {"paygo_serve_requests_rejected", requests_rejected.load()},
      {"paygo_serve_requests_timed_out", requests_timed_out.load()},
      {"paygo_serve_requests_failed", requests_failed.load()},
      {"paygo_serve_cache_hits", cache_hits.load()},
      {"paygo_serve_cache_misses", cache_misses.load()},
      {"paygo_serve_batch_sweeps", batch_sweeps.load()},
      {"paygo_serve_batched_requests", batched_requests.load()},
      {"paygo_serve_snapshot_swaps", snapshot_swaps.load()},
      {"paygo_serve_updates_failed", updates_failed.load()},
      {"paygo_serve_delta_updates", delta_updates.load()},
      {"paygo_serve_rebuild_updates", rebuild_updates.load()}};
  for (const auto& c : counters) {
    os << "# TYPE " << c.name << " counter\n" << c.name << " " << c.value
       << "\n";
  }
  os << "# TYPE paygo_serve_snapshot_generation gauge\n"
     << "paygo_serve_snapshot_generation " << snapshot_generation.load()
     << "\n";
  // The stable short name replication staleness math keys on:
  // replica lag = primary paygo_serve_generation - replica synced
  // generation (see shard/replication.h).
  os << "# TYPE paygo_serve_generation gauge\n"
     << "paygo_serve_generation " << snapshot_generation.load() << "\n";
  os << "# TYPE paygo_serve_cache_hit_rate gauge\n"
     << "paygo_serve_cache_hit_rate " << CacheHitRate() << "\n";
  const PathHistogram paths[] = {
      {"paygo_serve_classify_latency_us", classify_latency},
      {"paygo_serve_keyword_search_latency_us", keyword_search_latency},
      {"paygo_serve_structured_latency_us", structured_latency},
      {"paygo_serve_clone_latency_us", clone_latency},
      {"paygo_serve_delta_update_latency_us", delta_update_latency},
      {"paygo_serve_rebuild_update_latency_us", rebuild_update_latency}};
  for (const auto& p : paths) {
    os << "# TYPE " << p.name << " histogram\n";
    AppendPrometheusHistogram(os, p.name, p.h);
  }
  return os.str();
}

}  // namespace paygo
