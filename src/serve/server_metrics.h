#ifndef PAYGO_SERVE_SERVER_METRICS_H_
#define PAYGO_SERVE_SERVER_METRICS_H_

/// \file server_metrics.h
/// \brief Lock-free serving metrics: counters and latency histograms.
///
/// Everything here is plain atomics with relaxed ordering — metrics are
/// monitoring data, not synchronization, and must never serialize the
/// request paths they observe. Latencies go into fixed power-of-two
/// microsecond buckets (1us .. ~4s, plus overflow), which makes Record()
/// one relaxed fetch_add and keeps percentile queries allocation-free.

#include <atomic>
#include <cstdint>
#include <string>

namespace paygo {

/// \brief Fixed-bucket latency histogram (microseconds, power-of-two
/// bucket bounds). Thread-safe; Record is wait-free.
class LatencyHistogram {
 public:
  /// Bucket i covers (2^(i-1), 2^i] microseconds; bucket 0 is [0, 1].
  /// The last bucket absorbs everything above ~4.2 seconds.
  static constexpr std::size_t kNumBuckets = 23;

  void Record(std::uint64_t micros);

  /// Total recorded samples.
  std::uint64_t Count() const;
  /// Sum of recorded latencies in microseconds.
  std::uint64_t SumMicros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }
  /// Mean latency in microseconds (0 when empty).
  double MeanMicros() const;

  /// Approximate percentile in microseconds: the upper bound of the bucket
  /// containing the p-th sample (p in [0, 1]). 0 when empty.
  std::uint64_t PercentileMicros(double p) const;

  /// Per-bucket count (for tests and dumps).
  std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket \p i in microseconds.
  static std::uint64_t BucketUpperMicros(std::size_t i);

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> sum_micros_{0};
};

/// \brief All counters the PaygoServer maintains. The server owns one
/// instance; readers may sample it at any time (values are individually
/// consistent, not a cross-counter snapshot).
struct ServerMetrics {
  // Admission and lifecycle.
  std::atomic<std::uint64_t> requests_submitted{0};
  std::atomic<std::uint64_t> requests_completed{0};
  std::atomic<std::uint64_t> requests_rejected{0};   // queue-full admission
  std::atomic<std::uint64_t> requests_timed_out{0};  // deadline in queue
  std::atomic<std::uint64_t> requests_failed{0};     // non-OK handler status

  // Result cache.
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};

  // Copy-on-write writer.
  std::atomic<std::uint64_t> snapshot_swaps{0};
  std::atomic<std::uint64_t> updates_failed{0};
  std::atomic<std::uint64_t> snapshot_generation{0};

  // Per-path latency (enqueue -> handler completion).
  LatencyHistogram classify_latency;
  LatencyHistogram keyword_search_latency;
  LatencyHistogram structured_latency;

  /// Cache hit fraction in [0, 1]; 0 when no lookups happened.
  double CacheHitRate() const;

  /// Multi-line human-readable dump.
  std::string DebugString() const;
  /// Single JSON object with every counter, hit rate, and per-path
  /// p50/p95/p99/mean latencies in microseconds.
  std::string ToJson() const;
};

}  // namespace paygo

#endif  // PAYGO_SERVE_SERVER_METRICS_H_
