#ifndef PAYGO_SERVE_SERVER_METRICS_H_
#define PAYGO_SERVE_SERVER_METRICS_H_

/// \file server_metrics.h
/// \brief Lock-free serving metrics: counters and latency histograms.
///
/// Everything here is plain atomics with relaxed ordering — metrics are
/// monitoring data, not synchronization, and must never serialize the
/// request paths they observe.
///
/// `LatencyHistogram` moved to `obs/stats.h` so the whole library shares
/// one implementation; this header re-exports it so existing includes
/// keep compiling.

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/stats.h"

namespace paygo {

/// \brief All counters the PaygoServer maintains. The server owns one
/// instance; readers may sample it at any time (values are individually
/// consistent, not a cross-counter snapshot).
struct ServerMetrics {
  // Admission and lifecycle.
  std::atomic<std::uint64_t> requests_submitted{0};
  std::atomic<std::uint64_t> requests_completed{0};
  std::atomic<std::uint64_t> requests_rejected{0};   // queue-full admission
  std::atomic<std::uint64_t> requests_timed_out{0};  // deadline in queue
  std::atomic<std::uint64_t> requests_failed{0};     // non-OK handler status

  // Result cache.
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};

  // Classify batch coalescing (classify_batch_max > 1): sweeps run, and
  // cache-miss requests scored inside them. batched_requests /
  // batch_sweeps is the achieved batch width.
  std::atomic<std::uint64_t> batch_sweeps{0};
  std::atomic<std::uint64_t> batched_requests{0};

  // Copy-on-write writer.
  std::atomic<std::uint64_t> snapshot_swaps{0};
  std::atomic<std::uint64_t> updates_failed{0};
  std::atomic<std::uint64_t> snapshot_generation{0};
  /// Published mutations that ran the O(delta) write path (AddSchema,
  /// tuple attachment, click-only feedback) vs the rebuild-style path
  /// (explicit feedback recluster, RebuildFromScratch, UpdateAsync).
  std::atomic<std::uint64_t> delta_updates{0};
  std::atomic<std::uint64_t> rebuild_updates{0};

  // Per-path latency (enqueue -> handler completion).
  LatencyHistogram classify_latency;
  LatencyHistogram keyword_search_latency;
  LatencyHistogram structured_latency;

  // Write-path latency, split by phase and kind: the snapshot clone
  // (pointer copies under structural sharing), then the mutation itself on
  // the delta or the rebuild path.
  LatencyHistogram clone_latency;
  LatencyHistogram delta_update_latency;
  LatencyHistogram rebuild_update_latency;

  /// Cache hit fraction in [0, 1]; 0 when no lookups happened.
  double CacheHitRate() const;

  /// Multi-line human-readable dump.
  std::string DebugString() const;
  /// Single JSON object with every counter, hit rate, and per-path
  /// latency summaries (the shared HistogramSummaryJson shape).
  std::string ToJson() const;
  /// Prometheus exposition of the same data under `paygo_serve_*` names,
  /// for the admin endpoint's /metrics page.
  std::string ToPrometheus() const;
};

}  // namespace paygo

#endif  // PAYGO_SERVE_SERVER_METRICS_H_
