#include "serve/load_generator.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <sstream>
#include <thread>

#include "shard/wire.h"
#include "synth/query_generator.h"
#include "util/random.h"
#include "util/timer.h"
#include "util/string_util.h"

namespace paygo {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t SamplePercentile(const std::vector<std::uint64_t>& sorted,
                               double p) {
  if (sorted.empty()) return 0;
  const std::size_t rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1,
                       p * static_cast<double>(sorted.size())));
  return sorted[rank];
}

}  // namespace

std::vector<std::string> BuildQueryPool(const IntegrationSystem& system,
                                        std::size_t pool_size,
                                        std::uint64_t seed) {
  pool_size = std::max<std::size_t>(pool_size, 1);
  std::vector<std::string> pool;
  pool.reserve(pool_size);
  Rng rng(seed);
  auto gen = QueryGenerator::Build(system.corpus(), system.lexicon(), {});
  if (gen.ok() && !gen->targetable_labels().empty()) {
    while (pool.size() < pool_size) {
      // Realistic web-query length mix: mostly 2-4 keywords.
      const std::size_t num_keywords =
          static_cast<std::size_t>(rng.NextInRange(1, 5));
      pool.push_back(Join(gen->Generate(num_keywords, rng).keywords, " "));
    }
    return pool;
  }
  // Unlabeled corpus: sample attribute names as query text instead.
  const SchemaCorpus& corpus = system.corpus();
  while (pool.size() < pool_size) {
    const Schema& schema = corpus.schema(
        static_cast<std::size_t>(rng.NextBelow(corpus.size())));
    if (schema.attributes.empty()) continue;
    const std::string& a = schema.attributes[static_cast<std::size_t>(
        rng.NextBelow(schema.attributes.size()))];
    const std::string& b = schema.attributes[static_cast<std::size_t>(
        rng.NextBelow(schema.attributes.size()))];
    pool.push_back(a + " " + b);
  }
  return pool;
}

LoadReport RunClosedLoopLoad(PaygoServer& server,
                             const std::vector<std::string>& queries,
                             const LoadGenOptions& options) {
  LoadReport report;
  report.client_threads = std::max<std::size_t>(options.client_threads, 1);
  report.duration_ms = std::max<std::uint64_t>(options.duration_ms, 1);
  if (queries.empty()) return report;

  struct ClientResult {
    std::vector<std::uint64_t> latencies_us;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
  };
  std::vector<ClientResult> per_client(report.client_threads);

  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(report.duration_ms);
  const WallTimer start;
  std::vector<std::thread> clients;
  clients.reserve(report.client_threads);
  for (std::size_t c = 0; c < report.client_threads; ++c) {
    clients.emplace_back([&, c] {
      ClientResult& mine = per_client[c];
      std::size_t next = c;  // offset so clients do not march in lockstep
      while (Clock::now() < deadline) {
        const std::string& query = queries[next % queries.size()];
        ++next;
        const WallTimer sent;
        Result<std::vector<DomainScore>> scores = server.Classify(query);
        mine.latencies_us.push_back(sent.ElapsedMicros());
        if (scores.ok()) {
          ++mine.ok;
        } else {
          ++mine.errors;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const std::uint64_t elapsed_us = start.ElapsedMicros();

  std::vector<std::uint64_t> all;
  for (ClientResult& r : per_client) {
    report.ok_requests += r.ok;
    report.error_requests += r.errors;
    all.insert(all.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  report.total_requests = report.ok_requests + report.error_requests;
  std::sort(all.begin(), all.end());
  report.p50_us = SamplePercentile(all, 0.50);
  report.p95_us = SamplePercentile(all, 0.95);
  report.p99_us = SamplePercentile(all, 0.99);
  report.max_us = all.empty() ? 0 : all.back();
  if (!all.empty()) {
    double sum = 0;
    for (std::uint64_t v : all) sum += static_cast<double>(v);
    report.mean_us = sum / static_cast<double>(all.size());
  }
  report.qps = elapsed_us == 0
                   ? 0.0
                   : static_cast<double>(report.total_requests) * 1e6 /
                         static_cast<double>(elapsed_us);

  const ServerMetrics& m = server.metrics();
  report.cache_hit_rate = m.CacheHitRate();
  report.rejected = m.requests_rejected.load();
  report.timed_out = m.requests_timed_out.load();
  report.snapshot_generation = m.snapshot_generation.load();
  return report;
}

LoadReport RunClosedLoopWireLoad(const std::vector<WireEndpoint>& endpoints,
                                 const std::vector<std::string>& queries,
                                 const LoadGenOptions& options,
                                 std::size_t classify_k) {
  LoadReport report;
  report.client_threads = std::max<std::size_t>(options.client_threads, 1);
  report.duration_ms = std::max<std::uint64_t>(options.duration_ms, 1);
  if (queries.empty() || endpoints.empty()) return report;

  // Weighted round-robin as a flattened schedule: an endpoint of weight w
  // appears w times, so walking the schedule sequentially realizes the
  // weights exactly over any window of its length.
  std::vector<const WireEndpoint*> schedule;
  for (const WireEndpoint& e : endpoints) {
    for (std::size_t w = 0; w < std::max<std::size_t>(e.weight, 1); ++w) {
      schedule.push_back(&e);
    }
  }

  struct ClientResult {
    std::vector<std::uint64_t> latencies_us;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
  };
  std::vector<ClientResult> per_client(report.client_threads);

  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(report.duration_ms);
  const WallTimer start;
  std::vector<std::thread> clients;
  clients.reserve(report.client_threads);
  for (std::size_t c = 0; c < report.client_threads; ++c) {
    clients.emplace_back([&, c] {
      ClientResult& mine = per_client[c];
      std::size_t next = c;  // offset so clients do not march in lockstep
      while (Clock::now() < deadline) {
        const std::string& query = queries[next % queries.size()];
        const WireEndpoint& target = *schedule[next % schedule.size()];
        ++next;
        const std::string payload =
            std::to_string(classify_k) + "\n" + query;
        const WallTimer sent;
        Result<Frame> reply = CallOnce(target.host, target.port,
                                       FrameType::kClassify, payload, 2000);
        mine.latencies_us.push_back(sent.ElapsedMicros());
        if (reply.ok() && reply->type == FrameType::kClassifyResult) {
          ++mine.ok;
        } else {
          ++mine.errors;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const std::uint64_t elapsed_us = start.ElapsedMicros();

  std::vector<std::uint64_t> all;
  for (ClientResult& r : per_client) {
    report.ok_requests += r.ok;
    report.error_requests += r.errors;
    all.insert(all.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  report.total_requests = report.ok_requests + report.error_requests;
  std::sort(all.begin(), all.end());
  report.p50_us = SamplePercentile(all, 0.50);
  report.p95_us = SamplePercentile(all, 0.95);
  report.p99_us = SamplePercentile(all, 0.99);
  report.max_us = all.empty() ? 0 : all.back();
  if (!all.empty()) {
    double sum = 0;
    for (std::uint64_t v : all) sum += static_cast<double>(v);
    report.mean_us = sum / static_cast<double>(all.size());
  }
  report.qps = elapsed_us == 0
                   ? 0.0
                   : static_cast<double>(report.total_requests) * 1e6 /
                         static_cast<double>(elapsed_us);
  return report;
}

std::uint64_t RunSaturationProbe(PaygoServer& server,
                                 const std::string& query,
                                 std::size_t burst) {
  std::vector<std::future<Result<std::vector<DomainScore>>>> inflight;
  inflight.reserve(burst);
  for (std::size_t i = 0; i < burst; ++i) {
    inflight.push_back(server.ClassifyAsync(query));
  }
  std::uint64_t rejected = 0;
  for (auto& f : inflight) {
    const Result<std::vector<DomainScore>> r = f.get();
    if (!r.ok() && r.status().IsResourceExhausted()) ++rejected;
  }
  return rejected;
}

std::string LoadReport::ToJson() const {
  std::ostringstream os;
  os << "{\"client_threads\": " << client_threads
     << ", \"duration_ms\": " << duration_ms
     << ", \"total_requests\": " << total_requests
     << ", \"ok_requests\": " << ok_requests
     << ", \"error_requests\": " << error_requests << ", \"qps\": " << qps
     << ", \"latency_us\": {\"p50\": " << p50_us << ", \"p95\": " << p95_us
     << ", \"p99\": " << p99_us << ", \"mean\": " << mean_us
     << ", \"max\": " << max_us << "}"
     << ", \"cache_hit_rate\": " << cache_hit_rate
     << ", \"rejected\": " << rejected << ", \"timed_out\": " << timed_out
     << ", \"snapshot_generation\": " << snapshot_generation << "}";
  return os.str();
}

}  // namespace paygo
