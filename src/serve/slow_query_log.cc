#include "serve/slow_query_log.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace paygo {

namespace {

void AppendJsonEscaped(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void SlowQueryLog::MaybeRecord(SlowQueryEntry entry) {
  if (capacity_ == 0 || entry.total_us <= threshold_us_) return;
  over_threshold_.fetch_add(1, std::memory_order_relaxed);
  // Fast reject: cannot outrank the current fastest retained entry of a
  // full log. Stale reads only cause a harmless lock acquisition.
  if (entry.total_us <= admission_floor_us_.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= capacity_ &&
      entry.total_us <= entries_.back().total_us) {
    return;
  }
  auto pos = std::upper_bound(entries_.begin(), entries_.end(), entry.total_us,
                              [](std::uint64_t us, const SlowQueryEntry& e) {
                                return us > e.total_us;
                              });
  entries_.insert(pos, std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_back();
  if (entries_.size() >= capacity_) {
    admission_floor_us_.store(entries_.back().total_us,
                              std::memory_order_relaxed);
  }
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::string SlowQueryLog::DebugString() const {
  const std::vector<SlowQueryEntry> entries = Entries();
  std::ostringstream os;
  os << "slow queries (threshold=" << threshold_us_
     << "us, retained=" << entries.size() << "/" << capacity_
     << ", over_threshold=" << OverThresholdCount() << ")\n";
  for (const SlowQueryEntry& e : entries) {
    os << "  [" << e.kind << "] " << e.total_us << "us trace_id=" << e.trace_id
       << " gen=" << e.snapshot_generation << " query=\"" << e.query << "\"\n";
    for (const CollectedSpan& s : e.spans) {
      os << "    ";
      for (std::uint32_t d = 0; d < s.depth; ++d) os << "  ";
      os << s.name << " " << s.dur_us << "us\n";
    }
  }
  return os.str();
}

std::string SlowQueryLog::ToJson() const {
  const std::vector<SlowQueryEntry> entries = Entries();
  std::ostringstream os;
  os << "[";
  bool first_entry = true;
  for (const SlowQueryEntry& e : entries) {
    if (!first_entry) os << ",";
    first_entry = false;
    os << "\n{\"trace_id\": " << e.trace_id << ", \"kind\": \"" << e.kind
       << "\", \"query\": \"";
    AppendJsonEscaped(os, e.query);
    os << "\", \"total_us\": " << e.total_us
       << ", \"snapshot_generation\": " << e.snapshot_generation
       << ", \"spans\": [";
    bool first_span = true;
    for (const CollectedSpan& s : e.spans) {
      if (!first_span) os << ", ";
      first_span = false;
      os << "{\"name\": \"" << s.name << "\", \"start_us\": " << s.start_us
         << ", \"dur_us\": " << s.dur_us << ", \"depth\": " << s.depth << "}";
    }
    os << "]}";
  }
  os << "\n]";
  return os.str();
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  admission_floor_us_.store(0, std::memory_order_relaxed);
  over_threshold_.store(0, std::memory_order_relaxed);
}

}  // namespace paygo
