#ifndef PAYGO_SERVE_PAYGO_SERVER_H_
#define PAYGO_SERVE_PAYGO_SERVER_H_

/// \file paygo_server.h
/// \brief Concurrent query-serving runtime over an IntegrationSystem.
///
/// The library core is single-threaded: IntegrationSystem's const methods
/// are pure reads, but its mutators rewrite the very state reads traverse.
/// PaygoServer turns that into a serving-grade runtime with three pieces:
///
///  * **Snapshot swapping.** The server owns an immutable
///    `std::shared_ptr<const IntegrationSystem>` published through an
///    atomic holder. Readers load the pointer, never take a lock, and keep
///    their snapshot alive for the duration of the request via shared
///    ownership. Mutations (AddSchema, ApplyFeedback, rebuilds, tuple
///    attachment) run on ONE background writer thread, copy-on-write: the
///    writer deep-Clones the current snapshot, mutates the private clone,
///    and publishes it with an atomic store. Readers racing a swap see
///    either the old or the new snapshot in full — never a torn mix.
///    Memory ordering: the publish releases and reader loads acquire (see
///    snapshot_holder.h, including why std::atomic<shared_ptr> is not used
///    here), so everything the writer wrote into the clone happens-before
///    any reader dereference.
///
///  * **Admission control.** Requests enter a bounded MPMC queue drained
///    by a fixed worker pool. When the queue is full, submission fails
///    immediately with ResourceExhausted (no unbounded buffering, no
///    producer blocking). Requests that wait in the queue longer than the
///    configured timeout are failed with DeadlineExceeded instead of being
///    executed — stale work is shed, not served.
///
///  * **Result caching.** Keyword-query classification results are cached
///    in a sharded LRU keyed on the normalized query and tagged with the
///    snapshot generation; a snapshot swap invalidates the whole cache
///    (see result_cache.h for the insert-after-swap race analysis).
///
/// All request APIs come in async (future-returning) and sync flavors.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/integration_system.h"
#include "obs/admin_server.h"
#include "obs/exporter.h"
#include "obs/trace.h"
#include "util/bounded_queue.h"
#include "serve/result_cache.h"
#include "serve/server_metrics.h"
#include "serve/slow_query_log.h"
#include "serve/snapshot_holder.h"
#include "util/status.h"
#include "util/timer.h"

namespace paygo {

/// \brief Tuning knobs of the serving runtime.
struct ServeOptions {
  /// Worker threads draining the request queue.
  std::size_t num_workers = 4;
  /// Admission-control depth: submissions beyond this many queued requests
  /// are rejected with ResourceExhausted.
  std::size_t queue_depth = 256;
  /// Requests older than this when a worker picks them up are failed with
  /// DeadlineExceeded. 0 disables queue-wait deadlines.
  std::uint64_t queue_timeout_ms = 1000;
  /// Depth of the (separate) mutation queue feeding the writer thread.
  std::size_t update_queue_depth = 64;
  /// Classification result cache; 0 entries disables caching.
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;
  /// Artificial per-request handler delay, in microseconds. A load- and
  /// admission-testing aid: lets tests and benchmarks saturate the queue
  /// deterministically regardless of how fast the model evaluates.
  std::uint64_t artificial_request_delay_us = 0;
  /// Classify-request batch coalescing. When > 1, a worker that pops a
  /// batchable classify request drains (non-blocking TryPop) up to this
  /// many already-queued ones and scores all cache misses in ONE
  /// struct-of-arrays sweep (NaiveBayesClassifier::ClassifyBatch) under a
  /// single snapshot load and a single cache-generation read. Results are
  /// bitwise-identical to the single-query path; batching only amortizes
  /// per-domain conditional cache traffic across the batch. 1 (default)
  /// disables coalescing — every request runs the classic path.
  std::size_t classify_batch_max = 1;
  /// Slow-query log: retain the N worst requests over the threshold.
  /// 0 disables the log entirely.
  std::size_t slow_query_log_size = 16;
  /// End-to-end latency (microseconds) a request must exceed to be a
  /// slow-query-log candidate.
  std::uint64_t slow_query_threshold_us = 10000;
  /// Worker threads the writer thread hands to rebuild-style mutations
  /// (RebuildFromScratch, ApplyFeedback reclustering) on the private clone:
  /// 0 = hardware concurrency, 1 = serial (default). Clustering results
  /// are bit-identical at any setting, so this only changes rebuild
  /// latency, never the published model.
  std::size_t rebuild_threads = 1;
  /// Readiness watermark: /readyz reports not-ready while the request
  /// queue holds more than this fraction of queue_depth. A saturated
  /// server still answers (admission control sheds overflow); readiness is
  /// the signal load balancers use to route around it.
  double ready_queue_watermark = 0.9;
  /// Embedded admin HTTP endpoint (metrics/health/status pages): -1
  /// disables it, 0 binds an ephemeral loopback port (read it back via
  /// admin()->port()), >0 binds that port.
  int admin_port = -1;
  /// JSONL metrics export file (see obs/exporter.h); empty disables the
  /// background exporter.
  std::string export_path;
  /// Exporter wake interval.
  std::uint64_t export_interval_ms = 1000;
};

/// \brief Point-in-time operational health, the /readyz and /statusz
/// input. Fields are sampled individually (monitoring data, not a
/// transaction).
struct HealthState {
  bool started = false;            ///< Start() succeeded, Stop() not called.
  bool snapshot_installed = false; ///< A system snapshot is published.
  std::uint64_t generation = 0;
  std::size_t queue_depth = 0;     ///< Requests currently queued.
  std::size_t queue_capacity = 0;
  double queue_watermark = 0.0;    ///< Configured readiness fraction.
  bool queue_saturated = false;    ///< depth > watermark * capacity.
  bool rebuild_in_progress = false;
  double uptime_seconds = 0.0;

  /// Ready = accepting traffic AND able to answer it: the server is
  /// started, a snapshot is installed, and the queue is below the
  /// watermark. Rebuilds do NOT unready the server — readers keep serving
  /// the old snapshot throughout.
  bool ready() const {
    return started && snapshot_installed && !queue_saturated;
  }
  /// One-line summary; lists the failing conditions when not ready.
  std::string Describe() const;
};

/// \brief The concurrent serving runtime. Construct, Start(), submit.
class PaygoServer {
 public:
  using Snapshot = std::shared_ptr<const IntegrationSystem>;

  /// Takes ownership of the system to serve. The server starts stopped.
  PaygoServer(std::unique_ptr<IntegrationSystem> system,
              ServeOptions options = {});
  /// Deferred bootstrap: no snapshot yet. Start() the server (its admin
  /// endpoint answers /healthz and reports not-ready), build the system,
  /// then publish it with InstallSystemAsync — /readyz flips 200 exactly
  /// when the install lands. Requests before that fail with
  /// FailedPrecondition.
  explicit PaygoServer(ServeOptions options = {});
  ~PaygoServer();

  PaygoServer(const PaygoServer&) = delete;
  PaygoServer& operator=(const PaygoServer&) = delete;

  /// Spawns the worker pool and the writer thread. Idempotent.
  Status Start();
  /// Closes the queues, drains in-flight work, joins all threads.
  /// Idempotent; called by the destructor.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- snapshot read access (never blocks on a mutation in progress) ---

  /// The current immutable snapshot. Callers may hold it as long as they
  /// like; it stays valid (shared ownership) across any number of swaps.
  Snapshot snapshot() const { return snapshot_.load(); }
  /// Monotone generation, bumped on every published mutation.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // --- read path (admission-controlled, worker pool) ---

  std::future<Result<std::vector<DomainScore>>> ClassifyAsync(
      std::string keyword_query);
  /// Batch submission: enqueues every query as a batchable classify
  /// request and returns the per-query futures (futures[i] answers
  /// keyword_queries[i]). With classify_batch_max > 1 a worker drains up
  /// to that many of these into one scoring sweep under one snapshot
  /// generation; otherwise each runs the normal single-query path. Either
  /// way every query gets its own admission decision, deadline check,
  /// cache lookup, and result — batching is a throughput optimization,
  /// not a semantic change.
  std::vector<std::future<Result<std::vector<DomainScore>>>> SubmitBatch(
      std::vector<std::string> keyword_queries);
  std::future<Result<IntegrationSystem::KeywordSearchAnswer>>
  KeywordSearchAsync(std::string keyword_query,
                     KeywordSearchOptions options = {});
  std::future<Result<std::vector<RankedTuple>>> StructuredQueryAsync(
      std::uint32_t domain, StructuredQuery query);

  /// Sync conveniences: submit and wait.
  Result<std::vector<DomainScore>> Classify(std::string keyword_query) {
    return ClassifyAsync(std::move(keyword_query)).get();
  }
  std::vector<Result<std::vector<DomainScore>>> ClassifyBatch(
      std::vector<std::string> keyword_queries) {
    auto futures = SubmitBatch(std::move(keyword_queries));
    std::vector<Result<std::vector<DomainScore>>> results;
    results.reserve(futures.size());
    for (auto& f : futures) results.push_back(f.get());
    return results;
  }
  Result<IntegrationSystem::KeywordSearchAnswer> KeywordSearch(
      std::string keyword_query, KeywordSearchOptions options = {}) {
    return KeywordSearchAsync(std::move(keyword_query), options).get();
  }
  Result<std::vector<RankedTuple>> AnswerStructuredQuery(
      std::uint32_t domain, StructuredQuery query) {
    return StructuredQueryAsync(domain, std::move(query)).get();
  }

  // --- write path (copy-on-write, single writer thread) ---

  /// Queues an arbitrary mutation. The function runs on the writer thread
  /// against a private clone of the current snapshot; an OK status
  /// publishes the clone as the new snapshot (bumping the generation and
  /// invalidating the result cache), a non-OK status discards it.
  std::future<Status> UpdateAsync(
      std::function<Status(IntegrationSystem&)> mutation);

  std::future<Status> AddSchemaAsync(Schema schema,
                                     std::vector<std::string> labels = {});
  std::future<Status> ApplyFeedbackAsync(FeedbackStore store);
  std::future<Status> AttachTuplesAsync(std::uint32_t schema_id,
                                        std::vector<Tuple> tuples);
  std::future<Status> RebuildFromScratchAsync();

  /// Publishes \p system as the served snapshot (via the writer thread, so
  /// installs order with other mutations). Unlike UpdateAsync there is no
  /// clone — the system is published as given and the generation bumped.
  /// Usable both for the deferred-bootstrap first install and for wholesale
  /// replacement later.
  std::future<Status> InstallSystemAsync(
      std::unique_ptr<IntegrationSystem> system);

  // --- introspection ---

  const ServerMetrics& metrics() const { return metrics_; }
  const ServeOptions& options() const { return options_; }
  /// The N worst requests over the configured threshold. Entries carry a
  /// span breakdown when tracing was enabled while they ran.
  const SlowQueryLog& slow_query_log() const { return *slow_log_; }
  /// Metrics JSON plus queue/cache occupancy and the slow-query log.
  std::string DebugString() const;

  /// Samples the operational health (the /readyz and /statusz input).
  HealthState Health() const;
  std::size_t queue_depth() const { return requests_->size(); }
  std::size_t queue_capacity() const { return requests_->capacity(); }
  std::size_t cache_size() const {
    return cache_ != nullptr ? cache_->size() : 0;
  }
  /// The embedded admin endpoint; null unless options.admin_port >= 0 and
  /// the server is started.
  const AdminServer* admin() const { return admin_.get(); }
  /// The background JSONL exporter; null unless options.export_path is set
  /// and the server is started.
  const MetricsSnapshotter* exporter() const { return exporter_.get(); }

 private:
  /// Sidecar state a batchable classify request carries so a worker can
  /// coalesce it into a shared scoring sweep without unpacking the type-
  /// erased `run` closure. The sweep answers the request by setting `done`
  /// directly; `run` stays the single-execution and failure path (it holds
  /// the same promise through its closure).
  struct BatchClassifyState {
    std::string query;        ///< Raw keyword query, pre-featurization.
    std::string description;  ///< Truncated query, for the slow-query log.
    std::shared_ptr<std::promise<Result<std::vector<DomainScore>>>> done;
  };
  struct QueuedRequest {
    WallTimer queued;             ///< Started at submission.
    std::uint64_t trace_id = 0;   ///< Correlates this request's spans.
    /// Invoked exactly once, either with a live snapshot and OK admission
    /// or with a null snapshot and the admission failure to report.
    std::function<void(const Snapshot&, Status admission)> run;
    /// Non-null marks the request batchable (classify with coalescing
    /// enabled). A worker that pops one may answer it via RunClassifyBatch
    /// instead of `run`; rejection/timeout paths still go through `run`.
    std::shared_ptr<BatchClassifyState> batch;
  };
  struct QueuedUpdate {
    std::function<Status(IntegrationSystem&)> mutation;
    /// When set this is an install, not a mutation: published as-is with
    /// no clone (mutation is ignored).
    std::unique_ptr<IntegrationSystem> install;
    /// Delta mutations (AddSchema, tuple attachment, click-only feedback)
    /// touch O(delta) state on the structurally-shared clone; rebuild-style
    /// ones (explicit-feedback recluster, RebuildFromScratch, raw
    /// UpdateAsync) may rework the whole corpus. The writer uses this to
    /// pick the recluster thread width and the latency histogram.
    bool delta = false;
    std::promise<Status> done;
  };

  void WorkerLoop();
  void WriterLoop();
  /// One request through the classic path: queue-wait deadline check,
  /// artificial delay, snapshot load, `run`. Factored out of WorkerLoop so
  /// the batch path can fall back to it for non-batchable requests it
  /// popped while draining the queue.
  void ExecuteRequest(QueuedRequest request);
  /// The coalesced classify path: starting from \p first (a batchable
  /// request), drains up to classify_batch_max - 1 more batchable requests
  /// with TryPop, answers cache hits directly, scores all misses in one
  /// ClassifyKeywordQueryBatch sweep under one snapshot, and finally runs
  /// any non-batchable requests it popped along the way.
  void RunClassifyBatch(QueuedRequest first);
  /// Completes one batched classify request: counters, latency histogram,
  /// slow-query log, promise fulfillment.
  void CompleteBatchItem(QueuedRequest request,
                         Result<std::vector<DomainScore>> outcome);
  /// Admission control: TryPush or fail the request immediately.
  void SubmitOrReject(QueuedRequest request);
  /// The shared read-path submit plumbing: admission, per-request tracing,
  /// completion/failure counters, latency histogram, slow-query logging.
  /// \p handler runs on a worker against a live snapshot and opens its own
  /// "serve.handler" span (so cache lookups can trace separately).
  /// \p batch, when non-null, marks the request batchable: its promise is
  /// wired into the state so the coalesced sweep can answer it without
  /// invoking \p handler (only Result<vector<DomainScore>> requests may
  /// pass one).
  template <typename T, typename Handler>
  std::future<Result<T>> SubmitRequest(
      const char* kind, std::string description, LatencyHistogram& latency,
      Handler handler, std::shared_ptr<BatchClassifyState> batch = nullptr);
  /// The shared write-path submit plumbing (running check + admission).
  std::future<Status> EnqueueUpdate(QueuedUpdate update);
  /// UpdateAsync with an explicit delta-vs-rebuild classification.
  std::future<Status> SubmitMutation(
      std::function<Status(IntegrationSystem&)> mutation, bool delta);

  ServeOptions options_;
  AtomicSharedPtr<const IntegrationSystem> snapshot_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> running_{false};

  std::unique_ptr<BoundedQueue<QueuedRequest>> requests_;
  std::unique_ptr<BoundedQueue<QueuedUpdate>> updates_;
  std::unique_ptr<QueryResultCache> cache_;  // null when caching disabled
  std::unique_ptr<SlowQueryLog> slow_log_;
  ServerMetrics metrics_;
  std::atomic<bool> rebuild_in_progress_{false};
  WallTimer uptime_;  // restarted by Start()

  std::vector<std::thread> workers_;
  std::thread writer_;

  // Optional operational surface, spawned by Start() per options_.
  std::unique_ptr<AdminServer> admin_;
  std::unique_ptr<MetricsSnapshotter> exporter_;
};

}  // namespace paygo

#endif  // PAYGO_SERVE_PAYGO_SERVER_H_
