#ifndef PAYGO_SCHEMA_SCHEMA_H_
#define PAYGO_SCHEMA_SCHEMA_H_

/// \file schema.h
/// \brief The schema model of Section 3.1.
///
/// A schema is a set of attribute names extracted from a structured data
/// source (a web form, an HTML table, a spreadsheet); an attribute name is a
/// set of terms. Nothing else — not even attribute types — is assumed to be
/// known about a source, exactly as in the thesis's problem definition.

#include <string>
#include <vector>

namespace paygo {

/// \brief A single-table schema: a named set of attribute names.
struct Schema {
  /// Identifier of the data source the schema was extracted from (e.g. a
  /// URL or file name). Purely informational.
  std::string source_name;
  /// The raw attribute names, as extracted (e.g. "departure airport",
  /// "Day/Time", "MaxNumberOfStudents").
  std::vector<std::string> attributes;

  Schema() = default;
  Schema(std::string name, std::vector<std::string> attrs)
      : source_name(std::move(name)), attributes(std::move(attrs)) {}

  bool operator==(const Schema& other) const {
    return source_name == other.source_name &&
           attributes == other.attributes;
  }
};

}  // namespace paygo

#endif  // PAYGO_SCHEMA_SCHEMA_H_
